//! The core's bridge onto the [`livelit_sched`] work-stealing pool.
//!
//! Live evaluation's hot loops are embarrassingly parallel — per-(hole,
//! closure) resumption and per-splice evaluation share no mutable state —
//! but their error discipline is sequential: the pipeline returns the
//! *first* failure in task order, and a panicking evaluator task must
//! surface as an [`EvalError::Internal`], never abort the host or wedge
//! later renders. This module packages those conventions once:
//! [`run_tasks`] fans a closure out over the global pool, converts any
//! captured task panic into `EvalError::Internal` at its task index, and
//! reports the region's utilization counters through `livelit-trace` from
//! the calling thread (worker threads never emit trace events, keeping
//! event streams deterministic at every pool size).

use hazel_lang::eval::EvalError;
use livelit_sched::{Pool, PoolStats};
use livelit_trace::Counter;

/// Runs `f` over every item on the global pool, preserving input order.
///
/// Slot `i` of the output is `f(i, &items[i])`, with a task panic folded
/// to `Err(EvalError::Internal)` in that slot. Pool utilization counters
/// ([`Counter::SchedTasks`], [`Counter::SchedSteals`],
/// [`Counter::SchedIdleNs`]) are emitted from the calling thread; steals
/// and idle time — genuinely nondeterministic quantities — are emitted
/// only when nonzero, so deterministic traces stay byte-identical.
pub fn run_tasks<T, R, F>(items: &[T], f: F) -> Vec<Result<R, EvalError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let (results, stats) = Pool::global().map(items, f);
    report_pool_stats(stats);
    results
        .into_iter()
        .map(|slot| {
            slot.map_err(|panic| {
                EvalError::Internal(format!("evaluation task panicked: {}", panic.message))
            })
        })
        .collect()
}

/// Emits one region's pool counters from the current thread.
fn report_pool_stats(stats: PoolStats) {
    livelit_trace::count(Counter::SchedTasks, stats.tasks);
    if stats.steals > 0 {
        livelit_trace::count(Counter::SchedSteals, stats.steals);
    }
    if stats.idle_ns > 0 {
        livelit_trace::count(Counter::SchedIdleNs, stats.idle_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_task_panic_surfaces_as_internal_eval_error_not_an_abort() {
        let items: Vec<i64> = (0..16).collect();
        let results = run_tasks(&items, |_, &x| {
            assert!(x != 11, "worker died mid-splice");
            x * 2
        });
        assert_eq!(results.len(), 16);
        for (i, r) in results.iter().enumerate() {
            if i == 11 {
                match r {
                    Err(EvalError::Internal(msg)) => {
                        assert!(msg.contains("worker died mid-splice"), "got: {msg}");
                    }
                    other => panic!("expected Internal eval error, got {other:?}"),
                }
            } else {
                assert_eq!(r.as_ref().unwrap(), &(i as i64 * 2));
            }
        }
    }

    #[test]
    fn results_arrive_in_task_order() {
        let items: Vec<u64> = (0..64).collect();
        let results = run_tasks(&items, |i, &x| x + i as u64);
        let got: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }
}
