//! Loading textual livelit declarations (see [`hazel_lang::module`]) into
//! checked livelit definitions.
//!
//! A declaration `livelit $a (x : τ)* at τ_expand { model τ_model init e;
//! expand e }` is checked here:
//!
//! - the initial model must be a *value* of `τ_model` (premise 2 of
//!   `ELivelit` will re-check it at every invocation; declaration loading
//!   evaluates the given expression to that value),
//! - the expansion function must have type `τ_model → Exp` (Def. 4.3,
//!   checked by [`LivelitCtx::define`]) under the string `Exp` scheme.

use std::fmt;

use hazel_lang::elab::elab_ana;
use hazel_lang::eval::{eval_traced_auto, EvalError, DEFAULT_FUEL};
use hazel_lang::ident::LivelitName;
use hazel_lang::internal::IExp;
use hazel_lang::module::LivelitDecl;
use hazel_lang::typ::Typ;
use hazel_lang::typing::{Ctx, TypeError};
use hazel_lang::value::value_has_typ;

use crate::def::{LivelitCtx, LivelitDef};
use crate::encoding::exp_typ;

/// A checked, loadable livelit declaration: the calculus-level definition
/// plus the evaluated initial model value.
#[derive(Debug, Clone)]
pub struct CheckedDecl {
    /// The calculus-level definition (object-language expansion function).
    pub def: LivelitDef,
    /// The evaluated initial model value.
    pub init_model: IExp,
}

/// A declaration-loading failure.
#[derive(Debug)]
pub enum DeclError {
    /// The declaration's `init` or `expand` expression is ill-typed.
    Type {
        /// The declaration being loaded.
        livelit: LivelitName,
        /// Which part failed (`"init"` or `"expand"`).
        part: &'static str,
        /// The underlying type error.
        error: TypeError,
    },
    /// Evaluating the initial model failed.
    InitEval {
        /// The declaration being loaded.
        livelit: LivelitName,
        /// The underlying evaluation error.
        error: EvalError,
    },
    /// The initial model evaluated to something that is not a serializable
    /// value of the model type.
    InitNotAValue {
        /// The declaration being loaded.
        livelit: LivelitName,
        /// The declared model type.
        model_ty: Typ,
    },
}

impl fmt::Display for DeclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeclError::Type {
                livelit,
                part,
                error,
            } => write!(f, "{livelit}: {part} is ill-typed: {error}"),
            DeclError::InitEval { livelit, error } => {
                write!(f, "{livelit}: initial model failed to evaluate: {error}")
            }
            DeclError::InitNotAValue { livelit, model_ty } => {
                write!(f, "{livelit}: initial model is not a value of {model_ty}")
            }
        }
    }
}

impl std::error::Error for DeclError {}

/// Checks and loads one declaration.
///
/// # Errors
///
/// See [`DeclError`].
pub fn load_decl(decl: &LivelitDecl) -> Result<CheckedDecl, DeclError> {
    // Initial model: elaborate at the model type, evaluate to a value.
    let (d_init, _) =
        elab_ana(&Ctx::empty(), &decl.init_model, &decl.model_ty).map_err(|error| {
            DeclError::Type {
                livelit: decl.name.clone(),
                part: "init",
                error,
            }
        })?;
    let init_model =
        eval_traced_auto(&d_init, DEFAULT_FUEL).map_err(|error| DeclError::InitEval {
            livelit: decl.name.clone(),
            error,
        })?;
    if !value_has_typ(&init_model, &decl.model_ty) {
        return Err(DeclError::InitNotAValue {
            livelit: decl.name.clone(),
            model_ty: decl.model_ty.clone(),
        });
    }

    // Expansion function: elaborate at τ_model → Exp.
    let expand_ty = Typ::arrow(decl.model_ty.clone(), exp_typ());
    let (d_expand, _) =
        elab_ana(&Ctx::empty(), &decl.expand, &expand_ty).map_err(|error| DeclError::Type {
            livelit: decl.name.clone(),
            part: "expand",
            error,
        })?;

    let def = LivelitDef::object(
        decl.name.clone(),
        decl.params.iter().map(|(_, t)| t.clone()).collect(),
        decl.expansion_ty.clone(),
        decl.model_ty.clone(),
        d_expand,
    );
    Ok(CheckedDecl { def, init_model })
}

/// Loads every declaration of a module into a livelit context.
///
/// # Errors
///
/// Returns the first failing declaration's error.
pub fn load_decls(
    decls: &[LivelitDecl],
    phi: &mut LivelitCtx,
) -> Result<Vec<CheckedDecl>, DeclError> {
    let mut out = Vec::with_capacity(decls.len());
    for decl in decls {
        let checked = load_decl(decl)?;
        phi.define(checked.def.clone())
            .map_err(|error| DeclError::Type {
                livelit: decl.name.clone(),
                part: "expand",
                error,
            })?;
        out.push(checked);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::module::parse_module;

    fn decl_from(src: &str) -> LivelitDecl {
        let mut module = parse_module(src).expect("parses");
        module.livelits.remove(0)
    }

    #[test]
    fn loads_a_constant_livelit() {
        let decl = decl_from(
            "livelit $answer at Int { model Unit init (); \
             expand fun m : Unit -> \"42\" } 1",
        );
        let checked = load_decl(&decl).unwrap();
        assert_eq!(checked.init_model, IExp::Unit);
        assert!(checked.def.check_well_formed().is_ok());
    }

    #[test]
    fn model_dependent_expansion() {
        // A counter-style livelit whose expansion is built from its model
        // by string concatenation (the text Exp scheme in the object
        // language). Model Bool selects between two expansions.
        let decl = decl_from(
            "livelit $flag at Bool { model Bool init true; \
             expand fun m : Bool -> if m then \"true\" else \"false\" } 1",
        );
        let checked = load_decl(&decl).unwrap();
        assert_eq!(checked.init_model, IExp::Bool(true));

        // Drive it through the calculus.
        let mut phi = LivelitCtx::new();
        phi.define(checked.def).unwrap();
        let program = hazel_lang::UExp::Livelit(Box::new(hazel_lang::LivelitAp {
            name: LivelitName::new("$flag"),
            model: IExp::Bool(false),
            splices: vec![],
            hole: hazel_lang::HoleName(0),
        }));
        let collection = crate::cc::collect(&phi, &program).unwrap();
        assert_eq!(collection.resume_result().unwrap(), IExp::Bool(false));
    }

    #[test]
    fn ill_typed_init_rejected() {
        let decl = decl_from(
            "livelit $bad at Int { model Int init true; \
             expand fun m : Int -> \"0\" } 1",
        );
        assert!(matches!(
            load_decl(&decl),
            Err(DeclError::Type { part: "init", .. })
        ));
    }

    #[test]
    fn ill_typed_expand_rejected() {
        let decl = decl_from(
            "livelit $bad at Int { model Unit init (); \
             expand fun m : Unit -> 42 } 1",
        );
        assert!(matches!(
            load_decl(&decl),
            Err(DeclError::Type { part: "expand", .. })
        ));
    }

    #[test]
    fn init_may_compute() {
        // The initial model may be any expression of the model type.
        let decl = decl_from(
            "livelit $計 at Int { model Int init 40 + 2; \
             expand fun m : Int -> \"0\" } 1",
        );
        let checked = load_decl(&decl).unwrap();
        assert_eq!(checked.init_model, IExp::Int(42));
    }
}
