//! Live splice and parameter evaluation (Secs. 2.5, 3.2.3).
//!
//! A livelit view asks the system to evaluate a splice under one of the
//! closures collected for the hole the livelit is filling. The result
//! distinguishes values from indeterminate expressions (`Result = Val(Exp) |
//! Indet(Exp)` in the paper), and is absent (`None`) "when evaluation is not
//! possible, e.g. because no closures are collected or because no value has
//! been collected for a variable used in the splice".

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::mem;
use std::sync::{Arc, PoisonError};

use hazel_lang::elab::elab_ana;
use hazel_lang::eval::{
    eval_traced_auto, report_machine_counters, EvalError, StoreEvaluator, DEFAULT_FUEL,
};
use hazel_lang::final_form::{is_value, Classification};
use hazel_lang::ident::HoleName;
use hazel_lang::internal::{IExp, Sigma};
use hazel_lang::machine::{eval_kind, EvalKind, MachineCounters, MachineEvaluator};
use hazel_lang::store::{TermId, TermStore};
use hazel_lang::typ::Typ;
use hazel_lang::typing::{Ctx, TypeError};
use hazel_lang::unexpanded::UExp;

use crate::cc::{CachedSplice, Collection};
use crate::def::LivelitCtx;
use crate::expansion::{expand, ExpandError};

/// The result of a live evaluation: a value or an indeterminate (but final)
/// expression — the paper's `Result = Val(Exp) | Indet(Exp)`.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveResult {
    /// Evaluation produced a value.
    Val(IExp),
    /// Evaluation produced an indeterminate expression (blocked on holes in
    /// critical positions). Livelits may still extract partial information
    /// from it (Sec. 3.2.3).
    Indet(IExp),
}

impl LiveResult {
    /// The underlying final expression, value or not.
    pub fn exp(&self) -> &IExp {
        match self {
            LiveResult::Val(d) | LiveResult::Indet(d) => d,
        }
    }

    /// The underlying expression if it is a value.
    pub fn value(&self) -> Option<&IExp> {
        match self {
            LiveResult::Val(d) => Some(d),
            LiveResult::Indet(_) => None,
        }
    }
}

/// A live-evaluation failure (distinct from an *absent* result, which is
/// `Ok(None)`).
#[derive(Debug, Clone, PartialEq)]
pub enum LiveError {
    /// The splice failed to expand.
    Expand(ExpandError),
    /// The splice is ill-typed at its splice type under the invocation-site
    /// context.
    Type(TypeError),
    /// Evaluation crashed (fuel, division by zero, ...).
    Eval(EvalError),
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Expand(e) => write!(f, "{e}"),
            LiveError::Type(e) => write!(f, "{e}"),
            LiveError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LiveError {}

impl From<ExpandError> for LiveError {
    fn from(e: ExpandError) -> LiveError {
        LiveError::Expand(e)
    }
}

impl From<TypeError> for LiveError {
    fn from(e: TypeError) -> LiveError {
        LiveError::Type(e)
    }
}

impl From<EvalError> for LiveError {
    fn from(e: EvalError) -> LiveError {
        LiveError::Eval(e)
    }
}

/// Evaluates splice `ê` (of splice type `τ`) under environment `σ`, with
/// `Γ` the typing context at the livelit's invocation site.
///
/// Returns `Ok(None)` when no result is available: some variable the splice
/// uses has no collected value in `σ` (e.g. an unapplied enclosing
/// function's parameter).
///
/// # Errors
///
/// See [`LiveError`].
pub fn eval_splice_in_env(
    phi: &LivelitCtx,
    gamma: &Ctx,
    sigma: &Sigma,
    splice: &UExp,
    ty: &Typ,
    fuel: u64,
) -> Result<Option<LiveResult>, LiveError> {
    let _span = livelit_trace::span("live.eval_splice");
    livelit_trace::count(livelit_trace::Counter::SplicesEvaluated, 1);
    // Splices may themselves contain livelits (compositionality); expand
    // them first.
    let expanded = expand(phi, splice)?;
    // Type and elaborate against the splice type under the client's Γ.
    let (d, _delta) = elab_ana(gamma, &expanded, ty)?;
    // Realize the collected environment.
    let closed = sigma.apply(&d);
    if !closed.is_closed() {
        // A variable in the splice has no collected value.
        return Ok(None);
    }
    let result = eval_traced_auto(&closed, fuel)?;
    Ok(Some(if is_value(&result) {
        LiveResult::Val(result)
    } else {
        LiveResult::Indet(result)
    }))
}

/// One request in a batch of live splice evaluations: evaluate `splice`
/// (of splice type `ty`) under the `env_index`-th closure collected for
/// livelit hole `u`.
#[derive(Debug, Clone, Copy)]
pub struct SpliceJob<'a> {
    /// The livelit hole whose collected closures supply the environment.
    pub u: HoleName,
    /// Index of the collected closure to evaluate under.
    pub env_index: usize,
    /// The unexpanded splice expression.
    pub splice: &'a UExp,
    /// The splice type it must check against.
    pub ty: &'a Typ,
}

/// What the sequential preparation phase decided about one job.
enum Prepared {
    /// Decided without evaluation: missing closure or hypothesis, or an
    /// expansion/type error.
    Ready(Result<Option<LiveResult>, LiveError>),
    /// Resolve from the splice-result cache under this key after the
    /// parallel evaluation phase.
    Key((TermId, u32)),
}

/// Evaluates a batch of splices, sharing one pass over the collection's
/// interned state and evaluating distinct cache misses in parallel on the
/// global pool.
///
/// Slot `i` of the output corresponds to `jobs[i]`. Results are identical
/// to calling [`eval_splice`] per job in order — the batch exists so the
/// editor can saturate the pool when re-rendering every view after an
/// edit. Three phases:
///
/// 1. **Prepare** (sequential, in job order): expand, elaborate, intern σ,
///    substitute, and consult the per-collection splice-result cache keyed
///    by (interned elaborated splice, interned σ). Hits and batch
///    duplicates are counted as [`livelit_trace::Counter::SpliceCacheHits`].
/// 2. **Evaluate** (parallel): the main store is frozen into an immutable
///    snapshot; each distinct miss evaluates in a private delta store over
///    it on the pool.
/// 3. **Merge** (sequential, in task order): deltas are absorbed back into
///    the main store with structural dedup, so the final store contents —
///    and every result — are bit-identical at any pool size.
pub fn eval_splices(
    phi: &LivelitCtx,
    collection: &Collection,
    jobs: &[SpliceJob<'_>],
) -> Vec<Result<Option<LiveResult>, LiveError>> {
    let mut guard = collection
        .interned()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let interned = &mut *guard;

    let mut prepared: Vec<Prepared> = Vec::with_capacity(jobs.len());
    // Results decided this batch, keyed like the shared cache. The final
    // phase reads these rather than the shared cache so a capacity
    // eviction between phases cannot drop a key a job depends on.
    let mut batch_results: HashMap<(TermId, u32), CachedSplice> = HashMap::new();
    let mut scheduled: HashSet<(TermId, u32)> = HashSet::new();
    let mut to_eval: Vec<((TermId, u32), TermId)> = Vec::new();
    for job in jobs {
        let Some(sigma) = collection.envs_for(job.u).get(job.env_index) else {
            prepared.push(Prepared::Ready(Ok(None)));
            continue;
        };
        let Some(hyp) = collection.delta.get(job.u) else {
            prepared.push(Prepared::Ready(Ok(None)));
            continue;
        };
        let _span = livelit_trace::span("live.eval_splice");
        livelit_trace::count(livelit_trace::Counter::SplicesEvaluated, 1);
        let expanded = match expand(phi, job.splice) {
            Ok(e) => e,
            Err(e) => {
                prepared.push(Prepared::Ready(Err(e.into())));
                continue;
            }
        };
        let (d, _delta) = match elab_ana(&hyp.ctx, &expanded, job.ty) {
            Ok(elaborated) => elaborated,
            Err(e) => {
                prepared.push(Prepared::Ready(Err(e.into())));
                continue;
            }
        };
        // The interned fast path: semantically identical to
        // [`eval_splice_in_env`] (the property suite checks this), but σ
        // is interned once per closure into the collection's shared term
        // store, realization is a path-copying simultaneous substitution,
        // and the closedness check reads the store's free-variable cache.
        if !interned.envs.contains_key(&(job.u, job.env_index)) {
            let pairs = interned.store.intern_sigma(sigma);
            let sid = interned.sigma_id(&pairs);
            interned.envs.insert((job.u, job.env_index), (pairs, sid));
        }
        let sid = interned.envs[&(job.u, job.env_index)].1;
        let dt = interned.store.intern_iexp(&d);
        let key = (dt, sid);
        if let Some(cached) = interned.results.lookup(&key) {
            livelit_trace::count(livelit_trace::Counter::SpliceCacheHits, 1);
            batch_results.entry(key).or_insert_with(|| cached.clone());
            prepared.push(Prepared::Key(key));
            continue;
        }
        if scheduled.contains(&key) {
            // An earlier job in this batch already scheduled this key.
            livelit_trace::count(livelit_trace::Counter::SpliceCacheHits, 1);
            prepared.push(Prepared::Key(key));
            continue;
        }
        livelit_trace::count(livelit_trace::Counter::SpliceCacheMisses, 1);
        let pairs = interned.envs[&(job.u, job.env_index)].0.clone();
        let closed = interned.store.subst_many(dt, &pairs);
        if !interned.store.is_closed(closed) {
            // A variable in the splice has no collected value.
            interned.cache_result(key, CachedSplice::NotClosed);
            batch_results.insert(key, CachedSplice::NotClosed);
            prepared.push(Prepared::Key(key));
            continue;
        }
        scheduled.insert(key);
        to_eval.push((key, closed));
        prepared.push(Prepared::Key(key));
    }

    if !to_eval.is_empty() {
        let _span = livelit_trace::span("live.eval_batch");
        // Capture the evaluator kind once on the coordinating thread so
        // every task in the batch uses the same evaluator.
        let kind = eval_kind();
        let frozen = Arc::new(mem::take(&mut interned.store));
        let frozen_ref = &frozen;
        let mut outcomes = crate::par::run_tasks(&to_eval, move |_, &(_, closed)| {
            // Pool workers run on `WORKER_STACK_BYTES` stacks, so even the
            // recursive store evaluator needs no `run_on_big_stack`
            // trampoline here (the machine's control state is an explicit
            // frame arena and never recurses). The evaluator writes only
            // into the task-private delta; trace events are never emitted
            // from worker threads — steps and machine counters are
            // returned and counted on the coordinating thread in task
            // order, keeping transcripts bit-identical at any pool size.
            let mut delta = TermStore::delta(frozen_ref);
            let (result, steps, machine) = match kind {
                EvalKind::Machine => {
                    let mut evaluator = MachineEvaluator::with_fuel(&mut delta, DEFAULT_FUEL);
                    let result = evaluator.eval(closed);
                    (result, evaluator.steps(), evaluator.counters())
                }
                EvalKind::Store => {
                    let mut evaluator = StoreEvaluator::with_fuel(&mut delta, DEFAULT_FUEL);
                    let result = evaluator.eval(closed);
                    (result, evaluator.steps(), MachineCounters::default())
                }
            };
            (result, steps, machine, delta)
        });
        for (_, _, _, delta) in outcomes.iter_mut().flatten() {
            delta.release_base();
        }
        // Panicked tasks dropped their delta (and its snapshot handle)
        // during unwind; healthy deltas released theirs above.
        let mut store = Arc::try_unwrap(frozen).expect("all snapshot handles released after join");
        for (&(key, _), outcome) in to_eval.iter().zip(outcomes) {
            let cached = match outcome {
                Err(e) => CachedSplice::Err(e),
                Ok((result, steps, machine, delta)) => {
                    livelit_trace::count(livelit_trace::Counter::EvalSteps, steps);
                    report_machine_counters(machine);
                    match result {
                        Err(e) => CachedSplice::Err(e),
                        Ok(result_id) => {
                            let remap = store.absorb(&delta);
                            let result_id = remap.term(result_id);
                            let is_val =
                                matches!(store.classification(result_id), Classification::Value);
                            CachedSplice::Done {
                                result: result_id,
                                is_val,
                            }
                        }
                    }
                }
            };
            interned.cache_result(key, cached.clone());
            batch_results.insert(key, cached);
        }
        interned.store = store;
    }
    interned.store.report_trace_counters();

    prepared
        .into_iter()
        .map(|p| match p {
            Prepared::Ready(result) => result,
            Prepared::Key(key) => {
                let cached = batch_results
                    .get(&key)
                    .or_else(|| interned.results.peek(&key))
                    .expect("splice batch key resolved in prepare or evaluate phase");
                match cached {
                    CachedSplice::NotClosed => Ok(None),
                    CachedSplice::Err(e) => Err(LiveError::Eval(e.clone())),
                    CachedSplice::Done { result, is_val } => {
                        let tree = interned.store.to_iexp(*result);
                        Ok(Some(if *is_val {
                            LiveResult::Val(tree)
                        } else {
                            LiveResult::Indet(tree)
                        }))
                    }
                }
            }
        })
        .collect()
}

/// Evaluates splice `ê` under the `env_index`-th closure collected for
/// livelit hole `u` — the closure-selection workflow of Fig. 2, where the
/// client toggles between the closures of a livelit appearing in a
/// multiply-applied function.
///
/// Returns `Ok(None)` if no closure with that index was collected, or if the
/// selected environment lacks a needed variable. A batch of one
/// [`eval_splices`] job; repeated calls with an unchanged splice and σ are
/// served from the collection's splice-result cache.
///
/// # Errors
///
/// See [`LiveError`].
pub fn eval_splice(
    phi: &LivelitCtx,
    collection: &Collection,
    u: HoleName,
    env_index: usize,
    splice: &UExp,
    ty: &Typ,
) -> Result<Option<LiveResult>, LiveError> {
    eval_splices(
        phi,
        collection,
        &[SpliceJob {
            u,
            env_index,
            splice,
            ty,
        }],
    )
    .pop()
    .expect("one job in, one result out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::collect;
    use crate::def::LivelitDef;
    use hazel_lang::build::*;
    use hazel_lang::ident::{HoleName, LivelitName, Var};
    use hazel_lang::unexpanded::{LivelitAp, Splice};
    use hazel_lang::value::iv;

    fn doubler() -> LivelitDef {
        LivelitDef::native("$double", vec![], Typ::Int, Typ::Unit, |_| {
            Ok(lam("s", Typ::Int, mul(var("s"), int(2))))
        })
    }

    fn program_with_baseline() -> (LivelitCtx, UExp) {
        // let baseline = 57 in $double(baseline + 50)
        let mut phi = LivelitCtx::new();
        phi.define(doubler()).unwrap();
        let program = UExp::Let(
            Var::new("baseline"),
            None,
            Box::new(UExp::Int(57)),
            Box::new(UExp::Livelit(Box::new(LivelitAp {
                name: LivelitName::new("$double"),
                model: IExp::Unit,
                splices: vec![Splice::new(
                    UExp::Bin(
                        hazel_lang::BinOp::Add,
                        Box::new(UExp::Var(Var::new("baseline"))),
                        Box::new(UExp::Int(50)),
                    ),
                    Typ::Int,
                )],
                hole: HoleName(0),
            }))),
        );
        (phi, program)
    }

    #[test]
    fn splice_with_client_variable_evaluates_live() {
        let (phi, program) = program_with_baseline();
        let collection = collect(&phi, &program).unwrap();
        // Evaluate the splice `baseline + 50` live.
        let splice = UExp::Bin(
            hazel_lang::BinOp::Add,
            Box::new(UExp::Var(Var::new("baseline"))),
            Box::new(UExp::Int(50)),
        );
        let result = eval_splice(&phi, &collection, HoleName(0), 0, &splice, &Typ::Int)
            .unwrap()
            .expect("closure available");
        assert_eq!(result, LiveResult::Val(iv::int(107)));
    }

    #[test]
    fn missing_closure_index_gives_none() {
        let (phi, program) = program_with_baseline();
        let collection = collect(&phi, &program).unwrap();
        let splice = UExp::Int(1);
        assert_eq!(
            eval_splice(&phi, &collection, HoleName(0), 5, &splice, &Typ::Int).unwrap(),
            None
        );
    }

    #[test]
    fn splice_with_uncollected_variable_gives_none() {
        // Livelit under an unapplied lambda: the parameter has no value.
        let mut phi = LivelitCtx::new();
        phi.define(doubler()).unwrap();
        // (fun y : Int -> $double(y)) applied... never. We hand-build an
        // identity σ as elaboration would produce before any application.
        let gamma = Ctx::from_bindings([(Var::new("y"), Typ::Int)]);
        let sigma = Sigma::identity([&Var::new("y")]);
        let splice = UExp::Var(Var::new("y"));
        let result =
            eval_splice_in_env(&phi, &gamma, &sigma, &splice, &Typ::Int, DEFAULT_FUEL).unwrap();
        assert_eq!(result, None);
    }

    #[test]
    fn indeterminate_splice_result_reported_as_indet() {
        // A splice containing a hole evaluates to an indeterminate result —
        // the livelit decides how to degrade (Sec. 2.5.2).
        let (phi, program) = program_with_baseline();
        let collection = collect(&phi, &program).unwrap();
        let splice = UExp::Bin(
            hazel_lang::BinOp::Add,
            Box::new(UExp::Var(Var::new("baseline"))),
            Box::new(UExp::EmptyHole(HoleName(33))),
        );
        let result = eval_splice(&phi, &collection, HoleName(0), 0, &splice, &Typ::Int)
            .unwrap()
            .expect("closure available");
        assert!(matches!(result, LiveResult::Indet(_)));
    }

    #[test]
    fn splice_containing_livelit_expands_before_evaluation() {
        let (phi, program) = program_with_baseline();
        let collection = collect(&phi, &program).unwrap();
        // Splice: $double(4) — a nested livelit invocation.
        let splice = UExp::Livelit(Box::new(LivelitAp {
            name: LivelitName::new("$double"),
            model: IExp::Unit,
            splices: vec![Splice::new(UExp::Int(4), Typ::Int)],
            hole: HoleName(77),
        }));
        let result = eval_splice(&phi, &collection, HoleName(0), 0, &splice, &Typ::Int)
            .unwrap()
            .expect("closure available");
        assert_eq!(result, LiveResult::Val(iv::int(8)));
    }

    #[test]
    fn ill_typed_splice_is_an_error() {
        let (phi, program) = program_with_baseline();
        let collection = collect(&phi, &program).unwrap();
        let splice = UExp::Bool(true);
        assert!(matches!(
            eval_splice(&phi, &collection, HoleName(0), 0, &splice, &Typ::Int),
            Err(LiveError::Type(_))
        ));
    }
}
