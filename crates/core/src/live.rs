//! Live splice and parameter evaluation (Secs. 2.5, 3.2.3).
//!
//! A livelit view asks the system to evaluate a splice under one of the
//! closures collected for the hole the livelit is filling. The result
//! distinguishes values from indeterminate expressions (`Result = Val(Exp) |
//! Indet(Exp)` in the paper), and is absent (`None`) "when evaluation is not
//! possible, e.g. because no closures are collected or because no value has
//! been collected for a variable used in the splice".

use std::fmt;

use hazel_lang::elab::elab_ana;
use hazel_lang::eval::{
    eval_traced, eval_traced_in_store, run_on_big_stack, EvalError, DEFAULT_FUEL,
};
use hazel_lang::final_form::{is_value, Classification};
use hazel_lang::internal::{IExp, Sigma};
use hazel_lang::typ::Typ;
use hazel_lang::typing::{Ctx, TypeError};
use hazel_lang::unexpanded::UExp;

use crate::cc::Collection;
use crate::def::LivelitCtx;
use crate::expansion::{expand, ExpandError};

/// The result of a live evaluation: a value or an indeterminate (but final)
/// expression — the paper's `Result = Val(Exp) | Indet(Exp)`.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveResult {
    /// Evaluation produced a value.
    Val(IExp),
    /// Evaluation produced an indeterminate expression (blocked on holes in
    /// critical positions). Livelits may still extract partial information
    /// from it (Sec. 3.2.3).
    Indet(IExp),
}

impl LiveResult {
    /// The underlying final expression, value or not.
    pub fn exp(&self) -> &IExp {
        match self {
            LiveResult::Val(d) | LiveResult::Indet(d) => d,
        }
    }

    /// The underlying expression if it is a value.
    pub fn value(&self) -> Option<&IExp> {
        match self {
            LiveResult::Val(d) => Some(d),
            LiveResult::Indet(_) => None,
        }
    }
}

/// A live-evaluation failure (distinct from an *absent* result, which is
/// `Ok(None)`).
#[derive(Debug, Clone, PartialEq)]
pub enum LiveError {
    /// The splice failed to expand.
    Expand(ExpandError),
    /// The splice is ill-typed at its splice type under the invocation-site
    /// context.
    Type(TypeError),
    /// Evaluation crashed (fuel, division by zero, ...).
    Eval(EvalError),
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Expand(e) => write!(f, "{e}"),
            LiveError::Type(e) => write!(f, "{e}"),
            LiveError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LiveError {}

impl From<ExpandError> for LiveError {
    fn from(e: ExpandError) -> LiveError {
        LiveError::Expand(e)
    }
}

impl From<TypeError> for LiveError {
    fn from(e: TypeError) -> LiveError {
        LiveError::Type(e)
    }
}

impl From<EvalError> for LiveError {
    fn from(e: EvalError) -> LiveError {
        LiveError::Eval(e)
    }
}

/// Evaluates splice `ê` (of splice type `τ`) under environment `σ`, with
/// `Γ` the typing context at the livelit's invocation site.
///
/// Returns `Ok(None)` when no result is available: some variable the splice
/// uses has no collected value in `σ` (e.g. an unapplied enclosing
/// function's parameter).
///
/// # Errors
///
/// See [`LiveError`].
pub fn eval_splice_in_env(
    phi: &LivelitCtx,
    gamma: &Ctx,
    sigma: &Sigma,
    splice: &UExp,
    ty: &Typ,
    fuel: u64,
) -> Result<Option<LiveResult>, LiveError> {
    let _span = livelit_trace::span("live.eval_splice");
    livelit_trace::count(livelit_trace::Counter::SplicesEvaluated, 1);
    // Splices may themselves contain livelits (compositionality); expand
    // them first.
    let expanded = expand(phi, splice)?;
    // Type and elaborate against the splice type under the client's Γ.
    let (d, _delta) = elab_ana(gamma, &expanded, ty)?;
    // Realize the collected environment.
    let closed = sigma.apply(&d);
    if !closed.is_closed() {
        // A variable in the splice has no collected value.
        return Ok(None);
    }
    let result = run_on_big_stack(|| eval_traced(&closed, fuel))?;
    Ok(Some(if is_value(&result) {
        LiveResult::Val(result)
    } else {
        LiveResult::Indet(result)
    }))
}

/// Evaluates splice `ê` under the `env_index`-th closure collected for
/// livelit hole `u` — the closure-selection workflow of Fig. 2, where the
/// client toggles between the closures of a livelit appearing in a
/// multiply-applied function.
///
/// Returns `Ok(None)` if no closure with that index was collected, or if the
/// selected environment lacks a needed variable.
///
/// # Errors
///
/// See [`LiveError`].
pub fn eval_splice(
    phi: &LivelitCtx,
    collection: &Collection,
    u: hazel_lang::HoleName,
    env_index: usize,
    splice: &UExp,
    ty: &Typ,
) -> Result<Option<LiveResult>, LiveError> {
    let Some(sigma) = collection.envs_for(u).get(env_index) else {
        return Ok(None);
    };
    let Some(hyp) = collection.delta.get(u) else {
        return Ok(None);
    };
    // The interned fast path: semantically identical to
    // [`eval_splice_in_env`] (the property suite checks this), but σ is
    // interned once per closure into the collection's shared term store,
    // realization is a path-copying simultaneous substitution, and the
    // closedness check reads the store's free-variable cache.
    let _span = livelit_trace::span("live.eval_splice");
    livelit_trace::count(livelit_trace::Counter::SplicesEvaluated, 1);
    let expanded = expand(phi, splice)?;
    let (d, _delta) = elab_ana(&hyp.ctx, &expanded, ty)?;
    let mut guard = collection
        .interned()
        .lock()
        .expect("interned envs poisoned");
    let interned = &mut *guard;
    if !interned.envs.contains_key(&(u, env_index)) {
        let pairs = interned.store.intern_sigma(sigma);
        interned.envs.insert((u, env_index), pairs);
    }
    let pairs = interned.envs[&(u, env_index)].clone();
    let dt = interned.store.intern_iexp(&d);
    let closed = interned.store.subst_many(dt, &pairs);
    if !interned.store.is_closed(closed) {
        // A variable in the splice has no collected value.
        interned.store.report_trace_counters();
        return Ok(None);
    }
    let store = &mut interned.store;
    let result_id = run_on_big_stack(|| eval_traced_in_store(store, closed, DEFAULT_FUEL))?;
    let is_val = matches!(store.classification(result_id), Classification::Value);
    let result = store.to_iexp(result_id);
    Ok(Some(if is_val {
        LiveResult::Val(result)
    } else {
        LiveResult::Indet(result)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::collect;
    use crate::def::LivelitDef;
    use hazel_lang::build::*;
    use hazel_lang::ident::{HoleName, LivelitName, Var};
    use hazel_lang::unexpanded::{LivelitAp, Splice};
    use hazel_lang::value::iv;

    fn doubler() -> LivelitDef {
        LivelitDef::native("$double", vec![], Typ::Int, Typ::Unit, |_| {
            Ok(lam("s", Typ::Int, mul(var("s"), int(2))))
        })
    }

    fn program_with_baseline() -> (LivelitCtx, UExp) {
        // let baseline = 57 in $double(baseline + 50)
        let mut phi = LivelitCtx::new();
        phi.define(doubler()).unwrap();
        let program = UExp::Let(
            Var::new("baseline"),
            None,
            Box::new(UExp::Int(57)),
            Box::new(UExp::Livelit(Box::new(LivelitAp {
                name: LivelitName::new("$double"),
                model: IExp::Unit,
                splices: vec![Splice::new(
                    UExp::Bin(
                        hazel_lang::BinOp::Add,
                        Box::new(UExp::Var(Var::new("baseline"))),
                        Box::new(UExp::Int(50)),
                    ),
                    Typ::Int,
                )],
                hole: HoleName(0),
            }))),
        );
        (phi, program)
    }

    #[test]
    fn splice_with_client_variable_evaluates_live() {
        let (phi, program) = program_with_baseline();
        let collection = collect(&phi, &program).unwrap();
        // Evaluate the splice `baseline + 50` live.
        let splice = UExp::Bin(
            hazel_lang::BinOp::Add,
            Box::new(UExp::Var(Var::new("baseline"))),
            Box::new(UExp::Int(50)),
        );
        let result = eval_splice(&phi, &collection, HoleName(0), 0, &splice, &Typ::Int)
            .unwrap()
            .expect("closure available");
        assert_eq!(result, LiveResult::Val(iv::int(107)));
    }

    #[test]
    fn missing_closure_index_gives_none() {
        let (phi, program) = program_with_baseline();
        let collection = collect(&phi, &program).unwrap();
        let splice = UExp::Int(1);
        assert_eq!(
            eval_splice(&phi, &collection, HoleName(0), 5, &splice, &Typ::Int).unwrap(),
            None
        );
    }

    #[test]
    fn splice_with_uncollected_variable_gives_none() {
        // Livelit under an unapplied lambda: the parameter has no value.
        let mut phi = LivelitCtx::new();
        phi.define(doubler()).unwrap();
        // (fun y : Int -> $double(y)) applied... never. We hand-build an
        // identity σ as elaboration would produce before any application.
        let gamma = Ctx::from_bindings([(Var::new("y"), Typ::Int)]);
        let sigma = Sigma::identity([&Var::new("y")]);
        let splice = UExp::Var(Var::new("y"));
        let result =
            eval_splice_in_env(&phi, &gamma, &sigma, &splice, &Typ::Int, DEFAULT_FUEL).unwrap();
        assert_eq!(result, None);
    }

    #[test]
    fn indeterminate_splice_result_reported_as_indet() {
        // A splice containing a hole evaluates to an indeterminate result —
        // the livelit decides how to degrade (Sec. 2.5.2).
        let (phi, program) = program_with_baseline();
        let collection = collect(&phi, &program).unwrap();
        let splice = UExp::Bin(
            hazel_lang::BinOp::Add,
            Box::new(UExp::Var(Var::new("baseline"))),
            Box::new(UExp::EmptyHole(HoleName(33))),
        );
        let result = eval_splice(&phi, &collection, HoleName(0), 0, &splice, &Typ::Int)
            .unwrap()
            .expect("closure available");
        assert!(matches!(result, LiveResult::Indet(_)));
    }

    #[test]
    fn splice_containing_livelit_expands_before_evaluation() {
        let (phi, program) = program_with_baseline();
        let collection = collect(&phi, &program).unwrap();
        // Splice: $double(4) — a nested livelit invocation.
        let splice = UExp::Livelit(Box::new(LivelitAp {
            name: LivelitName::new("$double"),
            model: IExp::Unit,
            splices: vec![Splice::new(UExp::Int(4), Typ::Int)],
            hole: HoleName(77),
        }));
        let result = eval_splice(&phi, &collection, HoleName(0), 0, &splice, &Typ::Int)
            .unwrap()
            .expect("closure available");
        assert_eq!(result, LiveResult::Val(iv::int(8)));
    }

    #[test]
    fn ill_typed_splice_is_an_error() {
        let (phi, program) = program_with_baseline();
        let collection = collect(&phi, &program).unwrap();
        let splice = UExp::Bool(true);
        assert!(matches!(
            eval_splice(&phi, &collection, HoleName(0), 0, &splice, &Typ::Int),
            Err(LiveError::Type(_))
        ));
    }
}
