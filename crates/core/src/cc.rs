//! Closure collection: live feedback for livelits (Sec. 4.3).
//!
//! To evaluate splices live, a livelit needs the run-time environments that
//! reach its invocation. These are gathered in two phases:
//!
//! 1. **Proto-environment collection** (Sec. 4.3.1): generate the
//!    *cc-expansion*, where each livelit expands to an empty hole applied to
//!    its splices (the hole stands in for the parameterized expansion); on
//!    the side, build the cc-context Ω mapping each livelit hole to the
//!    elaboration of its parameterized expansion. Evaluating the
//!    cc-expansion leaves a hole closure — an environment — wherever a
//!    livelit's value was needed.
//!
//! 2. **Closure resumption** (Sec. 4.3.2): proto-environments may contain
//!    proto-closures for *other* livelit holes (e.g. `averages` in Fig. 1c
//!    depends on the `$dataframe` hole), so fill every livelit hole in each
//!    collected environment with its parameterized expansion from Ω
//!    (`fillΩ`, Def. 4.6) and resume evaluation of closed entries
//!    (Def. 4.7).
//!
//! The same fill-and-resume step applied to the evaluated cc-expansion
//! itself computes the final program result without re-evaluating from
//! scratch — Theorem 4.9 (post-collection resumption) says this equals full
//! expansion followed by evaluation, and the executable form of that theorem
//! lives in the integration test suite.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use hazel_lang::elab::elab_syn;
use hazel_lang::eval::{
    eval_traced_auto, fill, report_machine_counters, resume_sigma_counted, EvalError, DEFAULT_FUEL,
};
use hazel_lang::external::{CaseArm, EExp};
use hazel_lang::ident::HoleName;
use hazel_lang::internal::{IExp, Sigma};
use hazel_lang::machine::eval_kind;
use hazel_lang::store::{TermId, TermStore, VarId};
use hazel_lang::typ::Typ;
use hazel_lang::typing::{syn, Ctx, Delta, TypeError};
use hazel_lang::unexpanded::UExp;

use crate::def::LivelitCtx;
use crate::expansion::{expand, expand_invocation_elab, ExpandError};

/// The cc-context Ω: maps each livelit hole to the elaboration of its
/// parameterized expansion, `u ↩ d_pexpansion`.
#[derive(Debug, Clone, Default)]
pub struct Omega {
    map: BTreeMap<HoleName, OmegaEntry>,
}

/// One Ω entry.
#[derive(Debug, Clone)]
pub struct OmegaEntry {
    /// The elaborated, closed parameterized expansion `d_pexpansion`.
    pub pexpansion: IExp,
    /// Its curried type `{τi} → τ_expand`.
    pub full_ty: Typ,
    /// The expansion type `τ_expand`.
    pub expansion_ty: Typ,
}

impl Omega {
    /// The livelit holes in this context.
    pub fn holes(&self) -> impl Iterator<Item = HoleName> + '_ {
        self.map.keys().copied()
    }

    /// Looks up an entry.
    pub fn get(&self, u: HoleName) -> Option<&OmegaEntry> {
        self.map.get(&u)
    }

    /// Whether `u` is a livelit hole.
    pub fn contains(&self, u: HoleName) -> bool {
        self.map.contains_key(&u)
    }

    /// The number of livelit holes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no livelit holes.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `fillΩ(d)` (Def. 4.6): fills every livelit hole in `d` with its
    /// parameterized expansion.
    ///
    /// Ω entries are closed, so order does not matter and filling amounts to
    /// syntactic replacement (plus realization of each closure's recorded
    /// environment, which is vacuous on closed terms).
    pub fn fill(&self, d: &IExp) -> IExp {
        let mut out = d.clone();
        for (u, entry) in &self.map {
            out = fill(&out, *u, &entry.pexpansion);
        }
        out
    }

    /// `fillΩ(σ)` on an environment (Def. 4.6, clause 1).
    pub fn fill_sigma(&self, sigma: &Sigma) -> Sigma {
        sigma.map_codomain(|d| self.fill(d))
    }
}

/// A closure-collection failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CollectError {
    /// A livelit failed to expand.
    Expand(ExpandError),
    /// The cc-expansion failed to type check or elaborate.
    Type(TypeError),
    /// Evaluation of the cc-expansion (or a resumption) failed.
    Eval(EvalError),
}

impl fmt::Display for CollectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectError::Expand(e) => write!(f, "{e}"),
            CollectError::Type(e) => write!(f, "{e}"),
            CollectError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CollectError {}

impl From<ExpandError> for CollectError {
    fn from(e: ExpandError) -> CollectError {
        CollectError::Expand(e)
    }
}

impl From<TypeError> for CollectError {
    fn from(e: TypeError) -> CollectError {
        CollectError::Type(e)
    }
}

impl From<EvalError> for CollectError {
    fn from(e: EvalError) -> CollectError {
        CollectError::Eval(e)
    }
}

/// The cc-expansion judgement `Φ; Γ ⊢cc ê ⇝ e : τ ⊣ Ω` (rewriting core).
///
/// Livelit invocations become `(⦇⦈u : {τi} → τ_expand) {ei}` — an empty hole
/// (ascribed at the parameterized-expansion type so the bidirectional
/// checker records `u :: τ[Γ]`) applied to the cc-expanded splices — while
/// Ω collects `u ↩ d_pexpansion`.
///
/// # Errors
///
/// See [`ExpandError`]; every premise of `ELivelit` still runs, so all of
/// its failure modes are reported here too.
pub fn cc_expand(phi: &LivelitCtx, e: &UExp, omega: &mut Omega) -> Result<EExp, ExpandError> {
    match e {
        UExp::Livelit(ap) => {
            let (pe, d_pexpansion) = expand_invocation_elab(phi, ap)?;
            omega.map.insert(
                ap.hole,
                OmegaEntry {
                    pexpansion: d_pexpansion,
                    full_ty: pe.full_ty.clone(),
                    expansion_ty: pe.expansion_ty.clone(),
                },
            );
            let mut out = EExp::Asc(Box::new(EExp::EmptyHole(ap.hole)), pe.full_ty);
            for splice in &ap.splices {
                let expanded = cc_expand(phi, &splice.exp, omega)?;
                out = EExp::Ap(Box::new(out), Box::new(expanded));
            }
            Ok(out)
        }
        UExp::Var(x) => Ok(EExp::Var(x.clone())),
        UExp::Lam(x, t, b) => Ok(EExp::Lam(
            x.clone(),
            t.clone(),
            Box::new(cc_expand(phi, b, omega)?),
        )),
        UExp::Ap(a, b) => Ok(EExp::Ap(
            Box::new(cc_expand(phi, a, omega)?),
            Box::new(cc_expand(phi, b, omega)?),
        )),
        UExp::Let(x, t, a, b) => Ok(EExp::Let(
            x.clone(),
            t.clone(),
            Box::new(cc_expand(phi, a, omega)?),
            Box::new(cc_expand(phi, b, omega)?),
        )),
        UExp::Fix(x, t, b) => Ok(EExp::Fix(
            x.clone(),
            t.clone(),
            Box::new(cc_expand(phi, b, omega)?),
        )),
        UExp::Int(n) => Ok(EExp::Int(*n)),
        UExp::Float(x) => Ok(EExp::Float(*x)),
        UExp::Bool(b) => Ok(EExp::Bool(*b)),
        UExp::Str(s) => Ok(EExp::Str(s.clone())),
        UExp::Unit => Ok(EExp::Unit),
        UExp::Bin(op, a, b) => Ok(EExp::Bin(
            *op,
            Box::new(cc_expand(phi, a, omega)?),
            Box::new(cc_expand(phi, b, omega)?),
        )),
        UExp::If(c, t, e2) => Ok(EExp::If(
            Box::new(cc_expand(phi, c, omega)?),
            Box::new(cc_expand(phi, t, omega)?),
            Box::new(cc_expand(phi, e2, omega)?),
        )),
        UExp::Tuple(fields) => Ok(EExp::Tuple(
            fields
                .iter()
                .map(|(l, fe)| Ok((l.clone(), cc_expand(phi, fe, omega)?)))
                .collect::<Result<_, ExpandError>>()?,
        )),
        UExp::Proj(inner, l) => Ok(EExp::Proj(
            Box::new(cc_expand(phi, inner, omega)?),
            l.clone(),
        )),
        UExp::Inj(t, l, inner) => Ok(EExp::Inj(
            t.clone(),
            l.clone(),
            Box::new(cc_expand(phi, inner, omega)?),
        )),
        UExp::Case(scrut, arms) => Ok(EExp::Case(
            Box::new(cc_expand(phi, scrut, omega)?),
            arms.iter()
                .map(|arm| {
                    Ok(CaseArm {
                        label: arm.label.clone(),
                        var: arm.var.clone(),
                        body: cc_expand(phi, &arm.body, omega)?,
                    })
                })
                .collect::<Result<_, ExpandError>>()?,
        )),
        UExp::Nil(t) => Ok(EExp::Nil(t.clone())),
        UExp::Cons(a, b) => Ok(EExp::Cons(
            Box::new(cc_expand(phi, a, omega)?),
            Box::new(cc_expand(phi, b, omega)?),
        )),
        UExp::ListCase(scrut, nil, h, t, cons) => Ok(EExp::ListCase(
            Box::new(cc_expand(phi, scrut, omega)?),
            Box::new(cc_expand(phi, nil, omega)?),
            h.clone(),
            t.clone(),
            Box::new(cc_expand(phi, cons, omega)?),
        )),
        UExp::Roll(t, inner) => Ok(EExp::Roll(
            t.clone(),
            Box::new(cc_expand(phi, inner, omega)?),
        )),
        UExp::Unroll(inner) => Ok(EExp::Unroll(Box::new(cc_expand(phi, inner, omega)?))),
        UExp::Asc(inner, t) => Ok(EExp::Asc(
            Box::new(cc_expand(phi, inner, omega)?),
            t.clone(),
        )),
        UExp::EmptyHole(u) => Ok(EExp::EmptyHole(*u)),
        UExp::NonEmptyHole(u, inner) => Ok(EExp::NonEmptyHole(
            *u,
            Box::new(cc_expand(phi, inner, omega)?),
        )),
    }
}

/// One σ interned into a term store: sorted (variable, value) pairs ready
/// for simultaneous substitution.
pub type InternedSigma = Box<[(VarId, TermId)]>;

/// Rotate the splice-result cache's generations once the live generation
/// holds this many entries.
pub const SPLICE_CACHE_CAP: usize = 1 << 16;

/// A memoized live-splice outcome: everything
/// [`crate::live::eval_splice`] needs to reconstruct its result without
/// re-realizing or re-evaluating the splice.
#[derive(Debug, Clone)]
pub enum CachedSplice {
    /// σ left a free variable in the realized splice — the result is
    /// absent (`Ok(None)`).
    NotClosed,
    /// Evaluation failed.
    Err(EvalError),
    /// Evaluation finished.
    Done {
        /// The interned final expression.
        result: TermId,
        /// Whether it classifies as a value (vs. indeterminate).
        is_val: bool,
    },
}

/// The splice-result cache: a two-generation (two-space) map.
///
/// Inserts land in the live generation; once it reaches
/// [`SPLICE_CACHE_CAP`], the live generation is demoted wholesale and the
/// previous one retired — so capacity never empties the cache in one step.
/// The old epoch scheme (`results.clear()` at the cap) created a periodic
/// latency cliff in long drag sessions: every splice in the working set
/// missed at once right after a clear. Here a hit in the demoted
/// generation promotes the entry back into the live one, so the working
/// set survives any number of rotations; only entries untouched for a full
/// generation are dropped. Retirements are reported as
/// [`livelit_trace::Counter::SpliceCacheEvictions`].
#[derive(Debug, Default)]
pub struct SpliceCache {
    /// The live generation: inserts and promotions land here.
    cur: HashMap<(TermId, u32), CachedSplice>,
    /// The previous generation: read-only until rotation retires it.
    prev: HashMap<(TermId, u32), CachedSplice>,
}

impl SpliceCache {
    /// Looks up `key`, promoting a previous-generation hit into the live
    /// generation so it survives the next rotation.
    pub fn lookup(&mut self, key: &(TermId, u32)) -> Option<&CachedSplice> {
        if let Some(value) = self.prev.remove(key) {
            self.cur.entry(*key).or_insert(value);
        }
        self.cur.get(key)
    }

    /// Looks up `key` without promotion.
    pub fn peek(&self, key: &(TermId, u32)) -> Option<&CachedSplice> {
        self.cur.get(key).or_else(|| self.prev.get(key))
    }

    /// Inserts a splice result, rotating generations at
    /// [`SPLICE_CACHE_CAP`] live entries.
    pub fn insert(&mut self, key: (TermId, u32), value: CachedSplice) {
        if self.cur.len() >= SPLICE_CACHE_CAP {
            let retired = mem::replace(&mut self.prev, mem::take(&mut self.cur));
            if !retired.is_empty() {
                livelit_trace::count(
                    livelit_trace::Counter::SpliceCacheEvictions,
                    retired.len() as u64,
                );
            }
        }
        self.cur.insert(key, value);
    }

    /// Entries currently retrievable (both generations).
    pub fn len(&self) -> usize {
        self.cur.len() + self.prev.len()
    }

    /// Whether no entry is retrievable.
    pub fn is_empty(&self) -> bool {
        self.cur.is_empty() && self.prev.is_empty()
    }
}

/// Lazily interned collected environments: one term store shared by every
/// live splice evaluation against the same collection, so σ values are
/// interned once per closure rather than deep-copied per evaluation.
///
/// Doubling as the *splice-result cache*: results are keyed by the
/// interned elaborated splice and a compact id for the interned σ
/// contents. Both key components are content-addressed — ids depend only
/// on term structure — so entries stay valid across
/// [`Collection::refresh_after_omega_change`]: after a model edit, only
/// splices whose σ actually changed miss.
#[derive(Debug)]
pub struct InternedEnvs {
    /// A process-unique nonce identifying this interning *lineage*. σ ids
    /// are content-addressed only within one `InternedEnvs` value: two
    /// different lineages can hand out the same `u32` for different
    /// contents. Pairing an id with the lineage nonce makes it globally
    /// comparable, which is what view memo keys need.
    ///
    /// [`Collection::refresh_after_omega_change`] moves the state
    /// (`mem::take`) into a fresh `Arc`, so the nonce *survives* the
    /// incremental fast path — only a from-scratch collection (which
    /// builds a fresh default) starts a new lineage and conservatively
    /// invalidates every memoized view.
    pub namespace: u64,
    /// The store holding interned σ values, splice terms, and results.
    pub store: TermStore,
    /// σ interned per (livelit hole, closure index), built on first use,
    /// paired with its compact σ id so repeat lookups (the render
    /// pipeline fingerprints every instance on every run) skip both the
    /// pair-list clone and the content re-hash.
    pub envs: BTreeMap<(HoleName, usize), (InternedSigma, u32)>,
    /// Compact ids for distinct σ contents, assigned in first-use order.
    pub sigma_ids: HashMap<InternedSigma, u32>,
    /// The splice-result cache, keyed by (elaborated splice, σ id).
    pub results: SpliceCache,
}

impl Default for InternedEnvs {
    fn default() -> InternedEnvs {
        static NEXT_NAMESPACE: AtomicU64 = AtomicU64::new(1);
        InternedEnvs {
            namespace: NEXT_NAMESPACE.fetch_add(1, Ordering::Relaxed),
            store: TermStore::default(),
            envs: BTreeMap::new(),
            sigma_ids: HashMap::new(),
            results: SpliceCache::default(),
        }
    }
}

impl InternedEnvs {
    /// The compact id for a σ pair-list, assigning the next one on first
    /// use. Content-addressed: two closures with identical contents (now
    /// or across refreshes) share an id.
    pub fn sigma_id(&mut self, pairs: &InternedSigma) -> u32 {
        if let Some(&id) = self.sigma_ids.get(pairs) {
            return id;
        }
        let id = u32::try_from(self.sigma_ids.len()).expect("sigma id overflow");
        self.sigma_ids.insert(pairs.clone(), id);
        id
    }

    /// Inserts a splice result; see [`SpliceCache::insert`] for the
    /// generational eviction discipline.
    pub fn cache_result(&mut self, key: (TermId, u32), value: CachedSplice) {
        self.results.insert(key, value);
    }
}

/// The result of running closure collection on a program.
#[derive(Debug, Clone)]
pub struct Collection {
    /// The cc-expansion `e_cc`.
    pub cc_exp: EExp,
    /// Its type.
    pub ty: Typ,
    /// The hole context of the cc-expansion, including every livelit hole's
    /// invocation-site typing context — the Γ used to type splices during
    /// live evaluation.
    pub delta: Delta,
    /// The cc-context Ω.
    pub omega: Omega,
    /// The evaluated cc-expansion (proto-closures live in here).
    pub proto_result: IExp,
    /// The collected, resumed environments per livelit hole (Def. 4.8):
    /// `envs(ê; u) = {resume(fillΩ(σ)) | σ ∈ protoenvs(ê; u)}`.
    ///
    /// A livelit with no entry (or an empty list) had no closures collected
    /// — e.g. it sits in a branch that was not taken or a function that was
    /// never applied (Sec. 4.3.2's discussion).
    pub envs: BTreeMap<HoleName, Vec<Sigma>>,
    /// Evaluation fuel used for collection and resumption.
    fuel: u64,
    /// Interned mirror of [`Self::envs`], built lazily by live splice
    /// evaluation. Clones share it (the environments are immutable between
    /// refreshes); a refresh replaces it wholesale.
    interned: Arc<Mutex<InternedEnvs>>,
}

impl Collection {
    /// The environments collected for livelit hole `u` (Def. 4.8). Empty if
    /// none were collected.
    pub fn envs_for(&self, u: HoleName) -> &[Sigma] {
        self.envs.get(&u).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The shared interned-environment state for live splice evaluation.
    pub(crate) fn interned(&self) -> &Arc<Mutex<InternedEnvs>> {
        &self.interned
    }

    /// A content-addressed fingerprint of the σ at `env_index` for hole
    /// `u`: the interning-lineage nonce plus the compact σ id. Two equal
    /// fingerprints guarantee identical σ contents (ids are unique within
    /// a lineage); across lineages fingerprints never compare equal, which
    /// is the conservative direction. `None` when no environment was
    /// collected at that index.
    ///
    /// Interns the σ on first use — in the render pipeline the prewarm
    /// batch has always interned it already, so this is a map lookup.
    pub fn sigma_fingerprint(&self, u: HoleName, env_index: usize) -> Option<(u64, u32)> {
        let sigma = self.envs_for(u).get(env_index)?;
        let mut interned = self.interned.lock().unwrap_or_else(PoisonError::into_inner);
        let sid = match interned.envs.get(&(u, env_index)) {
            Some(&(_, sid)) => sid,
            None => {
                let pairs = interned.store.intern_sigma(sigma);
                let sid = interned.sigma_id(&pairs);
                interned.envs.insert((u, env_index), (pairs, sid));
                sid
            }
        };
        Some((interned.namespace, sid))
    }

    /// Recomputes the collected environments after Ω changed (a livelit
    /// *model* changed, so its parameterized expansion changed) without
    /// re-running cc-expansion or its evaluation — the incremental
    /// fast path of Sec. 4.3.2. Callers must have replaced [`Self::omega`]
    /// already.
    ///
    /// # Errors
    ///
    /// Propagates resumption errors.
    pub fn refresh_after_omega_change(&mut self) -> Result<(), EvalError> {
        self.envs = collect_envs(&self.proto_result, &self.omega, self.fuel)?;
        // The (hole, index) → σ map is stale, but the term store and the
        // splice-result cache survive: their keys are content-addressed
        // (term structure, σ contents), so after a model edit only splices
        // whose σ actually changed will miss. Move the state into a fresh
        // Arc — pre-refresh clones keep the old (now emptied) shared state
        // and rebuild their mirror lazily, which still matches *their*
        // envs because interning is content-addressed too.
        let mut interned =
            mem::take(&mut *self.interned.lock().unwrap_or_else(PoisonError::into_inner));
        interned.envs.clear();
        self.interned = Arc::new(Mutex::new(interned));
        Ok(())
    }

    /// Computes the final result of the *full* program by filling the
    /// remaining livelit holes in the evaluated cc-expansion and resuming
    /// (Sec. 4.3.2: "it can simply continue from where it left off") —
    /// avoiding re-expansion and re-evaluation from scratch.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from resumption.
    pub fn resume_result(&self) -> Result<IExp, EvalError> {
        let _span = livelit_trace::span("cc.resume_result");
        let filled = self.omega.fill(&self.proto_result);
        // The program is closed, so resumption is ordinary evaluation.
        eval_traced_auto(&filled, self.fuel)
    }
}

/// Runs both phases of closure collection on a closed program (Defs. 4.5 and
/// 4.8) with the given evaluation fuel.
///
/// # Errors
///
/// See [`CollectError`].
pub fn collect_with_fuel(
    phi: &LivelitCtx,
    program: &UExp,
    fuel: u64,
) -> Result<Collection, CollectError> {
    let _span = livelit_trace::span("cc.collect");
    // Phase 1: cc-expand, type, elaborate, evaluate.
    let mut omega = Omega::default();
    let cc_exp = {
        let _span = livelit_trace::span("cc.expand");
        cc_expand(phi, program, &mut omega)?
    };
    let (ty, _) = syn(&Ctx::empty(), &cc_exp)?;
    let (d_cc, _, delta) = elab_syn(&Ctx::empty(), &cc_exp)?;
    let proto_result = {
        let _span = livelit_trace::span("cc.eval");
        eval_traced_auto(&d_cc, fuel)?
    };

    let envs = collect_envs(&proto_result, &omega, fuel)?;

    Ok(Collection {
        cc_exp,
        ty,
        delta,
        omega,
        proto_result,
        envs,
        fuel,
        interned: Arc::default(),
    })
}

/// Proto-environment collection plus resumption (Defs. 4.5–4.8): gathers
/// every livelit hole's environments from an evaluated cc-expansion, as a
/// set (duplicate environments — the same stuck closure substituted into
/// several positions — collapse to one), then fills with Ω and resumes.
///
/// Resumption fans out on the work-stealing pool: each (hole, closure)
/// task is pure tree evaluation over shared immutable inputs (Ω and the
/// proto-environments), so tasks are independent by construction. The
/// sequential observable discipline is preserved exactly — results are
/// reassembled in (hole, closure) order, `ClosuresCollected` is emitted
/// per hole (from this thread) before its resumptions are consumed, and
/// the first failure in task order is the one returned.
fn collect_envs(
    proto_result: &IExp,
    omega: &Omega,
    fuel: u64,
) -> Result<BTreeMap<HoleName, Vec<Sigma>>, EvalError> {
    let _span = livelit_trace::span("cc.resume_envs");
    let mut proto_envs: BTreeMap<HoleName, Vec<Sigma>> = BTreeMap::new();
    for (u, sigma) in proto_result.hole_closures() {
        if omega.contains(u) {
            let entry = proto_envs.entry(u).or_default();
            if !entry.iter().any(|s| s == sigma) {
                entry.push(sigma.clone());
            }
        }
    }
    let tasks: Vec<(HoleName, Sigma)> = proto_envs
        .into_iter()
        .flat_map(|(u, sigmas)| sigmas.into_iter().map(move |s| (u, s)))
        .collect();
    // Capture the evaluator kind once so every resumption task in the
    // batch uses the same evaluator; machine counters are returned per
    // task and counted below on this thread, in task order.
    let kind = eval_kind();
    let resumed = crate::par::run_tasks(&tasks, move |_, (_, sigma)| {
        let filled = omega.fill_sigma(sigma);
        resume_sigma_counted(&filled, fuel, kind)
    });

    let mut envs: BTreeMap<HoleName, Vec<Sigma>> = BTreeMap::new();
    let mut results = resumed.into_iter();
    let mut idx = 0;
    while idx < tasks.len() {
        let u = tasks[idx].0;
        let count = tasks[idx..].iter().take_while(|(h, _)| *h == u).count();
        livelit_trace::count(livelit_trace::Counter::ClosuresCollected, count as u64);
        let mut hole_envs = Vec::with_capacity(count);
        for task_result in results.by_ref().take(count) {
            // Outer: a panicking task, folded to `EvalError::Internal` by
            // the pool bridge. Inner: an ordinary resumption failure.
            let (resumed_sigma, machine) = task_result?;
            report_machine_counters(machine);
            hole_envs.push(resumed_sigma?);
        }
        envs.insert(u, hole_envs);
        idx += count;
    }
    Ok(envs)
}

/// [`collect_with_fuel`] with the default fuel budget.
///
/// # Errors
///
/// See [`CollectError`].
pub fn collect(phi: &LivelitCtx, program: &UExp) -> Result<Collection, CollectError> {
    collect_with_fuel(phi, program, DEFAULT_FUEL)
}

/// Evaluates the fully expanded program from scratch — the baseline that
/// [`Collection::resume_result`] avoids. Used by Theorem 4.9 tests and the
/// fill-and-resume benchmark.
///
/// # Errors
///
/// See [`CollectError`].
pub fn eval_full(phi: &LivelitCtx, program: &UExp, fuel: u64) -> Result<IExp, CollectError> {
    let expanded = expand(phi, program)?;
    let (d, _, _) = elab_syn(&Ctx::empty(), &expanded)?;
    Ok(eval_traced_auto(&d, fuel)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::LivelitDef;
    use hazel_lang::build::*;
    use hazel_lang::ident::{LivelitName, Var};
    use hazel_lang::unexpanded::{LivelitAp, Splice};
    use hazel_lang::value::iv;

    fn const_livelit(name: &str, value: i64) -> LivelitDef {
        LivelitDef::native(name, vec![], Typ::Int, Typ::Unit, move |_| Ok(int(value)))
    }

    /// A livelit with one Int splice expanding to `fun s -> s * 2`.
    fn doubler() -> LivelitDef {
        LivelitDef::native("$double", vec![], Typ::Int, Typ::Unit, |_| {
            Ok(lam("s", Typ::Int, mul(var("s"), int(2))))
        })
    }

    fn invoke(name: &str, hole: u64, splices: Vec<Splice>) -> UExp {
        UExp::Livelit(Box::new(LivelitAp {
            name: LivelitName::new(name),
            model: IExp::Unit,
            splices,
            hole: HoleName(hole),
        }))
    }

    fn ulet(x: &str, def: UExp, body: UExp) -> UExp {
        UExp::Let(Var::new(x), None, Box::new(def), Box::new(body))
    }

    #[test]
    fn cc_expansion_replaces_livelits_with_holes() {
        let mut phi = LivelitCtx::new();
        phi.define(const_livelit("$seven", 7)).unwrap();
        let program = invoke("$seven", 0, vec![]);
        let mut omega = Omega::default();
        let cc = cc_expand(&phi, &program, &mut omega).unwrap();
        assert!(matches!(cc, EExp::Asc(ref inner, _) if matches!(**inner, EExp::EmptyHole(_))));
        assert_eq!(omega.len(), 1);
        assert!(omega.contains(HoleName(0)));
    }

    #[test]
    fn collection_gathers_environment_at_invocation() {
        // let q1_max = 36 in let grades = $double(q1_max) in grades + 1
        let mut phi = LivelitCtx::new();
        phi.define(doubler()).unwrap();
        let program = ulet(
            "q1_max",
            UExp::Int(36),
            ulet(
                "grades",
                invoke(
                    "$double",
                    0,
                    vec![Splice::new(UExp::Var(Var::new("q1_max")), Typ::Int)],
                ),
                UExp::Bin(
                    hazel_lang::BinOp::Add,
                    Box::new(UExp::Var(Var::new("grades"))),
                    Box::new(UExp::Int(1)),
                ),
            ),
        );
        let collection = collect(&phi, &program).unwrap();
        let envs = collection.envs_for(HoleName(0));
        assert_eq!(envs.len(), 1, "one closure for the one invocation");
        // The environment recorded q1_max = 36, usable for live splice eval.
        assert_eq!(envs[0].get(&Var::new("q1_max")), Some(&iv::int(36)));
    }

    #[test]
    fn resume_result_matches_full_evaluation() {
        // Theorem 4.9 on an example.
        let mut phi = LivelitCtx::new();
        phi.define(doubler()).unwrap();
        let program = ulet(
            "x",
            UExp::Int(10),
            UExp::Bin(
                hazel_lang::BinOp::Add,
                Box::new(invoke(
                    "$double",
                    0,
                    vec![Splice::new(UExp::Var(Var::new("x")), Typ::Int)],
                )),
                Box::new(UExp::Int(1)),
            ),
        );
        let collection = collect(&phi, &program).unwrap();
        let resumed = collection.resume_result().unwrap();
        let full = eval_full(&phi, &program, DEFAULT_FUEL).unwrap();
        assert_eq!(resumed, full);
        assert_eq!(resumed, IExp::Int(21));
    }

    #[test]
    fn dependent_livelits_need_resumption() {
        // Fig. 1c's structure: the second livelit's environment depends on
        // the first livelit's value. After proto-collection the entry is
        // indeterminate; resumption fills and resumes it.
        let mut phi = LivelitCtx::new();
        phi.define(const_livelit("$grades", 80)).unwrap();
        phi.define(doubler()).unwrap();
        // let grades = $grades in let averages = grades + 5 in
        //   $double(averages)
        let program = ulet(
            "grades",
            invoke("$grades", 0, vec![]),
            ulet(
                "averages",
                UExp::Bin(
                    hazel_lang::BinOp::Add,
                    Box::new(UExp::Var(Var::new("grades"))),
                    Box::new(UExp::Int(5)),
                ),
                invoke(
                    "$double",
                    1,
                    vec![Splice::new(UExp::Var(Var::new("averages")), Typ::Int)],
                ),
            ),
        );
        let collection = collect(&phi, &program).unwrap();
        let envs = collection.envs_for(HoleName(1));
        assert_eq!(envs.len(), 1);
        // Without resumption, `averages` would be indeterminate (blocked on
        // the $grades hole). After fill + resume it is 85.
        assert_eq!(envs[0].get(&Var::new("averages")), Some(&iv::int(85)));
        // And `grades` resumed to the $grades expansion value.
        assert_eq!(envs[0].get(&Var::new("grades")), Some(&iv::int(80)));
    }

    #[test]
    fn multiple_closures_from_function_application() {
        // Fig. 2's structure: a livelit inside a function applied twice
        // yields two closures, one per call.
        let mut phi = LivelitCtx::new();
        phi.define(doubler()).unwrap();
        // let f = fun url : Int -> $double(url) in f 1 + f 2
        let program = ulet(
            "f",
            UExp::Lam(
                Var::new("url"),
                Typ::Int,
                Box::new(invoke(
                    "$double",
                    0,
                    vec![Splice::new(UExp::Var(Var::new("url")), Typ::Int)],
                )),
            ),
            UExp::Bin(
                hazel_lang::BinOp::Add,
                Box::new(UExp::Ap(
                    Box::new(UExp::Var(Var::new("f"))),
                    Box::new(UExp::Int(1)),
                )),
                Box::new(UExp::Ap(
                    Box::new(UExp::Var(Var::new("f"))),
                    Box::new(UExp::Int(2)),
                )),
            ),
        );
        let collection = collect(&phi, &program).unwrap();
        let envs = collection.envs_for(HoleName(0));
        assert_eq!(envs.len(), 2, "one closure per call");
        let urls: Vec<Option<&IExp>> = envs.iter().map(|s| s.get(&Var::new("url"))).collect();
        assert!(urls.contains(&Some(&iv::int(1))));
        assert!(urls.contains(&Some(&iv::int(2))));
    }

    #[test]
    fn livelit_in_unapplied_function_collects_no_closures() {
        let mut phi = LivelitCtx::new();
        phi.define(doubler()).unwrap();
        // let f = fun x : Int -> $double(x) in 0   — f never applied.
        let program = ulet(
            "f",
            UExp::Lam(
                Var::new("x"),
                Typ::Int,
                Box::new(invoke(
                    "$double",
                    0,
                    vec![Splice::new(UExp::Var(Var::new("x")), Typ::Int)],
                )),
            ),
            UExp::Int(0),
        );
        let collection = collect(&phi, &program).unwrap();
        assert!(collection.envs_for(HoleName(0)).is_empty());
    }

    #[test]
    fn untaken_branch_collects_no_closures() {
        let mut phi = LivelitCtx::new();
        phi.define(const_livelit("$seven", 7)).unwrap();
        let program = UExp::If(
            Box::new(UExp::Bool(false)),
            Box::new(invoke("$seven", 0, vec![])),
            Box::new(UExp::Int(1)),
        );
        let collection = collect(&phi, &program).unwrap();
        assert!(collection.envs_for(HoleName(0)).is_empty());
        assert_eq!(collection.resume_result().unwrap(), IExp::Int(1));
    }

    #[test]
    fn delta_records_invocation_site_context() {
        let mut phi = LivelitCtx::new();
        phi.define(doubler()).unwrap();
        let program = ulet(
            "x",
            UExp::Int(3),
            invoke(
                "$double",
                0,
                vec![Splice::new(UExp::Var(Var::new("x")), Typ::Int)],
            ),
        );
        let collection = collect(&phi, &program).unwrap();
        let hyp = collection
            .delta
            .get(HoleName(0))
            .expect("livelit hole in Δ");
        assert_eq!(hyp.ctx.get(&Var::new("x")), Some(&Typ::Int));
        assert_eq!(hyp.ty, Typ::arrow(Typ::Int, Typ::Int));
    }
}
