//! Typed livelit expansion: `Φ; Γ ⊢ ê ⇝ e : τ`, rule `ELivelit` (Fig. 5).
//!
//! Each livelit invocation `$a⟨d_model; {ψi}⟩u` expands by:
//!
//! 1. **Lookup** — find `$a` in Φ.
//! 2. **Model validation** — check `⊢ d_model : τ_model`.
//! 3. **Expansion** — evaluate `d_expand d_model` to the encoded
//!    parameterized expansion.
//! 4. **Decoding** — decode it to an external expression.
//! 5. **Expansion validation** — check the parameterized expansion is
//!    *closed* (context independence) and has type `{τi}^(i<n) → τ_expand`
//!    (so splices are capture-avoiding function arguments).
//! 6. **Splice expansion** — recursively expand each splice in the same
//!    context.
//!
//! The conclusion applies the parameterized expansion to the expanded
//! splices. Expansion here is factored into a context-free rewriting pass
//! (all livelit-local checks need no Γ, because the parameterized expansion
//! is closed) followed by ordinary typing of the result, which checks each
//! splice against its splice type under the invocation-site Γ — together
//! these implement the typed-expansion judgement, and Theorem 4.4 (typed
//! expansion) is the statement that the composition succeeds.

use std::collections::BTreeSet;
use std::fmt;

use hazel_lang::elab::elab_syn;
use hazel_lang::eval::{EvalError, Evaluator, DEFAULT_FUEL};
use hazel_lang::external::{CaseArm, EExp};
use hazel_lang::ident::{LivelitName, Var};
use hazel_lang::internal::IExp;
use hazel_lang::typ::Typ;
use hazel_lang::typing::{ana, syn, Ctx, Delta, TypeError};
use hazel_lang::unexpanded::{LivelitAp, UExp};
use hazel_lang::value::value_has_typ;

use crate::def::{CachedExpansion, ExpandFn, ExpansionKey, LivelitCtx};
use crate::encoding::{decode, DecodeError};

/// An expansion failure.
///
/// The first four variants are exactly the failure modes that Hazel marks
/// with non-empty holes (Sec. 5.1): unbound livelit, ill-typed model,
/// run-time error in `expand`, and expansion validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpandError {
    /// Invocation of a livelit not bound in Φ (failure mode 1).
    UnboundLivelit(LivelitName),
    /// The invocation's model value is not of the declared model type
    /// (failure mode 2).
    ModelType {
        /// The livelit whose model failed validation.
        livelit: LivelitName,
        /// The declared model type.
        expected: Typ,
    },
    /// The object-language expansion function crashed or diverged
    /// (failure mode 3).
    ExpandEval {
        /// The livelit whose expansion function failed.
        livelit: LivelitName,
        /// The underlying evaluation error.
        error: EvalError,
    },
    /// A native expansion function reported an error (failure mode 3).
    NativeExpand {
        /// The livelit whose expansion function failed.
        livelit: LivelitName,
        /// The error message from the native function.
        message: String,
    },
    /// The encoded expansion failed to decode (failure mode 3/4 boundary).
    Decode {
        /// The livelit whose encoded expansion was malformed.
        livelit: LivelitName,
        /// The decode failure.
        error: DecodeError,
    },
    /// The parameterized expansion is not closed — a context-independence
    /// violation (failure mode 4).
    NotClosed {
        /// The offending livelit.
        livelit: LivelitName,
        /// The free variables that leaked into the expansion.
        free: BTreeSet<Var>,
    },
    /// The parameterized expansion is not of type `{τi} → τ_expand`
    /// (failure mode 4).
    Validation {
        /// The offending livelit.
        livelit: LivelitName,
        /// The type the parameterized expansion must have.
        expected: Typ,
        /// What went wrong: either a type error inside the expansion or a
        /// mismatch against the expected type.
        error: TypeError,
    },
    /// The invocation supplies fewer splices than the livelit declares
    /// parameters — "missing livelit parameter" (Sec. 2.4.1).
    MissingParameters {
        /// The offending livelit.
        livelit: LivelitName,
        /// Number of declared parameters.
        declared: usize,
        /// Number of splices supplied.
        supplied: usize,
    },
    /// A leading (parameter) splice was created at the wrong type.
    ParameterType {
        /// The offending livelit.
        livelit: LivelitName,
        /// The parameter index.
        index: usize,
        /// The declared parameter type.
        expected: Typ,
        /// The type recorded on the splice.
        found: Typ,
    },
    /// The fully expanded program failed to type check (e.g. a splice does
    /// not have its declared splice type under the invocation-site Γ).
    Type(TypeError),
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::UnboundLivelit(name) => write!(f, "unbound livelit {name}"),
            ExpandError::ModelType { livelit, expected } => {
                write!(f, "{livelit}: model value is not of model type {expected}")
            }
            ExpandError::ExpandEval { livelit, error } => {
                write!(f, "{livelit}: expansion function failed: {error}")
            }
            ExpandError::NativeExpand { livelit, message } => {
                write!(f, "{livelit}: expansion function failed: {message}")
            }
            ExpandError::Decode { livelit, error } => {
                write!(f, "{livelit}: {error}")
            }
            ExpandError::NotClosed { livelit, free } => {
                write!(
                    f,
                    "{livelit}: expansion is not context-independent; free variables: "
                )?;
                for (i, x) in free.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
            ExpandError::Validation {
                livelit,
                expected,
                error,
            } => write!(
                f,
                "{livelit}: parameterized expansion is not of type {expected}: {error}"
            ),
            ExpandError::MissingParameters {
                livelit,
                declared,
                supplied,
            } => write!(
                f,
                "missing livelit parameter: {livelit} declares {declared} parameter(s), \
                 {supplied} supplied"
            ),
            ExpandError::ParameterType {
                livelit,
                index,
                expected,
                found,
            } => write!(
                f,
                "{livelit}: parameter {index} has type {found}, expected {expected}"
            ),
            ExpandError::Type(e) => write!(f, "expansion does not type check: {e}"),
        }
    }
}

impl std::error::Error for ExpandError {}

impl From<TypeError> for ExpandError {
    fn from(e: TypeError) -> ExpandError {
        ExpandError::Type(e)
    }
}

/// The validated parameterized expansion of one livelit invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PExpansion {
    /// The closed parameterized expansion `e_pexpansion`.
    pub pexpansion: EExp,
    /// Its curried type `{τi}^(i<n) → τ_expand`.
    pub full_ty: Typ,
    /// The expansion type `τ_expand`.
    pub expansion_ty: Typ,
}

/// Runs premises 1–5 of `ELivelit` for one invocation, producing the
/// validated parameterized expansion. (Premise 6, splice expansion, and the
/// conclusion are handled by [`expand`].)
///
/// # Errors
///
/// Any of the `ELivelit` failure modes; see [`ExpandError`].
pub fn expand_invocation(phi: &LivelitCtx, ap: &LivelitAp) -> Result<PExpansion, ExpandError> {
    expand_invocation_with(phi, ap, true)
}

/// [`expand_invocation`] with the expansion cache bypassed: every premise
/// re-runs, including the definition's `expand` function. The determinism
/// lint (`LL0401`) depends on this — it expands twice and diffs, which the
/// cache would otherwise render vacuous.
///
/// # Errors
///
/// See [`ExpandError`].
pub fn expand_invocation_uncached(
    phi: &LivelitCtx,
    ap: &LivelitAp,
) -> Result<PExpansion, ExpandError> {
    expand_invocation_with(phi, ap, false)
}

fn expand_invocation_with(
    phi: &LivelitCtx,
    ap: &LivelitAp,
    use_cache: bool,
) -> Result<PExpansion, ExpandError> {
    expand_invocation_inner(phi, ap, use_cache).map(|(pe, _)| pe)
}

/// The worker behind [`expand_invocation`]: also returns the minted cache
/// key so callers with follow-up cache traffic (elaboration memoization)
/// reuse it instead of re-interning the model.
fn expand_invocation_inner(
    phi: &LivelitCtx,
    ap: &LivelitAp,
    use_cache: bool,
) -> Result<(PExpansion, Option<ExpansionKey>), ExpandError> {
    livelit_trace::count(livelit_trace::Counter::ExpansionsPerformed, 1);
    // 1. Lookup.
    let def = phi
        .get(&ap.name)
        .ok_or_else(|| ExpandError::UnboundLivelit(ap.name.clone()))?;

    // Premises 2–5 are a pure function of the definition, the model, and
    // the splice types — exactly the cache key, minted once here and
    // threaded through every cache operation for this invocation. A hit
    // means an invocation with this key already passed every premise, so
    // the cached expansion can be returned without re-running them.
    let splice_tys: Vec<Typ> = ap.splices.iter().map(|s| s.ty.clone()).collect();
    let key = use_cache.then(|| {
        phi.expansion_cache()
            .make_key(def.def_id(), &ap.model, &splice_tys)
    });
    if let Some(key) = &key {
        if let Some(cached) = phi.expansion_cache().lookup(key) {
            return Ok((
                PExpansion {
                    pexpansion: cached.pexpansion,
                    full_ty: cached.full_ty,
                    expansion_ty: cached.expansion_ty,
                },
                Some(key.clone()),
            ));
        }
    }

    // Parameter arity and types (Sec. 2.4.1): parameters are the leading
    // splices and must be present at the declared types before the livelit
    // can be invoked.
    if ap.splices.len() < def.param_tys.len() {
        return Err(ExpandError::MissingParameters {
            livelit: ap.name.clone(),
            declared: def.param_tys.len(),
            supplied: ap.splices.len(),
        });
    }
    for (i, (param_ty, splice)) in def.param_tys.iter().zip(&ap.splices).enumerate() {
        if &splice.ty != param_ty {
            return Err(ExpandError::ParameterType {
                livelit: ap.name.clone(),
                index: i,
                expected: param_ty.clone(),
                found: splice.ty.clone(),
            });
        }
    }

    // 2. Model validation: ⊢ d_model : τ_model.
    if !value_has_typ(&ap.model, &def.model_ty) {
        return Err(ExpandError::ModelType {
            livelit: ap.name.clone(),
            expected: def.model_ty.clone(),
        });
    }

    // 3–4. Expansion and decoding.
    let pexpansion = match &def.expand {
        ExpandFn::Object(d_expand, scheme) => {
            let applied = IExp::Ap(Box::new(d_expand.clone()), Box::new(ap.model.clone()));
            let d_encoded = Evaluator::with_fuel(DEFAULT_FUEL)
                .eval(&applied)
                .map_err(|error| ExpandError::ExpandEval {
                    livelit: ap.name.clone(),
                    error,
                })?;
            let decoded = match scheme {
                crate::def::EncodingScheme::Text => decode(&d_encoded),
                crate::def::EncodingScheme::Structural => {
                    crate::encoding_structural::decode(&d_encoded)
                }
            };
            decoded.map_err(|error| ExpandError::Decode {
                livelit: ap.name.clone(),
                error,
            })?
        }
        ExpandFn::Native(f) => f(&ap.model).map_err(|message| ExpandError::NativeExpand {
            livelit: ap.name.clone(),
            message,
        })?,
    };

    // 5. Expansion validation: context independence (closedness) ...
    let free = pexpansion.free_vars();
    if !free.is_empty() {
        return Err(ExpandError::NotClosed {
            livelit: ap.name.clone(),
            free,
        });
    }
    // ... and the curried type {τi} → τ_expand.
    let full_ty = Typ::arrows(
        ap.splices.iter().map(|s| s.ty.clone()),
        def.expansion_ty.clone(),
    );
    match syn(&Ctx::empty(), &pexpansion) {
        Ok((found, _)) if found == full_ty => {}
        Ok((found, _)) => {
            let error = TypeError::Mismatch {
                expected: full_ty.clone(),
                found,
            };
            return Err(ExpandError::Validation {
                livelit: ap.name.clone(),
                expected: full_ty,
                error,
            });
        }
        Err(error) => {
            return Err(ExpandError::Validation {
                livelit: ap.name.clone(),
                expected: full_ty,
                error,
            })
        }
    }

    if let Some(key) = &key {
        phi.expansion_cache().insert(
            key,
            CachedExpansion {
                pexpansion: pexpansion.clone(),
                full_ty: full_ty.clone(),
                expansion_ty: def.expansion_ty.clone(),
                elab: None,
            },
        );
    }

    Ok((
        PExpansion {
            pexpansion,
            full_ty,
            expansion_ty: def.expansion_ty.clone(),
        },
        key,
    ))
}

/// [`expand_invocation`] plus the elaboration of the parameterized
/// expansion, memoized alongside it in the expansion cache (closure
/// collection elaborates every invocation's expansion into Ω).
///
/// # Errors
///
/// See [`ExpandError`].
pub fn expand_invocation_elab(
    phi: &LivelitCtx,
    ap: &LivelitAp,
) -> Result<(PExpansion, IExp), ExpandError> {
    let (pe, key) = expand_invocation_inner(phi, ap, true)?;
    if let Some(key) = &key {
        if let Some(CachedExpansion { elab: Some(d), .. }) = phi.expansion_cache().peek(key) {
            return Ok((pe, d));
        }
    }
    let (d, _, _) = elab_syn(&Ctx::empty(), &pe.pexpansion).map_err(ExpandError::Type)?;
    if let Some(key) = &key {
        phi.expansion_cache().set_elab(key, &d);
    }
    Ok((pe, d))
}

/// Expands every livelit invocation in `ê`, producing the external
/// expression `e` (the rewriting core of `Φ; Γ ⊢ ê ⇝ e : τ`).
///
/// # Errors
///
/// See [`ExpandError`].
pub fn expand(phi: &LivelitCtx, e: &UExp) -> Result<EExp, ExpandError> {
    match e {
        UExp::Livelit(ap) => {
            let pe = expand_invocation(phi, ap)?;
            // Conclusion of ELivelit: apply the parameterized expansion to
            // the expanded splices. Beta reduction performs capture-avoiding
            // substitution, so splices cannot capture expansion-internal
            // bindings.
            let mut out = pe.pexpansion;
            for splice in &ap.splices {
                let expanded = expand(phi, &splice.exp)?;
                out = EExp::Ap(Box::new(out), Box::new(expanded));
            }
            Ok(out)
        }
        UExp::Var(x) => Ok(EExp::Var(x.clone())),
        UExp::Lam(x, t, b) => Ok(EExp::Lam(x.clone(), t.clone(), Box::new(expand(phi, b)?))),
        UExp::Ap(a, b) => Ok(EExp::Ap(
            Box::new(expand(phi, a)?),
            Box::new(expand(phi, b)?),
        )),
        UExp::Let(x, t, a, b) => Ok(EExp::Let(
            x.clone(),
            t.clone(),
            Box::new(expand(phi, a)?),
            Box::new(expand(phi, b)?),
        )),
        UExp::Fix(x, t, b) => Ok(EExp::Fix(x.clone(), t.clone(), Box::new(expand(phi, b)?))),
        UExp::Int(n) => Ok(EExp::Int(*n)),
        UExp::Float(x) => Ok(EExp::Float(*x)),
        UExp::Bool(b) => Ok(EExp::Bool(*b)),
        UExp::Str(s) => Ok(EExp::Str(s.clone())),
        UExp::Unit => Ok(EExp::Unit),
        UExp::Bin(op, a, b) => Ok(EExp::Bin(
            *op,
            Box::new(expand(phi, a)?),
            Box::new(expand(phi, b)?),
        )),
        UExp::If(c, t, e2) => Ok(EExp::If(
            Box::new(expand(phi, c)?),
            Box::new(expand(phi, t)?),
            Box::new(expand(phi, e2)?),
        )),
        UExp::Tuple(fields) => Ok(EExp::Tuple(
            fields
                .iter()
                .map(|(l, fe)| Ok((l.clone(), expand(phi, fe)?)))
                .collect::<Result<_, ExpandError>>()?,
        )),
        UExp::Proj(inner, l) => Ok(EExp::Proj(Box::new(expand(phi, inner)?), l.clone())),
        UExp::Inj(t, l, inner) => Ok(EExp::Inj(
            t.clone(),
            l.clone(),
            Box::new(expand(phi, inner)?),
        )),
        UExp::Case(scrut, arms) => Ok(EExp::Case(
            Box::new(expand(phi, scrut)?),
            arms.iter()
                .map(|arm| {
                    Ok(CaseArm {
                        label: arm.label.clone(),
                        var: arm.var.clone(),
                        body: expand(phi, &arm.body)?,
                    })
                })
                .collect::<Result<_, ExpandError>>()?,
        )),
        UExp::Nil(t) => Ok(EExp::Nil(t.clone())),
        UExp::Cons(a, b) => Ok(EExp::Cons(
            Box::new(expand(phi, a)?),
            Box::new(expand(phi, b)?),
        )),
        UExp::ListCase(scrut, nil, h, t, cons) => Ok(EExp::ListCase(
            Box::new(expand(phi, scrut)?),
            Box::new(expand(phi, nil)?),
            h.clone(),
            t.clone(),
            Box::new(expand(phi, cons)?),
        )),
        UExp::Roll(t, inner) => Ok(EExp::Roll(t.clone(), Box::new(expand(phi, inner)?))),
        UExp::Unroll(inner) => Ok(EExp::Unroll(Box::new(expand(phi, inner)?))),
        UExp::Asc(inner, t) => Ok(EExp::Asc(Box::new(expand(phi, inner)?), t.clone())),
        UExp::EmptyHole(u) => Ok(EExp::EmptyHole(*u)),
        UExp::NonEmptyHole(u, inner) => Ok(EExp::NonEmptyHole(*u, Box::new(expand(phi, inner)?))),
    }
}

/// The full typed-expansion judgement `Φ; Γ ⊢ ê ⇝ e : τ` in synthetic
/// position: expansion followed by typing of the result.
///
/// Theorem 4.4 (typed expansion) states that success here implies
/// `Γ ⊢ e : τ` — which is checked directly, since typing *is* the second
/// stage.
///
/// # Errors
///
/// See [`ExpandError`].
pub fn expand_typed(
    phi: &LivelitCtx,
    ctx: &Ctx,
    e: &UExp,
) -> Result<(EExp, Typ, Delta), ExpandError> {
    let _span = livelit_trace::span("expand.typed");
    let expanded = expand(phi, e)?;
    let (ty, delta) = syn(ctx, &expanded)?;
    Ok((expanded, ty, delta))
}

/// The typed-expansion judgement in analytic position.
///
/// # Errors
///
/// See [`ExpandError`].
pub fn expand_typed_ana(
    phi: &LivelitCtx,
    ctx: &Ctx,
    e: &UExp,
    ty: &Typ,
) -> Result<(EExp, Delta), ExpandError> {
    let _span = livelit_trace::span("expand.typed");
    let expanded = expand(phi, e)?;
    let delta = ana(ctx, &expanded, ty)?;
    Ok((expanded, delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::LivelitDef;
    use hazel_lang::build::*;
    use hazel_lang::eval::eval;
    use hazel_lang::ident::HoleName;
    use hazel_lang::unexpanded::Splice;
    use hazel_lang::value::iv;

    fn color_ty() -> Typ {
        Typ::prod([
            (hazel_lang::Label::new("r"), Typ::Int),
            (hazel_lang::Label::new("g"), Typ::Int),
            (hazel_lang::Label::new("b"), Typ::Int),
            (hazel_lang::Label::new("a"), Typ::Int),
        ])
    }

    /// The Fig. 3 `$color` livelit: four Int splices, expansion
    /// `fun r g b a -> (.r r, .g g, .b b, .a a)`.
    fn color_def() -> LivelitDef {
        LivelitDef::native("$color", vec![], color_ty(), Typ::Unit, |_model| {
            Ok(lams(
                [
                    ("r", Typ::Int),
                    ("g", Typ::Int),
                    ("b", Typ::Int),
                    ("a", Typ::Int),
                ],
                record([
                    ("r", var("r")),
                    ("g", var("g")),
                    ("b", var("b")),
                    ("a", var("a")),
                ]),
            ))
        })
    }

    fn phi() -> LivelitCtx {
        let mut phi = LivelitCtx::new();
        phi.define(color_def()).unwrap();
        phi
    }

    fn color_ap(splices: Vec<Splice>) -> UExp {
        UExp::Livelit(Box::new(LivelitAp {
            name: LivelitName::new("$color"),
            model: IExp::Unit,
            splices,
            hole: HoleName(0),
        }))
    }

    fn int_splices(ns: &[i64]) -> Vec<Splice> {
        ns.iter()
            .map(|n| Splice::new(UExp::Int(*n), Typ::Int))
            .collect()
    }

    #[test]
    fn color_invocation_expands_and_evaluates() {
        let e = color_ap(int_splices(&[57, 107, 57, 92]));
        let (expanded, ty, _) = expand_typed(&phi(), &Ctx::empty(), &e).unwrap();
        assert_eq!(ty, color_ty());
        let (d, _, _) = hazel_lang::elab::elab_syn(&Ctx::empty(), &expanded).unwrap();
        let result = eval(&d).unwrap();
        assert_eq!(
            result,
            iv::record([
                ("r", iv::int(57)),
                ("g", iv::int(107)),
                ("b", iv::int(57)),
                ("a", iv::int(92)),
            ])
        );
    }

    #[test]
    fn splices_are_lexically_scoped_to_the_invocation_site() {
        // Fig. 1b: let baseline = 57 in $color(baseline; baseline + 50; ...)
        // The splice references a *client* binding; capture avoidance means
        // expansion-internal binders (r, g, b, a) cannot capture it.
        let e = elet_u(
            "baseline",
            UExp::Int(57),
            color_ap(vec![
                Splice::new(UExp::Var(Var::new("baseline")), Typ::Int),
                Splice::new(
                    UExp::Bin(
                        hazel_lang::BinOp::Add,
                        Box::new(UExp::Var(Var::new("baseline"))),
                        Box::new(UExp::Int(50)),
                    ),
                    Typ::Int,
                ),
                Splice::new(UExp::Int(57), Typ::Int),
                Splice::new(UExp::Int(92), Typ::Int),
            ]),
        );
        let (expanded, _, _) = expand_typed(&phi(), &Ctx::empty(), &e).unwrap();
        let (d, _, _) = hazel_lang::elab::elab_syn(&Ctx::empty(), &expanded).unwrap();
        let result = eval(&d).unwrap();
        assert_eq!(
            result.field(&hazel_lang::Label::new("g")),
            Some(&iv::int(107))
        );
    }

    fn elet_u(x: &str, def: UExp, body: UExp) -> UExp {
        UExp::Let(Var::new(x), None, Box::new(def), Box::new(body))
    }

    #[test]
    fn capture_avoidance_adversarial() {
        // A livelit whose expansion binds `len` internally; a splice that
        // references a *client* `len` must see the client's binding.
        let mut phi = LivelitCtx::new();
        phi.define(LivelitDef::native(
            "$lenny",
            vec![],
            Typ::Int,
            Typ::Unit,
            |_| {
                // fun s : Int -> let len = 1000 in s + len
                Ok(lam(
                    "s",
                    Typ::Int,
                    elet("len", int(1000), add(var("s"), var("len"))),
                ))
            },
        ))
        .unwrap();
        let e = elet_u(
            "len",
            UExp::Int(5),
            UExp::Livelit(Box::new(LivelitAp {
                name: LivelitName::new("$lenny"),
                model: IExp::Unit,
                splices: vec![Splice::new(UExp::Var(Var::new("len")), Typ::Int)],
                hole: HoleName(0),
            })),
        );
        let (expanded, _, _) = expand_typed(&phi, &Ctx::empty(), &e).unwrap();
        let (d, _, _) = hazel_lang::elab::elab_syn(&Ctx::empty(), &expanded).unwrap();
        // Client len = 5 flows into the splice: 5 + 1000, NOT 1000 + 1000.
        assert_eq!(eval(&d).unwrap(), IExp::Int(1005));
    }

    #[test]
    fn unbound_livelit_reported() {
        let e = UExp::Livelit(Box::new(LivelitAp {
            name: LivelitName::new("$ghost"),
            model: IExp::Unit,
            splices: vec![],
            hole: HoleName(0),
        }));
        assert_eq!(
            expand(&phi(), &e),
            Err(ExpandError::UnboundLivelit(LivelitName::new("$ghost")))
        );
    }

    #[test]
    fn model_type_validated() {
        let e = UExp::Livelit(Box::new(LivelitAp {
            name: LivelitName::new("$color"),
            model: IExp::Int(3), // model type is Unit
            splices: int_splices(&[1, 2, 3, 4]),
            hole: HoleName(0),
        }));
        assert!(matches!(
            expand(&phi(), &e),
            Err(ExpandError::ModelType { .. })
        ));
    }

    #[test]
    fn non_closed_expansion_rejected() {
        let mut phi = LivelitCtx::new();
        phi.define(LivelitDef::native(
            "$leaky",
            vec![],
            Typ::Int,
            Typ::Unit,
            |_| Ok(var("strlen")), // depends on a hidden binding
        ))
        .unwrap();
        let e = UExp::Livelit(Box::new(LivelitAp {
            name: LivelitName::new("$leaky"),
            model: IExp::Unit,
            splices: vec![],
            hole: HoleName(0),
        }));
        match expand(&phi, &e) {
            Err(ExpandError::NotClosed { free, .. }) => {
                assert!(free.contains(&Var::new("strlen")));
            }
            other => panic!("expected NotClosed, got {other:?}"),
        }
    }

    #[test]
    fn wrong_expansion_type_rejected() {
        let mut phi = LivelitCtx::new();
        phi.define(LivelitDef::native(
            "$shifty",
            vec![],
            Typ::Int,
            Typ::Unit,
            |_| Ok(boolean(true)), // Int expected, Bool produced
        ))
        .unwrap();
        let e = UExp::Livelit(Box::new(LivelitAp {
            name: LivelitName::new("$shifty"),
            model: IExp::Unit,
            splices: vec![],
            hole: HoleName(0),
        }));
        assert!(matches!(
            expand(&phi, &e),
            Err(ExpandError::Validation { .. })
        ));
    }

    #[test]
    fn missing_parameters_rejected() {
        let mut phi = LivelitCtx::new();
        phi.define(LivelitDef::native(
            "$slider",
            vec![Typ::Int, Typ::Int],
            Typ::Int,
            Typ::Unit,
            |_| Ok(lams([("min", Typ::Int), ("max", Typ::Int)], var("min"))),
        ))
        .unwrap();
        // $uslider-style partial application: only one of two parameters.
        let e = UExp::Livelit(Box::new(LivelitAp {
            name: LivelitName::new("$slider"),
            model: IExp::Unit,
            splices: vec![Splice::new(UExp::Int(0), Typ::Int)],
            hole: HoleName(0),
        }));
        assert_eq!(
            expand(&phi, &e),
            Err(ExpandError::MissingParameters {
                livelit: LivelitName::new("$slider"),
                declared: 2,
                supplied: 1,
            })
        );
    }

    #[test]
    fn splice_type_errors_surface_via_typing() {
        // A Bool where an Int splice is declared: expansion rewriting
        // succeeds, but the typed judgement fails.
        let e = color_ap(vec![
            Splice::new(UExp::Bool(true), Typ::Int),
            Splice::new(UExp::Int(2), Typ::Int),
            Splice::new(UExp::Int(3), Typ::Int),
            Splice::new(UExp::Int(4), Typ::Int),
        ]);
        assert!(matches!(
            expand_typed(&phi(), &Ctx::empty(), &e),
            Err(ExpandError::Type(_))
        ));
    }

    #[test]
    fn nested_livelits_expand() {
        // A livelit invocation in a splice of another invocation (Fig. 1b's
        // $percent inside $color).
        let mut phi = phi();
        phi.define(LivelitDef::native(
            "$const7",
            vec![],
            Typ::Int,
            Typ::Unit,
            |_| Ok(int(7)),
        ))
        .unwrap();
        let inner = UExp::Livelit(Box::new(LivelitAp {
            name: LivelitName::new("$const7"),
            model: IExp::Unit,
            splices: vec![],
            hole: HoleName(1),
        }));
        let e = color_ap(vec![
            Splice::new(inner, Typ::Int),
            Splice::new(UExp::Int(2), Typ::Int),
            Splice::new(UExp::Int(3), Typ::Int),
            Splice::new(UExp::Int(4), Typ::Int),
        ]);
        let (expanded, _, _) = expand_typed(&phi, &Ctx::empty(), &e).unwrap();
        let (d, _, _) = hazel_lang::elab::elab_syn(&Ctx::empty(), &expanded).unwrap();
        let result = eval(&d).unwrap();
        assert_eq!(
            result.field(&hazel_lang::Label::new("r")),
            Some(&iv::int(7))
        );
    }

    #[test]
    fn object_livelit_with_structural_encoding() {
        // The same $inc livelit, but its expansion function returns the
        // recursive-sum encoding instead of a string.
        let mut phi = LivelitCtx::new();
        let d_expand = IExp::Lam(
            Var::new("m"),
            Typ::Unit,
            Box::new(crate::encoding_structural::encode(&lam(
                "x",
                Typ::Int,
                add(var("x"), int(1)),
            ))),
        );
        phi.define(crate::def::LivelitDef::object_structural(
            "$incs",
            vec![],
            Typ::arrow(Typ::Int, Typ::Int),
            Typ::Unit,
            d_expand,
        ))
        .unwrap();
        let e = UExp::Ap(
            Box::new(UExp::Livelit(Box::new(LivelitAp {
                name: LivelitName::new("$incs"),
                model: IExp::Unit,
                splices: vec![],
                hole: HoleName(0),
            }))),
            Box::new(UExp::Int(41)),
        );
        let (expanded, ty, _) = expand_typed(&phi, &Ctx::empty(), &e).unwrap();
        assert_eq!(ty, Typ::Int);
        let (d, _, _) = hazel_lang::elab::elab_syn(&Ctx::empty(), &expanded).unwrap();
        assert_eq!(eval(&d).unwrap(), IExp::Int(42));
    }

    #[test]
    fn object_language_expansion_function() {
        // An expansion function written in the object language: it ignores
        // its model and returns the encoding of `fun x : Int -> x + 1`.
        let mut phi = LivelitCtx::new();
        let d_expand = IExp::Lam(
            Var::new("m"),
            Typ::Unit,
            Box::new(crate::encoding::encode(&lam(
                "x",
                Typ::Int,
                add(var("x"), int(1)),
            ))),
        );
        phi.define(LivelitDef::object(
            "$inc",
            vec![],
            Typ::arrow(Typ::Int, Typ::Int),
            Typ::Unit,
            d_expand,
        ))
        .unwrap();
        let e = UExp::Ap(
            Box::new(UExp::Livelit(Box::new(LivelitAp {
                name: LivelitName::new("$inc"),
                model: IExp::Unit,
                splices: vec![],
                hole: HoleName(0),
            }))),
            Box::new(UExp::Int(41)),
        );
        let (expanded, ty, _) = expand_typed(&phi, &Ctx::empty(), &e).unwrap();
        assert_eq!(ty, Typ::Int);
        let (d, _, _) = hazel_lang::elab::elab_syn(&Ctx::empty(), &expanded).unwrap();
        assert_eq!(eval(&d).unwrap(), IExp::Int(42));
    }
}
