//! `livelit-core`: the typed livelit calculus of *Filling Typed Holes with
//! Live GUIs* (PLDI 2021) — the paper's primary contribution.
//!
//! Livelits are live graphical literals that fill typed holes. This crate
//! implements their semantics, independent of any GUI framework:
//!
//! - livelit definitions and contexts Φ with well-formedness (Def. 4.3)
//!   ([`def`]),
//! - the `Exp` reflection encoding `e ↓ d` / `d ↑ e` (Sec. 4.2.1) — both
//!   the string scheme ([`encoding`]) and the paper's sketched recursive-sum
//!   scheme ([`encoding_structural`]),
//! - typed macro expansion, rule `ELivelit` with all six premises and all
//!   client-facing failure modes (Fig. 5) ([`expansion`]),
//! - two-phase closure collection — cc-expansion, proto-environment
//!   collection, `fillΩ`, resumption (Sec. 4.3) — and incremental
//!   fill-and-resume result computation ([`cc`]),
//! - live splice evaluation under collected closures (Sec. 2.5) ([`live`]).
//!
//! # Example
//!
//! ```
//! use hazel_lang::build::*;
//! use hazel_lang::{HoleName, IExp, Typ, UExp, Var, LivelitAp, Splice};
//! use livelit_core::def::{LivelitCtx, LivelitDef};
//!
//! // A livelit with one Int splice that expands to `fun s -> s * 2`.
//! let mut phi = LivelitCtx::new();
//! phi.define(LivelitDef::native("$double", vec![], Typ::Int, Typ::Unit,
//!     |_model| Ok(lam("s", Typ::Int, mul(var("s"), int(2))))))?;
//!
//! // let x = 21 in $double(x)
//! let program = UExp::Let(
//!     Var::new("x"), None,
//!     Box::new(UExp::Int(21)),
//!     Box::new(UExp::Livelit(Box::new(LivelitAp {
//!         name: "$double".into(),
//!         model: IExp::Unit,
//!         splices: vec![Splice::new(UExp::Var(Var::new("x")), Typ::Int)],
//!         hole: HoleName(0),
//!     }))));
//!
//! // Collect closures, then compute the result by fill-and-resume.
//! let collection = livelit_core::cc::collect(&phi, &program)?;
//! assert_eq!(collection.resume_result()?, IExp::Int(42));
//! // The collected environment supports live splice evaluation: x = 21.
//! assert_eq!(collection.envs_for(HoleName(0))[0].get(&Var::new("x")),
//!            Some(&IExp::Int(21)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cc;
pub mod def;
pub mod encoding;
pub mod encoding_structural;
pub mod expansion;
pub mod live;
pub mod module;
pub mod par;

pub use cc::{collect, collect_with_fuel, Collection, Omega};
pub use def::{EncodingScheme, ExpandFn, ExpansionKey, LivelitCtx, LivelitDef};
pub use expansion::{expand, expand_typed, ExpandError};
pub use live::{eval_splice, eval_splice_in_env, eval_splices, LiveError, LiveResult, SpliceJob};
