//! Livelit definitions and livelit contexts Φ (Sec. 4.2.1).
//!
//! A livelit definition `livelit $a at τ_expand {τ_model; d_expand}`
//! comprises the livelit's name, its declared parameter types (Sec. 2.4.1),
//! its expansion type, its model type, and its expansion function. The
//! expansion function may be written *in the object language* (an internal
//! expression of type `τ_model → Exp`, as in the calculus) or *natively* in
//! Rust — mirroring Hazel's OCaml/JavaScript "primitive livelits"
//! (Sec. 5.1).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hazel_lang::external::EExp;
use hazel_lang::ident::LivelitName;
use hazel_lang::internal::IExp;
use hazel_lang::internal_typing::check_internal;
use hazel_lang::store::{TermId, TermStore};
use hazel_lang::typ::Typ;
use hazel_lang::typing::{Ctx, Delta, TypeError};

/// Which `Exp` reflection scheme an object-language expansion function
/// produces (Sec. 4.2.1: "any scheme is sufficient").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingScheme {
    /// Surface-syntax strings (`Exp = Str`); see [`crate::encoding`].
    Text,
    /// The recursive-sum encoding; see [`crate::encoding_structural`].
    Structural,
}

impl EncodingScheme {
    /// The object-language `Exp` type for this scheme.
    pub fn exp_typ(self) -> Typ {
        match self {
            EncodingScheme::Text => crate::encoding::exp_typ(),
            EncodingScheme::Structural => crate::encoding_structural::exp_typ(),
        }
    }
}

/// The signature of a native expansion function.
pub type NativeExpandFn = Arc<dyn Fn(&IExp) -> Result<EExp, String> + Send + Sync>;

/// The expansion function of a livelit definition.
#[derive(Clone)]
pub enum ExpandFn {
    /// `d_expand` in the calculus: a closed internal expression of type
    /// `τ_model → Exp`, evaluated by the object-language evaluator and then
    /// decoded (premises 3–4 of `ELivelit`). The scheme selects which `Exp`
    /// encoding the function produces.
    Object(IExp, EncodingScheme),
    /// A native expansion function, trusted to return the parameterized
    /// expansion directly (it is still validated at every invocation site,
    /// premise 5 — Hazel likewise "does not statically check the definition
    /// of expand", Sec. 3.2.5).
    Native(NativeExpandFn),
}

impl fmt::Debug for ExpandFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandFn::Object(d, scheme) => f.debug_tuple("Object").field(d).field(scheme).finish(),
            ExpandFn::Native(_) => f.write_str("Native(<fn>)"),
        }
    }
}

/// Source of unique definition identities for the expansion cache.
static NEXT_DEF_ID: AtomicU64 = AtomicU64::new(1);

/// A livelit definition.
#[derive(Debug, Clone)]
pub struct LivelitDef {
    /// The livelit's name, `$a`.
    pub name: LivelitName,
    /// Declared parameter types, e.g. `(min : Int) (max : Int)` for
    /// `$slider`. Parameters are passed as the leading splices of every
    /// invocation ("parameters operate like splices", Sec. 2.4.1).
    pub param_tys: Vec<Typ>,
    /// The expansion type `τ_expand`.
    pub expansion_ty: Typ,
    /// The model type `τ_model`. Must be a first-order (serializable) type.
    pub model_ty: Typ,
    /// The expansion function.
    pub expand: ExpandFn,
    def_id: u64,
    attested_pure: bool,
    /// For native expansion functions that merely *host* an object-language
    /// expansion function (module-file livelits run theirs on a dedicated
    /// big stack), the hosted term — static evidence the purity analysis
    /// can inspect even though `expand` is an opaque closure.
    object_evidence: Option<Box<(IExp, EncodingScheme)>>,
}

impl LivelitDef {
    fn fresh_def_id() -> u64 {
        NEXT_DEF_ID.fetch_add(1, Ordering::Relaxed)
    }

    /// The identity of this definition, used to key the expansion cache.
    /// Clones share it; two definitions constructed separately never do,
    /// even when their names and fields are equal — so cache entries can
    /// never be served across a redefinition.
    pub fn def_id(&self) -> u64 {
        self.def_id
    }

    /// Whether the author of a *native* expansion function has attested
    /// that it is deterministic (same model and splice types ⇒ same
    /// expansion). Native functions are opaque to static purity analysis
    /// (LL06xx), so the attestation is the only way to discharge the
    /// dynamic LL0401 double-expansion check for them. Object-language
    /// expansion functions never need it: they are analyzed directly.
    pub fn attested_pure(&self) -> bool {
        self.attested_pure
    }

    /// Marks this definition's native expansion function as attested
    /// deterministic; see [`LivelitDef::attested_pure`].
    #[must_use]
    pub fn attest_pure(mut self) -> LivelitDef {
        self.attested_pure = true;
        self
    }

    /// The object-language expansion function this definition evaluates,
    /// if one is statically known: either the definition *is* an
    /// object-language definition, or its native function hosts one and
    /// recorded it via [`LivelitDef::with_object_evidence`].
    pub fn object_expand_fn(&self) -> Option<(&IExp, EncodingScheme)> {
        match &self.expand {
            ExpandFn::Object(d, scheme) => Some((d, *scheme)),
            ExpandFn::Native(_) => self
                .object_evidence
                .as_deref()
                .map(|(d, scheme)| (d, *scheme)),
        }
    }

    /// Records the object-language expansion function a native `expand`
    /// closure hosts, so static analysis can see through the closure; see
    /// [`LivelitDef::object_expand_fn`].
    #[must_use]
    pub fn with_object_evidence(mut self, d: IExp, scheme: EncodingScheme) -> LivelitDef {
        self.object_evidence = Some(Box::new((d, scheme)));
        self
    }
    /// Creates a definition with a native expansion function.
    pub fn native(
        name: impl Into<LivelitName>,
        param_tys: Vec<Typ>,
        expansion_ty: Typ,
        model_ty: Typ,
        expand: impl Fn(&IExp) -> Result<EExp, String> + Send + Sync + 'static,
    ) -> LivelitDef {
        LivelitDef {
            name: name.into(),
            param_tys,
            expansion_ty,
            model_ty,
            expand: ExpandFn::Native(Arc::new(expand)),
            def_id: LivelitDef::fresh_def_id(),
            attested_pure: false,
            object_evidence: None,
        }
    }

    /// Creates a definition with an object-language expansion function
    /// producing text-encoded expansions.
    pub fn object(
        name: impl Into<LivelitName>,
        param_tys: Vec<Typ>,
        expansion_ty: Typ,
        model_ty: Typ,
        d_expand: IExp,
    ) -> LivelitDef {
        LivelitDef {
            name: name.into(),
            param_tys,
            expansion_ty,
            model_ty,
            expand: ExpandFn::Object(d_expand, EncodingScheme::Text),
            def_id: LivelitDef::fresh_def_id(),
            attested_pure: false,
            object_evidence: None,
        }
    }

    /// Creates a definition with an object-language expansion function
    /// producing structurally encoded expansions (the recursive-sum `Exp`).
    pub fn object_structural(
        name: impl Into<LivelitName>,
        param_tys: Vec<Typ>,
        expansion_ty: Typ,
        model_ty: Typ,
        d_expand: IExp,
    ) -> LivelitDef {
        LivelitDef {
            name: name.into(),
            param_tys,
            expansion_ty,
            model_ty,
            expand: ExpandFn::Object(d_expand, EncodingScheme::Structural),
            def_id: LivelitDef::fresh_def_id(),
            attested_pure: false,
            object_evidence: None,
        }
    }

    /// Checks this definition's contribution to livelit context
    /// well-formedness (Def. 4.3): `⊢ d_expand : τ_model → Exp`.
    ///
    /// Native expansion functions are trusted at definition time (they are
    /// validated at each invocation site instead, exactly as Hazel treats
    /// `expand`, Sec. 3.2.5).
    ///
    /// # Errors
    ///
    /// Returns the type error for an ill-typed object-language expansion
    /// function.
    pub fn check_well_formed(&self) -> Result<(), TypeError> {
        match &self.expand {
            ExpandFn::Object(d, scheme) => check_internal(
                &Delta::empty(),
                &Ctx::empty(),
                d,
                &Typ::arrow(self.model_ty.clone(), scheme.exp_typ()),
            ),
            ExpandFn::Native(_) => Ok(()),
        }
    }

    /// The full splice type list for an invocation: parameters first, then
    /// `n_model_splices` model-managed splices of the given types.
    pub fn splice_typs<'a>(
        &'a self,
        model_splice_tys: impl IntoIterator<Item = &'a Typ>,
    ) -> Vec<&'a Typ> {
        self.param_tys.iter().chain(model_splice_tys).collect()
    }
}

/// One cached, validated parameterized expansion — the output of premises
/// 2–5 of `ELivelit` — plus the elaboration of that expansion, filled in
/// lazily the first time closure collection needs it.
#[derive(Debug, Clone)]
pub struct CachedExpansion {
    /// The closed, validated parameterized expansion.
    pub pexpansion: EExp,
    /// Its curried type `{τi}^(i<n) → τ_expand`.
    pub full_ty: Typ,
    /// The expansion type `τ_expand`.
    pub expansion_ty: Typ,
    /// `elab_syn` of the parameterized expansion, once computed.
    pub elab: Option<IExp>,
}

/// Cache key: definition identity, interned model, splice types — exactly
/// the inputs premises 2–5 of `ELivelit` read.
type CacheKey = (u64, TermId, Box<[Typ]>);

/// A reusable, pre-interned expansion-cache key. Computing one interns the
/// model exactly once; every follow-up cache operation in the same logical
/// invocation (lookup, insert, elaboration, analysis) reuses it instead of
/// re-interning. The key remembers the cache epoch it was minted in so a
/// wholesale eviction (which restarts model ids) can never let a stale
/// `TermId` alias a different model.
#[derive(Debug, Clone)]
pub struct ExpansionKey {
    key: CacheKey,
    epoch: u64,
}

#[derive(Debug, Default)]
struct ExpansionCacheInner {
    /// Interns models so the key carries a compact, hashable `TermId`
    /// (models contain floats, which the tree representation cannot hash).
    models: TermStore,
    map: HashMap<CacheKey, CachedExpansion>,
    /// Bumped on every wholesale eviction; invalidates outstanding
    /// [`ExpansionKey`]s minted against the cleared model store.
    epoch: u64,
}

/// Bound on cached expansions; on overflow the cache is cleared wholesale
/// (the same epoch-style eviction the term store uses for its subst memo).
const EXPANSION_CACHE_CAP: usize = 1024;

/// A shared memo of validated livelit expansions. Clones share storage, so
/// every Φ derived from the same registry serves hits across engine runs;
/// only successes are cached, so failing invocations re-run all premises
/// and report the same error every time.
#[derive(Debug, Clone, Default)]
pub struct ExpansionCache {
    inner: Arc<Mutex<ExpansionCacheInner>>,
}

impl ExpansionCache {
    /// Mints the `(def_id, interned model, splice types)` key for one
    /// logical invocation. The model is interned exactly once here;
    /// thread the returned key through every keyed operation instead of
    /// repeating the `(def_id, model, tys)` triple.
    pub fn make_key(&self, def_id: u64, model: &IExp, tys: &[Typ]) -> ExpansionKey {
        let mut inner = self.inner.lock().expect("expansion cache poisoned");
        let model_id = inner.models.intern_iexp(model);
        ExpansionKey {
            key: (def_id, model_id, tys.to_vec().into_boxed_slice()),
            epoch: inner.epoch,
        }
    }

    /// Looks up a validated expansion, counting a hit or a miss.
    pub fn lookup(&self, key: &ExpansionKey) -> Option<CachedExpansion> {
        let inner = self.inner.lock().expect("expansion cache poisoned");
        let found = if key.epoch == inner.epoch {
            inner.map.get(&key.key).cloned()
        } else {
            None
        };
        livelit_trace::count(
            if found.is_some() {
                livelit_trace::Counter::ExpansionCacheHits
            } else {
                livelit_trace::Counter::ExpansionCacheMisses
            },
            1,
        );
        found
    }

    /// Like [`ExpansionCache::lookup`] but without hit/miss accounting —
    /// for follow-up reads that are part of the same logical lookup.
    pub fn peek(&self, key: &ExpansionKey) -> Option<CachedExpansion> {
        let inner = self.inner.lock().expect("expansion cache poisoned");
        if key.epoch == inner.epoch {
            inner.map.get(&key.key).cloned()
        } else {
            None
        }
    }

    /// Caches a validated expansion.
    pub fn insert(&self, key: &ExpansionKey, entry: CachedExpansion) {
        let mut inner = self.inner.lock().expect("expansion cache poisoned");
        if inner.map.len() >= EXPANSION_CACHE_CAP {
            // Clearing the model store restarts ids, so the map (whose keys
            // embed them) must go in the same breath; bumping the epoch
            // retires every outstanding key minted against the old store.
            inner.map.clear();
            inner.models = TermStore::new();
            inner.epoch += 1;
        }
        if key.epoch == inner.epoch {
            inner.map.insert(key.key.clone(), entry);
        }
        // A stale-epoch key (minted just before the eviction above) is
        // dropped rather than re-interned: the next invocation simply
        // recomputes and caches under a fresh key.
    }

    /// Records the elaboration of an already-cached expansion.
    pub fn set_elab(&self, key: &ExpansionKey, d: &IExp) {
        let mut inner = self.inner.lock().expect("expansion cache poisoned");
        if key.epoch != inner.epoch {
            return;
        }
        if let Some(entry) = inner.map.get_mut(&key.key) {
            if entry.elab.is_none() {
                entry.elab = Some(d.clone());
            }
        }
    }

    /// The number of cached expansions.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("expansion cache poisoned")
            .map
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A livelit context Φ: the set of livelit definitions in scope.
#[derive(Debug, Clone, Default)]
pub struct LivelitCtx {
    defs: BTreeMap<LivelitName, LivelitDef>,
    cache: ExpansionCache,
}

impl LivelitCtx {
    /// The empty livelit context.
    pub fn new() -> LivelitCtx {
        LivelitCtx::default()
    }

    /// Adds a definition, checking well-formedness (Def. 4.3).
    ///
    /// # Errors
    ///
    /// Returns the type error if the definition's object-language expansion
    /// function is ill-typed.
    pub fn define(&mut self, def: LivelitDef) -> Result<(), TypeError> {
        def.check_well_formed()?;
        self.defs.insert(def.name.clone(), def);
        Ok(())
    }

    /// Looks up a livelit by name (premise 1 of `ELivelit`).
    pub fn get(&self, name: &LivelitName) -> Option<&LivelitDef> {
        self.defs.get(name)
    }

    /// The expansion cache shared by this context and its clones.
    pub fn expansion_cache(&self) -> &ExpansionCache {
        &self.cache
    }

    /// Iterates over definitions in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&LivelitName, &LivelitDef)> {
        self.defs.iter()
    }

    /// The number of definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the context is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::encode;
    use hazel_lang::build;
    use hazel_lang::ident::Var;

    fn color_ty() -> Typ {
        Typ::prod([
            (hazel_lang::Label::new("r"), Typ::Int),
            (hazel_lang::Label::new("g"), Typ::Int),
            (hazel_lang::Label::new("b"), Typ::Int),
            (hazel_lang::Label::new("a"), Typ::Int),
        ])
    }

    #[test]
    fn native_definition_is_well_formed() {
        let def = LivelitDef::native("$color", vec![], color_ty(), Typ::Unit, |_| {
            Ok(build::int(0))
        });
        assert!(def.check_well_formed().is_ok());
    }

    #[test]
    fn object_definition_checked_against_model_to_exp() {
        // fun m : Unit -> "42"  — a constant expansion function.
        let good = LivelitDef::object(
            "$answer",
            vec![],
            Typ::Int,
            Typ::Unit,
            IExp::Lam(Var::new("m"), Typ::Unit, Box::new(encode(&build::int(42)))),
        );
        assert!(good.check_well_formed().is_ok());

        // fun m : Unit -> 42  — returns Int, not Exp.
        let bad = LivelitDef::object(
            "$broken",
            vec![],
            Typ::Int,
            Typ::Unit,
            IExp::Lam(Var::new("m"), Typ::Unit, Box::new(IExp::Int(42))),
        );
        assert!(bad.check_well_formed().is_err());
    }

    #[test]
    fn context_define_and_lookup() {
        let mut phi = LivelitCtx::new();
        phi.define(LivelitDef::native(
            "$slider",
            vec![Typ::Int, Typ::Int],
            Typ::Int,
            Typ::Unit,
            |_| Ok(build::int(0)),
        ))
        .unwrap();
        assert_eq!(phi.len(), 1);
        let def = phi.get(&LivelitName::new("slider")).expect("defined");
        assert_eq!(def.param_tys.len(), 2);
        assert!(phi.get(&LivelitName::new("nope")).is_none());
    }

    #[test]
    fn ill_formed_definition_rejected_by_context() {
        let mut phi = LivelitCtx::new();
        let bad = LivelitDef::object(
            "$broken",
            vec![],
            Typ::Int,
            Typ::Unit,
            IExp::Int(3), // not a function at all
        );
        assert!(phi.define(bad).is_err());
        assert!(phi.is_empty());
    }
}
