//! The structural `Exp` encoding: the paper's sketched alternative scheme.
//!
//! "The simplest approach is to define Exp as a recursive sum type, with
//! one arm for each form of external expression (cf. [Wyvern TSLs])."
//! (Sec. 4.2.1.) This module implements exactly that: [`exp_typ`] is an
//! iso-recursive sum with one arm per [`EExp`] form, and encode/decode
//! mediate the isomorphism through `roll`/`inj` values. Types occurring in
//! annotations are carried as their surface syntax (type-level reflection
//! is orthogonal to the expression encoding).
//!
//! The string scheme in [`crate::encoding`] remains the default — it keeps
//! object-language expansion functions writable with just `^` — but this
//! scheme lets them *pattern-match* on expansions, exercises the recursive
//! types of the calculus at scale, and is benchmarked against the string
//! scheme in the `encoding` bench (ablation for the DESIGN.md decision).

use hazel_lang::external::{CaseArm, EExp};
use hazel_lang::ident::{HoleName, Label, TVar, Var};
use hazel_lang::internal::IExp;
use hazel_lang::ops::BinOp;
use hazel_lang::parse::parse_typ;
use hazel_lang::typ::Typ;
use hazel_lang::value::iv;

use crate::encoding::DecodeError;

/// The arm labels of the `Exp` sum, with their payload *shapes*.
const T: &str = "e";

fn tvar() -> Typ {
    Typ::Var(TVar::new(T))
}

fn arm_payloads() -> Vec<(Label, Typ)> {
    let t = tvar();
    let s = Typ::Str;
    vec![
        (Label::new("EVar"), s.clone()),
        // (var, annotation type as surface syntax, body)
        (
            Label::new("ELam"),
            Typ::tuple([s.clone(), s.clone(), t.clone()]),
        ),
        (Label::new("EAp"), Typ::tuple([t.clone(), t.clone()])),
        // (var, annotation or "" for none, def, body)
        (
            Label::new("ELet"),
            Typ::tuple([s.clone(), s.clone(), t.clone(), t.clone()]),
        ),
        (
            Label::new("EFix"),
            Typ::tuple([s.clone(), s.clone(), t.clone()]),
        ),
        (Label::new("EInt"), Typ::Int),
        (Label::new("EFloat"), Typ::Float),
        (Label::new("EBool"), Typ::Bool),
        (Label::new("EStr"), s.clone()),
        (Label::new("EUnit"), Typ::Unit),
        // (operator symbol, lhs, rhs)
        (
            Label::new("EBin"),
            Typ::tuple([s.clone(), t.clone(), t.clone()]),
        ),
        (
            Label::new("EIf"),
            Typ::tuple([t.clone(), t.clone(), t.clone()]),
        ),
        // fields: list of (label, subexpression)
        (
            Label::new("ETuple"),
            Typ::list(Typ::tuple([s.clone(), t.clone()])),
        ),
        (Label::new("EProj"), Typ::tuple([t.clone(), s.clone()])),
        // (sum type as syntax, arm label, payload)
        (
            Label::new("EInj"),
            Typ::tuple([s.clone(), s.clone(), t.clone()]),
        ),
        // (scrutinee, arms: list of (label, var, body))
        (
            Label::new("ECase"),
            Typ::tuple([
                t.clone(),
                Typ::list(Typ::tuple([s.clone(), s.clone(), t.clone()])),
            ]),
        ),
        (Label::new("ENil"), s.clone()),
        (Label::new("ECons"), Typ::tuple([t.clone(), t.clone()])),
        (
            Label::new("ELCase"),
            Typ::tuple([t.clone(), t.clone(), s.clone(), s.clone(), t.clone()]),
        ),
        (Label::new("ERoll"), Typ::tuple([s.clone(), t.clone()])),
        (Label::new("EUnroll"), t.clone()),
        (Label::new("EAsc"), Typ::tuple([t.clone(), s.clone()])),
        (Label::new("EHole"), Typ::Int),
        (Label::new("ENEHole"), Typ::tuple([Typ::Int, t])),
    ]
}

/// The structural `Exp` type: `μe. [.EVar Str | .ELam (Str, Str, 'e) | ...]`
/// — one arm per external expression form.
///
/// The type (and its one-step unrolling) appear at every `roll`/`inj` node
/// of an encoding, so both are constructed once and cloned from a cache.
pub fn exp_typ() -> Typ {
    static CACHE: std::sync::OnceLock<Typ> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| Typ::rec(T, Typ::Sum(arm_payloads())))
        .clone()
}

fn unrolled_exp_typ() -> Typ {
    static CACHE: std::sync::OnceLock<Typ> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| exp_typ().unroll().expect("exp_typ is recursive"))
        .clone()
}

fn field_list_typ() -> Typ {
    static CACHE: std::sync::OnceLock<Typ> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| Typ::tuple([Typ::Str, exp_typ()]))
        .clone()
}

fn case_arm_list_typ() -> Typ {
    static CACHE: std::sync::OnceLock<Typ> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(|| Typ::tuple([Typ::Str, Typ::Str, exp_typ()]))
        .clone()
}

fn inj(label: &str, payload: IExp) -> IExp {
    IExp::Roll(
        exp_typ(),
        Box::new(IExp::Inj(
            unrolled_exp_typ(),
            Label::new(label),
            Box::new(payload),
        )),
    )
}

fn typ_str(t: &Typ) -> IExp {
    IExp::Str(t.to_string())
}

/// The encoding judgement `e ↓ d` for the structural scheme.
pub fn encode(e: &EExp) -> IExp {
    match e {
        EExp::Var(x) => inj("EVar", IExp::Str(x.as_str().into())),
        EExp::Lam(x, t, b) => inj(
            "ELam",
            iv::tuple([IExp::Str(x.as_str().into()), typ_str(t), encode(b)]),
        ),
        EExp::Ap(a, b) => inj("EAp", iv::tuple([encode(a), encode(b)])),
        EExp::Let(x, ann, a, b) => inj(
            "ELet",
            iv::tuple([
                IExp::Str(x.as_str().into()),
                IExp::Str(ann.as_ref().map(Typ::to_string).unwrap_or_default()),
                encode(a),
                encode(b),
            ]),
        ),
        EExp::Fix(x, t, b) => inj(
            "EFix",
            iv::tuple([IExp::Str(x.as_str().into()), typ_str(t), encode(b)]),
        ),
        EExp::Int(n) => inj("EInt", IExp::Int(*n)),
        EExp::Float(x) => inj("EFloat", IExp::Float(*x)),
        EExp::Bool(b) => inj("EBool", IExp::Bool(*b)),
        EExp::Str(s) => inj("EStr", IExp::Str(s.clone())),
        EExp::Unit => inj("EUnit", IExp::Unit),
        EExp::Bin(op, a, b) => inj(
            "EBin",
            iv::tuple([IExp::Str(op.symbol().into()), encode(a), encode(b)]),
        ),
        EExp::If(c, t, e2) => inj("EIf", iv::tuple([encode(c), encode(t), encode(e2)])),
        EExp::Tuple(fields) => inj(
            "ETuple",
            iv::list(
                field_list_typ(),
                fields
                    .iter()
                    .map(|(l, fe)| iv::tuple([IExp::Str(l.as_str().into()), encode(fe)])),
            ),
        ),
        EExp::Proj(e2, l) => inj(
            "EProj",
            iv::tuple([encode(e2), IExp::Str(l.as_str().into())]),
        ),
        EExp::Inj(t, l, e2) => inj(
            "EInj",
            iv::tuple([typ_str(t), IExp::Str(l.as_str().into()), encode(e2)]),
        ),
        EExp::Case(scrut, arms) => inj(
            "ECase",
            iv::tuple([
                encode(scrut),
                iv::list(
                    case_arm_list_typ(),
                    arms.iter().map(|arm| {
                        iv::tuple([
                            IExp::Str(arm.label.as_str().into()),
                            IExp::Str(arm.var.as_str().into()),
                            encode(&arm.body),
                        ])
                    }),
                ),
            ]),
        ),
        EExp::Nil(t) => inj("ENil", typ_str(t)),
        EExp::Cons(a, b) => inj("ECons", iv::tuple([encode(a), encode(b)])),
        EExp::ListCase(scrut, nil, h, t, cons) => inj(
            "ELCase",
            iv::tuple([
                encode(scrut),
                encode(nil),
                IExp::Str(h.as_str().into()),
                IExp::Str(t.as_str().into()),
                encode(cons),
            ]),
        ),
        EExp::Roll(t, e2) => inj("ERoll", iv::tuple([typ_str(t), encode(e2)])),
        EExp::Unroll(e2) => inj("EUnroll", encode(e2)),
        EExp::Asc(e2, t) => inj("EAsc", iv::tuple([encode(e2), typ_str(t)])),
        EExp::EmptyHole(u) => inj("EHole", IExp::Int(u.0 as i64)),
        EExp::NonEmptyHole(u, e2) => inj("ENEHole", iv::tuple([IExp::Int(u.0 as i64), encode(e2)])),
    }
}

fn bad() -> DecodeError {
    DecodeError::NotAnEncoding
}

fn get_str(d: &IExp) -> Result<String, DecodeError> {
    d.as_str().map(str::to_owned).ok_or_else(bad)
}

fn get_typ(d: &IExp) -> Result<Typ, DecodeError> {
    let src = get_str(d)?;
    parse_typ(&src).map_err(DecodeError::Malformed)
}

fn field(d: &IExp, i: usize) -> Result<&IExp, DecodeError> {
    d.field(&Label::positional(i)).ok_or_else(bad)
}

fn get_hole(d: &IExp) -> Result<HoleName, DecodeError> {
    match d.as_int() {
        Some(n) if n >= 0 => Ok(HoleName(n as u64)),
        _ => Err(bad()),
    }
}

/// The decoding judgement `d ↑ e` for the structural scheme.
///
/// # Errors
///
/// Returns [`DecodeError`] if `d` is not a value of the [`exp_typ`] shape.
pub fn decode(d: &IExp) -> Result<EExp, DecodeError> {
    let IExp::Roll(_, inner) = d else {
        return Err(bad());
    };
    let IExp::Inj(_, label, payload) = inner.as_ref() else {
        return Err(bad());
    };
    let p = payload.as_ref();
    Ok(match label.as_str() {
        "EVar" => EExp::Var(Var::new(get_str(p)?)),
        "ELam" => EExp::Lam(
            Var::new(get_str(field(p, 0)?)?),
            get_typ(field(p, 1)?)?,
            Box::new(decode(field(p, 2)?)?),
        ),
        "EAp" => EExp::Ap(
            Box::new(decode(field(p, 0)?)?),
            Box::new(decode(field(p, 1)?)?),
        ),
        "ELet" => {
            let ann_src = get_str(field(p, 1)?)?;
            let ann = if ann_src.is_empty() {
                None
            } else {
                Some(parse_typ(&ann_src).map_err(DecodeError::Malformed)?)
            };
            EExp::Let(
                Var::new(get_str(field(p, 0)?)?),
                ann,
                Box::new(decode(field(p, 2)?)?),
                Box::new(decode(field(p, 3)?)?),
            )
        }
        "EFix" => EExp::Fix(
            Var::new(get_str(field(p, 0)?)?),
            get_typ(field(p, 1)?)?,
            Box::new(decode(field(p, 2)?)?),
        ),
        "EInt" => EExp::Int(p.as_int().ok_or_else(bad)?),
        "EFloat" => EExp::Float(p.as_float().ok_or_else(bad)?),
        "EBool" => EExp::Bool(p.as_bool().ok_or_else(bad)?),
        "EStr" => EExp::Str(get_str(p)?),
        "EUnit" => EExp::Unit,
        "EBin" => {
            let symbol = get_str(field(p, 0)?)?;
            let op = BinOp::ALL
                .into_iter()
                .find(|op| op.symbol() == symbol)
                .ok_or_else(bad)?;
            EExp::Bin(
                op,
                Box::new(decode(field(p, 1)?)?),
                Box::new(decode(field(p, 2)?)?),
            )
        }
        "EIf" => EExp::If(
            Box::new(decode(field(p, 0)?)?),
            Box::new(decode(field(p, 1)?)?),
            Box::new(decode(field(p, 2)?)?),
        ),
        "ETuple" => EExp::Tuple(
            p.list_elements()
                .ok_or_else(bad)?
                .iter()
                .map(|pair| {
                    Ok((
                        Label::new(get_str(field(pair, 0)?)?),
                        decode(field(pair, 1)?)?,
                    ))
                })
                .collect::<Result<_, DecodeError>>()?,
        ),
        "EProj" => EExp::Proj(
            Box::new(decode(field(p, 0)?)?),
            Label::new(get_str(field(p, 1)?)?),
        ),
        "EInj" => EExp::Inj(
            get_typ(field(p, 0)?)?,
            Label::new(get_str(field(p, 1)?)?),
            Box::new(decode(field(p, 2)?)?),
        ),
        "ECase" => EExp::Case(
            Box::new(decode(field(p, 0)?)?),
            field(p, 1)?
                .list_elements()
                .ok_or_else(bad)?
                .iter()
                .map(|arm| {
                    Ok(CaseArm {
                        label: Label::new(get_str(field(arm, 0)?)?),
                        var: Var::new(get_str(field(arm, 1)?)?),
                        body: decode(field(arm, 2)?)?,
                    })
                })
                .collect::<Result<_, DecodeError>>()?,
        ),
        "ENil" => EExp::Nil(get_typ(p)?),
        "ECons" => EExp::Cons(
            Box::new(decode(field(p, 0)?)?),
            Box::new(decode(field(p, 1)?)?),
        ),
        "ELCase" => EExp::ListCase(
            Box::new(decode(field(p, 0)?)?),
            Box::new(decode(field(p, 1)?)?),
            Var::new(get_str(field(p, 2)?)?),
            Var::new(get_str(field(p, 3)?)?),
            Box::new(decode(field(p, 4)?)?),
        ),
        "ERoll" => EExp::Roll(get_typ(field(p, 0)?)?, Box::new(decode(field(p, 1)?)?)),
        "EUnroll" => EExp::Unroll(Box::new(decode(p)?)),
        "EAsc" => EExp::Asc(Box::new(decode(field(p, 0)?)?), get_typ(field(p, 1)?)?),
        "EHole" => EExp::EmptyHole(get_hole(p)?),
        "ENEHole" => EExp::NonEmptyHole(get_hole(field(p, 0)?)?, Box::new(decode(field(p, 1)?)?)),
        _ => return Err(bad()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::build::*;
    use hazel_lang::value::value_has_typ;

    fn samples() -> Vec<EExp> {
        vec![
            int(42),
            float(-2.5),
            string("hi"),
            unit(),
            var("x"),
            lams(
                [("r", Typ::Int), ("g", Typ::Int)],
                record([("r", var("r")), ("g", var("g"))]),
            ),
            elet_ty("x", Typ::Int, hole(3), add(var("x"), int(1))),
            ite(boolean(true), int(1), int(2)),
            case(
                hazel_lang::build::inj(
                    Typ::sum([
                        (Label::new("Some"), Typ::Int),
                        (Label::new("None"), Typ::Unit),
                    ]),
                    "Some",
                    int(5),
                ),
                [("Some", "n", var("n")), ("None", "w", int(0))],
            ),
            list(Typ::Float, [float(1.0), float(2.0)]),
            lcase(nil(Typ::Int), int(0), "h", "t", var("h")),
            asc(hole(9), Typ::Bool),
            EExp::NonEmptyHole(HoleName(7), Box::new(boolean(true))),
            bin(BinOp::Concat, string("a"), string("b")),
        ]
    }

    #[test]
    fn roundtrip_on_samples() {
        for e in samples() {
            let d = encode(&e);
            assert_eq!(decode(&d).as_ref(), Ok(&e), "roundtrip failed for {e:?}");
        }
    }

    #[test]
    fn encodings_inhabit_the_recursive_sum() {
        let ty = exp_typ();
        for e in samples() {
            let d = encode(&e);
            assert!(
                value_has_typ(&d, &ty),
                "encoding of {e:?} is not a value of μe.[...]"
            );
        }
    }

    #[test]
    fn exp_typ_is_closed_and_recursive() {
        let ty = exp_typ();
        assert!(ty.is_closed());
        assert!(matches!(ty, Typ::Rec(..)));
        // One arm per external expression form (24).
        let unrolled = ty.unroll().unwrap();
        match unrolled {
            Typ::Sum(arms) => assert_eq!(arms.len(), 24),
            other => panic!("expected sum, got {other}"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&IExp::Int(3)).is_err());
        assert!(decode(&super::inj("ENoSuchArm", IExp::Unit)).is_err());
        // Wrong payload shape.
        assert!(decode(&super::inj("EInt", IExp::Bool(true))).is_err());
    }

    #[test]
    fn agrees_with_string_scheme() {
        // Both schemes mediate the same isomorphism.
        for e in samples() {
            let via_structural = decode(&encode(&e)).unwrap();
            let via_string = crate::encoding::decode(&crate::encoding::encode(&e)).unwrap();
            assert_eq!(via_structural, via_string);
        }
    }
}
