//! The `Exp` reflection encoding: `e ↓ d` and `d ↑ e` (Sec. 4.2.1).
//!
//! Livelit expansion functions have type `τ_model → Exp`, where `Exp` is "a
//! type whose values isomorphically encode external expressions. ... Any
//! scheme is sufficient, so we leave it as a matter of implementation."
//!
//! Our scheme encodes an external expression as its canonical surface-syntax
//! string: `Exp = Str` in the object language. The isomorphism is mediated
//! by the pretty printer (encoding) and the parser (decoding), both from
//! `hazel-lang`; the round-trip property is tested here and under proptest
//! in the integration suite. The alternative structural scheme (a recursive
//! sum with one arm per expression form, cf. Wyvern TSLs) is sketched in
//! DESIGN.md; the string scheme was chosen because it keeps object-language
//! expansion functions writable with the string primitives the core
//! language already has (`^` concatenation).

use hazel_lang::external::EExp;
use hazel_lang::internal::IExp;
use hazel_lang::parse::{parse_eexp, ParseError};
use hazel_lang::pretty::print_eexp;
use hazel_lang::typ::Typ;

/// The object-language type of encoded external expressions.
///
/// `Def. 4.3` (livelit context well-formedness) checks expansion functions
/// against `τ_model → Exp` with this `Exp`.
pub fn exp_typ() -> Typ {
    Typ::Str
}

/// The encoding judgement `e ↓ d`: encodes an external expression as an
/// internal value of type [`exp_typ`].
pub fn encode(e: &EExp) -> IExp {
    IExp::Str(print_eexp(e, usize::MAX))
}

/// A decoding failure: the alleged encoding was not a string or did not
/// parse.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// The encoded value was not a string value of type `Exp`.
    NotAnEncoding,
    /// The encoded string failed to parse as an external expression.
    Malformed(ParseError),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::NotAnEncoding => write!(f, "encoded expansion is not a string value"),
            DecodeError::Malformed(e) => write!(f, "encoded expansion failed to decode: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The decoding judgement `d ↑ e`: decodes an internal value back to the
/// external expression it encodes.
///
/// The paper notes "the isomorphism between encodings and external
/// expressions ensures that decoding cannot fail" — for values *produced by*
/// [`encode`]. Native and object-language expansion functions can produce
/// arbitrary strings, so decoding is fallible here and a decode failure is
/// reported as an expansion failure (a non-empty hole in Hazel, Sec. 5.1).
///
/// # Errors
///
/// Returns [`DecodeError`] if `d` is not a string or does not parse.
pub fn decode(d: &IExp) -> Result<EExp, DecodeError> {
    match d {
        IExp::Str(src) => parse_eexp(src).map_err(DecodeError::Malformed),
        _ => Err(DecodeError::NotAnEncoding),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::build::*;
    use hazel_lang::typ::Typ;

    #[test]
    fn encode_decode_roundtrip() {
        let samples = [
            int(42),
            lams(
                [
                    ("r", Typ::Int),
                    ("g", Typ::Int),
                    ("b", Typ::Int),
                    ("a", Typ::Int),
                ],
                tuple([var("r"), var("g"), var("b"), var("a")]),
            ),
            elet("x", float(1.5), fadd(var("x"), float(2.0))),
            record([("r", int(57)), ("g", int(107))]),
            list(Typ::Float, [float(1.0), float(2.0)]),
        ];
        for e in &samples {
            let d = encode(e);
            assert_eq!(decode(&d).as_ref(), Ok(e), "roundtrip failed for {e:?}");
        }
    }

    #[test]
    fn encoding_has_exp_typ() {
        let d = encode(&int(1));
        assert!(hazel_lang::value::value_has_typ(&d, &exp_typ()));
    }

    #[test]
    fn decode_rejects_non_strings() {
        assert_eq!(decode(&IExp::Int(3)), Err(DecodeError::NotAnEncoding));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            decode(&IExp::Str("fun fun fun".into())),
            Err(DecodeError::Malformed(_))
        ));
    }
}
