//! The splice-result cache must degrade gradually at capacity: the old
//! epoch scheme cleared the whole map, so every splice in the working set
//! missed at once right after a clear (a periodic latency cliff in long
//! drag sessions). The generational scheme retires one generation at a
//! time and promotes hot entries, and reports retirements through the
//! `SpliceCacheEvictions` counter.
//!
//! Lives in its own integration-test binary because it asserts on
//! process-global trace counters.

use hazel_lang::store::TermId;
use livelit_core::cc::{CachedSplice, SpliceCache, SPLICE_CACHE_CAP};
use livelit_trace::{install, Counter, StatsSink, Tracer};

fn key(i: usize) -> (TermId, u32) {
    (TermId(u32::try_from(i).unwrap()), 0)
}

#[test]
fn rotation_keeps_recent_entries_and_counts_evictions() {
    let sink = StatsSink::new();
    let tracer = Tracer::deterministic(sink.clone());
    let _session = install(&tracer);

    let mut cache = SpliceCache::default();
    let hot = key(0);

    // Fill the live generation exactly to capacity.
    for i in 0..SPLICE_CACHE_CAP {
        cache.insert(key(i), CachedSplice::NotClosed);
    }
    assert_eq!(cache.len(), SPLICE_CACHE_CAP);
    assert_eq!(sink.snapshot().counter(Counter::SpliceCacheEvictions), 0);

    // The insert past capacity rotates: the full generation is demoted,
    // not dropped — every prior entry is still retrievable, so there is
    // no full-cache stall. Nothing has been evicted yet (the retired
    // previous generation was empty).
    cache.insert(key(SPLICE_CACHE_CAP), CachedSplice::NotClosed);
    assert_eq!(sink.snapshot().counter(Counter::SpliceCacheEvictions), 0);
    for i in 0..=SPLICE_CACHE_CAP {
        assert!(cache.peek(&key(i)).is_some(), "entry {i} lost at rotation");
    }

    // A lookup promotes the hot entry into the live generation...
    assert!(cache.lookup(&hot).is_some());

    // ...so it survives the *next* rotation, which retires the rest of
    // the demoted generation and finally counts evictions.
    for i in 0..SPLICE_CACHE_CAP {
        cache.insert(key(SPLICE_CACHE_CAP + 1 + i), CachedSplice::NotClosed);
    }
    let evicted = sink.snapshot().counter(Counter::SpliceCacheEvictions);
    assert!(
        evicted > 0 && evicted < 2 * SPLICE_CACHE_CAP as u64,
        "one generation retired, not the whole cache (evicted {evicted})"
    );
    assert!(cache.peek(&hot).is_some(), "promoted hot entry survived");
    // An entry never touched since the first generation is gone.
    assert!(cache.peek(&key(1)).is_none(), "cold entry was retired");
}
