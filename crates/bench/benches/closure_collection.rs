//! B2 — Closure collection cost (Sec. 4.3.1): proto-environment collection
//! plus resumption, scaling in the number of livelits and in the size of
//! the environment at the invocation site.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use livelit_bench::{bench_phi, deep_scope_invocation, many_invocations};

fn bench_livelit_count(c: &mut Criterion) {
    let phi = bench_phi(&[]);
    let mut group = c.benchmark_group("closure_collection/livelits");
    for n in [1usize, 4, 16, 64] {
        let program = many_invocations(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &program, |b, p| {
            b.iter(|| hazel::core::collect(&phi, p).expect("collects"));
        });
    }
    group.finish();
}

fn bench_env_size(c: &mut Criterion) {
    let phi = bench_phi(&[]);
    let mut group = c.benchmark_group("closure_collection/env_size");
    for n in [1usize, 16, 64, 256] {
        let program = deep_scope_invocation(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &program, |b, p| {
            b.iter(|| hazel::core::collect(&phi, p).expect("collects"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_livelit_count, bench_env_size
}
criterion_main!(benches);
