//! B9 — The `Exp` encoding isomorphism (Sec. 4.2.1): encode/decode
//! round-trip throughput versus program size, for both schemes — the
//! string scheme (default) and the recursive-sum structural scheme — as an
//! ablation of the DESIGN.md encoding decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use livelit_bench::sized_program;

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding");
    for target in [100usize, 1000, 5000] {
        let program = sized_program(11, target);
        let actual = program.size();
        let encoded = hazel::core::encoding::encode(&program);
        group.bench_with_input(BenchmarkId::new("encode", actual), &program, |b, p| {
            b.iter(|| hazel::core::encoding::encode(p));
        });
        group.bench_with_input(BenchmarkId::new("decode", actual), &encoded, |b, d| {
            b.iter(|| hazel::core::encoding::decode(d).expect("decodes"));
        });
        // Structural-scheme ablation at the small size only: without
        // hash-consing, structural encodings carry the (large) unrolled
        // recursive sum type at every node, so encoding is orders of
        // magnitude slower — the measured justification for the text
        // scheme being the default (see DESIGN.md and EXPERIMENTS.md B9).
        if target == 100 {
            let structural = hazel::core::encoding_structural::encode(&program);
            group.bench_with_input(
                BenchmarkId::new("encode_structural", actual),
                &program,
                |b, p| {
                    b.iter(|| hazel::core::encoding_structural::encode(p));
                },
            );
            group.bench_with_input(
                BenchmarkId::new("decode_structural", actual),
                &structural,
                |b, d| {
                    b.iter(|| hazel::core::encoding_structural::decode(d).expect("decodes"));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encoding
}
criterion_main!(benches);
