//! B8 — Multi-closure collection for the image-filter preset (Fig. 2):
//! closure-collection cost as the preset is mapped over more photos (one
//! closure per application), plus the cost of rendering the preview under
//! a selected closure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hazel::lang::parse::parse_uexp;
use hazel::prelude::*;

fn photo_program(n: usize) -> UExp {
    let urls: Vec<String> = (0..n).map(|i| format!("\"img://photo{i}\"")).collect();
    parse_uexp(&format!(
        "let classic_look = fun url : Str -> \
           $basic_adjustments@0{{(.contrast 1, .brightness 2)}}(\
             url : Str; 10 : Int; 5 : Int) in \
         let photos = [Str| {}] in \
         (fix go : (List(Str) -> List((.w Int, .h Int, .px List(Int)))) -> \
          fun urls : List(Str) -> \
          lcase urls \
          | [] -> [(.w Int, .h Int, .px List(Int))|] \
          | u :: rest -> classic_look u :: go rest \
          end) photos",
        urls.join(", ")
    ))
    .expect("parses")
}

fn bench_image_closures(c: &mut Criterion) {
    let mut registry = LivelitRegistry::new();
    hazel::std::register_all(&mut registry);
    let phi = registry.phi();

    let mut group = c.benchmark_group("image_closures");
    group.sample_size(10);
    for n in [1usize, 2, 4, 8] {
        let program = photo_program(n);
        group.bench_with_input(BenchmarkId::new("collect", n), &program, |b, p| {
            b.iter(|| {
                let collection = hazel::core::collect(&phi, p).expect("collects");
                assert_eq!(collection.envs_for(HoleName(0)).len(), n);
                collection
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_image_closures
}
criterion_main!(benches);
