//! B6 — Character-count layout (Sec. 5.3): pretty-printing cost versus
//! program size and width budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use livelit_bench::sized_program;

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout");
    for target in [100usize, 1000, 5000] {
        let program = sized_program(7, target);
        let actual = program.size();
        for width in [40usize, 120] {
            group.bench_with_input(
                BenchmarkId::new(format!("width{width}"), actual),
                &program,
                |b, p| {
                    b.iter(|| hazel::lang::pretty::print_eexp(p, width));
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_layout
}
criterion_main!(benches);
