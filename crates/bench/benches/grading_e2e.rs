//! B7 — Grading case study end-to-end (Fig. 1c): full edit-pipeline latency
//! (typed expansion, closure collection, fill-and-resume, view
//! recomputation) as the class grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hazel::lang::parse::parse_uexp;
use hazel::lang::value::iv;
use hazel::prelude::*;
use hazel::std::dataframe::DataframeModel;
use hazel::std::grading::grading_prelude;

fn grading_doc(students: usize) -> (LivelitRegistry, Document) {
    let mut registry = LivelitRegistry::new();
    hazel::std::register_all(&mut registry);
    let program = parse_uexp(
        "let grades = ?0 in \
         let averages = compute_weighted_averages grades [Float| 1., 1.] in \
         let cutoffs = (.A 86., .B 76., .C 67., .D 48.) in \
         format_for_university (assign_grades averages cutoffs)",
    )
    .expect("parses");
    let mut doc = Document::new(&registry, grading_prelude(), program).expect("doc");
    doc.fill_hole_with_livelit(&registry, HoleName(0), "$dataframe", vec![])
        .expect("fill");
    for _ in 0..2 {
        doc.dispatch(HoleName(0), &iv::record([("add_col", IExp::Unit)]))
            .expect("col");
    }
    for _ in 0..students {
        doc.dispatch(HoleName(0), &iv::record([("add_row", IExp::Unit)]))
            .expect("row");
    }
    let m = DataframeModel::from_value(doc.instance(HoleName(0)).unwrap().model()).expect("model");
    for (ri, (key, cells)) in m.rows.iter().enumerate() {
        doc.edit_splice(HoleName(0), *key, UExp::Str(format!("student{ri}")))
            .expect("key");
        for (ci, cell) in cells.iter().enumerate() {
            doc.edit_splice(
                HoleName(0),
                *cell,
                UExp::Float(50.0 + ((ri * 7 + ci * 13) % 50) as f64),
            )
            .expect("cell");
        }
    }
    (registry, doc)
}

fn bench_grading(c: &mut Criterion) {
    let mut group = c.benchmark_group("grading_e2e");
    group.sample_size(10);
    for students in [5usize, 20, 50] {
        let (registry, doc) = grading_doc(students);
        group.bench_with_input(BenchmarkId::from_parameter(students), &students, |b, _| {
            b.iter(|| hazel::editor::run(&registry, &doc).expect("pipeline"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_grading
}
criterion_main!(benches);
