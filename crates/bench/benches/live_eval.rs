//! B4 — Live splice evaluation latency (Secs. 2.5, 3.2.3): `eval_splice`
//! under closures of growing environment size — the per-keystroke cost a
//! livelit view pays for liveness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hazel::prelude::*;
use livelit_bench::{bench_phi, deep_scope_invocation};

fn bench_live_eval(c: &mut Criterion) {
    let phi = bench_phi(&[]);
    let mut group = c.benchmark_group("live_eval/env_size");
    for n in [1usize, 16, 64, 256] {
        let program = deep_scope_invocation(n);
        let collection = hazel::core::collect(&phi, &program).expect("collects");
        let splice = UExp::Bin(
            BinOp::Add,
            Box::new(UExp::Var(Var::new(format!("x{}", n - 1)))),
            Box::new(UExp::Int(1)),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                hazel::core::eval_splice(&phi, &collection, HoleName(0), 0, &splice, &Typ::Int)
                    .expect("live eval")
                    .expect("closure available")
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_live_eval
}
criterion_main!(benches);
