//! B3 — Fill-and-resume vs. re-evaluation from scratch (Sec. 4.3.2): "If
//! the editor has already performed environment collection, then it can
//! simply continue from where it left off" — this bench quantifies the
//! saving as the pre-livelit computation grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use livelit_bench::{bench_phi, expensive_then_livelit};

fn bench_fill_resume(c: &mut Criterion) {
    let phi = bench_phi(&[]);
    let mut group = c.benchmark_group("fill_resume");
    for n in [100i64, 400, 1600] {
        let program = expensive_then_livelit(n);
        // The collection is done once per edit; resuming reuses it.
        let collection = hazel::core::collect(&phi, &program).expect("collects");
        group.bench_with_input(BenchmarkId::new("resume", n), &collection, |b, coll| {
            b.iter(|| coll.resume_result().expect("resumes"))
        });
        group.bench_with_input(BenchmarkId::new("full_reeval", n), &program, |b, p| {
            b.iter(|| hazel::core::cc::eval_full(&phi, p, 4_000_000).expect("evaluates"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(12);
    targets = bench_fill_resume
}
criterion_main!(benches);
