//! B1 — Typed livelit expansion cost (Sec. 4.2): scaling in the number of
//! invocations and in the number of splices per invocation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hazel::prelude::*;
use livelit_bench::{bench_phi, many_invocations, wide_invocation};

fn bench_invocations(c: &mut Criterion) {
    let phi = bench_phi(&[]);
    let mut group = c.benchmark_group("expansion/invocations");
    for n in [1usize, 4, 16, 64, 256] {
        let program = many_invocations(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &program, |b, p| {
            b.iter(|| expand_typed(&phi, &Ctx::empty(), p).expect("expands"));
        });
    }
    group.finish();
}

fn bench_splices(c: &mut Criterion) {
    let widths = [1usize, 4, 16, 64];
    let phi = bench_phi(&widths);
    let mut group = c.benchmark_group("expansion/splices");
    for k in widths {
        let program = wide_invocation(k, 0);
        group.bench_with_input(BenchmarkId::from_parameter(k), &program, |b, p| {
            b.iter(|| expand_typed(&phi, &Ctx::empty(), p).expect("expands"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_invocations, bench_splices
}
criterion_main!(benches);
