//! B5 — View diffing (Sec. 3.2.4): "the system then performs a diff between
//! the old and new view" — cost versus tree size and edit locality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use livelit_bench::{sized_view, sized_view_edited};

fn bench_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_diff");
    for n in [10usize, 100, 1000] {
        let old = sized_view(n);
        let same = old.clone();
        let edited = sized_view_edited(n, n / 2);
        group.bench_with_input(BenchmarkId::new("identical", n), &n, |b, _| {
            b.iter(|| hazel::mvu::diff(&old, &same));
        });
        group.bench_with_input(BenchmarkId::new("one_edit", n), &n, |b, _| {
            b.iter(|| hazel::mvu::diff(&old, &edited));
        });
        group.bench_with_input(BenchmarkId::new("apply_one_edit", n), &n, |b, _| {
            let patches = hazel::mvu::diff(&old, &edited);
            b.iter(|| hazel::mvu::apply(&old, &patches));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_diff
}
criterion_main!(benches);
