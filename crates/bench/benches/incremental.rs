//! B10 — Incremental engine vs. full pipeline on model-only edits
//! (Sec. 4.3.2 operationalized in the editor): the cost of one slider drag
//! as the surrounding program's evaluation work grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hazel::editor::IncrementalEngine;
use hazel::lang::parse::parse_uexp;
use hazel::lang::value::iv;
use hazel::prelude::*;

fn doc_with_work(n: i64) -> (LivelitRegistry, Document) {
    let mut registry = LivelitRegistry::new();
    hazel::std::register_all(&mut registry);
    let program = parse_uexp(&format!(
        "let v = $slider@0{{10}}(0 : Int; 100 : Int) in \
         let heavy = (fix go : (Int -> Int) -> fun k : Int -> \
            if k <= 0 then 0 else k + go (k - 1)) {n} in \
         v + heavy"
    ))
    .expect("parses");
    let doc = Document::new(&registry, vec![], program).expect("doc");
    (registry, doc)
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_drag");
    group.sample_size(10);
    for n in [100i64, 400, 1600] {
        let (registry, mut doc) = doc_with_work(n);
        // Warm the cache.
        let mut engine = IncrementalEngine::new();
        engine.run(&registry, &doc).expect("pipeline");

        let mut value = 10i64;
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                value = (value + 1) % 100;
                doc.dispatch(HoleName(0), &iv::record([("set", iv::int(value))]))
                    .expect("drag");
                let out = engine.run(&registry, &doc).expect("fast path");
                criterion::black_box(out.result.clone());
            });
        });

        let (registry, mut doc) = doc_with_work(n);
        group.bench_with_input(BenchmarkId::new("full", n), &n, |b, _| {
            b.iter(|| {
                value = (value + 1) % 100;
                doc.dispatch(HoleName(0), &iv::record([("set", iv::int(value))]))
                    .expect("drag");
                hazel::editor::run(&registry, &doc).expect("full pipeline")
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_incremental
}
criterion_main!(benches);
