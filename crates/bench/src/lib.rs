//! Workload builders shared by the benchmark harness (see EXPERIMENTS.md
//! for the experiment index B1–B13 the `livelit-bench` binary regenerates;
//! `livelit-bench --only Bn` runs a single experiment).

use hazel::lang::build;
use hazel::lang::unexpanded::{LivelitAp, Splice};
use hazel::prelude::*;

/// A livelit context with `$sum2` (two Int splices → their sum) and a
/// family of "wide" livelits `$wideK` with `K` Int splices.
pub fn bench_phi(widths: &[usize]) -> LivelitCtx {
    let mut phi = LivelitCtx::new();
    phi.define(LivelitDef::native(
        "$sum2",
        vec![],
        Typ::Int,
        Typ::Unit,
        |_| {
            Ok(build::lams(
                [("a", Typ::Int), ("b", Typ::Int)],
                build::add(build::var("a"), build::var("b")),
            ))
        },
    ))
    .expect("well-formed");
    for &k in widths {
        phi.define(LivelitDef::native(
            format!("$wide{k}"),
            vec![],
            Typ::Int,
            Typ::Unit,
            move |_| {
                let params: Vec<(String, Typ)> =
                    (0..k).map(|i| (format!("s{i}"), Typ::Int)).collect();
                let body = (1..k).fold(build::var("s0"), |acc, i| {
                    build::add(acc, build::var(&format!("s{i}")))
                });
                Ok(params
                    .into_iter()
                    .rev()
                    .fold(body, |acc, (x, t)| build::lam(&x, t, acc)))
            },
        ))
        .expect("well-formed");
    }
    phi
}

/// A `$sum2` invocation over two literal splices.
pub fn sum2_invocation(hole: u64) -> UExp {
    UExp::Livelit(Box::new(LivelitAp {
        name: LivelitName::new("$sum2"),
        model: IExp::Unit,
        splices: vec![
            Splice::new(UExp::Int(hole as i64), Typ::Int),
            Splice::new(UExp::Int(1), Typ::Int),
        ],
        hole: HoleName(hole),
    }))
}

/// A `$wideK` invocation with `k` literal splices.
pub fn wide_invocation(k: usize, hole: u64) -> UExp {
    UExp::Livelit(Box::new(LivelitAp {
        name: LivelitName::new(format!("$wide{k}")),
        model: IExp::Unit,
        splices: (0..k)
            .map(|i| Splice::new(UExp::Int(i as i64), Typ::Int))
            .collect(),
        hole: HoleName(hole),
    }))
}

/// A program with `n` livelit invocations summed together:
/// `$sum2(...) + $sum2(...) + ...`.
pub fn many_invocations(n: usize) -> UExp {
    (1..n).fold(sum2_invocation(0), |acc, i| {
        UExp::Bin(
            BinOp::Add,
            Box::new(acc),
            Box::new(sum2_invocation(i as u64)),
        )
    })
}

/// A program with `n` let bindings in scope at a single `$sum2` invocation
/// whose splice references the innermost binding — closure environments of
/// size `n`.
pub fn deep_scope_invocation(n: usize) -> UExp {
    let splice = Splice::new(UExp::Var(Var::new(format!("x{}", n - 1))), Typ::Int);
    let inv = UExp::Livelit(Box::new(LivelitAp {
        name: LivelitName::new("$sum2"),
        model: IExp::Unit,
        splices: vec![splice, Splice::new(UExp::Int(1), Typ::Int)],
        hole: HoleName(0),
    }));
    (0..n).rev().fold(inv, |acc, i| {
        UExp::Let(
            Var::new(format!("x{i}")),
            None,
            Box::new(UExp::Int(i as i64)),
            Box::new(acc),
        )
    })
}

/// A program that performs `n` units of real evaluation work (a recursive
/// sum from `n` down to 0) and then uses the result in a `$sum2` splice —
/// the workload where fill-and-resume (Sec. 4.3.2) pays off versus full
/// re-evaluation.
pub fn expensive_then_livelit(n: i64) -> UExp {
    use hazel::lang::parse::parse_uexp;
    let src = format!(
        "let rec sum_to : Int -> Int = fun k : Int -> \
           if k <= 0 then 0 else k + sum_to (k - 1) in \
         let heavy = sum_to {n} in \
         $sum2@0{{()}}(heavy : Int; 1 : Int)"
    );
    parse_uexp(&src).expect("workload parses")
}

/// The B12 workload: `n` independent summands, each an inner `$sum2`
/// invocation whose first splice performs `k` units of recursive work,
/// bound to a local and fed to an outer `$sum2` invocation.
///
/// Each outer hole's σ maps the local to the inner hole's closure, so
/// collecting its environment must fill and resume the inner invocation —
/// `k` evaluation steps per outer hole, `n` mutually independent
/// resumptions. This is exactly the per-(hole, closure) shape the
/// scheduler parallelizes during closure collection.
pub fn parallel_resume_program(n: usize, k: i64) -> UExp {
    use hazel::lang::parse::parse_uexp;
    let summands: Vec<String> = (0..n)
        .map(|i| {
            format!(
                "(let a = $sum2@{}{{()}}(sum_to {k} : Int; 1 : Int) in \
                 $sum2@{}{{()}}(a : Int; 1 : Int))",
                2 * i,
                2 * i + 1
            )
        })
        .collect();
    let src = format!(
        "let rec sum_to : Int -> Int = fun k : Int -> \
           if k <= 0 then 0 else k + sum_to (k - 1) in \
         {}",
        summands.join(" + ")
    );
    parse_uexp(&src).expect("workload parses")
}

/// A generated external expression of roughly the requested size, for
/// layout and encoding benchmarks.
pub fn sized_program(seed: u64, target_nodes: usize) -> EExp {
    use integration_tests::{Gen, GenConfig};
    let mut depth = 3;
    loop {
        let mut g = Gen::with_config(
            seed,
            GenConfig {
                exp_depth: depth,
                hole_pct: 0,
                livelit_pct: 0,
                typ_depth: 2,
            },
        );
        let (e, _) = g.eexp_program();
        if e.size() >= target_nodes || depth >= 10 {
            return e;
        }
        depth += 1;
    }
}

/// An internal expression with `n` nested redexes:
/// `(λx_n. x_n + (λx_{n-1}. x_{n-1} + (... 0 ...)) (n-1)) n`.
///
/// Each β-reduction substitutes into a body whose tail is the entire
/// remaining chain, so a tree-copying substitution does O(n) work per redex
/// — O(n²) total — while the term store's free-variable mask sees the tail
/// is closed and skips it, for O(n) total. This is the B11 workload.
pub fn deep_redex_chain(n: usize) -> IExp {
    (1..=n).fold(IExp::Int(0), |acc, i| {
        let x = Var::new(format!("x{i}"));
        IExp::Ap(
            Box::new(IExp::Lam(
                x.clone(),
                Typ::Int,
                Box::new(IExp::Bin(BinOp::Add, Box::new(IExp::Var(x)), Box::new(acc))),
            )),
            Box::new(IExp::Int(i as i64)),
        )
    })
}

/// An internal expression with `n` nested redexes whose bodies each bury
/// `k` occurrences of the bound variable under a branch that is never
/// taken: `(λx. x + (if x < 0 then x + x + ... + x else acc)) i`.
///
/// Substitution-based evaluators rewrite eagerly, so every β-step must
/// path-copy (and re-intern, for the store) the dead `k`-node payload —
/// O(n·k) work that produces nothing. The environment machine just binds
/// `x` in the live environment and never decodes the untaken branch, so
/// its cost is O(n) regardless of `k`. Every lambda binds the same
/// variable, which keeps the hash-consed input small: the payload interns
/// once and the whole term is O(n + k) distinct nodes. This is the B18
/// workload; the evaluated result is `Σ 1..=n`, as in [`deep_redex_chain`].
pub fn deep_guarded_chain(n: usize, k: usize) -> IExp {
    let x = Var::new("x");
    let payload = (1..k).fold(IExp::Var(x.clone()), |acc, _| {
        IExp::Bin(BinOp::Add, Box::new(IExp::Var(x.clone())), Box::new(acc))
    });
    (1..=n).fold(IExp::Int(0), |acc, i| {
        let dead = IExp::If(
            Box::new(IExp::Bin(
                BinOp::Lt,
                Box::new(IExp::Var(x.clone())),
                Box::new(IExp::Int(0)),
            )),
            Box::new(payload.clone()),
            Box::new(acc),
        );
        IExp::Ap(
            Box::new(IExp::Lam(
                x.clone(),
                Typ::Int,
                Box::new(IExp::Bin(
                    BinOp::Add,
                    Box::new(IExp::Var(x.clone())),
                    Box::new(dead),
                )),
            )),
            Box::new(IExp::Int(i as i64)),
        )
    })
}

/// A view tree with `n` leaf nodes for diff benchmarks.
pub fn sized_view(n: usize) -> hazel::mvu::Html<u32> {
    use hazel::mvu::html::tags::div;
    use hazel::mvu::Html;
    let rows: Vec<Html<u32>> = (0..n)
        .map(|i| {
            Html::node(
                "tr",
                vec![
                    Html::text(format!("cell-{i}")),
                    Html::text(format!("{}", i * 7 % 100)),
                ],
            )
        })
        .collect();
    div(rows)
}

/// `sized_view` with the text of row `edit` changed — a localized edit.
pub fn sized_view_edited(n: usize, edit: usize) -> hazel::mvu::Html<u32> {
    use hazel::mvu::Html;
    let mut view = sized_view(n);
    if let Html::Element { children, .. } = &mut view {
        if let Some(Html::Element { children: row, .. }) = children.get_mut(edit) {
            row[1] = Html::text("EDITED");
        }
    }
    view
}
