//! `livelit-bench`: the manual benchmark harness behind EXPERIMENTS.md
//! Part II (B1–B18).
//!
//! Each experiment times its workload over `--iters` iterations (median-of-N
//! with a warmup iteration; no external benchmarking dependency) and the
//! whole suite is then replayed once under an installed
//! [`livelit_trace`] stats tracer, so the report carries per-phase span
//! timings and counter totals from the same probes `hazel trace` uses.
//! Finally an overhead experiment times a representative workload untraced
//! versus with a no-op sink installed — the measured backing for the
//! "near-zero overhead when off" contract.
//!
//! ```console
//! $ livelit-bench                  # full suite, writes BENCH_trace.json
//! $ livelit-bench --quick          # smaller sizes/iteration counts
//! $ livelit-bench --only B3        # one experiment (plus phases/overhead)
//! $ livelit-bench --out report.json
//! ```

use std::hint::black_box;
use std::time::Instant;

use hazel::editor::{IncrementalAnalyzer, IncrementalEngine};
use hazel::lang::parse::parse_uexp;
use hazel::lang::value::iv;
use hazel::prelude::*;
use hazel::std::dataframe::DataframeModel;
use hazel::std::grading::grading_prelude;
use hazel::trace::{Counter, Histogram, NullSink, StatsSink, Tracer};
use livelit_bench::{
    bench_phi, deep_guarded_chain, deep_redex_chain, deep_scope_invocation, expensive_then_livelit,
    many_invocations, parallel_resume_program, sized_program, sized_view, sized_view_edited,
    wide_invocation,
};

/// One timed case: experiment id, group, case label, and the statistics of
/// the per-iteration wall times.
struct CaseResult {
    id: &'static str,
    group: &'static str,
    case: String,
    iters: u32,
    median_ns: u64,
    mean_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// Times `f` over `iters` iterations (after one warmup), returning the
/// per-iteration wall times in nanoseconds.
fn sample<R>(iters: u32, mut f: impl FnMut() -> R) -> Vec<u64> {
    black_box(f());
    (0..iters)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect()
}

fn summarize(
    id: &'static str,
    group: &'static str,
    case: String,
    mut samples: Vec<u64>,
) -> CaseResult {
    samples.sort_unstable();
    let iters = u32::try_from(samples.len()).expect("sane iteration count");
    let sum: u64 = samples.iter().sum();
    CaseResult {
        id,
        group,
        case,
        iters,
        median_ns: samples[samples.len() / 2],
        mean_ns: sum / samples.len() as u64,
        min_ns: samples[0],
        max_ns: *samples.last().expect("non-empty"),
    }
}

/// Harness configuration from the command line.
struct Config {
    iters: u32,
    quick: bool,
    only: Option<String>,
    out: String,
}

/// Scales a size list down in `--quick` mode by dropping the largest entry.
fn sizes<T: Copy>(config: &Config, full: &[T]) -> Vec<T> {
    if config.quick && full.len() > 1 {
        full[..full.len() - 1].to_vec()
    } else {
        full.to_vec()
    }
}

fn wants(config: &Config, id: &str) -> bool {
    config.only.as_deref().is_none_or(|only| only == id)
}

fn run_suite(config: &Config, results: &mut Vec<CaseResult>) {
    // B1 — typed expansion: scaling in invocation count and splice width.
    if wants(config, "B1") {
        let phi = bench_phi(&[]);
        for n in sizes(config, &[1usize, 4, 16, 64, 256]) {
            let program = many_invocations(n);
            results.push(summarize(
                "B1",
                "expansion/invocations",
                n.to_string(),
                sample(config.iters, || {
                    expand_typed(&phi, &Ctx::empty(), &program).expect("expands")
                }),
            ));
        }
        let widths = [1usize, 4, 16, 64];
        let phi = bench_phi(&widths);
        for k in sizes(config, &widths) {
            let program = wide_invocation(k, 0);
            results.push(summarize(
                "B1",
                "expansion/splices",
                k.to_string(),
                sample(config.iters, || {
                    expand_typed(&phi, &Ctx::empty(), &program).expect("expands")
                }),
            ));
        }
    }

    // B2 — closure collection: scaling in livelit count and env size.
    if wants(config, "B2") {
        let phi = bench_phi(&[]);
        for n in sizes(config, &[1usize, 4, 16, 64]) {
            let program = many_invocations(n);
            results.push(summarize(
                "B2",
                "closure_collection/livelits",
                n.to_string(),
                sample(config.iters, || {
                    hazel::core::collect(&phi, &program).expect("collects")
                }),
            ));
        }
        for n in sizes(config, &[1usize, 16, 64, 256]) {
            let program = deep_scope_invocation(n);
            results.push(summarize(
                "B2",
                "closure_collection/env_size",
                n.to_string(),
                sample(config.iters, || {
                    hazel::core::collect(&phi, &program).expect("collects")
                }),
            ));
        }
    }

    // B3 — fill-and-resume vs full re-evaluation (Sec. 4.3.2).
    if wants(config, "B3") {
        let phi = bench_phi(&[]);
        for n in sizes(config, &[100i64, 400, 1600]) {
            let program = expensive_then_livelit(n);
            let collection = hazel::core::collect(&phi, &program).expect("collects");
            results.push(summarize(
                "B3",
                "fill_resume/resume",
                n.to_string(),
                sample(config.iters, || {
                    collection.resume_result().expect("resumes")
                }),
            ));
            results.push(summarize(
                "B3",
                "fill_resume/full_reeval",
                n.to_string(),
                sample(config.iters, || {
                    hazel::core::cc::eval_full(&phi, &program, 4_000_000).expect("evaluates")
                }),
            ));
        }
    }

    // B4 — live splice evaluation under growing environments.
    if wants(config, "B4") {
        let phi = bench_phi(&[]);
        for n in sizes(config, &[1usize, 16, 64, 256]) {
            let program = deep_scope_invocation(n);
            let collection = hazel::core::collect(&phi, &program).expect("collects");
            let splice = UExp::Bin(
                BinOp::Add,
                Box::new(UExp::Var(Var::new(format!("x{}", n - 1)))),
                Box::new(UExp::Int(1)),
            );
            results.push(summarize(
                "B4",
                "live_eval/env_size",
                n.to_string(),
                sample(config.iters, || {
                    hazel::core::eval_splice(&phi, &collection, HoleName(0), 0, &splice, &Typ::Int)
                        .expect("live eval")
                        .expect("closure available")
                }),
            ));
        }
    }

    // B5 — view diffing versus tree size and edit locality.
    if wants(config, "B5") {
        for n in sizes(config, &[10usize, 100, 1000]) {
            let old = sized_view(n);
            let same = old.clone();
            let edited = sized_view_edited(n, n / 2);
            results.push(summarize(
                "B5",
                "view_diff/identical",
                n.to_string(),
                sample(config.iters, || hazel::mvu::diff(&old, &same)),
            ));
            results.push(summarize(
                "B5",
                "view_diff/one_edit",
                n.to_string(),
                sample(config.iters, || hazel::mvu::diff(&old, &edited)),
            ));
            let patches = hazel::mvu::diff(&old, &edited);
            results.push(summarize(
                "B5",
                "view_diff/apply_one_edit",
                n.to_string(),
                sample(config.iters, || hazel::mvu::apply(&old, &patches)),
            ));
        }
    }

    // B6 — character-count layout versus size and width budget.
    if wants(config, "B6") {
        for target in sizes(config, &[100usize, 1000, 5000]) {
            let program = sized_program(7, target);
            let actual = program.size();
            for width in [40usize, 120] {
                results.push(summarize(
                    "B6",
                    "layout",
                    format!("width{width}/{actual}"),
                    sample(config.iters, || {
                        hazel::lang::pretty::print_eexp(&program, width)
                    }),
                ));
            }
        }
    }

    // B7 — grading case study end-to-end (Fig. 1c).
    if wants(config, "B7") {
        for students in sizes(config, &[5usize, 20, 50]) {
            let (registry, doc) = grading_doc(students);
            results.push(summarize(
                "B7",
                "grading_e2e",
                students.to_string(),
                sample(config.iters, || {
                    hazel::editor::run(&registry, &doc).expect("pipeline")
                }),
            ));
        }
    }

    // B8 — multi-closure collection for the image-filter preset (Fig. 2).
    if wants(config, "B8") {
        let mut registry = LivelitRegistry::new();
        hazel::std::register_all(&mut registry);
        let phi = registry.phi();
        for n in sizes(config, &[1usize, 2, 4, 8]) {
            let program = photo_program(n);
            results.push(summarize(
                "B8",
                "image_closures/collect",
                n.to_string(),
                sample(config.iters, || {
                    let collection = hazel::core::collect(&phi, &program).expect("collects");
                    assert_eq!(collection.envs_for(HoleName(0)).len(), n);
                    collection
                }),
            ));
        }
    }

    // B9 — `Exp` encoding round-trip, string vs structural scheme.
    if wants(config, "B9") {
        for target in sizes(config, &[100usize, 1000, 5000]) {
            let program = sized_program(11, target);
            let actual = program.size();
            let encoded = hazel::core::encoding::encode(&program);
            results.push(summarize(
                "B9",
                "encoding/encode",
                actual.to_string(),
                sample(config.iters, || hazel::core::encoding::encode(&program)),
            ));
            results.push(summarize(
                "B9",
                "encoding/decode",
                actual.to_string(),
                sample(config.iters, || {
                    hazel::core::encoding::decode(&encoded).expect("decodes")
                }),
            ));
            // Structural-scheme ablation at the small size only: without
            // hash-consing it is orders of magnitude slower (DESIGN.md).
            if target == 100 {
                let structural = hazel::core::encoding_structural::encode(&program);
                results.push(summarize(
                    "B9",
                    "encoding/encode_structural",
                    actual.to_string(),
                    sample(config.iters, || {
                        hazel::core::encoding_structural::encode(&program)
                    }),
                ));
                results.push(summarize(
                    "B9",
                    "encoding/decode_structural",
                    actual.to_string(),
                    sample(config.iters, || {
                        hazel::core::encoding_structural::decode(&structural).expect("decodes")
                    }),
                ));
            }
        }
    }

    // B10 — incremental engine vs full pipeline on model-only edits.
    if wants(config, "B10") {
        for n in sizes(config, &[100i64, 400, 1600]) {
            let (registry, mut doc) = doc_with_work(n);
            let mut engine = IncrementalEngine::new();
            engine.run(&registry, &doc).expect("pipeline");
            let mut value = 10i64;
            results.push(summarize(
                "B10",
                "incremental_drag/incremental",
                n.to_string(),
                sample(config.iters, || {
                    value = (value + 1) % 100;
                    doc.dispatch(HoleName(0), &iv::record([("set", iv::int(value))]))
                        .expect("drag");
                    let out = engine.run(&registry, &doc).expect("fast path");
                    out.result.clone()
                }),
            ));
            let (registry, mut doc) = doc_with_work(n);
            results.push(summarize(
                "B10",
                "incremental_drag/full",
                n.to_string(),
                sample(config.iters, || {
                    value = (value + 1) % 100;
                    doc.dispatch(HoleName(0), &iv::record([("set", iv::int(value))]))
                        .expect("drag");
                    hazel::editor::run(&registry, &doc).expect("full pipeline")
                }),
            ));
        }
    }

    // B11 — deep-nested β-reduction: tree-copying substitution vs the
    // term store's path-copying substitution with free-variable skipping.
    if wants(config, "B11") {
        use hazel::lang::eval::{Evaluator, StoreEvaluator, DEFAULT_FUEL};
        use hazel::lang::TermStore;
        for n in sizes(config, &[1usize, 4, 16, 64, 256]) {
            let chain = deep_redex_chain(n);
            let expected = IExp::Int((1..=n as i64).sum());
            results.push(summarize(
                "B11",
                "subst/tree",
                n.to_string(),
                sample(config.iters, || {
                    let result = Evaluator::with_fuel(DEFAULT_FUEL)
                        .eval(&chain)
                        .expect("evaluates");
                    assert_eq!(result, expected);
                    result
                }),
            ));
            results.push(summarize(
                "B11",
                "subst/interned",
                n.to_string(),
                sample(config.iters, || {
                    let mut store = TermStore::new();
                    let t = store.intern_iexp(&chain);
                    let r = StoreEvaluator::with_fuel(&mut store, DEFAULT_FUEL)
                        .eval(t)
                        .expect("evaluates");
                    let result = store.to_iexp(r);
                    assert_eq!(result, expected);
                    result
                }),
            ));
        }
    }

    // B12 — parallel closure collection: many independent expensive
    // fill-and-resume tasks at 1/2/4/8 workers (speedup curve).
    if wants(config, "B12") {
        let phi = bench_phi(&[]);
        let (n, k) = if config.quick {
            (8usize, 500i64)
        } else {
            (16, 2000)
        };
        let program = parallel_resume_program(n, k);
        for workers in [1usize, 2, 4, 8] {
            hazel::sched::set_workers_override(Some(workers));
            results.push(summarize(
                "B12",
                "parallel_resume/workers",
                workers.to_string(),
                sample(config.iters, || {
                    hazel::core::collect(&phi, &program).expect("collects")
                }),
            ));
        }
        hazel::sched::set_workers_override(None);
    }

    // B13 — the splice-result cache under a model-drag render loop: a
    // warm-cache incremental drag (only the dependent invocation's splices
    // re-evaluate) versus rebuilding the collection — and its cache — from
    // scratch every edit.
    if wants(config, "B13") {
        let (registry, mut doc) = fanout_doc();
        let mut engine = IncrementalEngine::new();
        engine.run(&registry, &doc).expect("pipeline");
        let mut value = 10i64;
        results.push(summarize(
            "B13",
            "splice_cache/warm_drag",
            "3 livelits".to_string(),
            sample(config.iters, || {
                value = (value + 1) % 100;
                doc.dispatch(HoleName(0), &iv::record([("set", iv::int(value))]))
                    .expect("drag");
                let out = engine.run(&registry, &doc).expect("fast path");
                out.result.clone()
            }),
        ));
        let (registry, mut doc) = fanout_doc();
        results.push(summarize(
            "B13",
            "splice_cache/cold_full_run",
            "3 livelits".to_string(),
            sample(config.iters, || {
                value = (value + 1) % 100;
                doc.dispatch(HoleName(0), &iv::record([("set", iv::int(value))]))
                    .expect("drag");
                hazel::editor::run(&registry, &doc).expect("full pipeline")
            }),
        ));
        // The cache-precision contract, asserted from the same probes
        // `hazel stats` reads: one slider drag re-evaluates exactly the
        // two splices of the invocation whose σ saw the new value — the
        // edited slider's own splices and the independent one's all hit.
        let (registry, mut doc) = fanout_doc();
        let mut engine = IncrementalEngine::new();
        engine.run(&registry, &doc).expect("pipeline");
        doc.dispatch(HoleName(0), &iv::record([("set", iv::int(42))]))
            .expect("drag");
        engine.run(&registry, &doc).expect("fast path");
        let sink = StatsSink::new();
        let tracer = Tracer::monotonic(sink.clone());
        let guard = hazel::trace::install(&tracer);
        doc.dispatch(HoleName(0), &iv::record([("set", iv::int(55))]))
            .expect("drag");
        engine.run(&registry, &doc).expect("fast path");
        drop(guard);
        let stats = sink.snapshot();
        let misses = stats.counter(Counter::SpliceCacheMisses);
        let hits = stats.counter(Counter::SpliceCacheHits);
        assert_eq!(
            misses, 2,
            "a single model edit must re-evaluate only the dependent invocation's splices"
        );
        assert!(hits >= 4, "unaffected invocations must hit the cache");
        println!("B13  splice_cache/one_drag_counters    misses {misses} / hits {hits}");
    }

    // B15 — diagnostics latency vs. document size on single-definition
    // edits: the warm incremental analyzer (per-definition dirty sets,
    // fact memo, cached reachability fixpoint) against a from-scratch
    // analysis, over growing library-definition chains. Only the program
    // unit changes per edit, so warm latency must track the edit — flat
    // in the chain length — while from-scratch re-derives every unit.
    if wants(config, "B15") {
        for n in sizes(config, &[4usize, 16, 64, 256]) {
            let (registry, mut doc) = def_chain_doc(n);
            let mut analyzer = IncrementalAnalyzer::new();
            analyzer.analyze(&registry, &doc);
            let mut v = 0i64;
            results.push(summarize(
                "B15",
                "diagnostics/warm_single_edit",
                format!("{n} defs"),
                sample(config.iters, || {
                    v = (v + 1) % 9;
                    doc.edit_splice(HoleName(0), SpliceRef(0), UExp::Int(v))
                        .expect("edit");
                    analyzer.analyze(&registry, &doc)
                }),
            ));
            let (registry, mut doc) = def_chain_doc(n);
            results.push(summarize(
                "B15",
                "diagnostics/from_scratch",
                format!("{n} defs"),
                sample(config.iters, || {
                    v = (v + 1) % 9;
                    doc.edit_splice(HoleName(0), SpliceRef(0), UExp::Int(v))
                        .expect("edit");
                    hazel::editor::analyze_document(&registry, &doc)
                }),
            ));
        }
        // The incrementality contract behind the curve, from the same
        // probes the flow_counters suite asserts: one edit, one dirty
        // unit, everything else out of the fact memo.
        let (registry, mut doc) = def_chain_doc(64);
        let mut analyzer = IncrementalAnalyzer::new();
        analyzer.analyze(&registry, &doc);
        doc.edit_splice(HoleName(0), SpliceRef(0), UExp::Int(7))
            .expect("edit");
        let sink = StatsSink::new();
        let tracer = Tracer::monotonic(sink.clone());
        let guard = hazel::trace::install(&tracer);
        analyzer.analyze(&registry, &doc);
        drop(guard);
        let stats = sink.snapshot();
        let dirty = stats.counter(Counter::FlowDirtyDefs);
        let reused = stats.counter(Counter::FlowFactsReused);
        assert_eq!(dirty, 1, "a single-definition edit must dirty one unit");
        assert!(reused > 0, "unchanged facts must be reused");
        println!("B15  diagnostics/one_edit_counters     dirty {dirty} / reused {reused}");
    }

    // B18 — the environment machine against both substitution evaluators
    // on a deep-redex chain whose bodies bury the bound variable in a
    // dead branch (see [`deep_guarded_chain`]): substitution-based
    // evaluators must rewrite the payload at every β-step, while the
    // machine binds the variable in the live environment and never decodes
    // the untaken branch (closures carry environments; the frame stack
    // replaces Rust recursion). The machine curve must undercut the store
    // curve by ≥10× at size 256.
    if wants(config, "B18") {
        use hazel::lang::eval::{Evaluator, StoreEvaluator, DEFAULT_FUEL};
        use hazel::lang::machine::MachineEvaluator;
        use hazel::lang::TermStore;
        for n in sizes(config, &[1usize, 4, 16, 64, 256]) {
            let chain = deep_guarded_chain(n, 256);
            let expected = IExp::Int((1..=n as i64).sum());
            // The term is interned once up front and the (small, hash-
            // consed) store cloned per iteration, so the store and machine
            // arms time evaluation — not re-decoding an input tree that
            // repeats the payload at every level. Each clone starts with
            // an empty substitution memo; no state leaks across samples.
            let mut base = TermStore::new();
            let t = base.intern_iexp(&chain);
            // The tree evaluator is O(n²·k) on this workload — seconds
            // per iteration at 256 — so its curve stops at 64; the store
            // curve bounds it from below everywhere.
            if n <= 64 {
                results.push(summarize(
                    "B18",
                    "eval/tree",
                    n.to_string(),
                    sample(config.iters, || {
                        let result = Evaluator::with_fuel(DEFAULT_FUEL)
                            .eval(&chain)
                            .expect("evaluates");
                        assert_eq!(result, expected);
                        result
                    }),
                ));
            } else {
                println!("B18  eval/tree                        {n}  skipped (O(n²·k); see 64)");
            }
            results.push(summarize(
                "B18",
                "eval/store",
                n.to_string(),
                sample(config.iters, || {
                    let mut store = base.clone();
                    let r = StoreEvaluator::with_fuel(&mut store, DEFAULT_FUEL)
                        .eval(t)
                        .expect("evaluates");
                    let result = store.to_iexp(r);
                    assert_eq!(result, expected);
                    result
                }),
            ));
            results.push(summarize(
                "B18",
                "eval/machine",
                n.to_string(),
                sample(config.iters, || {
                    let mut store = base.clone();
                    let r = MachineEvaluator::with_fuel(&mut store, DEFAULT_FUEL)
                        .eval(t)
                        .expect("evaluates");
                    let result = store.to_iexp(r);
                    assert_eq!(result, expected);
                    result
                }),
            ));
        }

        // The serve-level delta: the B14 request script replayed with the
        // evaluator kind pinned to the machine and then to the store
        // oracle — a fresh server per iteration, exactly as B14 times it.
        let (lines, _expected_errors) = serve_script();
        let registry_factory: hazel::server::RegistryFactory = std::sync::Arc::new(|| {
            let mut registry = LivelitRegistry::new();
            hazel::std::register_all(&mut registry);
            registry
        });
        for (kind, label) in [
            (hazel::lang::EvalKind::Machine, "serve/machine"),
            (hazel::lang::EvalKind::Store, "serve/store"),
        ] {
            hazel::lang::set_eval_kind_override(Some(kind));
            results.push(summarize(
                "B18",
                label,
                "1000 requests".to_string(),
                sample(config.iters, || {
                    let mut server = hazel::server::Server::with_registry(registry_factory.clone());
                    let mut len = 0usize;
                    for line in &lines {
                        len += server.handle_line(line).len();
                    }
                    len
                }),
            ));
        }
        hazel::lang::set_eval_kind_override(None);
    }
}

/// One B16 latency distribution: the full shape of edit+render latency at
/// one document size, not just a median.
struct HistResult {
    id: &'static str,
    group: &'static str,
    case: String,
    snapshot: hazel::trace::HistogramSnapshot,
}

/// B16 — edit/render latency histograms vs. document size, on the
/// production [`hazel::trace::Histogram`] the metrics layer serves. Each
/// sample is one splice edit plus one full engine run over a
/// `def_chain_doc(n)` document; the warm curve reuses an incremental
/// engine across samples (the fill-and-resume fast path), the cold curve
/// rebuilds from scratch. Reported as p50/p99/max so tail behavior vs.
/// size is visible — medians alone hide exactly what histograms exist to
/// show.
fn latency_histograms(config: &Config, hists: &mut Vec<HistResult>) {
    if !wants(config, "B16") {
        return;
    }
    let samples_per_size = if config.quick { 40u32 } else { 120 };
    for n in sizes(config, &[4usize, 16, 64, 256]) {
        // Warm: a model edit (slider drag), which keeps the skeleton
        // cache valid and takes the fill-and-resume fast path.
        let (registry, mut doc) = def_chain_doc(n);
        let mut engine = IncrementalEngine::new();
        engine.run(&registry, &doc).expect("pipeline");
        let mut value = 10i64;
        let warm = Histogram::new();
        for _ in 0..samples_per_size {
            value = (value + 1) % 100;
            doc.dispatch(HoleName(0), &iv::record([("set", iv::int(value))]))
                .expect("drag");
            let start = Instant::now();
            black_box(engine.run(&registry, &doc).expect("fast path"));
            warm.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        assert!(
            engine.incremental_hits >= samples_per_size as usize,
            "model edits must stay on the fast path"
        );
        hists.push(HistResult {
            id: "B16",
            group: "latency/edit_render_warm",
            case: format!("{n} defs"),
            snapshot: warm.snapshot(),
        });

        // Cold: a splice edit changes the program skeleton, so every
        // sample re-collects from scratch.
        let (registry, mut doc) = def_chain_doc(n);
        let cold = Histogram::new();
        let mut v = 0i64;
        for _ in 0..samples_per_size {
            v = (v + 1) % 9;
            doc.edit_splice(HoleName(0), SpliceRef(0), UExp::Int(v))
                .expect("edit");
            let start = Instant::now();
            black_box(hazel::editor::run(&registry, &doc).expect("pipeline"));
            cold.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        hists.push(HistResult {
            id: "B16",
            group: "latency/edit_render_cold",
            case: format!("{n} defs"),
            snapshot: cold.snapshot(),
        });
    }
}

/// One B17 measurement: retained-render behavior at one document size.
struct RetainedResult {
    defs: usize,
    warm: hazel::trace::HistogramSnapshot,
    cold: hazel::trace::HistogramSnapshot,
    /// Mean `engine.views` span time per warm drag — the render phase
    /// alone, which the retained arena is supposed to hold near-flat
    /// while the surrounding Ω-rebuild/resume work stays O(doc).
    views_mean_ns: u64,
    /// Median time for the legacy pipeline the arena replaced: rebuild
    /// every view from scratch, then whole-tree diff each against the
    /// previous render.
    legacy_views_median_ns: u64,
    patch_bytes: usize,
    full_bytes: usize,
    reused: u64,
    rebuilt: u64,
}

impl RetainedResult {
    fn reused_fraction(&self) -> f64 {
        self.reused as f64 / (self.reused + self.rebuilt).max(1) as f64
    }
}

/// The B17 document: `n` independent definitions, each spliced into its
/// own `$slider`, so a drag on slider 0 invalidates exactly one retained
/// view out of `n` (chained defs would change every σ and defeat the
/// memo on purpose — independence is the point of the experiment).
fn multi_slider_doc(n: usize) -> (LivelitRegistry, Document) {
    let mut registry = LivelitRegistry::new();
    hazel::std::register_all(&mut registry);
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("def d{i} : Int = {} ;;\n", i + 1));
    }
    let sum = (0..n)
        .map(|i| format!("$slider@{i}{{10}}(0 : Int; d{i} : Int)"))
        .collect::<Vec<_>>()
        .join(" + ");
    src.push_str(&sum);
    hazel::editor::open_module(registry, &src).expect("module")
}

/// B17 — the retained view arena: render/reconcile latency and patch
/// payload size vs. document size on a multi-slider document. The warm
/// curve drags slider 0 through the incremental fast path — the other
/// `n-1` retained views must be memo hits, so latency stays near-flat in
/// `n` and the patch payload is proportional to the *changed* nodes. The
/// cold curve edits a splice (a skeleton change), forcing a fresh
/// collection whose new interning lineage conservatively misses every
/// memo. The reuse counters come from a separate traced pass so tracer
/// overhead never contaminates the timings.
fn retained_render(config: &Config, hists: &mut Vec<HistResult>, out: &mut Vec<RetainedResult>) {
    if !wants(config, "B17") {
        return;
    }
    let samples_per_size = if config.quick { 20u32 } else { 40 };
    for n in sizes(config, &[4usize, 16, 64, 256]) {
        // Warm: slider drags on one instance, fast path, untraced.
        let (registry, mut doc) = multi_slider_doc(n);
        let mut engine = IncrementalEngine::new();
        engine.run(&registry, &doc).expect("pipeline");
        let warm = Histogram::new();
        let mut value = 10i64;
        for _ in 0..samples_per_size {
            value = (value + 1) % 100;
            doc.dispatch(HoleName(0), &iv::record([("set", iv::int(value))]))
                .expect("drag");
            let start = Instant::now();
            black_box(engine.run(&registry, &doc).expect("fast path"));
            warm.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        assert!(
            engine.incremental_hits >= samples_per_size as usize,
            "model edits must stay on the fast path"
        );

        // Patch payload of the last drag's stored reconcile output vs.
        // the full tree it updates — the wire cost a patch-applying
        // client pays, in the same encoding `hazel serve` ships.
        let delta = engine
            .view_delta(HoleName(0))
            .expect("dragged slider has a retained root");
        let patch_bytes = {
            let payload = hazel::server::json::Json::Arr(
                delta
                    .last_patches
                    .iter()
                    .map(hazel::server::wire::patch_json)
                    .collect(),
            );
            let mut s = String::new();
            payload.write(&mut s);
            s.len()
        };
        let full_bytes = {
            let output = engine.run(&registry, &doc).expect("pipeline");
            let view: &Html<_> = &output.views[&HoleName(0)];
            let mut s = String::new();
            hazel::server::wire::html_json(view).write(&mut s);
            s.len()
        };

        // Node-reuse accounting and render-phase timing: a short traced
        // pass of further drags on a real clock.
        let sink = StatsSink::new();
        let tracer = Tracer::monotonic(sink.clone());
        let traced_drags = 8u64;
        {
            let _guard = hazel::trace::install(&tracer);
            for _ in 0..traced_drags {
                value = (value + 1) % 100;
                doc.dispatch(HoleName(0), &iv::record([("set", iv::int(value))]))
                    .expect("drag");
                black_box(engine.run(&registry, &doc).expect("fast path"));
            }
        }
        let stats = sink.snapshot();
        let reused = stats.counter(Counter::ViewNodesReused);
        let rebuilt = stats.counter(Counter::ViewNodesRebuilt);
        let views_mean_ns = stats
            .spans
            .get("engine.views")
            .map(|s| s.total_ns / traced_drags)
            .unwrap_or(0);

        // The before column: the legacy rebuild-everything render pass —
        // every view recomputed from scratch, then whole-tree diffed
        // against the previous render (the PR 5 pipeline).
        let legacy_views_median_ns = {
            let output = engine.run(&registry, &doc).expect("pipeline");
            let mut samples = sample(8, || {
                let (legacy_views, _) = hazel::editor::compute_views_from_scratch(
                    &registry,
                    &doc,
                    &output.collection,
                    hazel::editor::engine::ENGINE_FUEL,
                );
                let mut patches = 0usize;
                for (u, view) in &legacy_views {
                    patches += hazel::mvu::diff(&*output.views[u], view).len();
                }
                patches
            });
            samples.sort_unstable();
            samples[samples.len() / 2]
        };

        // Cold: splice edits change the skeleton, so every sample
        // re-collects and the fresh lineage misses every memo.
        let (registry, mut doc) = multi_slider_doc(n);
        let mut engine = IncrementalEngine::new();
        engine.run(&registry, &doc).expect("pipeline");
        let cold = Histogram::new();
        let mut v = 0i64;
        for _ in 0..samples_per_size {
            v = (v + 1) % 9;
            doc.edit_splice(HoleName(0), SpliceRef(0), UExp::Int(v))
                .expect("edit");
            let start = Instant::now();
            black_box(engine.run(&registry, &doc).expect("pipeline"));
            cold.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }

        let result = RetainedResult {
            defs: n,
            warm: warm.snapshot(),
            cold: cold.snapshot(),
            views_mean_ns,
            legacy_views_median_ns,
            patch_bytes,
            full_bytes,
            reused,
            rebuilt,
        };
        // The acceptance bar: on single-instance edits at 256 defs, at
        // least 90% of view nodes must survive in place.
        if n >= 256 {
            assert!(
                result.reused_fraction() >= 0.9,
                "B17: reused-node fraction {:.3} below 0.9 at {n} defs",
                result.reused_fraction()
            );
        }
        hists.push(HistResult {
            id: "B17",
            group: "retained/warm_model_edit",
            case: format!("{n} defs"),
            snapshot: result.warm.clone(),
        });
        hists.push(HistResult {
            id: "B17",
            group: "retained/cold_skeleton_edit",
            case: format!("{n} defs"),
            snapshot: result.cold.clone(),
        });
        out.push(result);
    }
}

/// The serve-metrics overhead experiment: the full B14 script replayed on
/// a plain server versus one running the complete production metrics
/// stack (attached [`ServeMetrics`] plus an installed
/// `MetricsSink`+`SlowCapture` tracer — exactly what `hazel serve` runs by
/// default). Same ABBA min-of-rounds discipline as [`overhead_experiment`];
/// the contract is a ratio under 1.03 (3% of request throughput).
fn serve_metrics_overhead(iters: u32) -> (u64, u64, f64) {
    use hazel::server::observe::ServeMetrics;
    use hazel::trace::{MetricsSink, PairSink};

    let (lines, _) = serve_script();
    let registry_factory: hazel::server::RegistryFactory = std::sync::Arc::new(|| {
        let mut registry = LivelitRegistry::new();
        hazel::std::register_all(&mut registry);
        registry
    });
    let replay = |server: &mut hazel::server::Server| {
        let mut len = 0usize;
        for line in &lines {
            len += server.handle_line(line).len();
        }
        len
    };

    // One untimed replay per configuration: allocator and cache state
    // settle before any round can set a minimum.
    {
        let mut server = hazel::server::Server::with_registry(registry_factory.clone());
        black_box(replay(&mut server));
        let mut server = hazel::server::Server::with_registry(registry_factory.clone());
        let metrics = ServeMetrics::new(4, 4096);
        server.enable_metrics(metrics.clone());
        let sink = PairSink(
            MetricsSink::new(std::sync::Arc::clone(metrics.hub())),
            metrics.capture().clone(),
        );
        let tracer = Tracer::monotonic(sink);
        let guard = hazel::trace::install(&tracer);
        black_box(replay(&mut server));
        drop(guard);
    }

    // Each round runs both configurations back to back, alternating
    // which goes first to cancel ordering bias.
    let mut off = u64::MAX;
    let mut on = u64::MAX;
    for round in 0..iters.max(31) {
        for first in [round % 2 == 0, round % 2 != 0] {
            if first {
                let mut server = hazel::server::Server::with_registry(registry_factory.clone());
                let start = Instant::now();
                black_box(replay(&mut server));
                off = off.min(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            } else {
                let mut server = hazel::server::Server::with_registry(registry_factory.clone());
                let metrics = ServeMetrics::new(4, 4096);
                server.enable_metrics(metrics.clone());
                let sink = PairSink(
                    MetricsSink::new(std::sync::Arc::clone(metrics.hub())),
                    metrics.capture().clone(),
                );
                let tracer = Tracer::monotonic(sink);
                let guard = hazel::trace::install(&tracer);
                let start = Instant::now();
                black_box(replay(&mut server));
                on = on.min(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
                drop(guard);
                assert_eq!(metrics.requests(), lines.len() as u64);
            }
        }
    }
    // The reported overhead is the ratio of per-configuration minimums:
    // on a time-shared machine the per-round noise is bursty (individual
    // replays spike by up to ~10%), so the repeatable floor each
    // configuration reaches across many alternating rounds is the only
    // stable estimate; per-round ratios or means inherit the spikes.
    let ratio = on as f64 / off.max(1) as f64;
    (off, on, ratio)
}

/// What the B14 load run measured, for the `"serve"` report section.
struct ServeLoad {
    requests: u64,
    errors: u64,
    elapsed_ns: u64,
    drag_patch_bytes: u64,
    drag_full_bytes: u64,
}

impl ServeLoad {
    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / (self.elapsed_ns.max(1) as f64 / 1e9)
    }

    fn drag_ratio(&self) -> f64 {
        self.drag_patch_bytes as f64 / self.drag_full_bytes.max(1) as f64
    }
}

/// The B14 request script: a 1000-line mixed session over the grading and
/// image-filters case studies plus a slider drag loop, with malformed
/// requests sprinkled in. Returns `(lines, expected_error_replies)`.
fn serve_script() -> (Vec<String>, u64) {
    // The grading case study as a self-contained module (the textual
    // `$curve` declaration of examples/grading_clean.hzl).
    let grading = "livelit $curve (score : Int) at Int { \
         model Bool init true; \
         expand fun generous : Bool -> \
           if generous then \"fun score : Int -> score + 5\" \
           else \"fun score : Int -> score - 5\" } \
         def midterm : Int = 88 ;; \
         $curve@0{true}(midterm : Int)";
    // The image-filters case study of B8: a filter preset mapped over
    // photos, one collected closure per application.
    let photos = "let classic_look = fun url : Str -> \
         $basic_adjustments@0{(.contrast 1, .brightness 2)}(\
           url : Str; 10 : Int; 5 : Int) in \
         let photos = [Str| \"img://a\", \"img://b\"] in \
         (fix go : (List(Str) -> List((.w Int, .h Int, .px List(Int)))) -> \
          fun urls : List(Str) -> \
          lcase urls \
          | [] -> [(.w Int, .h Int, .px List(Int))|] \
          | u :: rest -> classic_look u :: go rest \
          end) photos";

    let mut lines: Vec<String> = Vec::with_capacity(1000);
    let mut errors = 0u64;
    for (name, source) in [
        ("grading", grading),
        ("photos", photos),
        ("drag", "$slider@0{10}(0 : Int; 100 : Int)"),
    ] {
        lines.push(format!(
            "{{\"op\":\"open\",\"session\":{name:?},\"source\":{source:?}}}"
        ));
        lines.push(format!("{{\"op\":\"render\",\"session\":{name:?}}}"));
    }
    // Grading churn: re-edit the score splice and re-render.
    for i in 0..100u64 {
        lines.push(format!(
            "{{\"op\":\"edit\",\"session\":\"grading\",\"edit\":{{\"kind\":\"edit_splice\",\
             \"at\":0,\"splice\":0,\"contents\":\"{}\"}}}}",
            60 + (i * 7) % 40
        ));
        lines.push("{\"op\":\"render\",\"session\":\"grading\"}".to_owned());
    }
    // Image-filter tweaks: bump the contrast parameter splice.
    for i in 0..45u64 {
        lines.push(format!(
            "{{\"op\":\"edit\",\"session\":\"photos\",\"edit\":{{\"kind\":\"edit_splice\",\
             \"at\":0,\"splice\":1,\"contents\":\"{}\"}}}}",
            5 + (i * 3) % 20
        ));
        lines.push("{\"op\":\"render\",\"session\":\"photos\"}".to_owned());
        // Every 15th filter tweak, a malformed line and an unknown op:
        // crash-proofing under load is part of what B14 demonstrates.
        if i % 15 == 0 {
            lines.push("{\"op\":\"render\",\"session\":\"photos\"".to_owned());
            lines.push("{\"op\":\"develop\",\"session\":\"photos\"}".to_owned());
            errors += 2;
        }
    }
    // The drag-loop segment, bracketed by per-session stats so the
    // patch-vs-full byte ratio of exactly this segment can be read off.
    lines.push("{\"op\":\"stats\",\"session\":\"drag\"}".to_owned());
    for i in 0..346u64 {
        lines.push(format!(
            "{{\"op\":\"edit\",\"session\":\"drag\",\"edit\":{{\"kind\":\"dispatch\",\
             \"at\":0,\"action\":\"(.set {})\"}}}}",
            (i * 3) % 100
        ));
        lines.push("{\"op\":\"render\",\"session\":\"drag\"}".to_owned());
    }
    lines.push("{\"op\":\"stats\",\"session\":\"drag\"}".to_owned());
    lines.push("{\"op\":\"stats\"}".to_owned());
    for name in ["grading", "photos", "drag"] {
        lines.push(format!("{{\"op\":\"close\",\"session\":{name:?}}}"));
    }
    assert_eq!(lines.len(), 1000, "B14 is a 1000-request session");
    (lines, errors)
}

/// B14 — the serve load generator: drives the full 1000-request script
/// through a fresh server per iteration, checks every reply is structured
/// (zero process exits, errors only where injected), and reads the
/// drag-segment byte ratio from the bracketing stats replies.
fn serve_load(config: &Config, results: &mut Vec<CaseResult>) -> Option<ServeLoad> {
    use hazel::server::json::{self, Json};

    if !wants(config, "B14") {
        return None;
    }
    let (lines, expected_errors) = serve_script();
    let registry_factory: hazel::server::RegistryFactory = std::sync::Arc::new(|| {
        let mut registry = LivelitRegistry::new();
        hazel::std::register_all(&mut registry);
        registry
    });

    // The measured run: request counting, reply validation, and the
    // drag-segment ratio all come from this single pass.
    let mut server = hazel::server::Server::with_registry(registry_factory.clone());
    let started = Instant::now();
    let replies: Vec<String> = lines.iter().map(|l| server.handle_line(l)).collect();
    let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let mut errors = 0u64;
    let mut drag_stats: Vec<(u64, u64)> = Vec::new();
    for (line, reply) in lines.iter().zip(&replies) {
        let parsed = json::parse(reply).expect("every reply is valid JSON");
        match parsed.get("ok") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => errors += 1,
            _ => panic!("reply without ok field for {line}"),
        }
        if line == "{\"op\":\"stats\",\"session\":\"drag\"}" {
            let bytes = |k: &str| {
                parsed
                    .get(k)
                    .and_then(Json::as_int)
                    .and_then(|n| u64::try_from(n).ok())
                    .expect("stats carry byte counters")
            };
            drag_stats.push((bytes("patch_bytes"), bytes("full_bytes")));
        }
    }
    assert_eq!(
        errors, expected_errors,
        "only the injected malformed requests may fail"
    );
    assert_eq!(server.session_count(), 0, "the script closes every session");
    let [(patch_before, full_before), (patch_after, full_after)] = drag_stats[..] else {
        panic!("the drag segment is bracketed by exactly two stats requests");
    };
    let load = ServeLoad {
        requests: lines.len() as u64,
        errors,
        elapsed_ns,
        drag_patch_bytes: patch_after - patch_before,
        drag_full_bytes: full_after - full_before,
    };
    assert!(
        load.drag_ratio() < 0.5,
        "drag-loop patches must undercut half the full-view bytes \
         ({} / {} = {:.3})",
        load.drag_patch_bytes,
        load.drag_full_bytes,
        load.drag_ratio()
    );

    // The timed samples: same script, fresh server each iteration.
    results.push(summarize(
        "B14",
        "serve/load",
        "1000 requests".to_string(),
        sample(config.iters, || {
            let mut server = hazel::server::Server::with_registry(registry_factory.clone());
            let mut len = 0usize;
            for line in &lines {
                len += server.handle_line(line).len();
            }
            len
        }),
    ));
    println!(
        "B14  serve/drag_patch_ratio            {} / {} bytes ({:.3}), {:.0} req/s",
        load.drag_patch_bytes,
        load.drag_full_bytes,
        load.drag_ratio(),
        load.requests_per_sec()
    );
    Some(load)
}

/// What the B19 socket-churn run measured, for the `"socket_churn"`
/// report section.
struct SocketChurn {
    clients: usize,
    requests: u64,
    restored_sessions: usize,
    lost_sessions: u64,
    mismatched_replies: u64,
    elapsed_ns: u64,
    latency: hazel::trace::metrics::HistogramSnapshot,
}

impl SocketChurn {
    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / (self.elapsed_ns.max(1) as f64 / 1e9)
    }
}

/// One B19 client's logical request sequence: open a private session,
/// drag it a few rounds, and render the final state.
fn churn_plan(client: usize) -> (String, Vec<String>) {
    let session = format!("c{client}");
    let mut lines = vec![format!(
        "{{\"op\":\"open\",\"session\":{session:?},\"source\":\
         \"$slider@0{{10}}(0 : Int; 100 : Int)\"}}"
    )];
    for round in 0..3 {
        let target = if (client + round).is_multiple_of(2) {
            "inc"
        } else {
            "dec"
        };
        lines.push(format!(
            "{{\"op\":\"dispatch\",\"session\":{session:?},\"hole\":0,\
             \"target\":{target:?},\"event\":\"click\"}}"
        ));
        lines.push(format!("{{\"op\":\"render\",\"session\":{session:?}}}"));
    }
    lines.push(format!("{{\"op\":\"render\",\"session\":{session:?}}}"));
    (session, lines)
}

/// Plays `lines[from..]` against `addr`, appending each reply to
/// `transcript` and each request latency to `latency`. Returns the index
/// of the first request that was NOT acknowledged (== `lines.len()` when
/// everything was).
///
/// This is the reference client resume discipline: a clean EOF means the
/// server drained — stop and resume against the restarted server from
/// exactly the first unacknowledged request (the drain contract is that
/// a request was processed and journaled iff its reply was delivered). A
/// reset or refused connect, by contrast, is transient churn (a thousand
/// clients flooding a backlog-128 listener), so the client reconnects
/// with backoff and carries on.
fn churn_client(
    addr: std::net::SocketAddr,
    lines: &[String],
    from: usize,
    transcript: &mut Vec<String>,
    latency: &Histogram,
    acked: &std::sync::atomic::AtomicU64,
) -> usize {
    use std::io::{BufRead, BufReader, Write};
    let mut at = from;
    let mut reconnects = 0u32;
    'reconnect: while at < lines.len() {
        let stream = loop {
            match std::net::TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(_) if reconnects < 200 => {
                    reconnects += 1;
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                // The listener is gone for good: the server drained.
                Err(_) => return at,
            }
        };
        let Ok(mut writer) = stream.try_clone() else {
            return at;
        };
        let mut reader = BufReader::new(stream);
        while at < lines.len() {
            let started = Instant::now();
            if writer
                .write_all(lines[at].as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_err()
            {
                // Reset mid-write: nothing past `at` was processed; try
                // again on a fresh connection.
                reconnects += 1;
                if reconnects >= 200 {
                    return at;
                }
                continue 'reconnect;
            }
            let mut reply = String::new();
            match reader.read_line(&mut reply) {
                Ok(n) if n > 0 => {
                    latency.record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    transcript.push(reply.trim_end().to_string());
                    acked.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    at += 1;
                }
                // Clean EOF: the server drained gracefully. `at` was not
                // processed; resume from it after the restart.
                Ok(_) => return at,
                // Reset: transient connection churn, not a drain.
                Err(_) => {
                    reconnects += 1;
                    if reconnects >= 200 {
                        return at;
                    }
                    continue 'reconnect;
                }
            }
        }
    }
    lines.len()
}

/// B19 — socket churn with a mid-run kill: ≥1k concurrent TCP sessions
/// (64 under `--quick`) against the snapshotting transport; the server is
/// drained mid-traffic (the in-process `kill -TERM`), restarted from its
/// snapshot directory on a new port, and every client reconnects and
/// resumes from its first unacknowledged request. Every client's full
/// reply transcript must be byte-identical to a sequential oracle server
/// that never died — zero lost sessions, zero divergent replies.
fn socket_churn(config: &Config, results: &mut Vec<CaseResult>) -> Option<SocketChurn> {
    use hazel::server::transport::{BindTo, Transport, TransportConfig};

    if !wants(config, "B19") {
        return None;
    }
    let clients = if config.quick { 64 } else { 1024 };
    let registry_factory: hazel::server::RegistryFactory = std::sync::Arc::new(|| {
        let mut registry = LivelitRegistry::new();
        hazel::std::register_all(&mut registry);
        registry
    });
    let snap_dir = std::env::temp_dir().join(format!("hzbench-b19-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    let transport_config = TransportConfig {
        max_conns: clients + 8,
        ..TransportConfig::default()
    };

    let bind = |factory: &hazel::server::RegistryFactory, dir: &std::path::Path| {
        let mut server = hazel::server::Server::with_registry(factory.clone());
        let report = server.enable_snapshots(dir).expect("snapshot dir");
        let transport = Transport::bind(
            &BindTo::Tcp("127.0.0.1:0".into()),
            server,
            transport_config.clone(),
        )
        .expect("bind");
        (transport, report)
    };

    let plans: Vec<(String, Vec<String>)> = (0..clients).map(churn_plan).collect();
    let latency = std::sync::Arc::new(Histogram::new());
    let started = Instant::now();

    // First life: all clients fire concurrently; the server is drained
    // mid-traffic, cutting an arbitrary subset of them off between
    // requests.
    let (transport, _) = bind(&registry_factory, &snap_dir);
    let addr = transport.tcp_addr().expect("tcp addr");
    let drain = transport.shutdown_handle();
    let server_thread = std::thread::spawn(move || transport.run());
    let total_requests: u64 = plans.iter().map(|(_, lines)| lines.len() as u64).sum();
    let acked_count = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let phase1: Vec<(Vec<String>, usize)> = std::thread::scope(|scope| {
        let kill_timer = {
            let drain = drain.clone();
            let acked_count = std::sync::Arc::clone(&acked_count);
            scope.spawn(move || {
                // The mid-run kill, data-triggered: wait until traffic is
                // in full swing (a quarter of the requests acked) so the
                // drain genuinely cuts clients off mid-plan, then pull
                // the plug.
                while acked_count.load(std::sync::atomic::Ordering::Relaxed) < total_requests / 4 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                drain.request_drain();
            })
        };
        let handles: Vec<_> = plans
            .iter()
            .map(|(_, lines)| {
                let latency = std::sync::Arc::clone(&latency);
                let acked_count = std::sync::Arc::clone(&acked_count);
                scope.spawn(move || {
                    let mut transcript = Vec::new();
                    let acked =
                        churn_client(addr, lines, 0, &mut transcript, &latency, &acked_count);
                    (transcript, acked)
                })
            })
            .collect();
        let out = handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect();
        kill_timer.join().expect("kill timer");
        out
    });
    let first_life = server_thread.join().expect("transport thread");
    drop(first_life.server);

    // Second life: a fresh process image — new server, restored from the
    // journals, new port. Every client resumes from its first unacked
    // request.
    let (transport, report) = bind(&registry_factory, &snap_dir);
    let restored_sessions = report.restored.len();
    assert!(report.failed.is_empty(), "{:?}", report.failed);
    assert!(
        restored_sessions > 0,
        "the mid-run kill must land after some sessions were journaled"
    );
    let addr2 = transport.tcp_addr().expect("tcp addr");
    let drain2 = transport.shutdown_handle();
    let server_thread = std::thread::spawn(move || transport.run());
    let transcripts: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .zip(&phase1)
            .map(|((_, lines), (transcript, acked))| {
                let latency = std::sync::Arc::clone(&latency);
                let mut transcript = transcript.clone();
                let acked = *acked;
                let acked_count = std::sync::Arc::clone(&acked_count);
                scope.spawn(move || {
                    let done =
                        churn_client(addr2, lines, acked, &mut transcript, &latency, &acked_count);
                    assert_eq!(done, lines.len(), "no drain in the second life");
                    transcript
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    drain2.request_drain();
    server_thread.join().expect("transport thread");
    let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let _ = std::fs::remove_dir_all(&snap_dir);

    // The oracle: one sequential server that never died, serving each
    // client's full request sequence. Byte-identical transcripts mean
    // zero sessions lost and zero requests double-applied.
    let mut oracle = hazel::server::Server::with_registry(registry_factory.clone());
    let mut lost_sessions = 0u64;
    let mut mismatched_replies = 0u64;
    let mut requests = 0u64;
    for ((_, lines), transcript) in plans.iter().zip(&transcripts) {
        if transcript.len() != lines.len() {
            lost_sessions += 1;
            continue;
        }
        requests += lines.len() as u64;
        for (line, got) in lines.iter().zip(transcript) {
            let expected = oracle.handle_line(line);
            if *got != expected {
                mismatched_replies += 1;
            }
        }
    }
    assert_eq!(lost_sessions, 0, "every client finished its plan");
    assert_eq!(
        mismatched_replies, 0,
        "resumed transcripts are byte-identical to the uninterrupted oracle"
    );

    let churn = SocketChurn {
        clients,
        requests,
        restored_sessions,
        lost_sessions,
        mismatched_replies,
        elapsed_ns,
        latency: latency.snapshot(),
    };
    results.push(summarize(
        "B19",
        "socket/churn",
        format!("{clients} clients"),
        vec![elapsed_ns],
    ));
    println!(
        "B19  socket/kill_restart              {} clients, {} req, {} restored, \
         p50 {} p99 {}, {:.0} req/s",
        churn.clients,
        churn.requests,
        churn.restored_sessions,
        hazel::trace::fmt_ns(churn.latency.p50()),
        hazel::trace::fmt_ns(churn.latency.p99()),
        churn.requests_per_sec(),
    );
    Some(churn)
}

/// The B13 document: an independent `$slider` (hole 2), the dragged
/// `$slider` (hole 0), and a dependent `$slider` whose min splice reads
/// the dragged slider's value (hole 1). The independent slider is bound
/// first so its σ — and therefore its splice-cache keys — are untouched
/// by drags of hole 0.
fn fanout_doc() -> (LivelitRegistry, Document) {
    let mut registry = LivelitRegistry::new();
    hazel::std::register_all(&mut registry);
    let program = parse_uexp(
        "let c = $slider@2{5}(0 : Int; 9 : Int) in \
         let a = $slider@0{10}(0 : Int; 100 : Int) in \
         let b = $slider@1{30}(a : Int; 100 : Int) in \
         a + b + c",
    )
    .expect("parses");
    let doc = Document::new(&registry, vec![], program).expect("doc");
    (registry, doc)
}

/// The grading document of B7: a `$dataframe` with two score columns and
/// one row per student, feeding the grading library.
fn grading_doc(students: usize) -> (LivelitRegistry, Document) {
    let mut registry = LivelitRegistry::new();
    hazel::std::register_all(&mut registry);
    let program = parse_uexp(
        "let grades = ?0 in \
         let averages = compute_weighted_averages grades [Float| 1., 1.] in \
         let cutoffs = (.A 86., .B 76., .C 67., .D 48.) in \
         format_for_university (assign_grades averages cutoffs)",
    )
    .expect("parses");
    let mut doc = Document::new(&registry, grading_prelude(), program).expect("doc");
    doc.fill_hole_with_livelit(&registry, HoleName(0), "$dataframe", vec![])
        .expect("fill");
    for _ in 0..2 {
        doc.dispatch(HoleName(0), &iv::record([("add_col", IExp::Unit)]))
            .expect("col");
    }
    for _ in 0..students {
        doc.dispatch(HoleName(0), &iv::record([("add_row", IExp::Unit)]))
            .expect("row");
    }
    let m = DataframeModel::from_value(doc.instance(HoleName(0)).unwrap().model()).expect("model");
    for (ri, (key, cells)) in m.rows.iter().enumerate() {
        doc.edit_splice(HoleName(0), *key, UExp::Str(format!("student{ri}")))
            .expect("key");
        for (ci, cell) in cells.iter().enumerate() {
            doc.edit_splice(
                HoleName(0),
                *cell,
                UExp::Float(50.0 + ((ri * 7 + ci * 13) % 50) as f64),
            )
            .expect("cell");
        }
    }
    (registry, doc)
}

/// The image-filter preset of B8, mapped over `n` photos — one collected
/// closure per application.
fn photo_program(n: usize) -> UExp {
    let urls: Vec<String> = (0..n).map(|i| format!("\"img://photo{i}\"")).collect();
    parse_uexp(&format!(
        "let classic_look = fun url : Str -> \
           $basic_adjustments@0{{(.contrast 1, .brightness 2)}}(\
             url : Str; 10 : Int; 5 : Int) in \
         let photos = [Str| {}] in \
         (fix go : (List(Str) -> List((.w Int, .h Int, .px List(Int)))) -> \
          fun urls : List(Str) -> \
          lcase urls \
          | [] -> [(.w Int, .h Int, .px List(Int))|] \
          | u :: rest -> classic_look u :: go rest \
          end) photos",
        urls.join(", ")
    ))
    .expect("parses")
}

/// The B15 module: a chain of `n` library definitions, each referencing
/// the one before it, under a program whose slider reads the last — so a
/// splice edit dirties exactly one of the `n + 1` flow units.
fn def_chain_doc(n: usize) -> (LivelitRegistry, Document) {
    let mut registry = LivelitRegistry::new();
    hazel::std::register_all(&mut registry);
    let mut src = String::from("def d0 : Int = 1 ;;\n");
    for i in 1..n {
        src.push_str(&format!("def d{i} : Int = d{} + 1 ;;\n", i - 1));
    }
    src.push_str(&format!("$slider@0{{10}}(0 : Int; d{} : Int)", n - 1));
    hazel::editor::open_module(registry, &src).expect("module")
}

/// The B10 document: a `$slider` plus `n` units of surrounding evaluation
/// work, so a drag exercises the incremental fast path.
fn doc_with_work(n: i64) -> (LivelitRegistry, Document) {
    let mut registry = LivelitRegistry::new();
    hazel::std::register_all(&mut registry);
    let program = parse_uexp(&format!(
        "let v = $slider@0{{10}}(0 : Int; 100 : Int) in \
         let heavy = (fix go : (Int -> Int) -> fun k : Int -> \
            if k <= 0 then 0 else k + go (k - 1)) {n} in \
         v + heavy"
    ))
    .expect("parses");
    let doc = Document::new(&registry, vec![], program).expect("doc");
    (registry, doc)
}

/// Runs one representative slice of the suite under an installed tracer to
/// populate the per-phase section of the report — the same spans and
/// counters `hazel stats` surfaces.
fn traced_representative_run() -> hazel::trace::Stats {
    let sink = StatsSink::new();
    let tracer = Tracer::monotonic(sink.clone());
    let guard = hazel::trace::install(&tracer);

    let phi = bench_phi(&[]);
    expand_typed(&phi, &Ctx::empty(), &many_invocations(16)).expect("expands");
    let collection = hazel::core::collect(&phi, &deep_scope_invocation(16)).expect("collects");
    collection.resume_result().expect("resumes");
    let splice = UExp::Bin(
        BinOp::Add,
        Box::new(UExp::Var(Var::new("x15"))),
        Box::new(UExp::Int(1)),
    );
    hazel::core::eval_splice(&phi, &collection, HoleName(0), 0, &splice, &Typ::Int)
        .expect("live eval");
    let (registry, doc) = grading_doc(5);
    hazel::editor::run(&registry, &doc).expect("pipeline");
    let old = sized_view(100);
    let edited = sized_view_edited(100, 50);
    hazel::mvu::diff(&old, &edited);

    drop(guard);
    sink.snapshot()
}

/// The overhead experiment: wall time of a representative workload
/// untraced versus with a [`NullSink`] tracer installed (which keeps the
/// probes on the disabled fast path — see `Sink::is_noop`). The contract
/// is a ratio under 1.02 (2%).
///
/// The two configurations are interleaved round-robin and compared by
/// their minimum per-round time, so slow drift on a shared machine cannot
/// masquerade as probe overhead.
fn overhead_experiment(iters: u32) -> (u64, u64) {
    let phi = bench_phi(&[]);
    let program = many_invocations(16);
    let workload = || hazel::core::collect(&phi, &program).expect("collects");
    let tracer = Tracer::monotonic(NullSink);

    let mut baseline = u64::MAX;
    let mut noop = u64::MAX;
    // ABBA ordering: alternate which configuration runs first in a round,
    // so cache/allocator state warmed by one cannot systematically favor
    // the other.
    for round in 0..iters.max(41) {
        for first in [round % 2 == 0, round % 2 != 0] {
            if first {
                baseline = baseline.min(sample(1, workload)[0]);
            } else {
                let guard = hazel::trace::install(&tracer);
                noop = noop.min(sample(1, workload)[0]);
                drop(guard);
            }
        }
    }
    (baseline, noop)
}

#[allow(clippy::too_many_arguments)]
fn render_report(
    results: &[CaseResult],
    hists: &[HistResult],
    retained: &[RetainedResult],
    phases: &hazel::trace::Stats,
    baseline_ns: u64,
    noop_ns: u64,
    serve: Option<&ServeLoad>,
    socket: Option<&SocketChurn>,
    metrics_overhead: (u64, u64, f64),
) -> String {
    use hazel::trace::event::json_string;
    let mut out = String::from("{\"results\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        json_string(&mut out, r.id);
        out.push_str(",\"group\":");
        json_string(&mut out, r.group);
        out.push_str(",\"case\":");
        json_string(&mut out, &r.case);
        out.push_str(&format!(
            ",\"iters\":{},\"median_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
            r.iters, r.median_ns, r.mean_ns, r.min_ns, r.max_ns
        ));
    }
    out.push_str("],\"histograms\":[");
    for (i, h) in hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"id\":");
        json_string(&mut out, h.id);
        out.push_str(",\"group\":");
        json_string(&mut out, h.group);
        out.push_str(",\"case\":");
        json_string(&mut out, &h.case);
        out.push_str(",\"latency\":");
        h.snapshot.write_json(&mut out);
        out.push('}');
    }
    out.push_str("],\"retained\":[");
    for (i, r) in retained.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"defs\":{},\"warm_p50_ns\":{},\"warm_p99_ns\":{},\
             \"cold_p50_ns\":{},\"cold_p99_ns\":{},\"warm_views_mean_ns\":{},\
             \"legacy_views_median_ns\":{},\
             \"patch_bytes\":{},\
             \"full_bytes\":{},\"reused\":{},\"rebuilt\":{},\
             \"reused_fraction\":{:.4}}}",
            r.defs,
            r.warm.p50(),
            r.warm.p99(),
            r.cold.p50(),
            r.cold.p99(),
            r.views_mean_ns,
            r.legacy_views_median_ns,
            r.patch_bytes,
            r.full_bytes,
            r.reused,
            r.rebuilt,
            r.reused_fraction()
        ));
    }
    out.push_str("],\"phases\":");
    phases.write_json(&mut out);
    if let Some(load) = serve {
        out.push_str(&format!(
            ",\"serve\":{{\"requests\":{},\"errors\":{},\"elapsed_ns\":{},\
             \"requests_per_sec\":{:.0},\"drag_patch_bytes\":{},\
             \"drag_full_bytes\":{},\"drag_patch_ratio\":{:.4}}}",
            load.requests,
            load.errors,
            load.elapsed_ns,
            load.requests_per_sec(),
            load.drag_patch_bytes,
            load.drag_full_bytes,
            load.drag_ratio()
        ));
    }
    if let Some(churn) = socket {
        out.push_str(&format!(
            ",\"socket_churn\":{{\"clients\":{},\"requests\":{},\
             \"restored_sessions\":{},\"lost_sessions\":{},\
             \"mismatched_replies\":{},\"elapsed_ns\":{},\
             \"requests_per_sec\":{:.0},\"p50_ns\":{},\"p99_ns\":{}}}",
            churn.clients,
            churn.requests,
            churn.restored_sessions,
            churn.lost_sessions,
            churn.mismatched_replies,
            churn.elapsed_ns,
            churn.requests_per_sec(),
            churn.latency.p50(),
            churn.latency.p99(),
        ));
    }
    let ratio = noop_ns as f64 / baseline_ns.max(1) as f64;
    out.push_str(&format!(
        ",\"overhead\":{{\"baseline_min_ns\":{baseline_ns},\
         \"noop_traced_min_ns\":{noop_ns},\"ratio\":{ratio:.4}}}"
    ));
    let (off_ns, on_ns, metrics_ratio) = metrics_overhead;
    out.push_str(&format!(
        ",\"serve_metrics_overhead\":{{\"off_min_ns\":{off_ns},\
         \"on_min_ns\":{on_ns},\"ratio\":{metrics_ratio:.4}}}}}\n"
    ));
    out
}

fn main() {
    let mut config = Config {
        iters: 7,
        quick: false,
        only: None,
        out: "BENCH_trace.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                config.quick = true;
                config.iters = 3;
            }
            "--iters" => {
                config.iters = args.next().and_then(|v| v.parse().ok()).expect("--iters N");
            }
            "--only" => config.only = Some(args.next().expect("--only Bn")),
            "--out" => config.out = args.next().expect("--out PATH"),
            other => {
                eprintln!("livelit-bench: unknown argument {other}");
                eprintln!("usage: livelit-bench [--quick] [--iters N] [--only Bn] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let mut results = Vec::new();
    run_suite(&config, &mut results);
    let serve = serve_load(&config, &mut results);
    let socket = socket_churn(&config, &mut results);
    let mut hists = Vec::new();
    latency_histograms(&config, &mut hists);
    let mut retained = Vec::new();
    retained_render(&config, &mut hists, &mut retained);
    for r in &results {
        println!(
            "{:<4} {:<32} {:>8}  median {:>12}  (min {} / max {})",
            r.id,
            r.group,
            r.case,
            hazel::trace::fmt_ns(r.median_ns),
            hazel::trace::fmt_ns(r.min_ns),
            hazel::trace::fmt_ns(r.max_ns),
        );
    }
    for h in &hists {
        println!(
            "{:<4} {:<32} {:>8}  p50 {:>12}  p99 {:>12}  max {}",
            h.id,
            h.group,
            h.case,
            hazel::trace::fmt_ns(h.snapshot.p50()),
            hazel::trace::fmt_ns(h.snapshot.p99()),
            hazel::trace::fmt_ns(h.snapshot.max),
        );
    }
    for r in &retained {
        println!(
            "B17  retained/patch_payload        {:>4} defs  patch {}B vs full {}B  \
             views {} (legacy {})  reused {:.1}%",
            r.defs,
            r.patch_bytes,
            r.full_bytes,
            hazel::trace::fmt_ns(r.views_mean_ns),
            hazel::trace::fmt_ns(r.legacy_views_median_ns),
            r.reused_fraction() * 100.0,
        );
    }

    let phases = traced_representative_run();
    let (baseline_ns, noop_ns) = overhead_experiment(config.iters.max(9));
    let ratio = noop_ns as f64 / baseline_ns.max(1) as f64;
    println!("\nper-phase stats (one traced representative run):");
    print!("{}", phases.render());
    println!(
        "\ntracing-off overhead: baseline {} vs no-op-sink {} (ratio {ratio:.4})",
        hazel::trace::fmt_ns(baseline_ns),
        hazel::trace::fmt_ns(noop_ns),
    );
    let metrics_overhead = serve_metrics_overhead(config.iters.max(9));
    let metrics_ratio = metrics_overhead.2;
    println!(
        "serve metrics overhead: off {} vs full metrics stack {} (ratio {metrics_ratio:.4})",
        hazel::trace::fmt_ns(metrics_overhead.0),
        hazel::trace::fmt_ns(metrics_overhead.1),
    );

    let report = render_report(
        &results,
        &hists,
        &retained,
        &phases,
        baseline_ns,
        noop_ns,
        serve.as_ref(),
        socket.as_ref(),
        metrics_overhead,
    );
    std::fs::write(&config.out, &report).expect("write report");
    println!("\nwrote {}", config.out);
}
