//! The `$color` livelit — the paper's prototypic livelit definition,
//! implemented line-by-line after Fig. 3.
//!
//! - `type Color = (.r Int, .g Int, .b Int, .a Int)` — the expansion type.
//! - `type Model = (.r SpliceRef, .g SpliceRef, .b SpliceRef, .a SpliceRef)`.
//! - `init` creates four `Int` splices initialized to `0, 0, 0, 100`.
//! - `Action = ClickOn(Color)`: clicking a palette swatch overwrites all
//!   four splices with literals (`set_splice`, Sec. 3.2.4).
//! - `view` evaluates the four splices to determine the preview color; if
//!   any is indeterminate, the preview is disabled (shown as `X`,
//!   Fig. 3 lines 26–34).
//! - `expand` returns `` `fun r g b a -> (r, g, b, a)` `` with the four
//!   splice references (Fig. 3 lines 55–57).

use hazel_lang::build;
use hazel_lang::external::EExp;
use hazel_lang::ident::{Label, LivelitName};
use hazel_lang::typ::Typ;
use hazel_lang::value::iv;
use hazel_lang::IExp;
use livelit_core::live::LiveResult;
use livelit_mvu::html::tags::*;
use livelit_mvu::html::{Dim, Html};
use livelit_mvu::livelit::{Action, CmdError, Livelit, Model, UpdateCtx, ViewCtx};
use livelit_mvu::splice::SpliceRef;

/// The `Color` type: `(.r Int, .g Int, .b Int, .a Int)`.
pub fn color_typ() -> Typ {
    Typ::prod([
        (Label::new("r"), Typ::Int),
        (Label::new("g"), Typ::Int),
        (Label::new("b"), Typ::Int),
        (Label::new("a"), Typ::Int),
    ])
}

/// The model type: a labeled 4-tuple of splice references.
pub fn color_model_typ() -> Typ {
    Typ::prod([
        (Label::new("r"), livelit_mvu::splice::splice_ref_typ()),
        (Label::new("g"), livelit_mvu::splice::splice_ref_typ()),
        (Label::new("b"), livelit_mvu::splice::splice_ref_typ()),
        (Label::new("a"), livelit_mvu::splice::splice_ref_typ()),
    ])
}

/// The palette of clickable swatches shown in the view.
pub const PALETTE: [(i64, i64, i64); 6] = [
    (57, 107, 57), // the Fig. 1b green
    (220, 50, 47),
    (38, 139, 210),
    (181, 137, 0),
    (211, 54, 130),
    (0, 0, 0),
];

/// The `$color` livelit.
#[derive(Debug, Default, Clone, Copy)]
pub struct ColorLivelit;

fn model_ref(model: &Model, l: &str) -> Result<SpliceRef, CmdError> {
    model
        .field(&Label::new(l))
        .and_then(SpliceRef::from_value)
        .ok_or_else(|| CmdError::Custom(format!("color model missing .{l}")))
}

impl ColorLivelit {
    fn component_refs(model: &Model) -> Result<[SpliceRef; 4], CmdError> {
        Ok([
            model_ref(model, "r")?,
            model_ref(model, "g")?,
            model_ref(model, "b")?,
            model_ref(model, "a")?,
        ])
    }
}

impl Livelit for ColorLivelit {
    // `expand` is a pure function of the model: attested so the static
    // purity analysis (LL06xx) can discharge the dynamic determinism
    // check (LL0401) for this livelit.
    fn expand_pure(&self) -> bool {
        true
    }

    fn name(&self) -> LivelitName {
        LivelitName::new("$color")
    }

    fn expansion_ty(&self) -> Typ {
        color_typ()
    }

    fn model_ty(&self) -> Typ {
        color_model_typ()
    }

    fn init(&self, _params: &[SpliceRef], ctx: &mut UpdateCtx<'_>) -> Result<Model, CmdError> {
        // Fig. 3 lines 8-13: four new Int splices, alpha defaulting to 100.
        let r = ctx.new_splice(Typ::Int, Some(build::int(0)))?;
        let g = ctx.new_splice(Typ::Int, Some(build::int(0)))?;
        let b = ctx.new_splice(Typ::Int, Some(build::int(0)))?;
        let a = ctx.new_splice(Typ::Int, Some(build::int(100)))?;
        Ok(iv::record([
            ("r", r.to_value()),
            ("g", g.to_value()),
            ("b", b.to_value()),
            ("a", a.to_value()),
        ]))
    }

    fn update(
        &self,
        model: &Model,
        action: &Action,
        ctx: &mut UpdateCtx<'_>,
    ) -> Result<Model, CmdError> {
        // Action = ClickOn(Color): encoded as (.click_on (.r _, .g _, .b _, .a _)).
        let color = action
            .field(&Label::new("click_on"))
            .ok_or_else(|| CmdError::Custom("unknown $color action".into()))?;
        let refs = Self::component_refs(model)?;
        // Fig. 3 lines 46-53: overwrite each splice with the clicked
        // component literal.
        for (slot, l) in refs.iter().zip(["r", "g", "b", "a"]) {
            let component = color
                .field(&Label::new(l))
                .and_then(IExp::as_int)
                .ok_or_else(|| CmdError::Custom(format!("ClickOn missing .{l}")))?;
            ctx.set_splice(*slot, build::int(component))?;
        }
        Ok(model.clone())
    }

    fn view(&self, model: &Model, ctx: &mut ViewCtx<'_>) -> Result<Html<Action>, CmdError> {
        let refs = Self::component_refs(model)?;

        // Fig. 3 lines 19-35: determine a color to display by evaluating
        // the splices; indeterminate components disable the preview.
        let mut components = Vec::with_capacity(4);
        for r in refs {
            match ctx.eval_splice(r)? {
                Some(LiveResult::Val(IExp::Int(n))) => components.push(n),
                _ => {
                    components.clear();
                    break;
                }
            }
        }
        let preview = if components.len() == 4 {
            Html::text(format!(
                "rgba({}, {}, {}, {}%)",
                components[0], components[1], components[2], components[3]
            ))
        } else {
            // "indeterminate color shown as X"
            Html::text("X")
        };

        // Fig. 3 lines 37-42: splice editors of fixed width 20.
        let size = Dim::fixed_width(20);
        let editors = div(vec![
            span(vec![Html::text("r: "), ctx.editor(refs[0], size)]),
            span(vec![Html::text("g: "), ctx.editor(refs[1], size)]),
            span(vec![Html::text("b: "), ctx.editor(refs[2], size)]),
            span(vec![Html::text("a: "), ctx.editor(refs[3], size)]),
        ]);

        // A clickable palette emitting ClickOn actions.
        let swatches = Html::node(
            "row",
            PALETTE
                .iter()
                .enumerate()
                .map(|(i, (r, g, b))| {
                    button(vec![Html::text("■")])
                        .attr("id", format!("swatch-{i}"))
                        .on_click(iv::record([(
                            "click_on",
                            iv::record([
                                ("r", iv::int(*r)),
                                ("g", iv::int(*g)),
                                ("b", iv::int(*b)),
                                ("a", iv::int(100)),
                            ]),
                        )]))
                })
                .collect(),
        );

        Ok(div(vec![
            span(vec![Html::text("preview: "), preview]).attr("id", "preview"),
            editors,
            swatches,
        ]))
    }

    /// An edited Color result pushes back by overwriting the component
    /// splices with literals — the same mechanism as a palette click.
    fn push_result(
        &self,
        model: &Model,
        new_value: &IExp,
        ctx: &mut UpdateCtx<'_>,
    ) -> Result<Option<Model>, CmdError> {
        let refs = Self::component_refs(model)?;
        let mut components = Vec::with_capacity(4);
        for l in ["r", "g", "b", "a"] {
            match new_value.field(&Label::new(l)).and_then(IExp::as_int) {
                Some(n) => components.push(n),
                None => return Ok(None),
            }
        }
        for (slot, n) in refs.iter().zip(components) {
            ctx.set_splice(*slot, build::int(n))?;
        }
        Ok(Some(model.clone()))
    }

    fn expand(&self, model: &Model) -> Result<(EExp, Vec<SpliceRef>), String> {
        let refs = Self::component_refs(model).map_err(|e| e.to_string())?;
        // Fig. 3 lines 55-57: `fun r g b a -> (r, g, b, a)` with the splice
        // list [model.r, model.g, model.b, model.a].
        let pexpansion = build::lams(
            [
                ("r", Typ::Int),
                ("g", Typ::Int),
                ("b", Typ::Int),
                ("a", Typ::Int),
            ],
            build::record([
                ("r", build::var("r")),
                ("g", build::var("g")),
                ("b", build::var("b")),
                ("a", build::var("a")),
            ]),
        );
        Ok((pexpansion, refs.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::ident::HoleName;
    use hazel_lang::typing::Ctx;
    use hazel_lang::unexpanded::UExp;
    use livelit_core::def::LivelitCtx;
    use livelit_mvu::host::Instance;
    use std::sync::Arc;

    fn instance() -> Instance {
        Instance::new(Arc::new(ColorLivelit), HoleName(0), vec![], 1 << 20).unwrap()
    }

    #[test]
    fn init_creates_four_int_splices() {
        let inst = instance();
        assert_eq!(inst.store().len(), 4);
        let ap = inst.invocation().unwrap();
        assert_eq!(ap.splices.len(), 4);
        assert!(ap.splices.iter().all(|s| s.ty == Typ::Int));
        // Defaults 0, 0, 0, 100.
        assert_eq!(ap.splices[0].exp, UExp::Int(0));
        assert_eq!(ap.splices[3].exp, UExp::Int(100));
    }

    #[test]
    fn expansion_is_the_fig3_lambda() {
        let inst = instance();
        let pexp = inst.pexpansion().unwrap();
        let printed = hazel_lang::pretty::print_eexp(&pexp, 200);
        assert_eq!(
            printed,
            "fun r : Int -> fun g : Int -> fun b : Int -> fun a : Int -> \
             (.r r, .g g, .b b, .a a)"
        );
        // It validates: closed, of type Int -> Int -> Int -> Int -> Color.
        assert!(pexp.is_closed());
        let (ty, _) = hazel_lang::typing::syn(&Ctx::empty(), &pexp).unwrap();
        assert_eq!(ty, Typ::arrows(vec![Typ::Int; 4], color_typ()));
    }

    #[test]
    fn click_on_swatch_sets_all_splices() {
        let mut inst = instance();
        let phi = LivelitCtx::new();
        let gamma = Ctx::empty();
        inst.click(&phi, &gamma, &[], 100_000, "swatch-0").unwrap();
        let ap = inst.invocation().unwrap();
        assert_eq!(ap.splices[0].exp, UExp::Int(57));
        assert_eq!(ap.splices[1].exp, UExp::Int(107));
        assert_eq!(ap.splices[2].exp, UExp::Int(57));
        assert_eq!(ap.splices[3].exp, UExp::Int(100));
    }

    #[test]
    fn view_preview_live_with_env_and_x_without() {
        let inst = instance();
        let phi = LivelitCtx::new();
        let gamma = Ctx::empty();
        // Without a closure, splices cannot be evaluated: preview is X.
        let view = inst.view(&phi, &gamma, &[], 100_000).unwrap();
        let lines = render_lines(&view);
        assert!(lines[0].contains('X'), "{lines:?}");

        // With the (empty) environment of a collected closure, the literal
        // splices evaluate and the preview shows the color.
        let env = hazel_lang::Sigma::empty();
        let view = inst
            .view(&phi, &gamma, std::slice::from_ref(&env), 100_000)
            .unwrap();
        let lines = render_lines(&view);
        assert!(
            lines[0].contains("rgba(0, 0, 0, 100%)"),
            "preview should be live: {lines:?}"
        );
    }

    fn render_lines(view: &Html<Action>) -> Vec<String> {
        hazel_editor_render(view)
    }

    // Minimal local rendering to avoid a dependency cycle with the editor
    // crate: flatten all text nodes per top-level child.
    fn hazel_editor_render(view: &Html<Action>) -> Vec<String> {
        fn collect(h: &Html<Action>, out: &mut String) {
            match h {
                Html::Text(s) => out.push_str(s),
                Html::Element { children, .. } => {
                    for c in children {
                        collect(c, out);
                    }
                }
                Html::Editor { splice, .. } => {
                    out.push_str(&format!("[{splice}]"));
                }
                Html::ResultView { splice, .. } => {
                    out.push_str(&format!("<{splice}>"));
                }
            }
        }
        match view {
            Html::Element { children, .. } => children
                .iter()
                .map(|c| {
                    let mut s = String::new();
                    collect(c, &mut s);
                    s
                })
                .collect(),
            other => {
                let mut s = String::new();
                collect(other, &mut s);
                vec![s]
            }
        }
    }

    #[test]
    fn full_invocation_expands_to_color_value() {
        // let baseline = 57 in (a $color invocation with splices referencing
        // baseline) — the Fig. 1b composition, end to end through the
        // calculus.
        let mut inst = instance();
        let refs = ColorLivelit::component_refs(inst.model()).unwrap();
        inst.edit_splice(refs[0], UExp::Var(hazel_lang::Var::new("baseline")))
            .unwrap();
        inst.edit_splice(
            refs[1],
            UExp::Bin(
                hazel_lang::BinOp::Add,
                Box::new(UExp::Var(hazel_lang::Var::new("baseline"))),
                Box::new(UExp::Int(50)),
            ),
        )
        .unwrap();
        let ap = inst.invocation().unwrap();
        let program = UExp::Let(
            hazel_lang::Var::new("baseline"),
            None,
            Box::new(UExp::Int(57)),
            Box::new(UExp::Livelit(Box::new(ap))),
        );
        let mut phi = LivelitCtx::new();
        phi.define(livelit_mvu::host::def_for(
            &(Arc::new(ColorLivelit) as Arc<dyn Livelit>),
        ))
        .unwrap();
        let collection = livelit_core::cc::collect(&phi, &program).unwrap();
        let result = collection.resume_result().unwrap();
        assert_eq!(result.field(&Label::new("r")), Some(&iv::int(57)));
        assert_eq!(result.field(&Label::new("g")), Some(&iv::int(107)));
        assert_eq!(result.field(&Label::new("a")), Some(&iv::int(100)));
    }
}
