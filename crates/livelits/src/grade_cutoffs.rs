//! The `$grade_cutoffs` livelit (Fig. 1c, Sec. 2.1).
//!
//! `livelit $grade_cutoffs (averages : List(Float)) at
//! (.A Float, .B Float, .C Float, .D Float)` — draggable "paddles"
//! superimposed on a live visualization of the distribution of averages,
//! which arrive as a livelit *parameter*. When grades are missing the
//! livelit degrades gracefully: "it would display only the list elements
//! that are values on the timeline, skipping indeterminate elements"
//! (Sec. 2.5.2).

use hazel_lang::build;
use hazel_lang::external::EExp;
use hazel_lang::ident::{Label, LivelitName};
use hazel_lang::typ::Typ;
use hazel_lang::value::iv;
use hazel_lang::IExp;
use livelit_mvu::html::tags::*;
use livelit_mvu::html::Html;
use livelit_mvu::livelit::{Action, CmdError, Livelit, Model, UpdateCtx, ViewCtx};
use livelit_mvu::splice::SpliceRef;

/// The expansion type: `(.A Float, .B Float, .C Float, .D Float)`.
pub fn cutoffs_typ() -> Typ {
    Typ::prod([
        (Label::new("A"), Typ::Float),
        (Label::new("B"), Typ::Float),
        (Label::new("C"), Typ::Float),
        (Label::new("D"), Typ::Float),
    ])
}

/// Walks a (possibly indeterminate) list result, collecting the elements
/// that are float *values* and skipping indeterminate elements — the
/// Sec. 2.5.2 degradation. Stops at an undetermined spine (e.g. a hole in
/// tail position), returning what was gathered so far.
pub fn determined_floats(d: &IExp) -> Vec<f64> {
    let mut out = Vec::new();
    let mut cur = d;
    loop {
        match cur {
            IExp::Cons(h, t) => {
                if let IExp::Float(x) = h.as_ref() {
                    out.push(*x);
                }
                cur = t;
            }
            _ => return out,
        }
    }
}

/// The `$grade_cutoffs` livelit.
#[derive(Debug, Default, Clone, Copy)]
pub struct GradeCutoffsLivelit;

const PADDLES: [&str; 4] = ["A", "B", "C", "D"];

fn cutoff(model: &Model, l: &str) -> Result<f64, CmdError> {
    model
        .field(&Label::new(l))
        .and_then(IExp::as_float)
        .ok_or_else(|| CmdError::Custom(format!("cutoffs model missing .{l}")))
}

impl Livelit for GradeCutoffsLivelit {
    // `expand` is a pure function of the model: attested so the static
    // purity analysis (LL06xx) can discharge the dynamic determinism
    // check (LL0401) for this livelit.
    fn expand_pure(&self) -> bool {
        true
    }

    fn name(&self) -> LivelitName {
        LivelitName::new("$grade_cutoffs")
    }

    fn param_tys(&self) -> Vec<Typ> {
        vec![Typ::list(Typ::Float)]
    }

    fn expansion_ty(&self) -> Typ {
        cutoffs_typ()
    }

    /// The model is the current paddle positions — the same shape as the
    /// expansion.
    fn model_ty(&self) -> Typ {
        cutoffs_typ()
    }

    fn init(&self, _params: &[SpliceRef], _ctx: &mut UpdateCtx<'_>) -> Result<Model, CmdError> {
        // The Fig. 1c defaults the instructor then drags from.
        Ok(iv::record([
            ("A", iv::float(90.0)),
            ("B", iv::float(80.0)),
            ("C", iv::float(70.0)),
            ("D", iv::float(60.0)),
        ]))
    }

    fn update(
        &self,
        model: &Model,
        action: &Action,
        _ctx: &mut UpdateCtx<'_>,
    ) -> Result<Model, CmdError> {
        // Action: (.drag (.paddle "B", .to 76.))
        let drag = action
            .field(&Label::new("drag"))
            .ok_or_else(|| CmdError::Custom("unknown $grade_cutoffs action".into()))?;
        let paddle = drag
            .field(&Label::new("paddle"))
            .and_then(IExp::as_str)
            .ok_or_else(|| CmdError::Custom("drag needs .paddle".into()))?
            .to_owned();
        let to = drag
            .field(&Label::new("to"))
            .and_then(IExp::as_float)
            .ok_or_else(|| CmdError::Custom("drag needs .to".into()))?;
        if !PADDLES.contains(&paddle.as_str()) {
            return Err(CmdError::Custom(format!("unknown paddle {paddle}")));
        }
        let mut fields = Vec::with_capacity(4);
        for l in PADDLES {
            let v = if l == paddle { to } else { cutoff(model, l)? };
            fields.push((l, iv::float(v)));
        }
        // Paddles must stay ordered A ≥ B ≥ C ≥ D — otherwise the cutoffs
        // are non-sensical and the drag is rejected with a custom error.
        let values: Vec<f64> = fields
            .iter()
            .map(|(_, v)| v.as_float().expect("built above"))
            .collect();
        if values.windows(2).any(|w| w[0] < w[1]) {
            return Err(CmdError::Custom(
                "cutoffs must be ordered A >= B >= C >= D".into(),
            ));
        }
        Ok(iv::record(fields))
    }

    fn view(&self, model: &Model, ctx: &mut ViewCtx<'_>) -> Result<Html<Action>, CmdError> {
        // Live evaluation of the averages *parameter* (always SpliceRef 0).
        let averages: Vec<f64> = match ctx.eval_splice(SpliceRef(0))? {
            // Sec. 2.5.2: both for values and indeterminate results, plot
            // whatever elements are determined.
            Some(result) => determined_floats(result.exp()),
            None => Vec::new(),
        };

        // A 0..100 timeline, one character per 2 points: marks for each
        // average, paddle letters at the cutoffs.
        const W: usize = 51;
        let mut line = vec!['·'; W];
        for avg in &averages {
            let i = ((avg / 2.0).round() as usize).min(W - 1);
            line[i] = '*';
        }
        let mut paddles_row = vec![' '; W];
        for l in PADDLES {
            let v = cutoff(model, l)?;
            let i = ((v / 2.0).round() as usize).min(W - 1);
            paddles_row[i] = l.chars().next().expect("nonempty");
        }

        Ok(div(vec![
            Html::text(paddles_row.into_iter().collect::<String>()),
            Html::text(line.into_iter().collect::<String>()),
            Html::text(format!(
                "A: {}  B: {}  C: {}  D: {}   ({} averages plotted)",
                cutoff(model, "A")?,
                cutoff(model, "B")?,
                cutoff(model, "C")?,
                cutoff(model, "D")?,
                averages.len()
            )),
        ])
        .attr("id", "cutoffs"))
    }

    /// Cutoffs are literals in the expansion, so an edited result record
    /// pushes straight back into the paddles (Sec. 7 bidirectionality).
    fn push_result(
        &self,
        _model: &Model,
        new_value: &IExp,
        _ctx: &mut UpdateCtx<'_>,
    ) -> Result<Option<Model>, CmdError> {
        let mut fields = Vec::with_capacity(4);
        for l in PADDLES {
            match new_value.field(&Label::new(l)).and_then(IExp::as_float) {
                Some(v) => fields.push((l, iv::float(v))),
                None => return Ok(None),
            }
        }
        Ok(Some(iv::record(fields)))
    }

    fn expand(&self, model: &Model) -> Result<(EExp, Vec<SpliceRef>), String> {
        let mut fields = Vec::with_capacity(4);
        for l in PADDLES {
            let v = cutoff(model, l).map_err(|e| e.to_string())?;
            fields.push((l, build::float(v)));
        }
        // fun averages : List(Float) -> (.A _, .B _, .C _, .D _)
        Ok((
            build::lam("averages", Typ::list(Typ::Float), build::record(fields)),
            vec![SpliceRef(0)],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::ident::HoleName;
    use hazel_lang::unexpanded::UExp;
    use hazel_lang::Sigma;
    use livelit_core::def::LivelitCtx;
    use livelit_mvu::host::Instance;
    use std::sync::Arc;

    fn instance() -> Instance {
        Instance::new(
            Arc::new(GradeCutoffsLivelit),
            HoleName(0),
            vec![UExp::Var(hazel_lang::Var::new("averages"))],
            1 << 20,
        )
        .unwrap()
    }

    #[test]
    fn drag_updates_one_paddle() {
        let mut inst = instance();
        inst.dispatch(&iv::record([(
            "drag",
            iv::record([("paddle", iv::string("B")), ("to", iv::float(76.0))]),
        )]))
        .unwrap();
        assert_eq!(cutoff(inst.model(), "B").unwrap(), 76.0);
        assert_eq!(cutoff(inst.model(), "A").unwrap(), 90.0);
    }

    #[test]
    fn unordered_drag_rejected() {
        let mut inst = instance();
        // Dragging D above C is non-sensical.
        let err = inst
            .dispatch(&iv::record([(
                "drag",
                iv::record([("paddle", iv::string("D")), ("to", iv::float(85.0))]),
            )]))
            .unwrap_err();
        assert!(matches!(err, CmdError::Custom(ref m) if m.contains("ordered")));
    }

    #[test]
    fn expansion_is_the_labeled_tuple() {
        let inst = instance();
        let pexp = inst.pexpansion().unwrap();
        let (ty, _) = hazel_lang::typing::syn(&hazel_lang::typing::Ctx::empty(), &pexp).unwrap();
        assert_eq!(ty, Typ::arrow(Typ::list(Typ::Float), cutoffs_typ()));
    }

    #[test]
    fn determined_floats_skips_indeterminate_elements() {
        // [86.4, ⦇⦈, 72.1 | ⦇⦈]  — a hole element and a hole tail.
        let hole = IExp::EmptyHole(HoleName(9), Sigma::empty());
        let d = IExp::Cons(
            Box::new(IExp::Float(86.4)),
            Box::new(IExp::Cons(
                Box::new(hole.clone()),
                Box::new(IExp::Cons(Box::new(IExp::Float(72.1)), Box::new(hole))),
            )),
        );
        assert_eq!(determined_floats(&d), vec![86.4, 72.1]);
    }

    #[test]
    fn view_plots_averages_from_live_parameter() {
        let inst = instance();
        let mut phi = LivelitCtx::new();
        phi.define(livelit_mvu::host::def_for(
            &(Arc::new(GradeCutoffsLivelit) as Arc<dyn Livelit>),
        ))
        .unwrap();
        let gamma = hazel_lang::typing::Ctx::from_bindings([(
            hazel_lang::Var::new("averages"),
            Typ::list(Typ::Float),
        )]);
        let env = Sigma::from_iter([(
            hazel_lang::Var::new("averages"),
            hazel_lang::value::iv::list(Typ::Float, [iv::float(86.0), iv::float(42.0)]),
        )]);
        let view = inst
            .view(&phi, &gamma, std::slice::from_ref(&env), 1_000_000)
            .unwrap();
        let text = flatten(&view);
        assert!(text.contains("2 averages plotted"), "{text}");
        assert!(text.contains('*'));
        assert!(text.contains('A'));
    }

    #[test]
    fn view_degrades_without_closures() {
        let inst = instance();
        let phi = LivelitCtx::new();
        let gamma = hazel_lang::typing::Ctx::empty();
        let view = inst.view(&phi, &gamma, &[], 1_000_000).unwrap();
        assert!(flatten(&view).contains("0 averages plotted"));
    }

    #[test]
    fn full_fig1c_dataflow() {
        // let averages = [86., 72., 65.] in $grade_cutoffs averages — the
        // parameter flows through closure collection into the livelit.
        let inst = instance();
        let mut phi = LivelitCtx::new();
        phi.define(livelit_mvu::host::def_for(
            &(Arc::new(GradeCutoffsLivelit) as Arc<dyn Livelit>),
        ))
        .unwrap();
        let program = UExp::Let(
            hazel_lang::Var::new("averages"),
            None,
            Box::new(UExp::from_eexp(&build::list(
                Typ::Float,
                [build::float(86.0), build::float(72.0), build::float(65.0)],
            ))),
            Box::new(UExp::Livelit(Box::new(inst.invocation().unwrap()))),
        );
        let collection = livelit_core::cc::collect(&phi, &program).unwrap();
        let result = collection.resume_result().unwrap();
        assert_eq!(
            result.field(&Label::new("A")).and_then(IExp::as_float),
            Some(90.0)
        );
        // And the collected closure carries the averages for the plot.
        let envs = collection.envs_for(HoleName(0));
        assert_eq!(envs.len(), 1);
        assert!(envs[0].get(&hazel_lang::Var::new("averages")).is_some());
    }

    fn flatten(h: &Html<Action>) -> String {
        match h {
            Html::Text(s) => s.clone(),
            Html::Element { children, .. } => {
                children.iter().map(flatten).collect::<Vec<_>>().join("\n")
            }
            _ => String::new(),
        }
    }
}
