//! Derived livelits (Sec. 7): "Mechanisms for deriving simple livelit
//! definitions from type definitions, perhaps similar to Haskell's
//! `deriving` directive ... may prove fruitful in the future."
//!
//! [`derive_livelit`] generates a form-based livelit for *any* first-order
//! type: the GUI is a structural form with one splice per leaf position
//! (numbers, booleans, strings), sum types get arm selectors, and lists get
//! add/remove-element controls. The expansion rebuilds a value of the
//! target type from the splices. Because every generated livelit follows
//! the same model/expand discipline, all the paper's guarantees (typing,
//! capture avoidance, context independence, liveness) hold for free.

use hazel_lang::build;
use hazel_lang::external::EExp;
use hazel_lang::ident::{Label, LivelitName};
use hazel_lang::typ::Typ;
use hazel_lang::value::iv;
use hazel_lang::IExp;
use livelit_mvu::html::tags::*;
use livelit_mvu::html::{Dim, Html};
use livelit_mvu::livelit::{Action, CmdError, Livelit, Model, UpdateCtx, ViewCtx};
use livelit_mvu::splice::SpliceRef;

/// A form-based livelit derived from a first-order type.
///
/// The *model* is the form's shape: a tree mirroring the type, holding a
/// splice reference at each leaf, the selected arm index at each sum node,
/// and the current element shapes at each list node. The shape is encoded
/// as a first-order value (so it persists like any model).
#[derive(Debug, Clone)]
pub struct DerivedLivelit {
    name: LivelitName,
    ty: Typ,
}

/// Derives a form livelit named `$name` for values of first-order type
/// `ty`.
///
/// # Errors
///
/// Returns an error if `ty` is not first-order (functions and recursive
/// types have no canonical form GUI).
pub fn derive_livelit(name: impl Into<LivelitName>, ty: Typ) -> Result<DerivedLivelit, String> {
    check_first_order(&ty)?;
    Ok(DerivedLivelit {
        name: name.into(),
        ty,
    })
}

fn check_first_order(ty: &Typ) -> Result<(), String> {
    match ty {
        Typ::Int | Typ::Float | Typ::Bool | Typ::Str | Typ::Unit => Ok(()),
        Typ::Prod(fields) | Typ::Sum(fields) => {
            for (_, t) in fields {
                check_first_order(t)?;
            }
            Ok(())
        }
        Typ::List(elem) => check_first_order(elem),
        Typ::Arrow(..) => Err("cannot derive a form livelit for a function type".into()),
        Typ::Var(_) | Typ::Rec(..) => {
            Err("cannot derive a form livelit for a recursive type".into())
        }
    }
}

/// The form shape: mirrors the type, recording leaf splices, sum arm
/// choices, and list element shapes.
#[derive(Debug, Clone, PartialEq)]
enum Shape {
    /// A leaf of base type with its splice.
    Leaf(SpliceRef),
    /// The unit value (no state).
    Unit,
    /// A product: one shape per field.
    Prod(Vec<Shape>),
    /// A sum: the selected arm index and the shape of its payload.
    Sum(usize, Box<Shape>),
    /// A list: the shape of each current element.
    List(Vec<Shape>),
}

impl Shape {
    /// Encodes the shape as a first-order model value.
    ///
    /// Encoding: leaves are Ints (splice refs), unit is `()`, products are
    /// positional tuples tagged `(.k "prod", .v (...))`, etc. A uniform
    /// tagged encoding keeps decoding unambiguous.
    fn to_value(&self) -> IExp {
        match self {
            Shape::Leaf(r) => iv::record([("k", iv::string("leaf")), ("v", r.to_value())]),
            Shape::Unit => iv::record([("k", iv::string("unit")), ("v", IExp::Unit)]),
            Shape::Prod(fields) => iv::record([
                ("k", iv::string("prod")),
                (
                    "v",
                    iv::list(model_entry_typ(), fields.iter().map(Shape::to_value)),
                ),
            ]),
            Shape::Sum(arm, payload) => iv::record([
                ("k", iv::string("sum")),
                (
                    "v",
                    iv::list(
                        model_entry_typ(),
                        [
                            iv::record([("k", iv::string("arm")), ("v", IExp::Int(*arm as i64))]),
                            payload.to_value(),
                        ],
                    ),
                ),
            ]),
            Shape::List(elems) => iv::record([
                ("k", iv::string("list")),
                (
                    "v",
                    iv::list(model_entry_typ(), elems.iter().map(Shape::to_value)),
                ),
            ]),
        }
    }

    fn from_value(d: &IExp) -> Option<Shape> {
        let kind = d.field(&Label::new("k"))?.as_str()?;
        let v = d.field(&Label::new("v"))?;
        match kind {
            "leaf" => Some(Shape::Leaf(SpliceRef::from_value(v)?)),
            "unit" => Some(Shape::Unit),
            "prod" => Some(Shape::Prod(
                v.list_elements()?
                    .iter()
                    .map(|e| Shape::from_value(e))
                    .collect::<Option<_>>()?,
            )),
            "sum" => {
                let elems = v.list_elements()?;
                let arm = elems.first()?.field(&Label::new("v"))?.as_int()?;
                let payload = Shape::from_value(elems.get(1)?)?;
                Some(Shape::Sum(arm as usize, Box::new(payload)))
            }
            "list" => Some(Shape::List(
                v.list_elements()?
                    .iter()
                    .map(|e| Shape::from_value(e))
                    .collect::<Option<_>>()?,
            )),
            _ => None,
        }
    }

    /// All leaf splices in form order.
    fn splices(&self, out: &mut Vec<SpliceRef>) {
        match self {
            Shape::Leaf(r) => out.push(*r),
            Shape::Unit => {}
            Shape::Prod(fields) | Shape::List(fields) => {
                for f in fields {
                    f.splices(out);
                }
            }
            Shape::Sum(_, payload) => payload.splices(out),
        }
    }
}

/// The (untyped-at-this-level) model entry type. The shape encoding is
/// heterogeneous, so the model type is a *string* — the shape serialized
/// through surface syntax — keeping the declared model type honest and
/// first-order. (This mirrors the `Exp = Str` encoding decision for
/// expansions; see DESIGN.md.)
fn model_entry_typ() -> Typ {
    // Entries are (.k Str, .v <heterogeneous>) — since our lists are
    // homogeneous, the heterogeneous shape tree cannot be given a direct
    // first-order type. Instead the *whole shape* is serialized to a
    // string for the model; this helper types the transient value built
    // before serialization (never exposed). Using Unit payloads would lose
    // information, so the transient list is typed loosely and immediately
    // serialized.
    Typ::Unit
}

fn default_leaf(ty: &Typ) -> EExp {
    match ty {
        Typ::Int => build::int(0),
        Typ::Float => build::float(0.0),
        Typ::Bool => build::boolean(false),
        Typ::Str => build::string(""),
        _ => unreachable!("leaves are base types"),
    }
}

impl DerivedLivelit {
    fn build_shape(&self, ty: &Typ, ctx: &mut UpdateCtx<'_>) -> Result<Shape, CmdError> {
        match ty {
            Typ::Int | Typ::Float | Typ::Bool | Typ::Str => {
                let r = ctx.new_splice(ty.clone(), Some(default_leaf(ty)))?;
                Ok(Shape::Leaf(r))
            }
            Typ::Unit => Ok(Shape::Unit),
            Typ::Prod(fields) => Ok(Shape::Prod(
                fields
                    .iter()
                    .map(|(_, t)| self.build_shape(t, ctx))
                    .collect::<Result<_, _>>()?,
            )),
            Typ::Sum(arms) => {
                let (_, payload_ty) = arms.first().ok_or_else(|| {
                    CmdError::Custom("cannot derive a form for an empty sum".into())
                })?;
                Ok(Shape::Sum(0, Box::new(self.build_shape(payload_ty, ctx)?)))
            }
            Typ::List(_) => Ok(Shape::List(Vec::new())),
            Typ::Arrow(..) | Typ::Var(_) | Typ::Rec(..) => Err(CmdError::Custom(
                "non-first-order type in derived form".into(),
            )),
        }
    }

    fn shape_of_model(model: &Model) -> Result<Shape, CmdError> {
        let src = model
            .as_str()
            .ok_or_else(|| CmdError::Custom("derived model must be a string".into()))?;
        let parsed = hazel_lang::parse::parse_eexp(src)
            .map_err(|e| CmdError::Custom(format!("derived model does not parse: {e}")))?;
        let value = hazel_lang::value::eexp_to_iexp_value(&parsed)
            .ok_or_else(|| CmdError::Custom("derived model is not a value".into()))?;
        Shape::from_value(&value)
            .ok_or_else(|| CmdError::Custom("derived model has the wrong shape".into()))
    }

    fn model_of_shape(shape: &Shape) -> Model {
        let value = shape.to_value();
        let e = hazel_lang::value::iexp_value_to_eexp(&value)
            .expect("shape encodings are serializable");
        IExp::Str(hazel_lang::pretty::print_eexp(&e, usize::MAX))
    }

    /// The expansion for a shape at a type: a (curried) function over the
    /// leaf splices rebuilding the value structurally.
    fn expansion_body(
        ty: &Typ,
        shape: &Shape,
        next_var: &mut usize,
        params: &mut Vec<(String, Typ)>,
    ) -> Result<EExp, String> {
        match (ty, shape) {
            (Typ::Int | Typ::Float | Typ::Bool | Typ::Str, Shape::Leaf(_)) => {
                let v = format!("d{}", *next_var);
                *next_var += 1;
                params.push((v.clone(), ty.clone()));
                Ok(build::var(&v))
            }
            (Typ::Unit, Shape::Unit) => Ok(build::unit()),
            (Typ::Prod(fields), Shape::Prod(shapes)) => {
                if fields.len() != shapes.len() {
                    return Err("product arity mismatch".into());
                }
                let mut out = Vec::with_capacity(fields.len());
                for ((l, t), s) in fields.iter().zip(shapes) {
                    out.push((l.clone(), Self::expansion_body(t, s, next_var, params)?));
                }
                Ok(EExp::Tuple(out))
            }
            (Typ::Sum(arms), Shape::Sum(arm, payload)) => {
                let (l, t) = arms.get(*arm).ok_or("sum arm out of range")?;
                let body = Self::expansion_body(t, payload, next_var, params)?;
                Ok(EExp::Inj(ty.clone(), l.clone(), Box::new(body)))
            }
            (Typ::List(elem), Shape::List(shapes)) => {
                let mut out = build::nil((**elem).clone());
                for s in shapes.iter().rev() {
                    let head = Self::expansion_body(elem, s, next_var, params)?;
                    out = build::cons(head, out);
                }
                Ok(out)
            }
            _ => Err("shape does not match type".into()),
        }
    }

    fn view_of(
        &self,
        ty: &Typ,
        shape: &Shape,
        path: &str,
        ctx: &mut ViewCtx<'_>,
    ) -> Result<Html<Action>, CmdError> {
        Ok(match (ty, shape) {
            (_, Shape::Leaf(r)) => span(vec![
                ctx.editor(*r, Dim::fixed_width(12)),
                match ctx.result_view::<Action>(*r, Dim::fixed_width(10))? {
                    Some(rv) => span(vec![Html::text(" ⇒ "), rv]),
                    None => span(vec![]),
                },
            ]),
            (_, Shape::Unit) => Html::text("()"),
            (Typ::Prod(fields), Shape::Prod(shapes)) => div(fields
                .iter()
                .zip(shapes)
                .enumerate()
                .map(|(i, ((l, t), s))| {
                    Ok(span(vec![
                        Html::text(format!(".{l} ")),
                        self.view_of(t, s, &format!("{path}.{i}"), ctx)?,
                    ]))
                })
                .collect::<Result<_, CmdError>>()?),
            (Typ::Sum(arms), Shape::Sum(arm, payload)) => {
                let mut children = vec![];
                for (i, (l, _)) in arms.iter().enumerate() {
                    let marker = if i == *arm { "◉" } else { "○" };
                    children.push(
                        button(vec![Html::text(format!("{marker} {l}"))])
                            .attr("id", format!("{path}/arm{i}"))
                            .on_click(iv::record([
                                ("select_arm", iv::string(path)),
                                ("arm", iv::int(i as i64)),
                            ])),
                    );
                }
                let (_, t) = &arms[*arm];
                children.push(self.view_of(t, payload, &format!("{path}.0"), ctx)?);
                span(children)
            }
            (Typ::List(elem), Shape::List(shapes)) => {
                let mut rows = vec![];
                for (i, s) in shapes.iter().enumerate() {
                    rows.push(span(vec![
                        self.view_of(elem, s, &format!("{path}.{i}"), ctx)?,
                        button(vec![Html::text("✕")])
                            .attr("id", format!("{path}/del{i}"))
                            .on_click(iv::record([
                                ("del_elem", iv::string(path)),
                                ("index", iv::int(i as i64)),
                            ])),
                    ]));
                }
                rows.push(
                    button(vec![Html::text("+ element")])
                        .attr("id", format!("{path}/add"))
                        .on_click(iv::record([("add_elem", iv::string(path))])),
                );
                div(rows)
            }
            _ => return Err(CmdError::Custom("shape/type mismatch in view".into())),
        })
    }

    /// Mutates the shape at a dot-separated path.
    fn shape_at_mut<'a>(shape: &'a mut Shape, path: &str) -> Option<&'a mut Shape> {
        if path.is_empty() {
            return Some(shape);
        }
        let (head, rest) = match path.split_once('.') {
            Some((h, r)) => (h, r),
            None => (path, ""),
        };
        let idx: usize = head.parse().ok()?;
        match shape {
            Shape::Prod(fields) | Shape::List(fields) => {
                Self::shape_at_mut(fields.get_mut(idx)?, rest)
            }
            Shape::Sum(_, payload) => {
                if idx == 0 {
                    Self::shape_at_mut(payload, rest)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The type at a dot-separated path, walked alongside the shape (sum
    /// payload types depend on the currently selected arm).
    fn typ_at<'a>(ty: &'a Typ, shape: &Shape, path: &str) -> Option<&'a Typ> {
        if path.is_empty() {
            return Some(ty);
        }
        let (head, rest) = match path.split_once('.') {
            Some((h, r)) => (h, r),
            None => (path, ""),
        };
        let idx: usize = head.parse().ok()?;
        match (ty, shape) {
            (Typ::Prod(fields), Shape::Prod(shapes)) => {
                Self::typ_at(&fields.get(idx)?.1, shapes.get(idx)?, rest)
            }
            (Typ::List(elem), Shape::List(shapes)) => Self::typ_at(elem, shapes.get(idx)?, rest),
            (Typ::Sum(arms), Shape::Sum(arm, payload)) if idx == 0 => {
                Self::typ_at(&arms.get(*arm)?.1, payload, rest)
            }
            _ => None,
        }
    }
}

impl Livelit for DerivedLivelit {
    // `expand` is a pure function of the model: attested so the static
    // purity analysis (LL06xx) can discharge the dynamic determinism
    // check (LL0401) for this livelit.
    fn expand_pure(&self) -> bool {
        true
    }

    fn name(&self) -> LivelitName {
        self.name.clone()
    }

    fn expansion_ty(&self) -> Typ {
        self.ty.clone()
    }

    /// The model is the serialized form shape.
    fn model_ty(&self) -> Typ {
        Typ::Str
    }

    fn init(&self, _params: &[SpliceRef], ctx: &mut UpdateCtx<'_>) -> Result<Model, CmdError> {
        let shape = self.build_shape(&self.ty, ctx)?;
        Ok(Self::model_of_shape(&shape))
    }

    fn update(
        &self,
        model: &Model,
        action: &Action,
        ctx: &mut UpdateCtx<'_>,
    ) -> Result<Model, CmdError> {
        let mut shape = Self::shape_of_model(model)?;
        if let Some(IExp::Str(path)) = action.field(&Label::new("add_elem")) {
            // Append a fresh element to the list at `path`.
            let elem_ty = Self::typ_at(&self.ty, &shape, path)
                .and_then(|t| match t {
                    Typ::List(elem) => Some((**elem).clone()),
                    _ => None,
                })
                .ok_or_else(|| CmdError::Custom(format!("no list at path {path}")))?;
            let new_elem = self.build_shape(&elem_ty, ctx)?;
            match Self::shape_at_mut(&mut shape, path) {
                Some(Shape::List(elems)) => elems.push(new_elem),
                _ => return Err(CmdError::Custom(format!("no list shape at {path}"))),
            }
        } else if let (Some(IExp::Str(path)), Some(IExp::Int(i))) = (
            action.field(&Label::new("del_elem")),
            action.field(&Label::new("index")),
        ) {
            match Self::shape_at_mut(&mut shape, path) {
                Some(Shape::List(elems)) if (*i as usize) < elems.len() => {
                    // Remove the element's splices from the store.
                    let removed = elems.remove(*i as usize);
                    let mut refs = Vec::new();
                    removed.splices(&mut refs);
                    for r in refs {
                        ctx.remove_splice(r)?;
                    }
                }
                _ => return Err(CmdError::Custom("del_elem out of bounds".into())),
            }
        } else if let (Some(IExp::Str(path)), Some(IExp::Int(arm))) = (
            action.field(&Label::new("select_arm")),
            action.field(&Label::new("arm")),
        ) {
            // Find the sum's arm types by walking the declared type.
            let sum_ty = Self::typ_at(&self.ty, &shape, path)
                .ok_or_else(|| CmdError::Custom(format!("no type at path {path}")))?
                .clone();
            let Typ::Sum(arms) = &sum_ty else {
                return Err(CmdError::Custom(format!("no sum at path {path}")));
            };
            let (_, payload_ty) = arms
                .get(*arm as usize)
                .ok_or_else(|| CmdError::Custom("arm out of range".into()))?;
            let new_payload = self.build_shape(payload_ty, ctx)?;
            match Self::shape_at_mut(&mut shape, path) {
                Some(Shape::Sum(sel, payload)) => {
                    let mut refs = Vec::new();
                    payload.splices(&mut refs);
                    for r in refs {
                        ctx.remove_splice(r)?;
                    }
                    *sel = *arm as usize;
                    **payload = new_payload;
                }
                _ => return Err(CmdError::Custom(format!("no sum shape at {path}"))),
            }
        } else {
            return Err(CmdError::Custom("unknown derived-form action".into()));
        }
        Ok(Self::model_of_shape(&shape))
    }

    fn view(&self, model: &Model, ctx: &mut ViewCtx<'_>) -> Result<Html<Action>, CmdError> {
        let shape = Self::shape_of_model(model)?;
        let form = self.view_of(&self.ty, &shape, "", ctx)?;
        Ok(div(vec![
            Html::text(format!("derived form at {}", self.ty)),
            form,
        ]))
    }

    fn expand(&self, model: &Model) -> Result<(EExp, Vec<SpliceRef>), String> {
        let shape = Self::shape_of_model(model).map_err(|e| e.to_string())?;
        let mut params = Vec::new();
        let mut next_var = 0;
        let body = Self::expansion_body(&self.ty, &shape, &mut next_var, &mut params)?;
        let pexpansion = params
            .iter()
            .rev()
            .fold(body, |acc, (v, t)| build::lam(v, t.clone(), acc));
        let mut refs = Vec::new();
        shape.splices(&mut refs);
        Ok((pexpansion, refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::ident::HoleName;
    use hazel_lang::typing::Ctx;
    use hazel_lang::unexpanded::UExp;
    use livelit_core::def::LivelitCtx;
    use livelit_mvu::host::Instance;
    use std::sync::Arc;

    fn color_ty() -> Typ {
        Typ::prod([
            (Label::new("r"), Typ::Int),
            (Label::new("g"), Typ::Int),
            (Label::new("b"), Typ::Int),
        ])
    }

    fn instance_for(ty: Typ) -> Instance {
        let l = derive_livelit("$form", ty).expect("derivable");
        Instance::new(Arc::new(l), HoleName(0), vec![], 1 << 20).unwrap()
    }

    #[test]
    fn derives_a_record_form() {
        let inst = instance_for(color_ty());
        // One splice per leaf field.
        assert_eq!(inst.store().len(), 3);
        let pexp = inst.pexpansion().unwrap();
        let (ty, _) = hazel_lang::typing::syn(&Ctx::empty(), &pexp).unwrap();
        assert_eq!(ty, Typ::arrows(vec![Typ::Int; 3], color_ty()));
    }

    #[test]
    fn derived_form_expands_to_edited_value() {
        let mut inst = instance_for(color_ty());
        let refs: Vec<SpliceRef> = {
            let mut out = Vec::new();
            DerivedLivelit::shape_of_model(inst.model())
                .unwrap()
                .splices(&mut out);
            out
        };
        inst.edit_splice(refs[1], UExp::Int(107)).unwrap();

        let mut phi = LivelitCtx::new();
        let derived: Arc<dyn Livelit> = Arc::new(derive_livelit("$form", color_ty()).unwrap());
        phi.define(livelit_mvu::host::def_for(&derived)).unwrap();
        let program = UExp::Livelit(Box::new(inst.invocation().unwrap()));
        let collection = livelit_core::cc::collect(&phi, &program).unwrap();
        let result = collection.resume_result().unwrap();
        assert_eq!(result.field(&Label::new("g")), Some(&IExp::Int(107)));
        assert_eq!(result.field(&Label::new("r")), Some(&IExp::Int(0)));
    }

    #[test]
    fn sum_forms_switch_arms() {
        let opt = Typ::sum([
            (Label::new("Some"), Typ::Int),
            (Label::new("None"), Typ::Unit),
        ]);
        let mut inst = instance_for(opt.clone());
        // Initially arm 0 (Some) with one Int splice.
        assert_eq!(inst.pexpansion().unwrap().free_vars().len(), 0);
        // Switch to None.
        inst.dispatch(&iv::record([
            ("select_arm", iv::string("")),
            ("arm", iv::int(1)),
        ]))
        .unwrap();
        let pexp = inst.pexpansion().unwrap();
        let (ty, _) = hazel_lang::typing::syn(&Ctx::empty(), &pexp).unwrap();
        // No splices remain: the expansion is the bare injection.
        assert_eq!(ty, opt);
    }

    #[test]
    fn list_forms_grow_and_shrink() {
        let ty = Typ::list(Typ::Float);
        let mut inst = instance_for(ty.clone());
        assert_eq!(inst.store().len(), 0);
        inst.dispatch(&iv::record([("add_elem", iv::string(""))]))
            .unwrap();
        inst.dispatch(&iv::record([("add_elem", iv::string(""))]))
            .unwrap();
        assert_eq!(inst.store().len(), 2);
        let (pexp, refs) = {
            let derived = derive_livelit("$form", ty.clone()).unwrap();
            derived.expand(inst.model()).unwrap()
        };
        let (found, _) = hazel_lang::typing::syn(&Ctx::empty(), &pexp).unwrap();
        assert_eq!(found, Typ::arrows(vec![Typ::Float; 2], ty));
        assert_eq!(refs.len(), 2);
        // Delete one.
        inst.dispatch(&iv::record([
            ("del_elem", iv::string("")),
            ("index", iv::int(0)),
        ]))
        .unwrap();
        assert_eq!(inst.store().len(), 1);
    }

    #[test]
    fn function_types_are_rejected() {
        assert!(derive_livelit("$bad", Typ::arrow(Typ::Int, Typ::Int)).is_err());
        assert!(
            derive_livelit("$bad", Typ::rec("t", Typ::Var(hazel_lang::TVar::new("t")))).is_err()
        );
    }

    #[test]
    fn nested_structures_derive() {
        // A list of labeled points with an optional tag.
        let point = Typ::prod([
            (Label::new("x"), Typ::Float),
            (Label::new("y"), Typ::Float),
            (
                Label::new("tag"),
                Typ::sum([
                    (Label::new("Named"), Typ::Str),
                    (Label::new("Anon"), Typ::Unit),
                ]),
            ),
        ]);
        let ty = Typ::list(point);
        let mut inst = instance_for(ty);
        inst.dispatch(&iv::record([("add_elem", iv::string(""))]))
            .unwrap();
        // x, y, and the Named tag's string: 3 splices.
        assert_eq!(inst.store().len(), 3);
        let pexp = inst.pexpansion().unwrap();
        assert!(hazel_lang::typing::syn(&Ctx::empty(), &pexp).is_ok());
    }

    #[test]
    fn model_persists_through_serialization() {
        let mut inst = instance_for(Typ::list(Typ::Int));
        inst.dispatch(&iv::record([("add_elem", iv::string(""))]))
            .unwrap();
        let model = inst.model().clone();
        // The model is a plain string value — persistable anywhere.
        assert!(matches!(model, IExp::Str(_)));
        let shape = DerivedLivelit::shape_of_model(&model).unwrap();
        assert!(matches!(shape, Shape::List(ref v) if v.len() == 1));
    }
}
