//! The `$plot` livelit: live feedback over a *function-typed* splice.
//!
//! The paper's intro motivates livelits for "interactive plots"; this
//! livelit plots a `Float -> Float` splice by sampling it under the
//! collected closure. It demonstrates that live evaluation is not limited
//! to first-order data: `eval_splice` returns the function's *closure
//! value*, which the view then applies to sample points with the ordinary
//! evaluator. Indeterminate samples (the function body may contain holes)
//! are skipped, per the Sec. 2.5.2 degradation discipline.

use hazel_lang::build;
use hazel_lang::eval::Evaluator;
use hazel_lang::external::EExp;
use hazel_lang::ident::{Label, LivelitName};
use hazel_lang::typ::Typ;
use hazel_lang::value::iv;
use hazel_lang::IExp;
use livelit_core::live::LiveResult;
use livelit_mvu::html::tags::*;
use livelit_mvu::html::{Dim, Html};
use livelit_mvu::livelit::{Action, CmdError, Livelit, Model, UpdateCtx, ViewCtx};
use livelit_mvu::splice::SpliceRef;

/// Plot canvas width in characters (one sample per column).
const WIDTH: usize = 41;
/// Plot canvas height in characters.
const HEIGHT: usize = 11;

/// The `$plot` livelit: one splice of type `Float -> Float`, plotted live
/// over a model-controlled x-range. The expansion is the function itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct PlotLivelit;

fn model_range(model: &Model) -> Result<(f64, f64), CmdError> {
    let lo = model
        .field(&Label::new("lo"))
        .and_then(IExp::as_float)
        .ok_or_else(|| CmdError::Custom("plot model missing .lo".into()))?;
    let hi = model
        .field(&Label::new("hi"))
        .and_then(IExp::as_float)
        .ok_or_else(|| CmdError::Custom("plot model missing .hi".into()))?;
    Ok((lo, hi))
}

/// Samples a function value at `x` with the ordinary evaluator; `None` if
/// the application is indeterminate (holes in the function body) or
/// errors.
fn sample(f: &IExp, x: f64, fuel: u64) -> Option<f64> {
    let applied = IExp::Ap(Box::new(f.clone()), Box::new(IExp::Float(x)));
    match Evaluator::with_fuel(fuel).eval(&applied) {
        Ok(IExp::Float(y)) => Some(y),
        _ => None,
    }
}

impl Livelit for PlotLivelit {
    // `expand` is a pure function of the model: attested so the static
    // purity analysis (LL06xx) can discharge the dynamic determinism
    // check (LL0401) for this livelit.
    fn expand_pure(&self) -> bool {
        true
    }

    fn name(&self) -> LivelitName {
        LivelitName::new("$plot")
    }

    fn expansion_ty(&self) -> Typ {
        Typ::arrow(Typ::Float, Typ::Float)
    }

    /// Model: the plotted x-range `(.lo Float, .hi Float, .f SpliceRef)`.
    fn model_ty(&self) -> Typ {
        Typ::prod([
            (Label::new("lo"), Typ::Float),
            (Label::new("hi"), Typ::Float),
            (Label::new("f"), livelit_mvu::splice::splice_ref_typ()),
        ])
    }

    fn init(&self, _params: &[SpliceRef], ctx: &mut UpdateCtx<'_>) -> Result<Model, CmdError> {
        // The function splice defaults to the identity.
        let f = ctx.new_splice(
            Typ::arrow(Typ::Float, Typ::Float),
            Some(build::lam("x", Typ::Float, build::var("x"))),
        )?;
        Ok(iv::record([
            ("lo", iv::float(-10.0)),
            ("hi", iv::float(10.0)),
            ("f", f.to_value()),
        ]))
    }

    fn update(
        &self,
        model: &Model,
        action: &Action,
        _ctx: &mut UpdateCtx<'_>,
    ) -> Result<Model, CmdError> {
        let (lo, hi) = model_range(model)?;
        let f = model
            .field(&Label::new("f"))
            .cloned()
            .ok_or_else(|| CmdError::Custom("plot model missing .f".into()))?;
        let (lo, hi) = if let Some(range) = action.field(&Label::new("set_range")) {
            let new_lo = range
                .field(&Label::new("lo"))
                .and_then(IExp::as_float)
                .ok_or_else(|| CmdError::Custom("set_range needs .lo".into()))?;
            let new_hi = range
                .field(&Label::new("hi"))
                .and_then(IExp::as_float)
                .ok_or_else(|| CmdError::Custom("set_range needs .hi".into()))?;
            if new_lo >= new_hi {
                return Err(CmdError::Custom("non-sensical plot range".into()));
            }
            (new_lo, new_hi)
        } else if action.field(&Label::new("zoom_out")).is_some() {
            let mid = (lo + hi) / 2.0;
            let half = hi - lo;
            (mid - half, mid + half)
        } else if action.field(&Label::new("zoom_in")).is_some() {
            let mid = (lo + hi) / 2.0;
            let half = (hi - lo) / 4.0;
            (mid - half, mid + half)
        } else {
            return Err(CmdError::Custom("unknown $plot action".into()));
        };
        Ok(iv::record([
            ("lo", iv::float(lo)),
            ("hi", iv::float(hi)),
            ("f", f),
        ]))
    }

    fn view(&self, model: &Model, ctx: &mut ViewCtx<'_>) -> Result<Html<Action>, CmdError> {
        let (lo, hi) = model_range(model)?;
        let f_ref = model
            .field(&Label::new("f"))
            .and_then(SpliceRef::from_value)
            .ok_or_else(|| CmdError::Custom("plot model missing .f".into()))?;

        // Live-evaluate the function splice to its closure value.
        let samples: Vec<Option<f64>> = match ctx.eval_splice(f_ref)? {
            Some(LiveResult::Val(f)) => (0..WIDTH)
                .map(|i| {
                    let x = lo + (hi - lo) * i as f64 / (WIDTH - 1) as f64;
                    sample(&f, x, 200_000)
                })
                .collect(),
            // No closure, or the function itself is indeterminate: no
            // samples (Sec. 2.5.2's graceful degradation).
            _ => vec![None; WIDTH],
        };

        // Scale determined y-values into the canvas.
        let determined: Vec<f64> = samples.iter().flatten().copied().collect();
        let canvas = if determined.is_empty() {
            vec!["(no samples: function indeterminate or no closure)".to_owned()]
        } else {
            let (ymin, ymax) = determined
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &y| {
                    (a.min(y), b.max(y))
                });
            let span = if (ymax - ymin).abs() < f64::EPSILON {
                1.0
            } else {
                ymax - ymin
            };
            let mut grid = vec![vec![' '; WIDTH]; HEIGHT];
            for (i, s) in samples.iter().enumerate() {
                if let Some(y) = s {
                    let row = ((ymax - y) / span * (HEIGHT - 1) as f64).round() as usize;
                    grid[row.min(HEIGHT - 1)][i] = '•';
                }
            }
            let mut lines: Vec<String> = grid
                .into_iter()
                .map(|row| row.into_iter().collect())
                .collect();
            lines.push(format!("x ∈ [{lo}, {hi}]   y ∈ [{ymin:.2}, {ymax:.2}]"));
            lines
        };

        let mut children = vec![span(vec![
            Html::text("f: "),
            ctx.editor(f_ref, Dim::fixed_width(30)),
            button(vec![Html::text("−")])
                .attr("id", "zoom-out")
                .on_click(iv::record([("zoom_out", IExp::Unit)])),
            button(vec![Html::text("+")])
                .attr("id", "zoom-in")
                .on_click(iv::record([("zoom_in", IExp::Unit)])),
        ])];
        children.extend(canvas.into_iter().map(Html::text));
        Ok(div(children))
    }

    fn expand(&self, model: &Model) -> Result<(EExp, Vec<SpliceRef>), String> {
        let f_ref = model
            .field(&Label::new("f"))
            .and_then(SpliceRef::from_value)
            .ok_or("plot model missing .f")?;
        // The expansion is the spliced function itself: fun f -> f.
        let fty = Typ::arrow(Typ::Float, Typ::Float);
        Ok((build::lam("f", fty, build::var("f")), vec![f_ref]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::ident::HoleName;
    use hazel_lang::parse::parse_uexp;
    use hazel_lang::typing::Ctx;
    use hazel_lang::unexpanded::UExp;
    use hazel_lang::Sigma;
    use livelit_core::def::LivelitCtx;
    use livelit_mvu::host::Instance;
    use std::sync::Arc;

    fn instance() -> Instance {
        Instance::new(Arc::new(PlotLivelit), HoleName(0), vec![], 1 << 20).unwrap()
    }

    fn phi() -> LivelitCtx {
        let mut phi = LivelitCtx::new();
        phi.define(livelit_mvu::host::def_for(
            &(Arc::new(PlotLivelit) as Arc<dyn Livelit>),
        ))
        .unwrap();
        phi
    }

    #[test]
    fn expansion_is_the_function_splice() {
        let mut inst = instance();
        inst.edit_splice(SpliceRef(0), parse_uexp("fun x : Float -> x *. x").unwrap())
            .unwrap();
        let program = UExp::Ap(
            Box::new(UExp::Livelit(Box::new(inst.invocation().unwrap()))),
            Box::new(UExp::Float(3.0)),
        );
        let collection = livelit_core::cc::collect(&phi(), &program).unwrap();
        assert_eq!(collection.resume_result().unwrap(), IExp::Float(9.0));
    }

    #[test]
    fn view_samples_the_function_live() {
        let mut inst = instance();
        inst.edit_splice(SpliceRef(0), parse_uexp("fun x : Float -> x *. x").unwrap())
            .unwrap();
        let env = Sigma::empty();
        let view = inst
            .view(&phi(), &Ctx::empty(), std::slice::from_ref(&env), 1_000_000)
            .unwrap();
        let text = flatten(&view);
        assert!(text.contains('•'), "plot should have points: {text}");
        assert!(text.contains("y ∈ [0.00, 100.00]"), "{text}");
    }

    #[test]
    fn holes_in_the_function_degrade_gracefully() {
        let mut inst = instance();
        inst.edit_splice(
            SpliceRef(0),
            parse_uexp("fun x : Float -> x +. (?9 : Float)").unwrap(),
        )
        .unwrap();
        let env = Sigma::empty();
        let view = inst
            .view(&phi(), &Ctx::empty(), std::slice::from_ref(&env), 1_000_000)
            .unwrap();
        let text = flatten(&view);
        assert!(text.contains("no samples"), "{text}");
    }

    #[test]
    fn zoom_actions_adjust_the_range() {
        let mut inst = instance();
        inst.dispatch(&iv::record([("zoom_in", IExp::Unit)]))
            .unwrap();
        let (lo, hi) = model_range(inst.model()).unwrap();
        assert_eq!((lo, hi), (-5.0, 5.0));
        inst.dispatch(&iv::record([("zoom_out", IExp::Unit)]))
            .unwrap();
        let (lo, hi) = model_range(inst.model()).unwrap();
        assert_eq!((lo, hi), (-10.0, 10.0));
        assert!(inst
            .dispatch(&iv::record([(
                "set_range",
                iv::record([("lo", iv::float(5.0)), ("hi", iv::float(1.0))]),
            )]))
            .is_err());
    }

    #[test]
    fn function_splice_can_reference_client_bindings() {
        // let k = 2. in $plot(fun x -> k *. x) — the splice's closure
        // carries k, so sampling works.
        let mut inst = instance();
        inst.edit_splice(SpliceRef(0), parse_uexp("fun x : Float -> k *. x").unwrap())
            .unwrap();
        let program = UExp::Let(
            hazel_lang::Var::new("k"),
            None,
            Box::new(UExp::Float(2.0)),
            Box::new(UExp::Ap(
                Box::new(UExp::Livelit(Box::new(inst.invocation().unwrap()))),
                Box::new(UExp::Float(21.0)),
            )),
        );
        let phi = phi();
        let collection = livelit_core::cc::collect(&phi, &program).unwrap();
        assert_eq!(collection.resume_result().unwrap(), IExp::Float(42.0));
        // And the view plots under the collected closure.
        let envs = collection.envs_for(HoleName(0));
        let gamma = collection.delta.get(HoleName(0)).unwrap().ctx.clone();
        let view = inst.view(&phi, &gamma, envs, 1_000_000).unwrap();
        assert!(flatten(&view).contains('•'));
    }

    fn flatten(h: &Html<Action>) -> String {
        match h {
            Html::Text(s) => s.clone(),
            Html::Element { children, .. } => {
                children.iter().map(flatten).collect::<Vec<_>>().join("\n")
            }
            Html::Editor { splice, .. } => format!("[{splice}]"),
            Html::ResultView { splice, .. } => format!("<{splice}>"),
        }
    }
}
