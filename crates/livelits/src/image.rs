//! The image substrate for the live image filter case study (Sec. 2.5.3).
//!
//! The paper's `$basic_adjustments` livelit generates "calls to a browser
//! image processing framework" over photos loaded by URL. This module is
//! that framework's stand-in: grayscale images with brightness/contrast
//! adjustments, a procedural photo library keyed by URL (replacing the
//! photographer's Lightroom collection), ASCII rendering for character-grid
//! previews, and a bridge that reflects images and the adjustment operators
//! into the object language so expansions can compute with them.

use hazel_lang::build;
use hazel_lang::external::EExp;
use hazel_lang::ident::Label;
use hazel_lang::internal::IExp;
use hazel_lang::typ::Typ;

/// A grayscale image: `width × height` pixels, each `0..=255`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixel intensities.
    pub pixels: Vec<u8>,
}

impl Image {
    /// Creates a constant-intensity image.
    pub fn solid(width: usize, height: usize, value: u8) -> Image {
        Image {
            width,
            height,
            pixels: vec![value; width * height],
        }
    }

    /// Creates an image from a generator function of (x, y).
    pub fn from_fn(width: usize, height: usize, f: impl Fn(usize, usize) -> u8) -> Image {
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                pixels.push(f(x, y));
            }
        }
        Image {
            width,
            height,
            pixels,
        }
    }

    /// The pixel at (x, y).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// Adjusts brightness by `delta` (positive brightens), saturating at
    /// the intensity bounds.
    pub fn brightness(&self, delta: i32) -> Image {
        self.map_pixels(|p| p as i32 + delta)
    }

    /// Adjusts contrast by `percent` in `-100..=100`: `0` is identity,
    /// positive stretches intensities away from mid-gray (128), negative
    /// compresses toward it.
    pub fn contrast(&self, percent: i32) -> Image {
        self.map_pixels(|p| (p as i32 - 128) * (100 + percent) / 100 + 128)
    }

    /// Inverts intensities.
    pub fn invert(&self) -> Image {
        self.map_pixels(|p| 255 - p as i32)
    }

    fn map_pixels(&self, f: impl Fn(u8) -> i32) -> Image {
        Image {
            width: self.width,
            height: self.height,
            pixels: self
                .pixels
                .iter()
                .map(|&p| f(p).clamp(0, 255) as u8)
                .collect(),
        }
    }

    /// Mean intensity, for tests and histograms.
    pub fn mean(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|&p| p as f64).sum::<f64>() / self.pixels.len() as f64
    }

    /// Renders the image as ASCII art, one character per pixel, dark to
    /// light — the livelit's character-grid preview (Sec. 5.3 layout works
    /// in character units).
    pub fn to_ascii(&self) -> Vec<String> {
        const RAMP: &[u8] = b" .:-=+*#%@";
        (0..self.height)
            .map(|y| {
                (0..self.width)
                    .map(|x| {
                        let p = self.get(x, y) as usize;
                        // Invert the ramp so bright pixels are light chars.
                        RAMP[(255 - p) * (RAMP.len() - 1) / 255] as char
                    })
                    .collect()
            })
            .collect()
    }
}

/// The procedural photo library: deterministic synthetic "photos" keyed by
/// URL, standing in for the photographer's image collection.
pub fn load_image(url: &str) -> Image {
    // A small FNV-style hash seeds the generator so distinct URLs give
    // visually distinct images.
    let mut h: u32 = 2166136261;
    for b in url.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(16777619);
    }
    let w = 12;
    let hgt = 6;
    Image::from_fn(w, hgt, |x, y| {
        let fx = x as u32;
        let fy = y as u32;
        // Layered bands and a highlight dependent on the hash.
        let base = 40 + ((fx * 17 + fy * 31 + h % 97) % 160) as i32;
        let highlight = if (fx + h % 5).is_multiple_of(4) {
            40
        } else {
            0
        };
        (base + highlight).clamp(0, 255) as u8
    })
}

// ------------------------------------------------------------------------
// Object-language reflection
// ------------------------------------------------------------------------

/// The object-language image type:
/// `Img = (.w Int, .h Int, .px List(Int))`.
pub fn img_typ() -> Typ {
    Typ::prod([
        (Label::new("w"), Typ::Int),
        (Label::new("h"), Typ::Int),
        (Label::new("px"), Typ::list(Typ::Int)),
    ])
}

/// Reflects an image into an object-language value of type [`img_typ`].
pub fn image_to_value(img: &Image) -> IExp {
    hazel_lang::value::iv::record([
        ("w", IExp::Int(img.width as i64)),
        ("h", IExp::Int(img.height as i64)),
        (
            "px",
            hazel_lang::value::iv::list(Typ::Int, img.pixels.iter().map(|&p| IExp::Int(p as i64))),
        ),
    ])
}

/// Reflects an image into an external expression (for context bindings).
pub fn image_to_eexp(img: &Image) -> EExp {
    build::record([
        ("w", build::int(img.width as i64)),
        ("h", build::int(img.height as i64)),
        (
            "px",
            build::list(Typ::Int, img.pixels.iter().map(|&p| build::int(p as i64))),
        ),
    ])
}

/// Extracts an image from an object-language value.
pub fn image_from_value(d: &IExp) -> Option<Image> {
    let w = d.field(&Label::new("w"))?.as_int()?;
    let h = d.field(&Label::new("h"))?.as_int()?;
    let px = d.field(&Label::new("px"))?.list_elements()?;
    let pixels: Option<Vec<u8>> = px
        .iter()
        .map(|p| p.as_int().map(|n| n.clamp(0, 255) as u8))
        .collect();
    let pixels = pixels?;
    if pixels.len() != (w * h) as usize || w < 0 || h < 0 {
        return None;
    }
    Some(Image {
        width: w as usize,
        height: h as usize,
        pixels,
    })
}

/// The object-language source of the image-processing "framework": the
/// definitions `clamp_px`, `map_px`, `adjust_brightness`, and
/// `adjust_contrast`, written in surface syntax. These are the library the
/// `$basic_adjustments` expansion calls into via its definition-site
/// context.
pub fn framework_source() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "clamp_px",
            "Int -> Int",
            "fun p : Int -> if p < 0 then 0 else if p > 255 then 255 else p",
        ),
        (
            "map_px",
            "(Int -> Int) -> List(Int) -> List(Int)",
            "fun f : (Int -> Int) -> fix go : (List(Int) -> List(Int)) -> \
             fun xs : List(Int) -> lcase xs | [] -> [Int|] | h :: t -> f h :: go t end",
        ),
        (
            "adjust_brightness",
            "(.w Int, .h Int, .px List(Int)) -> Int -> (.w Int, .h Int, .px List(Int))",
            "fun img : (.w Int, .h Int, .px List(Int)) -> fun b : Int -> \
             (.w img.w, .h img.h, .px map_px (fun p : Int -> clamp_px (p + b)) img.px)",
        ),
        (
            "adjust_contrast",
            "(.w Int, .h Int, .px List(Int)) -> Int -> (.w Int, .h Int, .px List(Int))",
            "fun img : (.w Int, .h Int, .px List(Int)) -> fun c : Int -> \
             (.w img.w, .h img.h, .px map_px \
              (fun p : Int -> clamp_px ((p - 128) * (100 + c) / 100 + 128)) img.px)",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solid_and_from_fn() {
        let img = Image::solid(4, 2, 100);
        assert_eq!(img.pixels.len(), 8);
        assert_eq!(img.get(3, 1), 100);
        let grad = Image::from_fn(4, 1, |x, _| (x * 10) as u8);
        assert_eq!(grad.get(2, 0), 20);
    }

    #[test]
    fn brightness_saturates() {
        let img = Image::solid(2, 2, 250);
        assert_eq!(img.brightness(20).get(0, 0), 255);
        assert_eq!(img.brightness(-255).get(0, 0), 0);
        assert_eq!(img.brightness(0), img);
    }

    #[test]
    fn contrast_pivots_on_mid_gray() {
        let img = Image::solid(1, 1, 128);
        // Mid-gray is the fixed point of contrast adjustment.
        assert_eq!(img.contrast(50).get(0, 0), 128);
        let dark = Image::solid(1, 1, 64);
        assert!(
            dark.contrast(50).get(0, 0) < 64,
            "positive contrast darkens darks"
        );
        assert!(
            dark.contrast(-50).get(0, 0) > 64,
            "negative contrast lifts darks"
        );
    }

    #[test]
    fn invert_is_involutive() {
        let img = load_image("test://photo");
        assert_eq!(img.invert().invert(), img);
    }

    #[test]
    fn load_image_is_deterministic_and_url_sensitive() {
        assert_eq!(load_image("a"), load_image("a"));
        assert_ne!(load_image("a"), load_image("b"));
    }

    #[test]
    fn ascii_rendering_has_image_dimensions() {
        let img = load_image("x");
        let art = img.to_ascii();
        assert_eq!(art.len(), img.height);
        assert!(art.iter().all(|row| row.chars().count() == img.width));
    }

    #[test]
    fn value_roundtrip() {
        let img = load_image("roundtrip");
        let v = image_to_value(&img);
        assert!(hazel_lang::value::value_has_typ(&v, &img_typ()));
        assert_eq!(image_from_value(&v), Some(img));
    }

    #[test]
    fn image_from_value_rejects_bad_shapes() {
        // Pixel count inconsistent with dimensions.
        let bad = hazel_lang::value::iv::record([
            ("w", IExp::Int(2)),
            ("h", IExp::Int(2)),
            ("px", hazel_lang::value::iv::list(Typ::Int, [IExp::Int(1)])),
        ]);
        assert_eq!(image_from_value(&bad), None);
        assert_eq!(image_from_value(&IExp::Int(1)), None);
    }

    #[test]
    fn framework_source_parses_and_types() {
        use hazel_lang::parse::{parse_eexp, parse_typ};
        use hazel_lang::typing::{ana, Ctx};
        let mut ctx = Ctx::empty();
        for (name, ty_src, def_src) in framework_source() {
            let ty = parse_typ(ty_src).unwrap_or_else(|e| panic!("{name} type: {e}"));
            let def = parse_eexp(def_src).unwrap_or_else(|e| panic!("{name} def: {e}"));
            ana(&ctx, &def, &ty).unwrap_or_else(|e| panic!("{name} ill-typed: {e}"));
            ctx = ctx.extend(hazel_lang::Var::new(name), ty);
        }
    }

    #[test]
    fn object_language_brightness_matches_substrate() {
        // The reflected framework computes the same images as the Rust
        // substrate — the provider's preview cannot drift from the
        // expansion's semantics.
        use hazel_lang::parse::{parse_eexp, parse_typ};
        use hazel_lang::typing::Ctx;

        let img = load_image("consistency");
        // Build: adjust_brightness <img> 30, with the framework let-bound.
        let mut program = parse_eexp("adjust_brightness img 30").unwrap();
        program = hazel_lang::EExp::Let(
            hazel_lang::Var::new("img"),
            Some(img_typ()),
            Box::new(image_to_eexp(&img)),
            Box::new(program),
        );
        for (name, ty_src, def_src) in framework_source().into_iter().rev() {
            program = hazel_lang::EExp::Let(
                hazel_lang::Var::new(name),
                Some(parse_typ(ty_src).unwrap()),
                Box::new(parse_eexp(def_src).unwrap()),
                Box::new(program),
            );
        }
        let (d, _, _) = hazel_lang::elab::elab_syn(&Ctx::empty(), &program).unwrap();
        let result = hazel_lang::eval::eval_traced_auto(&d, 4_000_000).unwrap();
        let computed = image_from_value(&result).expect("image result");
        assert_eq!(computed, img.brightness(30));
    }
}
