//! The grading library (Fig. 1c, Sec. 2.1): `compute_weighted_averages`,
//! `assign_grades`, and `format_for_university`, "helper function\[s\] defined
//! in a library (not shown) shared between courses".
//!
//! The library is written in Hazel surface syntax and parsed — it is
//! ordinary object-language code, loaded as prelude bindings so that both
//! the program and livelit splices can call it.

use hazel_editor::PreludeBinding;
use hazel_lang::parse::{parse_eexp, parse_typ};
use hazel_lang::typing::{ana, Ctx};
use hazel_lang::Var;

/// The object-language source of the grading library: (name, type,
/// definition) triples, in dependency order.
pub fn grading_source() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "sumf",
            "List(Float) -> Float",
            "fix sumf : (List(Float) -> Float) -> fun xs : List(Float) -> \
             lcase xs | [] -> 0. | h :: t -> h +. sumf t end",
        ),
        (
            "dot",
            "List(Float) -> List(Float) -> Float",
            "fix dot : (List(Float) -> List(Float) -> Float) -> \
             fun xs : List(Float) -> fun ws : List(Float) -> \
             lcase xs \
             | [] -> 0. \
             | x :: xt -> lcase ws | [] -> 0. | w :: wt -> x *. w +. dot xt wt end \
             end",
        ),
        (
            "compute_weighted_averages",
            "(.cols List(Str), .rows List((Str, List(Float)))) -> List(Float) \
             -> List((Str, Float))",
            "fun df : (.cols List(Str), .rows List((Str, List(Float)))) -> \
             fun weights : List(Float) -> \
             (fix go : (List((Str, List(Float))) -> List((Str, Float))) -> \
              fun rows : List((Str, List(Float))) -> \
              lcase rows \
              | [] -> [(Str, Float)|] \
              | r :: rest -> (r._0, dot r._1 weights /. sumf weights) :: go rest \
              end) df.rows",
        ),
        (
            "assign_grades",
            "List((Str, Float)) -> (.A Float, .B Float, .C Float, .D Float) \
             -> List((Str, Str))",
            "fun avgs : List((Str, Float)) -> \
             fun cutoffs : (.A Float, .B Float, .C Float, .D Float) -> \
             (fix go : (List((Str, Float)) -> List((Str, Str))) -> \
              fun xs : List((Str, Float)) -> \
              lcase xs \
              | [] -> [(Str, Str)|] \
              | p :: rest -> \
                (p._0, \
                 if p._1 >=. cutoffs.A then \"A\" \
                 else if p._1 >=. cutoffs.B then \"B\" \
                 else if p._1 >=. cutoffs.C then \"C\" \
                 else if p._1 >=. cutoffs.D then \"D\" \
                 else \"F\") :: go rest \
              end) avgs",
        ),
        (
            "format_for_university",
            "List((Str, Str)) -> Str",
            "fun grades : List((Str, Str)) -> \
             (fix go : (List((Str, Str)) -> Str) -> \
              fun xs : List((Str, Str)) -> \
              lcase xs | [] -> \"\" | p :: rest -> p._0 ^ \":\" ^ p._1 ^ \";\" ^ go rest end) \
             grades",
        ),
    ]
}

/// Parses, type checks, and packages the grading library as prelude
/// bindings.
///
/// # Panics
///
/// Panics if the library source fails to parse or type check — the source
/// is a compile-time constant, so this indicates a build defect (and is
/// exercised by this module's tests).
pub fn grading_prelude() -> Vec<PreludeBinding> {
    let mut ctx = Ctx::empty();
    let mut out = Vec::new();
    for (name, ty_src, def_src) in grading_source() {
        let ty = parse_typ(ty_src).unwrap_or_else(|e| panic!("{name} type: {e}"));
        let def = parse_eexp(def_src).unwrap_or_else(|e| panic!("{name} def: {e}"));
        ana(&ctx, &def, &ty).unwrap_or_else(|e| panic!("{name} is ill-typed: {e}"));
        ctx = ctx.extend(Var::new(name), ty.clone());
        out.push(PreludeBinding::new(name, ty, def));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::build;
    use hazel_lang::elab::elab_syn;
    use hazel_lang::eval::eval;
    use hazel_lang::external::EExp;
    use hazel_lang::ident::Label;
    use hazel_lang::typ::Typ;
    use hazel_lang::IExp;

    fn run_with_prelude(src: &str) -> IExp {
        let mut program = parse_eexp(src).unwrap();
        for b in grading_prelude().into_iter().rev() {
            program = EExp::Let(b.var, Some(b.ty), Box::new(b.def), Box::new(program));
        }
        let (d, _, _) = elab_syn(&Ctx::empty(), &program).unwrap();
        eval(&d).unwrap()
    }

    #[test]
    fn prelude_parses_and_types() {
        assert_eq!(grading_prelude().len(), 5);
    }

    #[test]
    fn sumf_and_dot() {
        assert_eq!(
            run_with_prelude("sumf [Float| 1., 2., 3.5]"),
            IExp::Float(6.5)
        );
        assert_eq!(
            run_with_prelude("dot [Float| 1., 2.] [Float| 10., 20.]"),
            IExp::Float(50.0)
        );
        assert_eq!(run_with_prelude("sumf [Float|]"), IExp::Float(0.0));
    }

    #[test]
    fn weighted_averages_over_dataframe() {
        // One student, two assignments weighted 1:3.
        let result = run_with_prelude(
            "compute_weighted_averages \
             (.cols [Str| \"A1\", \"A2\"], \
              .rows [(Str, List(Float))| (\"Andrew\", [Float| 80., 100.])]) \
             [Float| 1., 3.]",
        );
        let rows = result.list_elements().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].field(&Label::positional(0)).and_then(IExp::as_str),
            Some("Andrew")
        );
        assert_eq!(
            rows[0]
                .field(&Label::positional(1))
                .and_then(IExp::as_float),
            Some(95.0)
        );
    }

    #[test]
    fn assign_grades_uses_cutoffs() {
        let result = run_with_prelude(
            "assign_grades \
             [(Str, Float)| (\"a\", 91.), (\"b\", 76.5), (\"c\", 40.)] \
             (.A 86., .B 76., .C 67., .D 48.)",
        );
        let rows = result.list_elements().unwrap();
        let grades: Vec<&str> = rows
            .iter()
            .map(|r| {
                r.field(&Label::positional(1))
                    .and_then(IExp::as_str)
                    .unwrap()
            })
            .collect();
        assert_eq!(grades, vec!["A", "B", "F"]);
    }

    #[test]
    fn format_for_university_concatenates() {
        let result = run_with_prelude(
            "format_for_university [(Str, Str)| (\"ann\", \"A\"), (\"bob\", \"B\")]",
        );
        assert_eq!(result.as_str(), Some("ann:A;bob:B;"));
    }

    #[test]
    fn full_grading_pipeline() {
        // The Sec. 2.2 expansion, minus the livelits: dataframe → weighted
        // averages → grades → registrar format.
        let result = run_with_prelude(
            "let grades = (.cols [Str| \"Mid\", \"Final\"], \
                           .rows [(Str, List(Float))| \
                                  (\"Andrew\", [Float| 95., 88.]), \
                                  (\"Cyrus\",  [Float| 70., 85.]), \
                                  (\"David\",  [Float| 82., 79.])]) in \
             let averages = compute_weighted_averages grades [Float| 1., 1.] in \
             let cutoffs = (.A 86., .B 76., .C 67., .D 48.) in \
             format_for_university (assign_grades averages cutoffs)",
        );
        assert_eq!(result.as_str(), Some("Andrew:A;Cyrus:B;David:B;"));
    }

    #[test]
    fn empty_dataframe_is_fine() {
        let result = run_with_prelude(
            "compute_weighted_averages \
             (.cols [Str|], .rows [(Str, List(Float))|]) [Float| 1.]",
        );
        assert_eq!(result, build_nil());
    }

    fn build_nil() -> IExp {
        let (d, _, _) = elab_syn(
            &Ctx::empty(),
            &build::nil(Typ::tuple([Typ::Str, Typ::Float])),
        )
        .unwrap();
        d
    }
}
