//! The `$slider` livelit (Figs. 1b, 1c) and its abbreviations.
//!
//! `livelit $slider (min : Int) (max : Int) at Int` — an inline,
//! one-character-row livelit (Sec. 5.3). The model is the thumb's value;
//! dragging emits `(.set n)` actions; the expansion is the integer literal.
//! `$percent` is the partial application `$slider 0 100` from Fig. 1b,
//! installed by [`register_percent`].

use hazel_lang::build;
use hazel_lang::external::EExp;
use hazel_lang::ident::{Label, LivelitName};
use hazel_lang::typ::Typ;
use hazel_lang::unexpanded::UExp;
use hazel_lang::value::iv;
use hazel_lang::IExp;
use livelit_core::live::LiveResult;
use livelit_mvu::html::tags::*;
use livelit_mvu::html::Html;
use livelit_mvu::livelit::{Action, CmdError, Livelit, Model, UpdateCtx, ViewCtx};
use livelit_mvu::splice::SpliceRef;

/// The `$slider` livelit.
#[derive(Debug, Default, Clone, Copy)]
pub struct SliderLivelit;

/// Track width of the rendered slider, in characters.
const TRACK_WIDTH: i64 = 20;

impl SliderLivelit {
    fn bound(ctx: &ViewCtx<'_>, r: SpliceRef) -> Result<Option<i64>, CmdError> {
        Ok(match ctx.eval_splice(r)? {
            Some(LiveResult::Val(IExp::Int(n))) => Some(n),
            _ => None,
        })
    }
}

impl Livelit for SliderLivelit {
    // `expand` is a pure function of the model: attested so the static
    // purity analysis (LL06xx) can discharge the dynamic determinism
    // check (LL0401) for this livelit.
    fn expand_pure(&self) -> bool {
        true
    }

    fn name(&self) -> LivelitName {
        LivelitName::new("$slider")
    }

    fn param_tys(&self) -> Vec<Typ> {
        vec![Typ::Int, Typ::Int]
    }

    fn expansion_ty(&self) -> Typ {
        Typ::Int
    }

    fn model_ty(&self) -> Typ {
        Typ::Int
    }

    /// Sliders are inline livelits: one character row, flowing with the
    /// code (Sec. 5.3).
    fn layout(&self) -> livelit_mvu::LivelitLayout {
        livelit_mvu::LivelitLayout::Inline
    }

    fn init(&self, _params: &[SpliceRef], _ctx: &mut UpdateCtx<'_>) -> Result<Model, CmdError> {
        Ok(IExp::Int(0))
    }

    fn update(
        &self,
        model: &Model,
        action: &Action,
        _ctx: &mut UpdateCtx<'_>,
    ) -> Result<Model, CmdError> {
        match action.field(&Label::new("set")) {
            Some(IExp::Int(n)) => Ok(IExp::Int(*n)),
            _ => match action.field(&Label::new("step")) {
                Some(IExp::Int(delta)) => {
                    let cur = model.as_int().unwrap_or(0);
                    Ok(IExp::Int(cur + delta))
                }
                _ => Err(CmdError::Custom("unknown $slider action".into())),
            },
        }
    }

    fn view(&self, model: &Model, ctx: &mut ViewCtx<'_>) -> Result<Html<Action>, CmdError> {
        let value = model.as_int().unwrap_or(0);
        // Live evaluation of the *parameters* (Sec. 3.2.3: "the view can
        // depend on the result of evaluating a splice or a parameter").
        let min = Self::bound(ctx, SpliceRef(0))?;
        let max = Self::bound(ctx, SpliceRef(1))?;

        // A livelit invocation can indicate that no expansion is available
        // with a custom error message, "e.g. due to non-sensical bounds"
        // (Sec. 2.4.1).
        if let (Some(lo), Some(hi)) = (min, max) {
            if lo > hi {
                return Err(CmdError::Custom(format!(
                    "non-sensical slider bounds: {lo} > {hi}"
                )));
            }
        }

        // Render the track: min |----O----| max  value
        let track = match (min, max) {
            (Some(lo), Some(hi)) if hi > lo => {
                let clamped = value.clamp(lo, hi);
                let pos = ((clamped - lo) * TRACK_WIDTH / (hi - lo)).clamp(0, TRACK_WIDTH);
                let mut t = String::new();
                for i in 0..=TRACK_WIDTH {
                    t.push(if i == pos { 'O' } else { '-' });
                }
                format!("{lo} |{t}| {hi}  {value}")
            }
            _ => format!("? |{}O{}| ?  {value}", "-", "-"),
        };

        Ok(span(vec![
            button(vec![Html::text("<")])
                .attr("id", "dec")
                .on_click(iv::record([("step", iv::int(-1))])),
            Html::text(track),
            button(vec![Html::text(">")])
                .attr("id", "inc")
                .on_click(iv::record([("step", iv::int(1))])),
        ])
        .attr("id", "slider"))
    }

    /// The slider's value *is* its model, so an edited result pushes back
    /// directly — the paper's motivating example for bidirectional editing
    /// (Sec. 7).
    fn push_result(
        &self,
        _model: &Model,
        new_value: &IExp,
        _ctx: &mut UpdateCtx<'_>,
    ) -> Result<Option<Model>, CmdError> {
        Ok(new_value.as_int().map(IExp::Int))
    }

    fn expand(&self, model: &Model) -> Result<(EExp, Vec<SpliceRef>), String> {
        let value = model.as_int().ok_or("slider model must be an Int")?;
        // The expansion abstracts over the two parameters (which it does
        // not use — the bounds only constrain the GUI) and produces the
        // literal.
        Ok((
            build::lams([("min", Typ::Int), ("max", Typ::Int)], build::int(value)),
            vec![SpliceRef(0), SpliceRef(1)],
        ))
    }
}

/// Installs `$slider`, plus the Fig. 1b abbreviations
/// `let $uslider = $slider 0` and `let $percent = $uslider 100`.
pub fn register_percent(registry: &mut hazel_editor::LivelitRegistry) {
    registry
        .register(std::sync::Arc::new(SliderLivelit))
        .expect("$slider passes registration lints");
    registry.define_abbrev("$uslider", "$slider", vec![UExp::Int(0)]);
    registry.define_abbrev("$percent", "$uslider", vec![UExp::Int(100)]);
}

/// The `$checkbox` livelit: `livelit $checkbox at Bool`, the simplest
/// possible livelit (model = the boolean, expansion = the literal).
#[derive(Debug, Default, Clone, Copy)]
pub struct CheckboxLivelit;

impl Livelit for CheckboxLivelit {
    // `expand` is a pure function of the model: attested so the static
    // purity analysis (LL06xx) can discharge the dynamic determinism
    // check (LL0401) for this livelit.
    fn expand_pure(&self) -> bool {
        true
    }

    fn name(&self) -> LivelitName {
        LivelitName::new("$checkbox")
    }

    fn expansion_ty(&self) -> Typ {
        Typ::Bool
    }

    fn model_ty(&self) -> Typ {
        Typ::Bool
    }

    fn layout(&self) -> livelit_mvu::LivelitLayout {
        livelit_mvu::LivelitLayout::Inline
    }

    fn init(&self, _params: &[SpliceRef], _ctx: &mut UpdateCtx<'_>) -> Result<Model, CmdError> {
        Ok(IExp::Bool(false))
    }

    fn update(
        &self,
        model: &Model,
        _action: &Action,
        _ctx: &mut UpdateCtx<'_>,
    ) -> Result<Model, CmdError> {
        match model {
            IExp::Bool(b) => Ok(IExp::Bool(!b)),
            _ => Err(CmdError::Custom("checkbox model must be a Bool".into())),
        }
    }

    fn view(&self, model: &Model, _ctx: &mut ViewCtx<'_>) -> Result<Html<Action>, CmdError> {
        let checked = matches!(model, IExp::Bool(true));
        Ok(
            button(vec![Html::text(if checked { "[x]" } else { "[ ]" })])
                .attr("id", "toggle")
                .on_click(IExp::Unit),
        )
    }

    fn push_result(
        &self,
        _model: &Model,
        new_value: &IExp,
        _ctx: &mut UpdateCtx<'_>,
    ) -> Result<Option<Model>, CmdError> {
        Ok(new_value.as_bool().map(IExp::Bool))
    }

    fn expand(&self, model: &Model) -> Result<(EExp, Vec<SpliceRef>), String> {
        match model {
            IExp::Bool(b) => Ok((build::boolean(*b), vec![])),
            _ => Err("checkbox model must be a Bool".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::ident::HoleName;
    use hazel_lang::typing::Ctx;
    use hazel_lang::Sigma;
    use livelit_core::def::LivelitCtx;
    use livelit_mvu::host::Instance;
    use std::sync::Arc;

    fn slider_instance() -> Instance {
        Instance::new(
            Arc::new(SliderLivelit),
            HoleName(0),
            vec![UExp::Int(0), UExp::Int(100)],
            1 << 20,
        )
        .unwrap()
    }

    #[test]
    fn set_and_step_actions() {
        let mut inst = slider_instance();
        inst.dispatch(&iv::record([("set", iv::int(40))])).unwrap();
        assert_eq!(inst.model(), &IExp::Int(40));
        inst.dispatch(&iv::record([("step", iv::int(2))])).unwrap();
        assert_eq!(inst.model(), &IExp::Int(42));
        assert!(inst.dispatch(&iv::string("bogus")).is_err());
    }

    #[test]
    fn expansion_is_the_literal_under_param_lambdas() {
        let mut inst = slider_instance();
        inst.dispatch(&iv::record([("set", iv::int(92))])).unwrap();
        let pexp = inst.pexpansion().unwrap();
        let (ty, _) = hazel_lang::typing::syn(&Ctx::empty(), &pexp).unwrap();
        assert_eq!(ty, Typ::arrows([Typ::Int, Typ::Int], Typ::Int));
        // Applied to its bounds it evaluates to the thumb value.
        let applied = build::aps(pexp, [build::int(0), build::int(100)]);
        let (d, _, _) = hazel_lang::elab::elab_syn(&Ctx::empty(), &applied).unwrap();
        assert_eq!(hazel_lang::eval::eval(&d).unwrap(), IExp::Int(92));
    }

    #[test]
    fn view_renders_bounds_from_live_params() {
        let inst = slider_instance();
        let phi = LivelitCtx::new();
        let gamma = Ctx::empty();
        let env = Sigma::empty();
        let view = inst
            .view(&phi, &gamma, std::slice::from_ref(&env), 100_000)
            .unwrap();
        let text = flatten(&view);
        assert!(text.contains("0 |"), "track shows min: {text}");
        assert!(text.contains("| 100"), "track shows max: {text}");
    }

    #[test]
    fn nonsensical_bounds_yield_custom_error() {
        // $slider 10 0 — min > max (Sec. 2.4.1's custom error).
        let inst = Instance::new(
            Arc::new(SliderLivelit),
            HoleName(0),
            vec![UExp::Int(10), UExp::Int(0)],
            1 << 20,
        )
        .unwrap();
        let phi = LivelitCtx::new();
        let gamma = Ctx::empty();
        let env = Sigma::empty();
        let err = inst
            .view(&phi, &gamma, std::slice::from_ref(&env), 100_000)
            .unwrap_err();
        assert!(matches!(err, CmdError::Custom(ref m) if m.contains("non-sensical")));
    }

    #[test]
    fn checkbox_toggles_and_expands() {
        let mut inst =
            Instance::new(Arc::new(CheckboxLivelit), HoleName(1), vec![], 1 << 20).unwrap();
        assert_eq!(inst.pexpansion().unwrap(), build::boolean(false));
        inst.dispatch(&IExp::Unit).unwrap();
        assert_eq!(inst.pexpansion().unwrap(), build::boolean(true));
    }

    fn flatten(h: &Html<Action>) -> String {
        match h {
            Html::Text(s) => s.clone(),
            Html::Element { children, .. } => children.iter().map(flatten).collect(),
            Html::Editor { splice, .. } => format!("[{splice}]"),
            Html::ResultView { splice, .. } => format!("<{splice}>"),
        }
    }
}
