//! The `$dataframe` livelit (Fig. 1c, Secs. 2.1–2.4).
//!
//! A tabular user interface over "tabular floating point data together with
//! string row and column names". Every cell, row key, and column key is a
//! splice; "unlike parameters, the number of splices can change as the user
//! interacts with the livelit, e.g. when adding or removing rows or
//! columns" (Sec. 2.4.2). The table displays each cell's *value* (a result
//! view); the formula bar at the top is the editor for the selected cell
//! and accepts arbitrary Hazel expressions — including other livelit
//! invocations, as in Fig. 1c's `$slider` inside a grade cell.

use hazel_lang::build;
use hazel_lang::external::EExp;
use hazel_lang::ident::{Label, LivelitName};
use hazel_lang::typ::Typ;
use hazel_lang::value::iv;
use hazel_lang::IExp;
use livelit_mvu::html::tags::*;
use livelit_mvu::html::{Dim, Html};
use livelit_mvu::livelit::{Action, CmdError, Livelit, Model, UpdateCtx, ViewCtx};
use livelit_mvu::splice::SpliceRef;

/// The `Dataframe` type:
/// `(.cols List(Str), .rows List((Str, List(Float))))`.
pub fn dataframe_typ() -> Typ {
    Typ::prod([
        (Label::new("cols"), Typ::list(Typ::Str)),
        (
            Label::new("rows"),
            Typ::list(Typ::tuple([Typ::Str, Typ::list(Typ::Float)])),
        ),
    ])
}

/// The model type: column-key references, per-row (key, cells) references,
/// and the selected cell.
pub fn dataframe_model_typ() -> Typ {
    let sref = livelit_mvu::splice::splice_ref_typ();
    Typ::prod([
        (Label::new("cols"), Typ::list(sref.clone())),
        (
            Label::new("rows"),
            Typ::list(Typ::prod([
                (Label::new("key"), sref.clone()),
                (Label::new("cells"), Typ::list(sref)),
            ])),
        ),
        (
            Label::new("sel"),
            Typ::prod([(Label::new("row"), Typ::Int), (Label::new("col"), Typ::Int)]),
        ),
    ])
}

/// The decoded model, for ergonomic manipulation in Rust.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataframeModel {
    /// Column-key splices.
    pub cols: Vec<SpliceRef>,
    /// Rows: (key splice, cell splices).
    pub rows: Vec<(SpliceRef, Vec<SpliceRef>)>,
    /// Selected (row, col); `None` when nothing is selected. Row keys are
    /// column `-1` conceptually but selected via their own action.
    pub sel: Option<(usize, usize)>,
}

impl DataframeModel {
    /// Encodes into the object-language model value.
    pub fn to_value(&self) -> IExp {
        let (sel_r, sel_c) = match self.sel {
            Some((r, c)) => (r as i64, c as i64),
            None => (-1, -1),
        };
        iv::record([
            (
                "cols",
                iv::list(Typ::Int, self.cols.iter().map(|r| r.to_value())),
            ),
            (
                "rows",
                iv::list(
                    Typ::prod([
                        (Label::new("key"), Typ::Int),
                        (Label::new("cells"), Typ::list(Typ::Int)),
                    ]),
                    self.rows.iter().map(|(k, cells)| {
                        iv::record([
                            ("key", k.to_value()),
                            (
                                "cells",
                                iv::list(Typ::Int, cells.iter().map(|c| c.to_value())),
                            ),
                        ])
                    }),
                ),
            ),
            (
                "sel",
                iv::record([("row", iv::int(sel_r)), ("col", iv::int(sel_c))]),
            ),
        ])
    }

    /// Decodes from the object-language model value.
    pub fn from_value(model: &Model) -> Result<DataframeModel, CmdError> {
        let bad = || CmdError::Custom("malformed $dataframe model".into());
        let cols = model
            .field(&Label::new("cols"))
            .and_then(IExp::list_elements)
            .ok_or_else(bad)?
            .iter()
            .map(|v| SpliceRef::from_value(v).ok_or_else(bad))
            .collect::<Result<Vec<_>, _>>()?;
        let mut rows = Vec::new();
        for row in model
            .field(&Label::new("rows"))
            .and_then(IExp::list_elements)
            .ok_or_else(bad)?
        {
            let key = row
                .field(&Label::new("key"))
                .and_then(SpliceRef::from_value)
                .ok_or_else(bad)?;
            let cells = row
                .field(&Label::new("cells"))
                .and_then(IExp::list_elements)
                .ok_or_else(bad)?
                .iter()
                .map(|v| SpliceRef::from_value(v).ok_or_else(bad))
                .collect::<Result<Vec<_>, _>>()?;
            rows.push((key, cells));
        }
        let sel_field = model.field(&Label::new("sel")).ok_or_else(bad)?;
        let sel_r = sel_field
            .field(&Label::new("row"))
            .and_then(IExp::as_int)
            .ok_or_else(bad)?;
        let sel_c = sel_field
            .field(&Label::new("col"))
            .and_then(IExp::as_int)
            .ok_or_else(bad)?;
        let sel = if sel_r >= 0 && sel_c >= 0 {
            Some((sel_r as usize, sel_c as usize))
        } else {
            None
        };
        Ok(DataframeModel { cols, rows, sel })
    }
}

/// The `$dataframe` livelit.
#[derive(Debug, Default, Clone, Copy)]
pub struct DataframeLivelit;

impl Livelit for DataframeLivelit {
    // `expand` is a pure function of the model: attested so the static
    // purity analysis (LL06xx) can discharge the dynamic determinism
    // check (LL0401) for this livelit.
    fn expand_pure(&self) -> bool {
        true
    }

    fn name(&self) -> LivelitName {
        LivelitName::new("$dataframe")
    }

    fn expansion_ty(&self) -> Typ {
        dataframe_typ()
    }

    fn model_ty(&self) -> Typ {
        dataframe_model_typ()
    }

    fn init(&self, _params: &[SpliceRef], _ctx: &mut UpdateCtx<'_>) -> Result<Model, CmdError> {
        Ok(DataframeModel::default().to_value())
    }

    fn update(
        &self,
        model: &Model,
        action: &Action,
        ctx: &mut UpdateCtx<'_>,
    ) -> Result<Model, CmdError> {
        let mut m = DataframeModel::from_value(model)?;
        if action.field(&Label::new("add_col")).is_some() {
            m.cols
                .push(ctx.new_splice(Typ::Str, Some(build::string("")))?);
            for (_, cells) in &mut m.rows {
                cells.push(ctx.new_splice(Typ::Float, Some(build::float(0.0)))?);
            }
        } else if action.field(&Label::new("add_row")).is_some() {
            let key = ctx.new_splice(Typ::Str, Some(build::string("")))?;
            let mut cells = Vec::with_capacity(m.cols.len());
            for _ in 0..m.cols.len() {
                cells.push(ctx.new_splice(Typ::Float, Some(build::float(0.0)))?);
            }
            m.rows.push((key, cells));
        } else if let Some(sel) = action.field(&Label::new("select")) {
            let r = sel
                .field(&Label::new("row"))
                .and_then(IExp::as_int)
                .ok_or_else(|| CmdError::Custom("select needs .row".into()))?;
            let c = sel
                .field(&Label::new("col"))
                .and_then(IExp::as_int)
                .ok_or_else(|| CmdError::Custom("select needs .col".into()))?;
            if r < 0 || c < 0 || r as usize >= m.rows.len() || c as usize >= m.cols.len() {
                return Err(CmdError::Custom("selection out of bounds".into()));
            }
            m.sel = Some((r as usize, c as usize));
        } else if let Some(IExp::Int(i)) = action.field(&Label::new("del_row")) {
            let i = *i as usize;
            if i >= m.rows.len() {
                return Err(CmdError::Custom("del_row out of bounds".into()));
            }
            let (key, cells) = m.rows.remove(i);
            ctx.remove_splice(key)?;
            for c in cells {
                ctx.remove_splice(c)?;
            }
            m.sel = None;
        } else if let Some(IExp::Int(i)) = action.field(&Label::new("del_col")) {
            let i = *i as usize;
            if i >= m.cols.len() {
                return Err(CmdError::Custom("del_col out of bounds".into()));
            }
            ctx.remove_splice(m.cols.remove(i))?;
            for (_, cells) in &mut m.rows {
                ctx.remove_splice(cells.remove(i))?;
            }
            m.sel = None;
        } else {
            return Err(CmdError::Custom("unknown $dataframe action".into()));
        }
        Ok(m.to_value())
    }

    fn view(&self, model: &Model, ctx: &mut ViewCtx<'_>) -> Result<Html<Action>, CmdError> {
        let m = DataframeModel::from_value(model)?;

        // Formula bar: the editor for the selected cell's splice; "all of
        // Hazel's editing affordances are available" there (Sec. 2.4.2).
        let formula_bar = match m
            .sel
            .and_then(|(r, c)| m.rows.get(r).and_then(|(_, cells)| cells.get(c)).copied())
        {
            Some(splice) => span(vec![
                Html::text("fx: "),
                ctx.editor(splice, Dim::fixed_width(40)),
            ])
            .attr("id", "formula-bar"),
            None => span(vec![Html::text("fx: (no cell selected)")]).attr("id", "formula-bar"),
        };

        // Header row: column-key editors.
        let mut header = vec![Html::text("")];
        for (ci, col) in m.cols.iter().enumerate() {
            header.push(
                td(vec![ctx.editor(*col, Dim::fixed_width(10))]).attr("id", format!("col-{ci}")),
            );
        }
        let mut table_rows = vec![tr(header)];

        // Body: row-key editors plus per-cell *result views* — "the table
        // itself displays not the expression itself but rather its value,
        // just as in a spreadsheet" (Sec. 2.1).
        for (ri, (key, cells)) in m.rows.iter().enumerate() {
            let mut row =
                vec![td(vec![ctx.editor(*key, Dim::fixed_width(10))])
                    .attr("id", format!("rowkey-{ri}"))];
            for (ci, cell) in cells.iter().enumerate() {
                let content: Html<Action> = match ctx.result_view(*cell, Dim::fixed_width(8))? {
                    Some(view) => view,
                    None => Html::text("·"),
                };
                row.push(
                    td(vec![content])
                        .attr("id", format!("cell-{ri}-{ci}"))
                        .on_click(iv::record([(
                            "select",
                            iv::record([("row", iv::int(ri as i64)), ("col", iv::int(ci as i64))]),
                        )])),
                );
            }
            table_rows.push(tr(row));
        }

        let controls = span(vec![
            button(vec![Html::text("+row")])
                .attr("id", "add-row")
                .on_click(iv::record([("add_row", IExp::Unit)])),
            button(vec![Html::text("+col")])
                .attr("id", "add-col")
                .on_click(iv::record([("add_col", IExp::Unit)])),
        ]);

        Ok(div(vec![formula_bar, table(table_rows), controls]))
    }

    fn expand(&self, model: &Model) -> Result<(EExp, Vec<SpliceRef>), String> {
        let m = DataframeModel::from_value(model).map_err(|e| e.to_string())?;

        // Argument order: column keys, then per row its key and cells.
        let mut refs: Vec<SpliceRef> = m.cols.clone();
        for (key, cells) in &m.rows {
            refs.push(*key);
            refs.extend(cells.iter().copied());
        }

        // Parameterized expansion: λ over every splice, assembling the
        // Dataframe value. Variable names are internal to the (closed)
        // expansion; splices cannot capture them (beta reduction is
        // capture-avoiding — Sec. 4.2.2).
        let col_vars: Vec<String> = (0..m.cols.len()).map(|i| format!("c{i}")).collect();
        let row_vars: Vec<(String, Vec<String>)> = m
            .rows
            .iter()
            .enumerate()
            .map(|(ri, (_, cells))| {
                (
                    format!("k{ri}"),
                    (0..cells.len()).map(|ci| format!("x{ri}_{ci}")).collect(),
                )
            })
            .collect();

        let body = build::record([
            (
                "cols",
                build::list(Typ::Str, col_vars.iter().map(|v| build::var(v))),
            ),
            (
                "rows",
                build::list(
                    Typ::tuple([Typ::Str, Typ::list(Typ::Float)]),
                    row_vars.iter().map(|(k, cells)| {
                        build::tuple([
                            build::var(k),
                            build::list(Typ::Float, cells.iter().map(|c| build::var(c))),
                        ])
                    }),
                ),
            ),
        ]);

        let mut params: Vec<(String, Typ)> =
            col_vars.iter().map(|v| (v.clone(), Typ::Str)).collect();
        for (k, cells) in &row_vars {
            params.push((k.clone(), Typ::Str));
            params.extend(cells.iter().map(|c| (c.clone(), Typ::Float)));
        }
        let pexpansion = params
            .into_iter()
            .rev()
            .fold(body, |acc, (v, t)| build::lam(&v, t, acc));

        Ok((pexpansion, refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::ident::HoleName;
    use hazel_lang::typing::Ctx;
    use hazel_lang::unexpanded::UExp;
    use livelit_core::def::LivelitCtx;
    use livelit_mvu::host::Instance;
    use std::sync::Arc;

    fn add(inst: &mut Instance, what: &str) {
        inst.dispatch(&iv::record([(what, IExp::Unit)])).unwrap();
    }

    fn grid_2x2() -> Instance {
        let mut inst =
            Instance::new(Arc::new(DataframeLivelit), HoleName(0), vec![], 1 << 20).unwrap();
        add(&mut inst, "add_col");
        add(&mut inst, "add_col");
        add(&mut inst, "add_row");
        add(&mut inst, "add_row");
        inst
    }

    #[test]
    fn model_roundtrip() {
        let m = DataframeModel {
            cols: vec![SpliceRef(0), SpliceRef(1)],
            rows: vec![(SpliceRef(2), vec![SpliceRef(3), SpliceRef(4)])],
            sel: Some((0, 1)),
        };
        let v = m.to_value();
        assert!(hazel_lang::value::value_has_typ(&v, &dataframe_model_typ()));
        assert_eq!(DataframeModel::from_value(&v).unwrap(), m);
    }

    #[test]
    fn add_row_and_col_grow_splices() {
        let inst = grid_2x2();
        // 2 column keys + 2 rows × (1 key + 2 cells) = 8 splices.
        assert_eq!(inst.store().len(), 8);
        let m = DataframeModel::from_value(inst.model()).unwrap();
        assert_eq!(m.cols.len(), 2);
        assert_eq!(m.rows.len(), 2);
        assert_eq!(m.rows[0].1.len(), 2);
    }

    #[test]
    fn selection_drives_formula_bar() {
        let mut inst = grid_2x2();
        inst.dispatch(&iv::record([(
            "select",
            iv::record([("row", iv::int(1)), ("col", iv::int(0))]),
        )]))
        .unwrap();
        let m = DataframeModel::from_value(inst.model()).unwrap();
        assert_eq!(m.sel, Some((1, 0)));
        // Out-of-bounds selection is a custom error.
        assert!(inst
            .dispatch(&iv::record([(
                "select",
                iv::record([("row", iv::int(9)), ("col", iv::int(0))]),
            )]))
            .is_err());
    }

    #[test]
    fn del_row_removes_its_splices() {
        let mut inst = grid_2x2();
        inst.dispatch(&iv::record([("del_row", iv::int(0))]))
            .unwrap();
        assert_eq!(inst.store().len(), 5);
        let m = DataframeModel::from_value(inst.model()).unwrap();
        assert_eq!(m.rows.len(), 1);
        // Deleting a column shrinks every remaining row.
        inst.dispatch(&iv::record([("del_col", iv::int(1))]))
            .unwrap();
        let m = DataframeModel::from_value(inst.model()).unwrap();
        assert_eq!(m.cols.len(), 1);
        assert_eq!(m.rows[0].1.len(), 1);
    }

    #[test]
    fn expansion_builds_dataframe_value() {
        let mut inst = grid_2x2();
        // Fill in: cols A1, A2; row Andrew with 80., 92.
        let m = DataframeModel::from_value(inst.model()).unwrap();
        inst.edit_splice(m.cols[0], UExp::Str("A1".into())).unwrap();
        inst.edit_splice(m.cols[1], UExp::Str("A2".into())).unwrap();
        inst.edit_splice(m.rows[0].0, UExp::Str("Andrew".into()))
            .unwrap();
        inst.edit_splice(m.rows[0].1[0], UExp::Float(80.0)).unwrap();
        inst.edit_splice(m.rows[0].1[1], UExp::Float(92.0)).unwrap();
        inst.edit_splice(m.rows[1].0, UExp::Str("Cyrus".into()))
            .unwrap();
        inst.edit_splice(m.rows[1].1[0], UExp::Float(61.0)).unwrap();
        inst.edit_splice(m.rows[1].1[1], UExp::Float(64.0)).unwrap();

        let mut phi = LivelitCtx::new();
        phi.define(livelit_mvu::host::def_for(
            &(Arc::new(DataframeLivelit) as Arc<dyn Livelit>),
        ))
        .unwrap();
        let program = UExp::Livelit(Box::new(inst.invocation().unwrap()));
        let collection = livelit_core::cc::collect(&phi, &program).unwrap();
        let result = collection.resume_result().unwrap();
        // Check shape: .cols is the list of header strings.
        let cols = result
            .field(&Label::new("cols"))
            .and_then(IExp::list_elements)
            .unwrap();
        assert_eq!(cols[0].as_str(), Some("A1"));
        assert_eq!(cols[1].as_str(), Some("A2"));
        let rows = result
            .field(&Label::new("rows"))
            .and_then(IExp::list_elements)
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[1].field(&Label::positional(0)).and_then(IExp::as_str),
            Some("Cyrus")
        );
    }

    #[test]
    fn cell_formula_with_expression_evaluates_like_spreadsheet() {
        // Fig. 1c: the formula bar fills a cell with `q1_max +. 24. +. 20.`;
        // the table shows 80.
        let mut inst = grid_2x2();
        let m = DataframeModel::from_value(inst.model()).unwrap();
        inst.edit_splice(
            m.rows[0].1[0],
            hazel_lang::parse::parse_uexp("q1_max +. 24. +. 20.").unwrap(),
        )
        .unwrap();
        let mut phi = LivelitCtx::new();
        phi.define(livelit_mvu::host::def_for(
            &(Arc::new(DataframeLivelit) as Arc<dyn Livelit>),
        ))
        .unwrap();
        // let q1_max = 36. in $dataframe...
        let program = UExp::Let(
            hazel_lang::Var::new("q1_max"),
            None,
            Box::new(UExp::Float(36.0)),
            Box::new(UExp::Livelit(Box::new(inst.invocation().unwrap()))),
        );
        let collection = livelit_core::cc::collect(&phi, &program).unwrap();
        // Live evaluation of the cell splice, as the table display does.
        let envs = collection.envs_for(HoleName(0));
        assert_eq!(envs.len(), 1);
        let gamma = collection.delta.get(HoleName(0)).unwrap().ctx.clone();
        let result = livelit_core::live::eval_splice_in_env(
            &phi,
            &gamma,
            &envs[0],
            &hazel_lang::parse::parse_uexp("q1_max +. 24. +. 20.").unwrap(),
            &Typ::Float,
            1_000_000,
        )
        .unwrap()
        .expect("cell value available");
        assert_eq!(result.value(), Some(&IExp::Float(80.0)));
    }

    #[test]
    fn view_contains_formula_bar_table_and_controls() {
        let mut inst = grid_2x2();
        inst.dispatch(&iv::record([(
            "select",
            iv::record([("row", iv::int(0)), ("col", iv::int(0))]),
        )]))
        .unwrap();
        let phi = LivelitCtx::new();
        let gamma = Ctx::empty();
        let view = inst.view(&phi, &gamma, &[], 100_000).unwrap();
        assert!(view
            .find_handler("add-row", livelit_mvu::html::EventKind::Click)
            .is_some());
        assert!(view
            .find_handler("cell-1-1", livelit_mvu::html::EventKind::Click)
            .is_some());
        // The formula bar embeds the selected cell's editor.
        let refs = view.splice_refs();
        let m = DataframeModel::from_value(inst.model()).unwrap();
        assert_eq!(refs[0], m.rows[0].1[0], "formula bar first");
    }
}
