//! The `$basic_adjustments` livelit (Fig. 2, Sec. 2.5.3).
//!
//! `livelit $basic_adjustments (url : Str) at Img` — two `Int` splices
//! adjust contrast and brightness; the view shows a live preview of the
//! transformed image under the *selected closure* (so a preset function
//! mapped over several photos previews each photo as the client toggles
//! closures). "The expansion generates calls to a browser image processing
//! framework" — here, to the object-language framework of
//! [`crate::image::framework_source`], bound through the livelit's
//! definition-site context (Sec. 3.2.5).

use hazel_lang::build;
use hazel_lang::external::EExp;
use hazel_lang::ident::{Label, LivelitName};
use hazel_lang::parse::{parse_eexp, parse_typ};
use hazel_lang::typ::Typ;
use hazel_lang::value::iv;
use hazel_lang::IExp;
use livelit_core::live::LiveResult;
use livelit_mvu::html::tags::*;
use livelit_mvu::html::{Dim, Html};
use livelit_mvu::livelit::{Action, CmdError, ContextBinding, Livelit, Model, UpdateCtx, ViewCtx};
use livelit_mvu::splice::SpliceRef;

use crate::image::{framework_source, image_to_eexp, img_typ, load_image, Image};

/// The photo gallery: the URLs the object-language `load_image` knows about
/// (the stand-in for the photographer's Lightroom collection).
pub const GALLERY: [&str; 3] = ["img://alpine", "img://harbor", "img://dunes"];

/// Builds the object-language `load_image : Str -> Img` as a chained
/// comparison over the gallery, each arm a literal image value.
fn load_image_def() -> EExp {
    let fallback = image_to_eexp(&Image::solid(12, 6, 128));
    let body = GALLERY.iter().rev().fold(fallback, |acc, url| {
        build::ite(
            build::bin(
                hazel_lang::BinOp::StrEq,
                build::var("url"),
                build::string(url),
            ),
            image_to_eexp(&load_image(url)),
            acc,
        )
    });
    build::lam("url", Typ::Str, body)
}

/// The `$basic_adjustments` livelit.
#[derive(Debug, Default, Clone, Copy)]
pub struct BasicAdjustmentsLivelit;

fn model_ref(model: &Model, l: &str) -> Result<SpliceRef, CmdError> {
    model
        .field(&Label::new(l))
        .and_then(SpliceRef::from_value)
        .ok_or_else(|| CmdError::Custom(format!("adjustments model missing .{l}")))
}

impl BasicAdjustmentsLivelit {
    fn eval_int(ctx: &ViewCtx<'_>, r: SpliceRef) -> Result<Option<i64>, CmdError> {
        Ok(match ctx.eval_splice(r)? {
            Some(LiveResult::Val(IExp::Int(n))) => Some(n),
            _ => None,
        })
    }
}

impl Livelit for BasicAdjustmentsLivelit {
    // `expand` is a pure function of the model: attested so the static
    // purity analysis (LL06xx) can discharge the dynamic determinism
    // check (LL0401) for this livelit.
    fn expand_pure(&self) -> bool {
        true
    }

    fn name(&self) -> LivelitName {
        LivelitName::new("$basic_adjustments")
    }

    fn param_tys(&self) -> Vec<Typ> {
        vec![Typ::Str]
    }

    fn expansion_ty(&self) -> Typ {
        img_typ()
    }

    fn model_ty(&self) -> Typ {
        let sref = livelit_mvu::splice::splice_ref_typ();
        Typ::prod([
            (Label::new("contrast"), sref.clone()),
            (Label::new("brightness"), sref),
        ])
    }

    fn context(&self) -> Vec<ContextBinding> {
        // The image-processing framework plus the photo loader, bound at
        // the definition site so the expansion is context-independent.
        let mut out = Vec::new();
        for (name, ty_src, def_src) in framework_source() {
            out.push(ContextBinding::new(
                name,
                parse_typ(ty_src).expect("framework type parses"),
                parse_eexp(def_src).expect("framework def parses"),
            ));
        }
        out.push(ContextBinding::new(
            "load_image",
            Typ::arrow(Typ::Str, img_typ()),
            load_image_def(),
        ));
        out
    }

    fn init(&self, _params: &[SpliceRef], ctx: &mut UpdateCtx<'_>) -> Result<Model, CmdError> {
        // Two Int splices, as in Fig. 2 (there filled with $percent).
        let contrast = ctx.new_splice(Typ::Int, Some(build::int(0)))?;
        let brightness = ctx.new_splice(Typ::Int, Some(build::int(0)))?;
        Ok(iv::record([
            ("contrast", contrast.to_value()),
            ("brightness", brightness.to_value()),
        ]))
    }

    fn update(
        &self,
        model: &Model,
        action: &Action,
        ctx: &mut UpdateCtx<'_>,
    ) -> Result<Model, CmdError> {
        // (.set_contrast n) / (.set_brightness n) overwrite the splices
        // with literals (like $color's palette clicks).
        if let Some(IExp::Int(n)) = action.field(&Label::new("set_contrast")) {
            ctx.set_splice(model_ref(model, "contrast")?, build::int(*n))?;
        } else if let Some(IExp::Int(n)) = action.field(&Label::new("set_brightness")) {
            ctx.set_splice(model_ref(model, "brightness")?, build::int(*n))?;
        } else {
            return Err(CmdError::Custom("unknown $basic_adjustments action".into()));
        }
        Ok(model.clone())
    }

    fn view(&self, model: &Model, ctx: &mut ViewCtx<'_>) -> Result<Html<Action>, CmdError> {
        let contrast_ref = model_ref(model, "contrast")?;
        let brightness_ref = model_ref(model, "brightness")?;

        // Live-evaluate the url parameter under the selected closure: this
        // is what makes toggling closures flip between photos (Fig. 2).
        let url = match ctx.eval_splice(SpliceRef(0))? {
            Some(LiveResult::Val(IExp::Str(s))) => Some(s),
            _ => None,
        };
        let contrast = Self::eval_int(ctx, contrast_ref)?;
        let brightness = Self::eval_int(ctx, brightness_ref)?;

        let preview = match (&url, contrast, brightness) {
            (Some(url), Some(c), Some(b)) => {
                let img = load_image(url)
                    .contrast(c.clamp(-100, 100) as i32)
                    .brightness(b as i32);
                div(img.to_ascii().into_iter().map(Html::text).collect()).attr("id", "preview")
            }
            _ => div(vec![Html::text(
                "(no preview: closure or splices indeterminate)",
            )])
            .attr("id", "preview"),
        };

        Ok(div(vec![
            span(vec![
                Html::text("contrast: "),
                ctx.editor(contrast_ref, Dim::fixed_width(12)),
                Html::text("  brightness: "),
                ctx.editor(brightness_ref, Dim::fixed_width(12)),
            ]),
            preview,
            Html::text(match url {
                Some(u) => format!("source: {u}"),
                None => "source: ?".to_owned(),
            }),
        ]))
    }

    fn expand(&self, model: &Model) -> Result<(EExp, Vec<SpliceRef>), String> {
        let contrast_ref = model_ref(model, "contrast").map_err(|e| e.to_string())?;
        let brightness_ref = model_ref(model, "brightness").map_err(|e| e.to_string())?;
        // fun url -> fun c -> fun b ->
        //   adjust_brightness (adjust_contrast (load_image url) c) b
        let body = build::aps(
            build::var("adjust_brightness"),
            [
                build::aps(
                    build::var("adjust_contrast"),
                    [
                        build::ap(build::var("load_image"), build::var("url")),
                        build::var("c"),
                    ],
                ),
                build::var("b"),
            ],
        );
        let pexpansion = build::lams([("url", Typ::Str), ("c", Typ::Int), ("b", Typ::Int)], body);
        Ok((pexpansion, vec![SpliceRef(0), contrast_ref, brightness_ref]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::image_from_value;
    use hazel_lang::ident::HoleName;
    use hazel_lang::unexpanded::UExp;
    use livelit_core::def::LivelitCtx;
    use livelit_mvu::host::Instance;
    use std::sync::Arc;

    fn phi() -> LivelitCtx {
        let mut phi = LivelitCtx::new();
        phi.define(livelit_mvu::host::def_for(
            &(Arc::new(BasicAdjustmentsLivelit) as Arc<dyn Livelit>),
        ))
        .unwrap();
        phi
    }

    fn instance(url: &str) -> Instance {
        Instance::new(
            Arc::new(BasicAdjustmentsLivelit),
            HoleName(0),
            vec![UExp::Str(url.to_owned())],
            1 << 20,
        )
        .unwrap()
    }

    #[test]
    fn expansion_type_checks_with_context() {
        let inst = instance(GALLERY[0]);
        let pexp = inst.pexpansion().unwrap();
        assert!(pexp.is_closed(), "context bindings close the expansion");
        let (ty, _) = hazel_lang::typing::syn(&hazel_lang::typing::Ctx::empty(), &pexp).unwrap();
        assert_eq!(ty, Typ::arrows([Typ::Str, Typ::Int, Typ::Int], img_typ()));
    }

    #[test]
    fn invocation_evaluates_to_adjusted_image() {
        let mut inst = instance(GALLERY[1]);
        inst.dispatch(&iv::record([("set_brightness", iv::int(30))]))
            .unwrap();
        let program = UExp::Livelit(Box::new(inst.invocation().unwrap()));
        let collection = livelit_core::cc::collect(&phi(), &program).unwrap();
        let result = collection.resume_result().unwrap();
        let computed = image_from_value(&result).expect("image value");
        // The object-language pipeline equals the Rust substrate.
        assert_eq!(computed, load_image(GALLERY[1]).contrast(0).brightness(30));
    }

    #[test]
    fn multiple_closures_from_mapped_preset() {
        // Fig. 2: let classic_look = fun url -> $basic_adjustments(url) in
        // (classic_look url1, classic_look url2) — two closures.
        let inst = instance("unused-placeholder");
        let mut ap = inst.invocation().unwrap();
        // Rebind the url parameter splice to the lambda-bound variable.
        ap.splices[0].exp = UExp::Var(hazel_lang::Var::new("url"));
        let call = |u: &str| {
            UExp::Ap(
                Box::new(UExp::Var(hazel_lang::Var::new("classic_look"))),
                Box::new(UExp::Str(u.to_owned())),
            )
        };
        let program = UExp::Let(
            hazel_lang::Var::new("classic_look"),
            None,
            Box::new(UExp::Lam(
                hazel_lang::Var::new("url"),
                Typ::Str,
                Box::new(UExp::Livelit(Box::new(ap))),
            )),
            Box::new(UExp::Tuple(vec![
                (Label::positional(0), call(GALLERY[0])),
                (Label::positional(1), call(GALLERY[2])),
            ])),
        );
        let collection = livelit_core::cc::collect(&phi(), &program).unwrap();
        let envs = collection.envs_for(HoleName(0));
        assert_eq!(envs.len(), 2, "one closure per mapped photo");
        let urls: Vec<&str> = envs
            .iter()
            .filter_map(|s| s.get(&hazel_lang::Var::new("url"))?.as_str())
            .collect();
        assert!(urls.contains(&GALLERY[0]));
        assert!(urls.contains(&GALLERY[2]));
    }

    #[test]
    fn view_preview_follows_selected_closure() {
        let phi = phi();
        let gamma = hazel_lang::typing::Ctx::from_bindings([(
            hazel_lang::Var::new("ignored_param"),
            Typ::Str,
        )]);
        // Hand-build two closures differing in the url parameter value.
        // The instance's param splice is the literal URL so closures are
        // not even needed for it — instead test with an empty env (the
        // splices are literals) and check the preview appears.
        let env = hazel_lang::Sigma::empty();
        let mut inst2 = instance(GALLERY[0]);
        inst2.selected_env = 0;
        let view = inst2
            .view(&phi, &gamma, std::slice::from_ref(&env), 4_000_000)
            .unwrap();
        let text = flatten(&view);
        assert!(text.contains(&format!("source: {}", GALLERY[0])), "{text}");
        // The preview contains ascii-art rows.
        assert!(text.lines().count() > 3);
    }

    #[test]
    fn unknown_url_falls_back_to_solid_image() {
        let inst = instance("img://nonexistent");
        let program = UExp::Livelit(Box::new(inst.invocation().unwrap()));
        let collection = livelit_core::cc::collect(&phi(), &program).unwrap();
        let result = collection.resume_result().unwrap();
        let computed = image_from_value(&result).expect("image value");
        assert_eq!(computed, Image::solid(12, 6, 128));
    }

    fn flatten(h: &Html<Action>) -> String {
        match h {
            Html::Text(s) => s.clone(),
            Html::Element { children, .. } => {
                children.iter().map(flatten).collect::<Vec<_>>().join("\n")
            }
            Html::Editor { splice, .. } => format!("[{splice}]"),
            Html::ResultView { splice, .. } => format!("<{splice}>"),
        }
    }
}
