//! `livelit-std`: the standard livelit library — every livelit from
//! *Filling Typed Holes with Live GUIs* (PLDI 2021), implemented against
//! the [`livelit_mvu::Livelit`] trait.
//!
//! | Livelit | Paper | Expansion type |
//! |---|---|---|
//! | [`color::ColorLivelit`] (`$color`) | Fig. 3 | `(.r Int, .g Int, .b Int, .a Int)` |
//! | [`slider::SliderLivelit`] (`$slider min max`, `$percent`) | Figs. 1b, 1c | `Int` |
//! | [`slider::CheckboxLivelit`] (`$checkbox`) | — | `Bool` |
//! | [`dataframe::DataframeLivelit`] (`$dataframe`) | Fig. 1c | `Dataframe` |
//! | [`grade_cutoffs::GradeCutoffsLivelit`] (`$grade_cutoffs avgs`) | Fig. 1c | labeled 4-tuple |
//! | [`adjustments::BasicAdjustmentsLivelit`] (`$basic_adjustments url`) | Fig. 2 | `Img` |
//! | [`plot::PlotLivelit`] (`$plot`) | intro motivation | `Float -> Float` |
//!
//! The [`mod@derive`] module implements the paper's future-work `deriving`
//! mechanism (Sec. 7): form livelits generated from first-order type
//! definitions.
//!
//! Plus the substrates the case studies need: the grayscale [`image`]
//! framework (procedural photos, adjustments, object-language reflection)
//! and the [`grading`] library written in Hazel surface syntax.

#![warn(missing_docs)]

pub mod adjustments;
pub mod color;
pub mod dataframe;
pub mod derive;
pub mod grade_cutoffs;
pub mod grading;
pub mod image;
pub mod plot;
pub mod slider;

use std::sync::Arc;

/// Registers the complete standard library (and the `$uslider`/`$percent`
/// abbreviations) into an editor registry.
pub fn register_all(registry: &mut hazel_editor::LivelitRegistry) {
    // The standard library passes every registration lint; see the
    // std_library_passes_registration_lints test.
    registry
        .register(Arc::new(color::ColorLivelit))
        .expect("$color passes registration lints");
    registry
        .register(Arc::new(slider::CheckboxLivelit))
        .expect("$checkbox passes registration lints");
    registry
        .register(Arc::new(dataframe::DataframeLivelit))
        .expect("$dataframe passes registration lints");
    registry
        .register(Arc::new(grade_cutoffs::GradeCutoffsLivelit))
        .expect("$grade_cutoffs passes registration lints");
    registry
        .register(Arc::new(adjustments::BasicAdjustmentsLivelit))
        .expect("$basic_adjustments passes registration lints");
    registry
        .register(Arc::new(plot::PlotLivelit))
        .expect("$plot passes registration lints");
    slider::register_percent(registry);
}
