//! Time sources for tracing.
//!
//! All timestamps in the event stream come from a [`Clock`] injected into
//! the [`crate::Tracer`]. Production tracing uses [`MonotonicClock`]
//! (wall-clock-independent, monotonic nanoseconds); tests and the
//! byte-deterministic `hazel trace` output use [`TestClock`], whose
//! readings are a pure function of how many times it has been queried — no
//! `SystemTime` or `Instant` value ever reaches the serialized output.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond time source.
///
/// Implementations must be cheap to query and non-decreasing across calls.
pub trait Clock: Send {
    /// Nanoseconds since this clock's epoch (construction, for the
    /// monotonic clock; zero, for the test clock).
    fn now_ns(&self) -> u64;
}

/// Real monotonic time, anchored at construction so readings start near
/// zero and are meaningful as durations.
#[derive(Debug)]
pub struct MonotonicClock {
    anchor: Instant,
}

impl MonotonicClock {
    /// A clock anchored at the moment of construction.
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            anchor: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> MonotonicClock {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock: each query returns the previous reading plus a
/// fixed tick. Two traces of the same computation under fresh `TestClock`s
/// are therefore byte-identical.
///
/// Clones share state, so a test can keep a handle to inspect or advance
/// the clock while a tracer owns the other clone.
#[derive(Debug, Clone)]
pub struct TestClock {
    state: Arc<AtomicU64>,
    tick: u64,
}

/// The default tick of [`TestClock::new`], in nanoseconds per query.
pub const TEST_CLOCK_TICK_NS: u64 = 1_000;

impl TestClock {
    /// A clock starting at zero, advancing [`TEST_CLOCK_TICK_NS`] per query.
    pub fn new() -> TestClock {
        TestClock::with_tick(TEST_CLOCK_TICK_NS)
    }

    /// A clock starting at zero, advancing `tick_ns` per query.
    pub fn with_tick(tick_ns: u64) -> TestClock {
        TestClock {
            state: Arc::new(AtomicU64::new(0)),
            tick: tick_ns,
        }
    }

    /// Manually advances the clock by `ns` without consuming a query.
    pub fn advance(&self, ns: u64) {
        self.state.fetch_add(ns, Ordering::SeqCst);
    }

    /// The current reading, without advancing.
    pub fn peek(&self) -> u64 {
        self.state.load(Ordering::SeqCst)
    }
}

impl Default for TestClock {
    fn default() -> TestClock {
        TestClock::new()
    }
}

impl Clock for TestClock {
    fn now_ns(&self) -> u64 {
        self.state.fetch_add(self.tick, Ordering::SeqCst) + self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_clock_is_deterministic() {
        let a = TestClock::new();
        let b = TestClock::new();
        let ra: Vec<u64> = (0..5).map(|_| a.now_ns()).collect();
        let rb: Vec<u64> = (0..5).map(|_| b.now_ns()).collect();
        assert_eq!(ra, rb);
        assert_eq!(ra[0], TEST_CLOCK_TICK_NS);
    }

    #[test]
    fn test_clock_clones_share_state() {
        let a = TestClock::with_tick(10);
        let b = a.clone();
        a.now_ns();
        assert_eq!(b.peek(), 10);
        b.advance(5);
        assert_eq!(a.peek(), 15);
    }

    #[test]
    fn monotonic_clock_is_non_decreasing() {
        let c = MonotonicClock::new();
        let t1 = c.now_ns();
        let t2 = c.now_ns();
        assert!(t2 >= t1);
    }
}
