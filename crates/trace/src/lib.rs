//! `livelit-trace`: structured tracing, metrics, and profiling for the
//! livelit expand/eval/edit pipeline — zero dependencies, hermetic, and
//! near-zero overhead when off.
//!
//! The paper's MVU-expand protocol runs a multi-phase pipeline after every
//! edit: parse → elaborate → expand → evaluate → collect closures →
//! diff/patch views. This crate makes that pipeline observable:
//!
//! - **Spans** with parent links and monotonic timing ([`Tracer`],
//!   [`span`]), named after pipeline phases (`"engine.collect"`,
//!   `"cc.eval"`, `"mvu.diff"`, ...).
//! - **Typed counters** ([`Counter`], [`count`]): holes remaining,
//!   expansions performed, splices evaluated, closures collected,
//!   view-diff node/patch counts, analyzer cache hits/misses, evaluation
//!   steps, incremental fast-path takes.
//! - **Injectable clocks** ([`clock::Clock`]): [`clock::MonotonicClock`]
//!   for real profiles, [`clock::TestClock`] for byte-deterministic traces
//!   (no `SystemTime`/`Instant` value reaches serialized output).
//! - **Pluggable sinks** ([`sink::Sink`]): [`sink::NullSink`],
//!   [`sink::RingSink`], [`sink::JsonlSink`], [`sink::StatsSink`], and
//!   [`sink::FanoutSink`].
//!
//! # Overhead contract
//!
//! Probes are free functions guarded by one relaxed atomic load. With no
//! tracer installed they do no allocation, take no lock, and record
//! nothing — the property the benchmark harness's overhead experiment
//! demonstrates (< 2% on a full pipeline workload).
//!
//! # Example
//!
//! ```
//! use livelit_trace::{install, span, count, Counter, Tracer};
//! use livelit_trace::sink::StatsSink;
//!
//! let sink = StatsSink::new();
//! let tracer = Tracer::deterministic(sink.clone());
//! {
//!     let _session = install(&tracer);
//!     let _phase = span("engine.collect");
//!     count(Counter::ClosuresCollected, 3);
//! } // uninstalled here
//! let stats = sink.snapshot();
//! assert_eq!(stats.counter(Counter::ClosuresCollected), 3);
//! assert_eq!(stats.spans["engine.collect"].count, 1);
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod metrics;
pub mod sink;
pub mod tracer;

pub use clock::{Clock, MonotonicClock, TestClock};
pub use event::{json_string, render_events, Counter, Event, SpanId};
pub use metrics::{
    write_prom_histogram, Histogram, HistogramSnapshot, MetricsHub, MetricsSink, Phase, PhaseTimes,
    SlowCapture, SlowTrace,
};
pub use sink::{
    fmt_ns, FanoutSink, JsonlSink, NullSink, PairSink, RingSink, Sink, SpanStats, Stats, StatsSink,
};
pub use tracer::{count, enabled, install, span, span_prefixed, InstallGuard, SpanGuard, Tracer};
