//! Production metrics: lock-free log2 latency histograms, per-phase
//! attribution of span durations, and slow-request trace capture.
//!
//! The trace layer (spans + counters) answers "what happened on this run";
//! this module answers "what is the p99 right now, and which phase is
//! eating it" for a long-running `hazel serve` process:
//!
//! - [`Histogram`]: 64 fixed log2 buckets of [`AtomicU64`]s. Recording a
//!   sample is one `leading_zeros` plus a handful of relaxed atomic
//!   increments — no allocation, no lock — so it is safe on the hottest
//!   path and shareable across threads. Snapshots are mergeable and yield
//!   p50/p90/p99 within one bucket of exact, and the max exactly.
//! - [`Phase`]: the small static taxonomy every hot pipeline span maps
//!   into (parse / elaborate / typecheck / collect / eval_splices /
//!   render_diff / analyze). [`Phase::of_span`] is the single source of
//!   truth for the mapping; the phase-audit test in the integration suite
//!   asserts every span the pipeline emits is either mapped or explicitly
//!   allowlisted.
//! - [`MetricsHub`]: the shared aggregate — one histogram per phase,
//!   counter totals, and the in-flight request's per-phase breakdown.
//! - [`MetricsSink`]: a [`Sink`] that folds span `End` events into the
//!   hub's per-phase histograms (depth-guarded, so nested spans of the
//!   same phase are not double-counted) and brackets requests on
//!   `serve.*` spans.
//! - [`SlowCapture`]: a [`Sink`] keeping the K worst requests per op with
//!   their full span trees, so a p99 outlier is diagnosable after the
//!   fact.
//!
//! Determinism discipline: histograms and captures never feed byte-golden
//! transcripts — replies are byte-identical with metrics on or off, which
//! `tests/tests/metrics_props.rs` asserts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::event::{Counter, Event, SpanId};
use crate::sink::Sink;

/// Number of log2 buckets in a [`Histogram`]. Bucket 0 holds the sample
/// value 0; bucket `i` (for `1 <= i < 63`) holds `[2^(i-1), 2^i)`; the
/// last bucket holds everything from `2^62` up.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The static phase taxonomy for per-phase latency attribution.
///
/// Phases are *attribution*, not a partition of wall time: a `collect`
/// span may contain `eval_splices` spans, and both get the nested time.
/// Each phase's histogram answers "how long do spans of this kind take",
/// not "how does a request's wall time split".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Surface-syntax parsing (`parse`, `parse.module`).
    Parse,
    /// Bidirectional elaboration (`elab.syn`, `elab.ana`).
    Elaborate,
    /// Marking, expansion, and typed-expansion validation.
    Typecheck,
    /// Closure collection and fill-and-resume.
    Collect,
    /// Live splice evaluation under collected closures.
    EvalSplices,
    /// View recomputation and MVU diffing.
    RenderDiff,
    /// Static analysis passes (everything under `analysis.`).
    Analyze,
}

impl Phase {
    /// Every phase, in serialization order.
    pub const ALL: [Phase; 7] = [
        Phase::Parse,
        Phase::Elaborate,
        Phase::Typecheck,
        Phase::Collect,
        Phase::EvalSplices,
        Phase::RenderDiff,
        Phase::Analyze,
    ];

    /// Number of phases (the length of [`Phase::ALL`]).
    pub const COUNT: usize = Phase::ALL.len();

    /// The stable snake_case name used in serialized output.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Elaborate => "elaborate",
            Phase::Typecheck => "typecheck",
            Phase::Collect => "collect",
            Phase::EvalSplices => "eval_splices",
            Phase::RenderDiff => "render_diff",
            Phase::Analyze => "analyze",
        }
    }

    /// Maps a span name to its phase. This is the single source of truth
    /// for phase attribution; span names that are deliberately unmapped
    /// (request brackets, umbrella spans, editor actions) return `None`.
    pub fn of_span(name: &str) -> Option<Phase> {
        Some(match name {
            "parse" | "parse.module" => Phase::Parse,
            "elab.syn" | "elab.ana" => Phase::Elaborate,
            "engine.mark" | "engine.expand" | "expand.typed" => Phase::Typecheck,
            "engine.collect" | "engine.omega" | "engine.resume" | "cc.collect" | "cc.expand"
            | "cc.eval" | "cc.resume_result" | "cc.resume_envs" => Phase::Collect,
            "live.eval_splice" | "live.eval_batch" => Phase::EvalSplices,
            "engine.views" | "mvu.diff" => Phase::RenderDiff,
            _ if name.starts_with("analysis.") => Phase::Analyze,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Returns the bucket index for a nanosecond sample.
#[inline]
fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (64 - ns.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The inclusive upper bound of bucket `i` (`u64::MAX` for the last).
fn bucket_upper(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-bucket log2 latency histogram with lock-free recording.
///
/// The hot path ([`Histogram::record`]) is allocation-free: a bucket index
/// from `leading_zeros` and five relaxed atomic updates. Relaxed ordering
/// is sound because every cell is independently additive (min/max use
/// `fetch_min`/`fetch_max`); a [`HistogramSnapshot`] taken concurrently
/// with writers may be mid-request torn by a few samples, which is
/// acceptable for monitoring output and irrelevant once writers quiesce.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one nanosecond sample. Lock-free and allocation-free.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the aggregate.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`] — plain data, mergeable, and
/// the source for quantile extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample — exact, not bucketed.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile in nanoseconds, `0.0 <= q <= 1.0`. Returns the
    /// inclusive upper bound of the bucket containing the rank-`ceil(q·n)`
    /// sample, clamped to the exact observed max — so the estimate is
    /// within one log2 bucket of the exact quantile, and `quantile(1.0)`
    /// is the exact max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The median estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds another snapshot into this one. Merging two snapshots is
    /// equivalent (bucket-exactly) to recording the concatenated sample
    /// streams into one histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        if other.count > 0 {
            self.min = if self.count == 0 {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Appends this snapshot as a fixed-key JSON object (no trailing
    /// newline): `{"count":..,"sum_ns":..,"min_ns":..,"max_ns":..,
    /// "mean_ns":..,"p50_ns":..,"p90_ns":..,"p99_ns":..}`.
    pub fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{},\
             \"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
            self.count,
            self.sum,
            self.min,
            self.max,
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
        ));
    }
}

/// A per-request phase breakdown: nanoseconds attributed to each phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    ns: [u64; Phase::COUNT],
}

impl PhaseTimes {
    /// An all-zero breakdown.
    pub fn new() -> PhaseTimes {
        PhaseTimes::default()
    }

    /// Nanoseconds attributed to `phase`.
    pub fn get(&self, phase: Phase) -> u64 {
        self.ns[phase as usize]
    }

    /// Adds `ns` to `phase`.
    pub fn add(&mut self, phase: Phase, ns: u64) {
        self.ns[phase as usize] += ns;
    }

    /// Whether every phase is zero.
    pub fn is_zero(&self) -> bool {
        self.ns.iter().all(|&n| n == 0)
    }

    /// Iterates `(phase, ns)` pairs in [`Phase::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.iter().map(move |&p| (p, self.ns[p as usize]))
    }
}

/// The shared metrics aggregate: one [`Histogram`] per [`Phase`], counter
/// totals, and the in-flight request's phase breakdown. Share it via
/// `Arc`; all aggregation fields are atomics.
#[derive(Debug)]
pub struct MetricsHub {
    phases: [Histogram; Phase::COUNT],
    counters: [AtomicU64; Counter::ALL.len()],
    current: [AtomicU64; Phase::COUNT],
}

impl Default for MetricsHub {
    fn default() -> MetricsHub {
        MetricsHub::new()
    }
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> MetricsHub {
        MetricsHub {
            phases: std::array::from_fn(|_| Histogram::new()),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            current: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The histogram for one phase.
    pub fn phase(&self, phase: Phase) -> &Histogram {
        &self.phases[phase as usize]
    }

    /// A snapshot of one phase's histogram.
    pub fn phase_snapshot(&self, phase: Phase) -> HistogramSnapshot {
        self.phases[phase as usize].snapshot()
    }

    /// The total for one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()].load(Ordering::Relaxed)
    }

    /// Adds `delta` to a counter total.
    pub fn add_counter(&self, c: Counter, delta: u64) {
        self.counters[c.index()].fetch_add(delta, Ordering::Relaxed);
    }

    /// Records a completed phase span: feeds the phase histogram and the
    /// in-flight request's breakdown. Lock-free.
    pub fn record_phase(&self, phase: Phase, ns: u64) {
        self.phases[phase as usize].record(ns);
        self.current[phase as usize].fetch_add(ns, Ordering::Relaxed);
    }

    /// Resets the in-flight request breakdown (called at request start).
    pub fn begin_request(&self) {
        for cell in &self.current {
            cell.store(0, Ordering::Relaxed);
        }
    }

    /// The in-flight (or just-finished) request's phase breakdown.
    pub fn request_phases(&self) -> PhaseTimes {
        let mut times = PhaseTimes::new();
        for (i, cell) in self.current.iter().enumerate() {
            times.ns[i] = cell.load(Ordering::Relaxed);
        }
        times
    }
}

/// Slots in [`MetricsSink`]'s span-name classification memo.
const NAME_MEMO_SLOTS: usize = 64;

/// Encoded span-name classification for the memo: `0..Phase::COUNT` is a
/// phase, then the request bracket, then "neither".
const CLASS_BRACKET: u8 = Phase::COUNT as u8;
const CLASS_OTHER: u8 = Phase::COUNT as u8 + 1;

/// A [`Sink`] that aggregates span durations into a [`MetricsHub`]'s
/// per-phase histograms and counter totals.
///
/// Nested spans mapping to the same phase (e.g. `analysis.run` containing
/// `analysis.pass.*`) are depth-guarded: only the outermost span of each
/// phase records, so a phase's histogram counts wall time once. Spans
/// whose name starts with the request-bracket prefix (`"serve."`) reset
/// the hub's in-flight breakdown, giving per-request attribution.
pub struct MetricsSink {
    hub: Arc<MetricsHub>,
    depth: [u32; Phase::COUNT],
    bracket_prefix: &'static str,
    /// Pointer-keyed memo of span-name classification, `(ptr, len,
    /// class)` per slot. Span names are almost always `&'static str`
    /// literals, so `(as_ptr, len)` identifies the string and one slot
    /// probe replaces the [`Phase::of_span`] string match on the
    /// per-event hot path. Distinct literal contents can never collide
    /// on both pointer and length; a hash-slot collision just overwrites.
    name_memo: [(usize, usize, u8); NAME_MEMO_SLOTS],
}

impl MetricsSink {
    /// A sink feeding `hub`, bracketing requests on `"serve."` spans.
    pub fn new(hub: Arc<MetricsHub>) -> MetricsSink {
        MetricsSink {
            hub,
            depth: [0; Phase::COUNT],
            bracket_prefix: "serve.",
            name_memo: [(0, 0, CLASS_OTHER); NAME_MEMO_SLOTS],
        }
    }

    /// The hub this sink feeds.
    pub fn hub(&self) -> &Arc<MetricsHub> {
        &self.hub
    }

    /// Classifies a span name, memoizing by pointer identity for
    /// borrowed (static) names. Owned names (the rare runtime-composed
    /// `serve.<op>` brackets) always take the string path. Takes `&Cow`
    /// rather than `&str` because the `Borrowed`/`Owned` distinction is
    /// what gates the memo: only `&'static` pointers are stable keys.
    #[inline]
    #[allow(clippy::ptr_arg)]
    fn classify(&mut self, name: &std::borrow::Cow<'static, str>) -> u8 {
        let slot_key = match name {
            std::borrow::Cow::Borrowed(s) => {
                let key = (s.as_ptr() as usize, s.len());
                let slot = (key.0 >> 3) % NAME_MEMO_SLOTS;
                let entry = self.name_memo[slot];
                if (entry.0, entry.1) == key {
                    return entry.2;
                }
                Some((slot, key))
            }
            std::borrow::Cow::Owned(_) => None,
        };
        let class = match Phase::of_span(name) {
            Some(p) => p as u8,
            None if name.starts_with(self.bracket_prefix) => CLASS_BRACKET,
            None => CLASS_OTHER,
        };
        if let Some((slot, key)) = slot_key {
            self.name_memo[slot] = (key.0, key.1, class);
        }
        class
    }
}

impl Sink for MetricsSink {
    fn record(&mut self, event: &Event) {
        match event {
            Event::Begin { name, .. } => match self.classify(name) {
                CLASS_BRACKET => self.hub.begin_request(),
                CLASS_OTHER => {}
                p => self.depth[p as usize] += 1,
            },
            Event::End { name, dur_ns, .. } => {
                let class = self.classify(name);
                if class < CLASS_BRACKET {
                    let d = &mut self.depth[class as usize];
                    *d = d.saturating_sub(1);
                    if *d == 0 {
                        self.hub.record_phase(Phase::ALL[class as usize], *dur_ns);
                    }
                }
            }
            Event::Count { counter, delta, .. } => {
                self.hub.add_counter(*counter, *delta);
            }
        }
    }
}

/// One captured slow request: the bracket span's name and duration plus
/// the full event stream recorded while it was open.
#[derive(Debug, Clone)]
pub struct SlowTrace {
    /// The bracket span name (e.g. `"serve.render"`).
    pub name: String,
    /// The bracket span's duration in nanoseconds.
    pub dur_ns: u64,
    /// Every event recorded between the bracket's begin and end,
    /// inclusive — renderable with [`crate::render_events`].
    pub events: Vec<Event>,
}

/// A [`Sink`] that keeps the K worst requests per op with their full span
/// trees. Requests are bracketed by spans whose name starts with the
/// given prefix (`"serve."` for the document server); everything recorded
/// while a bracket is open is buffered (up to `capacity` events), and on
/// bracket close the capture is kept if it ranks among the K slowest seen
/// for that bracket name.
///
/// Hot-path discipline: the in-flight buffer is *unshared* sink state
/// (the tracer already serializes `record` calls), so buffering an event
/// is a bounds check and a `Vec` push — no lock. Only the ranked results
/// live behind the shared mutex, which is touched once per *kept* capture
/// (rare by construction) and by external readers. Clones share the
/// ranked results but carry their own buffer; install at most one clone
/// as a sink at a time or brackets may interleave.
#[derive(Clone)]
pub struct SlowCapture {
    worst: Arc<Mutex<BTreeMap<String, Vec<SlowTrace>>>>,
    /// The currently-open bracket span, if any (unshared sink state).
    active: Option<SpanId>,
    /// Event buffer for the active bracket (bounded, unshared).
    buf: Vec<Event>,
    /// The slowest duration that can still fail to rank per bracket name:
    /// a capture is pushed to `worst` only if the ranked list is not yet
    /// full or the new duration beats this floor. Mirrors `worst` so the
    /// common case (fast request, full list) skips the lock entirely.
    floor: BTreeMap<String, (usize, u64)>,
    prefix: &'static str,
    k: usize,
    capacity: usize,
}

impl SlowCapture {
    /// A capture keeping the `k` worst requests per op, buffering at most
    /// `capacity` events per request, bracketing on `"serve."` spans.
    pub fn new(k: usize, capacity: usize) -> SlowCapture {
        SlowCapture {
            worst: Arc::new(Mutex::new(BTreeMap::new())),
            active: None,
            buf: Vec::new(),
            floor: BTreeMap::new(),
            prefix: "serve.",
            k,
            capacity,
        }
    }

    /// The worst captures per bracket name, slowest first.
    pub fn worst(&self) -> BTreeMap<String, Vec<SlowTrace>> {
        self.worst
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Renders every kept capture as an indented text report (empty
    /// string when nothing was captured).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, traces) in self.worst() {
            for trace in traces {
                out.push_str(&format!(
                    "slowest {} — {}\n",
                    name,
                    crate::sink::fmt_ns(trace.dur_ns)
                ));
                out.push_str(&crate::event::render_events(&trace.events));
            }
        }
        out
    }
}

impl SlowCapture {
    /// Closes the active bracket: keeps the buffered capture if it ranks
    /// among the K slowest for `name`, otherwise reuses the buffer
    /// allocation for the next bracket. Runs once per request.
    fn close_bracket(&mut self, name: &str, dur_ns: u64) {
        self.active = None;
        let ranks = match self.floor.get(name) {
            Some(&(len, floor)) => len < self.k || dur_ns > floor,
            None => true,
        };
        if !ranks {
            self.buf.clear();
            return;
        }
        let events = std::mem::take(&mut self.buf);
        let mut worst = self.worst.lock().unwrap_or_else(PoisonError::into_inner);
        let ranked = worst.entry(name.to_string()).or_default();
        let trace = SlowTrace {
            name: name.to_string(),
            dur_ns,
            events,
        };
        let pos = ranked
            .iter()
            .position(|t| t.dur_ns < trace.dur_ns)
            .unwrap_or(ranked.len());
        ranked.insert(pos, trace);
        ranked.truncate(self.k);
        let floor = ranked.last().map_or(0, |w| w.dur_ns);
        self.floor.insert(name.to_string(), (ranked.len(), floor));
    }
}

impl Sink for SlowCapture {
    fn record(&mut self, event: &Event) {
        match event {
            Event::Begin { id, name, .. } => {
                if self.active.is_none() && name.starts_with(self.prefix) {
                    self.active = Some(*id);
                    self.buf.clear();
                }
                if self.active.is_some() && self.buf.len() < self.capacity {
                    self.buf.push(event.clone());
                }
            }
            Event::End {
                id, name, dur_ns, ..
            } if self.active == Some(*id) => {
                if self.buf.len() < self.capacity {
                    self.buf.push(event.clone());
                }
                let (name, dur_ns) = (name.clone(), *dur_ns);
                self.close_bracket(&name, dur_ns);
            }
            _ => {
                if self.active.is_some() && self.buf.len() < self.capacity {
                    self.buf.push(event.clone());
                }
            }
        }
    }
}

/// Appends one histogram in Prometheus exposition format: cumulative
/// `_bucket{le=..}` series, `_sum`, and `_count`, each tagged with
/// `labels` (e.g. `phase="parse"`). Empty-bucket runs are skipped except
/// the mandatory `le="+Inf"`.
pub fn write_prom_histogram(out: &mut String, metric: &str, labels: &str, s: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, &n) in s.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        let le = bucket_upper(i);
        out.push_str(&format!(
            "{metric}_bucket{{{labels},le=\"{le}\"}} {cumulative}\n"
        ));
    }
    out.push_str(&format!(
        "{metric}_bucket{{{labels},le=\"+Inf\"}} {}\n",
        s.count
    ));
    out.push_str(&format!("{metric}_sum{{{labels}}} {}\n", s.sum));
    out.push_str(&format!("{metric}_count{{{labels}}} {}\n", s.count));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_exact_max_and_bounded_quantiles() {
        let h = Histogram::new();
        for ns in [5u64, 9, 100, 1000, 77] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 1191);
        assert_eq!(s.quantile(1.0), 1000);
        // p50 of [5, 9, 77, 100, 1000] is 77; its bucket is [64, 127].
        assert!(s.p50() >= 77 && s.p50() <= 127, "p50 = {}", s.p50());
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!((s.min, s.max, s.p50(), s.p99(), s.mean()), (0, 0, 0, 0, 0));
    }

    #[test]
    fn merge_matches_concatenation() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for ns in [1u64, 50, 3000] {
            a.record(ns);
            both.record(ns);
        }
        for ns in [7u64, 7, 900_000] {
            b.record(ns);
            both.record(ns);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn phase_names_unique_and_mapped() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::COUNT);
        assert_eq!(Phase::of_span("parse"), Some(Phase::Parse));
        assert_eq!(
            Phase::of_span("analysis.pass.hygiene"),
            Some(Phase::Analyze)
        );
        assert_eq!(Phase::of_span("serve.render"), None);
        assert_eq!(Phase::of_span("engine.run"), None);
    }

    #[test]
    fn metrics_sink_depth_guards_nested_same_phase_spans() {
        let hub = Arc::new(MetricsHub::new());
        let mut sink = MetricsSink::new(Arc::clone(&hub));
        let begin = |id: u64, name: &'static str| Event::Begin {
            id: SpanId(id),
            parent: None,
            name: Cow::Borrowed(name),
            t_ns: 0,
        };
        let end = |id: u64, name: &'static str, dur: u64| Event::End {
            id: SpanId(id),
            name: Cow::Borrowed(name),
            t_ns: dur,
            dur_ns: dur,
        };
        // analysis.run ⊃ analysis.pass.x: only the outer span records.
        sink.record(&begin(1, "analysis.run"));
        sink.record(&begin(2, "analysis.pass.x"));
        sink.record(&end(2, "analysis.pass.x", 40));
        sink.record(&end(1, "analysis.run", 100));
        let s = hub.phase_snapshot(Phase::Analyze);
        assert_eq!((s.count, s.sum), (1, 100));
    }

    #[test]
    fn metrics_sink_brackets_requests_and_sums_counters() {
        let hub = Arc::new(MetricsHub::new());
        let mut sink = MetricsSink::new(Arc::clone(&hub));
        let begin = |id: u64, name: &'static str| Event::Begin {
            id: SpanId(id),
            parent: None,
            name: Cow::Borrowed(name),
            t_ns: 0,
        };
        let end = |id: u64, name: &'static str, dur: u64| Event::End {
            id: SpanId(id),
            name: Cow::Borrowed(name),
            t_ns: dur,
            dur_ns: dur,
        };
        sink.record(&begin(1, "serve.render"));
        sink.record(&begin(2, "mvu.diff"));
        sink.record(&end(2, "mvu.diff", 25));
        sink.record(&Event::Count {
            counter: Counter::ServePatches,
            delta: 3,
            span: None,
            t_ns: 0,
        });
        sink.record(&end(1, "serve.render", 60));
        assert_eq!(hub.request_phases().get(Phase::RenderDiff), 25);
        assert_eq!(hub.counter(Counter::ServePatches), 3);
        // A new bracket resets the breakdown.
        sink.record(&begin(3, "serve.stats"));
        assert!(hub.request_phases().is_zero());
    }

    #[test]
    fn slow_capture_keeps_k_worst_per_op() {
        let mut cap = SlowCapture::new(2, 64);
        let begin = |id: u64, name: &'static str| Event::Begin {
            id: SpanId(id),
            parent: None,
            name: Cow::Borrowed(name),
            t_ns: 0,
        };
        let end = |id: u64, name: &'static str, dur: u64| Event::End {
            id: SpanId(id),
            name: Cow::Borrowed(name),
            t_ns: dur,
            dur_ns: dur,
        };
        for (id, dur) in [(1u64, 10u64), (2, 50), (3, 30), (4, 5)] {
            cap.record(&begin(id, "serve.render"));
            cap.record(&begin(id + 100, "mvu.diff"));
            cap.record(&end(id + 100, "mvu.diff", dur / 2));
            cap.record(&end(id, "serve.render", dur));
        }
        let worst = cap.worst();
        let ranked = &worst["serve.render"];
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].dur_ns, 50);
        assert_eq!(ranked[1].dur_ns, 30);
        // Each capture holds the full bracketed tree.
        assert_eq!(ranked[0].events.len(), 4);
        let text = cap.render();
        assert!(text.contains("slowest serve.render"));
        assert!(text.contains("mvu.diff"));
    }

    #[test]
    fn prom_exposition_is_cumulative() {
        let h = Histogram::new();
        h.record(1);
        h.record(3);
        h.record(3);
        let mut out = String::new();
        write_prom_histogram(&mut out, "m", "phase=\"parse\"", &h.snapshot());
        assert!(out.contains("m_bucket{phase=\"parse\",le=\"1\"} 1\n"));
        assert!(out.contains("m_bucket{phase=\"parse\",le=\"3\"} 3\n"));
        assert!(out.contains("m_bucket{phase=\"parse\",le=\"+Inf\"} 3\n"));
        assert!(out.contains("m_sum{phase=\"parse\"} 7\n"));
        assert!(out.contains("m_count{phase=\"parse\"} 3\n"));
    }
}
