//! The tracer: span lifecycle, parent links, and the process-global
//! installation the instrumentation probes report to.
//!
//! Instrumented code calls the free functions [`crate::span`] and
//! [`crate::count`]; they are no-ops (a single relaxed atomic load) until a
//! [`Tracer`] is installed with [`install`]. Installation is serialized
//! process-wide by a lock held for the guard's lifetime, so concurrent
//! traced sections (e.g. parallel tests) cannot interleave their events.
//!
//! The pipeline evaluates on a dedicated big-stack thread
//! (`hazel_lang::eval::run_on_big_stack`); because the current tracer and
//! its span stack are process-global rather than thread-local, spans opened
//! on that thread keep their parent links to spans opened on the caller's
//! thread.

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::clock::{Clock, MonotonicClock, TestClock};
use crate::event::{Counter, Event, SpanId};
use crate::sink::Sink;

struct TracerInner {
    clock: Box<dyn Clock>,
    sink: Box<dyn Sink>,
    next_span: u64,
    /// Open spans, innermost last: `(id, name, begin reading)`.
    stack: Vec<(SpanId, Cow<'static, str>, u64)>,
}

/// A handle to one trace session: a clock, a sink, and the open-span stack.
/// Clones share state.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Mutex<TracerInner>>,
}

impl Tracer {
    /// A tracer over an explicit clock and sink.
    pub fn new(clock: impl Clock + 'static, sink: impl Sink + 'static) -> Tracer {
        Tracer {
            inner: Arc::new(Mutex::new(TracerInner {
                clock: Box::new(clock),
                sink: Box::new(sink),
                next_span: 1,
                stack: Vec::new(),
            })),
        }
    }

    /// A tracer over real monotonic time.
    pub fn monotonic(sink: impl Sink + 'static) -> Tracer {
        Tracer::new(MonotonicClock::new(), sink)
    }

    /// A tracer over the deterministic [`TestClock`] — the configuration
    /// whose serialized output is byte-identical across runs.
    pub fn deterministic(sink: impl Sink + 'static) -> Tracer {
        Tracer::new(TestClock::new(), sink)
    }

    fn lock(&self) -> MutexGuard<'_, TracerInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens a span, records its `Begin` event, and returns its id.
    pub fn begin(&self, name: Cow<'static, str>) -> SpanId {
        let mut inner = self.lock();
        let id = SpanId(inner.next_span);
        inner.next_span += 1;
        let parent = inner.stack.last().map(|(p, _, _)| *p);
        let t_ns = inner.clock.now_ns();
        inner.stack.push((id, name.clone(), t_ns));
        let event = Event::Begin {
            id,
            parent,
            name,
            t_ns,
        };
        inner.sink.record(&event);
        id
    }

    /// Closes span `id`, recording its `End` event. Any spans opened inside
    /// it and not yet closed are unwound silently (guards make this
    /// unreachable in practice; it keeps the stack sound under panics).
    pub fn end(&self, id: SpanId) {
        let mut inner = self.lock();
        let Some(pos) = inner.stack.iter().rposition(|(s, _, _)| *s == id) else {
            return;
        };
        let (_, name, begin_ns) = inner.stack.swap_remove(pos);
        inner.stack.truncate(pos);
        let t_ns = inner.clock.now_ns();
        let event = Event::End {
            id,
            name,
            t_ns,
            dur_ns: t_ns.saturating_sub(begin_ns),
        };
        inner.sink.record(&event);
    }

    /// Records a counter increment, attributed to the innermost open span.
    pub fn count(&self, counter: Counter, delta: u64) {
        let mut inner = self.lock();
        let span = inner.stack.last().map(|(s, _, _)| *s);
        let t_ns = inner.clock.now_ns();
        let event = Event::Count {
            counter,
            delta,
            span,
            t_ns,
        };
        inner.sink.record(&event);
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

/// Fast flag the probes check before touching any lock.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// The installed tracer, when [`ENABLED`] is set.
static CURRENT: Mutex<Option<Tracer>> = Mutex::new(None);
/// Bumped on every install/uninstall; lets per-thread tracer caches
/// detect staleness with one relaxed load instead of locking [`CURRENT`].
static GENERATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
/// Serializes installations process-wide (held by the [`InstallGuard`]).
static INSTALL: Mutex<()> = Mutex::new(());

thread_local! {
    /// This thread's last-seen `(generation, tracer)` — a cache of
    /// [`CURRENT`] so the per-event hot path (every span begin and every
    /// counter bump while tracing is on) costs an atomic generation check
    /// and an `Arc` clone rather than a contended global mutex.
    static CACHED: std::cell::RefCell<(u64, Option<Tracer>)> =
        const { std::cell::RefCell::new((0, None)) };
}

/// Whether a tracer is currently installed. Probes compile to this single
/// relaxed load when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Keeps a tracer installed; uninstalls on drop.
#[must_use = "the tracer is uninstalled when the guard drops"]
pub struct InstallGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *CURRENT.lock().unwrap_or_else(PoisonError::into_inner) = None;
        GENERATION.fetch_add(1, Ordering::Release);
    }
}

/// Installs `tracer` as the process-global trace destination until the
/// returned guard drops. Concurrent installs from other threads block
/// until then; do not nest installs on one thread (it would deadlock).
///
/// A tracer whose sink [`Sink::is_noop`] (e.g. [`crate::NullSink`]) is
/// installed without enabling the probes: recording events nobody will see
/// would be pure overhead, so the off-state fast path is kept instead.
pub fn install(tracer: &Tracer) -> InstallGuard {
    let serial = INSTALL.lock().unwrap_or_else(PoisonError::into_inner);
    let noop = tracer.lock().sink.is_noop();
    *CURRENT.lock().unwrap_or_else(PoisonError::into_inner) = Some(tracer.clone());
    GENERATION.fetch_add(1, Ordering::Release);
    ENABLED.store(!noop, Ordering::SeqCst);
    InstallGuard { _serial: serial }
}

/// The installed tracer, via this thread's generation-checked cache: the
/// common case (tracer unchanged since this thread last looked) is one
/// relaxed load and an `Arc` clone; only a generation mismatch pays the
/// [`CURRENT`] lock.
fn current() -> Option<Tracer> {
    // Not `Option::cloned` point-free: the higher-ranked lifetime in
    // `with_current`'s callback rejects the bare method reference.
    #[allow(clippy::redundant_closure_for_method_calls)]
    with_current(|tracer| tracer.cloned())
}

/// Runs `f` on the installed tracer (or `None`) borrowed from this
/// thread's cache — the hot-path variant of [`current`] that skips the
/// `Arc` refcount round-trip when the caller doesn't need ownership.
fn with_current<R>(f: impl FnOnce(Option<&Tracer>) -> R) -> R {
    let generation = GENERATION.load(Ordering::Acquire);
    CACHED.with(|cached| {
        let mut cached = cached.borrow_mut();
        if cached.0 != generation {
            *cached = (
                generation,
                CURRENT
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            );
        }
        f(cached.1.as_ref())
    })
}

/// Closes its span when dropped. The disabled form is a no-op shell.
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard(Option<(Tracer, SpanId)>);

impl SpanGuard {
    /// The guard's span id, when tracing was enabled at open.
    pub fn id(&self) -> Option<SpanId> {
        self.0.as_ref().map(|(_, id)| *id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((tracer, id)) = self.0.take() {
            tracer.end(id);
        }
    }
}

/// Opens a span named `name` on the installed tracer, if any. When tracing
/// is off this is one atomic load and returns an inert guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    span_cow(Cow::Borrowed(name))
}

/// [`span`] with a runtime-composed name `prefix + rest`; the allocation
/// happens only when tracing is enabled.
#[inline]
pub fn span_prefixed(prefix: &'static str, rest: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    span_cow(Cow::Owned(format!("{prefix}{rest}")))
}

fn span_cow(name: Cow<'static, str>) -> SpanGuard {
    match current() {
        Some(tracer) => {
            let id = tracer.begin(name);
            SpanGuard(Some((tracer, id)))
        }
        None => SpanGuard(None),
    }
}

/// Adds `delta` to `counter` on the installed tracer, if any. When tracing
/// is off this is one atomic load.
#[inline]
pub fn count(counter: Counter, delta: u64) {
    if !enabled() {
        return;
    }
    with_current(|tracer| {
        if let Some(tracer) = tracer {
            tracer.count(counter, delta);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    #[test]
    fn probes_are_inert_without_install() {
        assert!(!enabled());
        let guard = span("nothing");
        assert!(guard.id().is_none());
        count(Counter::EvalSteps, 5);
    }

    #[test]
    fn spans_nest_and_unwind_defensively() {
        let sink = RingSink::new(64);
        let tracer = Tracer::deterministic(sink.clone());
        let outer = tracer.begin(Cow::Borrowed("outer"));
        let _inner = tracer.begin(Cow::Borrowed("inner"));
        // Ending the outer span unwinds the dangling inner one silently.
        tracer.end(outer);
        let events = sink.events();
        assert_eq!(events.len(), 3, "{events:?}");
        assert!(matches!(&events[2], Event::End { name, .. } if name == "outer"));
    }
}
