//! The event vocabulary: spans with parent links and typed counters.
//!
//! Events are plain data; serialization to JSONL is byte-deterministic —
//! fixed field order, integer timestamps, minimal string escaping — so two
//! traces of the same computation under the same [`crate::clock::Clock`]
//! readings serialize to identical bytes.

use std::borrow::Cow;
use std::fmt;

/// A span identifier, unique within one [`crate::Tracer`]'s lifetime.
/// Identifiers are assigned sequentially from 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The typed counters the pipeline reports. Each counter is additive: a
/// `Count` event carries a delta, and sinks aggregate by summing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Hole closures remaining in the final result after fill-and-resume.
    HolesRemaining,
    /// Livelit invocations put through the six `ELivelit` premises.
    ExpansionsPerformed,
    /// Splices evaluated live under a collected closure.
    SplicesEvaluated,
    /// Closure environments collected across all livelit holes.
    ClosuresCollected,
    /// Nodes visited by a view diff (size of the new tree).
    ViewDiffNodes,
    /// Patches produced by a view diff.
    ViewDiffPatches,
    /// Incremental-analyzer invocations served from cache.
    AnalyzerCacheHits,
    /// Incremental-analyzer invocations recomputed.
    AnalyzerCacheMisses,
    /// Recursive evaluation steps consumed by an evaluator run.
    EvalSteps,
    /// Incremental-engine runs that took the fill-and-resume fast path.
    IncrementalFastPaths,
    /// Incremental-engine runs that re-collected from scratch.
    IncrementalFullRuns,
    /// Term-store intern calls that found an existing node.
    InternerHits,
    /// Term-store intern calls that appended a new node.
    InternerMisses,
    /// Substitution-memo lookups served from cache.
    SubstMemoHits,
    /// Substitution-memo lookups that had to compute.
    SubstMemoMisses,
    /// Livelit expansions served from the expansion cache.
    ExpansionCacheHits,
    /// Livelit expansions computed and cached.
    ExpansionCacheMisses,
    /// Live splice evaluations served from the splice-result cache.
    SpliceCacheHits,
    /// Live splice evaluations computed and cached.
    SpliceCacheMisses,
    /// Tasks executed by the work-stealing evaluation pool.
    SchedTasks,
    /// Pool tasks a worker stole from a sibling's deque. Nondeterministic;
    /// emitted only when nonzero so deterministic traces stay stable.
    SchedSteals,
    /// Worker-nanoseconds the pool spent idle (wall × workers − busy).
    /// Nondeterministic; emitted only when nonzero.
    SchedIdleNs,
    /// Splice-result cache entries retired by a generation rotation.
    SpliceCacheEvictions,
    /// Requests handled by the document server (well-formed or not).
    ServeRequests,
    /// Server requests answered with a structured `error` reply.
    ServeErrors,
    /// Patch operations shipped in server `render` replies.
    ServePatches,
    /// Bytes of patch scripts shipped by `render` replies that diffed
    /// against an acknowledged view.
    ServePatchBytes,
    /// Bytes the same `render` replies would have cost as full view trees.
    ServeFullBytes,
    /// Dataflow facts computed by the flow fixpoint engine.
    FlowFactsComputed,
    /// Dataflow facts served from the fixpoint fact memo.
    FlowFactsReused,
    /// Definitions re-analyzed by a flow run (the dirty set).
    FlowDirtyDefs,
    /// Dynamic LL0401 double-expansions skipped because static purity
    /// analysis already proved the expansion deterministic.
    FlowDeterminismSkips,
    /// Retained view nodes kept in place by a reconcile pass (memo hits
    /// count their whole subtree without walking it).
    ViewNodesReused,
    /// View nodes freshly inserted into the arena by a reconcile pass
    /// (replaced or appended subtrees).
    ViewNodesRebuilt,
    /// Live nodes in the retained view arena, sampled once per view
    /// refresh (a level, so totals across events are not additive).
    ViewArenaLive,
    /// Environment-machine transitions executed (control-state
    /// dispatches). Distinct from [`Counter::EvalSteps`]: replay charging
    /// keeps `EvalSteps` equal to what the substitution semantics would
    /// consume, while this counts the work the machine actually did.
    MachineSteps,
    /// Environment-machine arena allocations (continuation frames plus
    /// environment nodes pushed).
    MachineAllocs,
    /// Environment extensions that shared an existing (non-empty) parent
    /// chain — persistent environment reuse instead of substitution.
    MachineEnvReuse,
    /// Socket connections accepted by the serve transport.
    ServeConns,
    /// Connections the transport closed early: over the connection cap,
    /// idle past the timeout, or stalled on write backpressure.
    ServeConnsDropped,
    /// Graceful drains begun (SIGTERM or a `shutdown` op).
    ServeDrains,
    /// Request records appended to session snapshot journals.
    SnapshotRecords,
    /// Bytes appended to session snapshot journals (headers + records).
    SnapshotBytes,
    /// Sessions restored from snapshot journals at startup.
    SnapshotsRestored,
}

impl Counter {
    /// Every counter, in serialization order.
    pub const ALL: [Counter; 44] = [
        Counter::HolesRemaining,
        Counter::ExpansionsPerformed,
        Counter::SplicesEvaluated,
        Counter::ClosuresCollected,
        Counter::ViewDiffNodes,
        Counter::ViewDiffPatches,
        Counter::AnalyzerCacheHits,
        Counter::AnalyzerCacheMisses,
        Counter::EvalSteps,
        Counter::IncrementalFastPaths,
        Counter::IncrementalFullRuns,
        Counter::InternerHits,
        Counter::InternerMisses,
        Counter::SubstMemoHits,
        Counter::SubstMemoMisses,
        Counter::ExpansionCacheHits,
        Counter::ExpansionCacheMisses,
        Counter::SpliceCacheHits,
        Counter::SpliceCacheMisses,
        Counter::SchedTasks,
        Counter::SchedSteals,
        Counter::SchedIdleNs,
        Counter::SpliceCacheEvictions,
        Counter::ServeRequests,
        Counter::ServeErrors,
        Counter::ServePatches,
        Counter::ServePatchBytes,
        Counter::ServeFullBytes,
        Counter::FlowFactsComputed,
        Counter::FlowFactsReused,
        Counter::FlowDirtyDefs,
        Counter::FlowDeterminismSkips,
        Counter::ViewNodesReused,
        Counter::ViewNodesRebuilt,
        Counter::ViewArenaLive,
        Counter::MachineSteps,
        Counter::MachineAllocs,
        Counter::MachineEnvReuse,
        Counter::ServeConns,
        Counter::ServeConnsDropped,
        Counter::ServeDrains,
        Counter::SnapshotRecords,
        Counter::SnapshotBytes,
        Counter::SnapshotsRestored,
    ];

    /// This counter's position in [`Counter::ALL`] — a dense index for
    /// array-backed aggregation (see `metrics::MetricsHub`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The stable snake_case name used in serialized output.
    pub fn as_str(&self) -> &'static str {
        match self {
            Counter::HolesRemaining => "holes_remaining",
            Counter::ExpansionsPerformed => "expansions_performed",
            Counter::SplicesEvaluated => "splices_evaluated",
            Counter::ClosuresCollected => "closures_collected",
            Counter::ViewDiffNodes => "view_diff_nodes",
            Counter::ViewDiffPatches => "view_diff_patches",
            Counter::AnalyzerCacheHits => "analyzer_cache_hits",
            Counter::AnalyzerCacheMisses => "analyzer_cache_misses",
            Counter::EvalSteps => "eval_steps",
            Counter::IncrementalFastPaths => "incremental_fast_paths",
            Counter::IncrementalFullRuns => "incremental_full_runs",
            Counter::InternerHits => "interner_hits",
            Counter::InternerMisses => "interner_misses",
            Counter::SubstMemoHits => "subst_memo_hits",
            Counter::SubstMemoMisses => "subst_memo_misses",
            Counter::ExpansionCacheHits => "expansion_cache_hits",
            Counter::ExpansionCacheMisses => "expansion_cache_misses",
            Counter::SpliceCacheHits => "splice_cache_hits",
            Counter::SpliceCacheMisses => "splice_cache_misses",
            Counter::SchedTasks => "sched_tasks",
            Counter::SchedSteals => "sched_steals",
            Counter::SchedIdleNs => "sched_idle_ns",
            Counter::SpliceCacheEvictions => "splice_cache_evictions",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeErrors => "serve_errors",
            Counter::ServePatches => "serve_patches",
            Counter::ServePatchBytes => "serve_patch_bytes",
            Counter::ServeFullBytes => "serve_full_bytes",
            Counter::FlowFactsComputed => "flow_facts_computed",
            Counter::FlowFactsReused => "flow_facts_reused",
            Counter::FlowDirtyDefs => "flow_dirty_defs",
            Counter::FlowDeterminismSkips => "flow_determinism_skips",
            Counter::ViewNodesReused => "view_nodes_reused",
            Counter::ViewNodesRebuilt => "view_nodes_rebuilt",
            Counter::ViewArenaLive => "view_arena_live",
            Counter::MachineSteps => "machine_steps",
            Counter::MachineAllocs => "machine_allocs",
            Counter::MachineEnvReuse => "machine_env_reuse",
            Counter::ServeConns => "serve_conns",
            Counter::ServeConnsDropped => "serve_conns_dropped",
            Counter::ServeDrains => "serve_drains",
            Counter::SnapshotRecords => "snapshot_records",
            Counter::SnapshotBytes => "snapshot_bytes",
            Counter::SnapshotsRestored => "snapshots_restored",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A span opened.
    Begin {
        /// The new span.
        id: SpanId,
        /// The enclosing open span, if any.
        parent: Option<SpanId>,
        /// The phase name (e.g. `"engine.collect"`).
        name: Cow<'static, str>,
        /// Clock reading at open.
        t_ns: u64,
    },
    /// A span closed.
    End {
        /// The span being closed.
        id: SpanId,
        /// Its phase name, repeated so sinks need no id → name map.
        name: Cow<'static, str>,
        /// Clock reading at close.
        t_ns: u64,
        /// `t_ns` minus the span's begin reading.
        dur_ns: u64,
    },
    /// A counter increment.
    Count {
        /// Which counter.
        counter: Counter,
        /// The amount added.
        delta: u64,
        /// The innermost open span when the count was recorded, if any.
        span: Option<SpanId>,
        /// Clock reading at record time.
        t_ns: u64,
    },
}

/// Appends `s` to `out` as a JSON string literal (deterministic escaping).
pub fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_opt_span(out: &mut String, span: Option<SpanId>) {
    match span {
        Some(s) => out.push_str(&s.0.to_string()),
        None => out.push_str("null"),
    }
}

impl Event {
    /// Appends this event's JSONL line (including the trailing newline) to
    /// `out`. Field order is fixed, so serialization is byte-deterministic.
    pub fn to_jsonl(&self, out: &mut String) {
        match self {
            Event::Begin {
                id,
                parent,
                name,
                t_ns,
            } => {
                out.push_str("{\"ev\":\"begin\",\"id\":");
                out.push_str(&id.0.to_string());
                out.push_str(",\"parent\":");
                push_opt_span(out, *parent);
                out.push_str(",\"name\":");
                json_string(out, name);
                out.push_str(",\"t\":");
                out.push_str(&t_ns.to_string());
                out.push_str("}\n");
            }
            Event::End {
                id,
                name,
                t_ns,
                dur_ns,
            } => {
                out.push_str("{\"ev\":\"end\",\"id\":");
                out.push_str(&id.0.to_string());
                out.push_str(",\"name\":");
                json_string(out, name);
                out.push_str(",\"t\":");
                out.push_str(&t_ns.to_string());
                out.push_str(",\"dur\":");
                out.push_str(&dur_ns.to_string());
                out.push_str("}\n");
            }
            Event::Count {
                counter,
                delta,
                span,
                t_ns,
            } => {
                out.push_str("{\"ev\":\"count\",\"counter\":");
                json_string(out, counter.as_str());
                out.push_str(",\"delta\":");
                out.push_str(&delta.to_string());
                out.push_str(",\"span\":");
                push_opt_span(out, *span);
                out.push_str(",\"t\":");
                out.push_str(&t_ns.to_string());
                out.push_str("}\n");
            }
        }
    }
}

/// Renders an event stream as indented text, one line per event — the
/// human-readable form behind `hazel trace --text`.
pub fn render_events(events: &[Event]) -> String {
    let mut out = String::new();
    let mut depth: usize = 0;
    for event in events {
        match event {
            Event::Begin { id, name, .. } => {
                out.push_str(&"  ".repeat(depth));
                out.push_str(&format!("▶ {name} {id}\n"));
                depth += 1;
            }
            Event::End { name, dur_ns, .. } => {
                depth = depth.saturating_sub(1);
                out.push_str(&"  ".repeat(depth));
                out.push_str(&format!("◀ {name} ({})\n", crate::sink::fmt_ns(*dur_ns)));
            }
            Event::Count { counter, delta, .. } => {
                out.push_str(&"  ".repeat(depth));
                out.push_str(&format!("+ {counter} += {delta}\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_field_order_is_fixed() {
        let mut out = String::new();
        Event::Begin {
            id: SpanId(1),
            parent: None,
            name: Cow::Borrowed("parse"),
            t_ns: 7,
        }
        .to_jsonl(&mut out);
        assert_eq!(
            out,
            "{\"ev\":\"begin\",\"id\":1,\"parent\":null,\"name\":\"parse\",\"t\":7}\n"
        );
    }

    #[test]
    fn json_string_escapes_controls() {
        let mut out = String::new();
        json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn counter_index_matches_all_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c}");
        }
    }

    #[test]
    fn counter_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(Counter::as_str).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
    }
}
