//! Pluggable event sinks.
//!
//! A [`Sink`] receives every [`Event`] a tracer records. The crate ships
//! four: [`NullSink`] (drops everything — the near-zero-overhead default
//! when tracing is compiled in but off), [`RingSink`] (a bounded in-memory
//! buffer), [`JsonlSink`] (byte-deterministic JSON-lines), and
//! [`StatsSink`] (aggregates per-phase durations and counter totals).
//!
//! Ring, Jsonl, and Stats sinks are cheap shared handles: clone one, hand a
//! clone to the tracer, keep the other to read results after the run.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, PoisonError};

use crate::event::{json_string, Counter, Event};

/// A receiver of trace events.
pub trait Sink: Send {
    /// Records one event. Called under the tracer's lock, in order.
    fn record(&mut self, event: &Event);

    /// Whether this sink discards everything. Installing a tracer whose
    /// sink reports `true` leaves the global probes on their disabled
    /// fast path (one relaxed atomic load) — recording events that nobody
    /// will ever see would be pure overhead.
    fn is_noop(&self) -> bool {
        false
    }
}

/// Drops every event. Installing a tracer over a `NullSink` is equivalent
/// to tracing being off: the probes stay on the single-atomic-load fast
/// path (see [`Sink::is_noop`]). The benchmark harness's overhead
/// experiment uses exactly this configuration to demonstrate the
/// off-state overhead contract.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _event: &Event) {}

    fn is_noop(&self) -> bool {
        true
    }
}

/// A bounded in-memory ring buffer of events; the oldest events are
/// discarded once `capacity` is reached.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: Arc<Mutex<VecDeque<Event>>>,
    capacity: usize,
}

impl RingSink {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            buf: Arc::new(Mutex::new(VecDeque::new())),
            capacity,
        }
    }

    /// A snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// The number of buffered events.
    pub fn len(&self) -> usize {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingSink {
    fn record(&mut self, event: &Event) {
        let mut buf = self.buf.lock().unwrap_or_else(PoisonError::into_inner);
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Serializes each event as one JSON line into a shared string buffer.
/// Byte-deterministic: the same event stream always yields the same bytes.
#[derive(Debug, Clone, Default)]
pub struct JsonlSink {
    out: Arc<Mutex<String>>,
}

impl JsonlSink {
    /// An empty JSONL buffer.
    pub fn new() -> JsonlSink {
        JsonlSink::default()
    }

    /// The serialized lines so far.
    pub fn contents(&self) -> String {
        self.out
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        event.to_jsonl(&mut out);
    }
}

/// Aggregated timing for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// How many spans with this name closed.
    pub count: u64,
    /// Total nanoseconds across all of them.
    pub total_ns: u64,
    /// The shortest single span.
    pub min_ns: u64,
    /// The longest single span.
    pub max_ns: u64,
}

impl SpanStats {
    fn add(&mut self, dur_ns: u64) {
        if self.count == 0 {
            self.min_ns = dur_ns;
            self.max_ns = dur_ns;
        } else {
            self.min_ns = self.min_ns.min(dur_ns);
            self.max_ns = self.max_ns.max(dur_ns);
        }
        self.count += 1;
        self.total_ns += dur_ns;
    }

    /// Mean nanoseconds per span (0 when no spans closed).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// The aggregate a [`StatsSink`] builds: per-phase durations and counter
/// totals. This is also the payload of `hazel stats` and the per-phase
/// section of the benchmark report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Closed-span timing, keyed by phase name.
    pub spans: BTreeMap<String, SpanStats>,
    /// Counter totals.
    pub counters: BTreeMap<Counter, u64>,
}

impl Stats {
    /// The total for one counter (0 when never recorded).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(&c).copied().unwrap_or(0)
    }

    /// Folds one event into the aggregate.
    pub fn observe(&mut self, event: &Event) {
        match event {
            Event::Begin { .. } => {}
            Event::End { name, dur_ns, .. } => {
                self.spans.entry(name.to_string()).or_default().add(*dur_ns);
            }
            Event::Count { counter, delta, .. } => {
                *self.counters.entry(*counter).or_insert(0) += delta;
            }
        }
    }

    /// Renders the aggregate as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>7} {:>10} {:>10} {:>10}\n",
            "phase", "count", "total", "mean", "max"
        ));
        for (name, s) in &self.spans {
            out.push_str(&format!(
                "{:<28} {:>7} {:>10} {:>10} {:>10}\n",
                name,
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.mean_ns()),
                fmt_ns(s.max_ns),
            ));
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("\n{:<28} {:>10}\n", "counter", "total"));
            for (c, total) in &self.counters {
                out.push_str(&format!("{:<28} {:>10}\n", c.as_str(), total));
            }
        }
        out
    }

    /// Serializes the aggregate as one deterministic-keyed JSON object
    /// (values vary with the clock; key order never does).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out.push('\n');
        out
    }

    /// Appends the JSON object (no trailing newline) to `out` — the form
    /// embedded into the benchmark report.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"spans\":{");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(out, name);
            out.push_str(&format!(
                ":{{\"count\":{},\"total_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                s.count,
                s.total_ns,
                s.mean_ns(),
                s.min_ns,
                s.max_ns
            ));
        }
        out.push_str("},\"counters\":{");
        for (i, (c, total)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(out, c.as_str());
            out.push(':');
            out.push_str(&total.to_string());
        }
        out.push_str("}}");
    }
}

/// Aggregates events into a shared [`Stats`].
#[derive(Debug, Clone, Default)]
pub struct StatsSink {
    stats: Arc<Mutex<Stats>>,
}

impl StatsSink {
    /// An empty aggregate.
    pub fn new() -> StatsSink {
        StatsSink::default()
    }

    /// A snapshot of the aggregate so far.
    pub fn snapshot(&self) -> Stats {
        self.stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl Sink for StatsSink {
    fn record(&mut self, event: &Event) {
        self.stats
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .observe(event);
    }
}

/// Broadcasts each event to several sinks (e.g. JSONL and stats at once).
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Box<dyn Sink>>,
}

impl FanoutSink {
    /// An empty fanout.
    pub fn new() -> FanoutSink {
        FanoutSink::default()
    }

    /// Adds a receiver, builder-style.
    #[must_use]
    pub fn with(mut self, sink: impl Sink + 'static) -> FanoutSink {
        self.sinks.push(Box::new(sink));
        self
    }
}

impl Sink for FanoutSink {
    fn record(&mut self, event: &Event) {
        for sink in &mut self.sinks {
            sink.record(event);
        }
    }

    fn is_noop(&self) -> bool {
        self.sinks.iter().all(|s| s.is_noop())
    }
}

/// A two-receiver fanout with static dispatch — the hot-path alternative
/// to [`FanoutSink`] when the receiver set is known at compile time (e.g.
/// the serve metrics stack: a `MetricsSink` paired with a `SlowCapture`).
/// Every event reaches `0` then `1` with no per-event indirect calls.
pub struct PairSink<A, B>(pub A, pub B);

impl<A: Sink, B: Sink> Sink for PairSink<A, B> {
    fn record(&mut self, event: &Event) {
        self.0.record(event);
        self.1.record(event);
    }

    fn is_noop(&self) -> bool {
        self.0.is_noop() && self.1.is_noop()
    }
}

/// Formats nanoseconds with a human-friendly unit (deterministic).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!(
            "{}.{:03}s",
            ns / 1_000_000_000,
            (ns % 1_000_000_000) / 1_000_000
        )
    } else if ns >= 1_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
    } else if ns >= 1_000 {
        format!("{}.{:03}µs", ns / 1_000, ns % 1_000)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanId;
    use std::borrow::Cow;

    fn end(name: &'static str, dur: u64) -> Event {
        Event::End {
            id: SpanId(1),
            name: Cow::Borrowed(name),
            t_ns: dur,
            dur_ns: dur,
        }
    }

    #[test]
    fn ring_sink_discards_oldest() {
        let mut sink = RingSink::new(2);
        sink.record(&end("a", 1));
        sink.record(&end("b", 2));
        sink.record(&end("c", 3));
        let names: Vec<String> = sink
            .events()
            .iter()
            .map(|e| match e {
                Event::End { name, .. } => name.to_string(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, ["b", "c"]);
    }

    #[test]
    fn stats_aggregate_min_mean_max() {
        let mut sink = StatsSink::new();
        sink.record(&end("eval", 10));
        sink.record(&end("eval", 30));
        let stats = sink.snapshot();
        let s = &stats.spans["eval"];
        assert_eq!((s.count, s.total_ns, s.min_ns, s.max_ns), (2, 40, 10, 30));
        assert_eq!(s.mean_ns(), 20);
    }

    #[test]
    fn stats_sum_counters() {
        let mut sink = StatsSink::new();
        let count = |delta| Event::Count {
            counter: Counter::EvalSteps,
            delta,
            span: None,
            t_ns: 0,
        };
        sink.record(&count(3));
        sink.record(&count(4));
        assert_eq!(sink.snapshot().counter(Counter::EvalSteps), 7);
        assert_eq!(sink.snapshot().counter(Counter::ViewDiffNodes), 0);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_500), "1.500µs");
        assert_eq!(fmt_ns(2_000_001), "2.000ms");
        assert_eq!(fmt_ns(3_456_000_000), "3.456s");
    }

    #[test]
    fn stats_json_key_order_is_stable() {
        let mut sink = StatsSink::new();
        sink.record(&end("b", 1));
        sink.record(&end("a", 1));
        let json = sink.snapshot().to_json();
        assert!(json.find("\"a\"").unwrap() < json.find("\"b\"").unwrap());
        assert!(json.starts_with("{\"spans\":{"));
    }
}
