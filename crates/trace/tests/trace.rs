//! Integration tests for the tracing layer: span nesting and parent
//! links, counter aggregation, JSONL byte-determinism, and install-guard
//! semantics.

use livelit_trace::sink::{JsonlSink, RingSink, StatsSink};
use livelit_trace::{count, install, span, span_prefixed, Counter, Event, Tracer};

/// A little traced "pipeline" used by several tests.
fn traced_workload() {
    let _run = span("engine.run");
    {
        let _parse = span("parse");
        count(Counter::ExpansionsPerformed, 2);
    }
    {
        let _eval = span("cc.eval");
        count(Counter::EvalSteps, 41);
        let _inner = span_prefixed("analysis.pass.", "hygiene");
    }
    count(Counter::HolesRemaining, 1);
}

#[test]
fn span_nesting_records_parent_links() {
    let sink = RingSink::new(1024);
    let tracer = Tracer::deterministic(sink.clone());
    {
        let _session = install(&tracer);
        traced_workload();
    }
    let events = sink.events();

    // engine.run is the root; parse and cc.eval are its children; the
    // dynamically named pass span is a child of cc.eval.
    let find_begin = |name: &str| {
        events
            .iter()
            .find_map(|e| match e {
                Event::Begin {
                    id,
                    parent,
                    name: n,
                    ..
                } if n == name => Some((*id, *parent)),
                _ => None,
            })
            .unwrap_or_else(|| panic!("no begin for {name}"))
    };
    let (run_id, run_parent) = find_begin("engine.run");
    assert_eq!(run_parent, None);
    assert_eq!(find_begin("parse").1, Some(run_id));
    let (eval_id, eval_parent) = find_begin("cc.eval");
    assert_eq!(eval_parent, Some(run_id));
    assert_eq!(find_begin("analysis.pass.hygiene").1, Some(eval_id));

    // Counters are attributed to the innermost open span.
    let count_span = |counter: Counter| {
        events
            .iter()
            .find_map(|e| match e {
                Event::Count {
                    counter: c, span, ..
                } if *c == counter => Some(*span),
                _ => None,
            })
            .expect("counter recorded")
    };
    assert_eq!(count_span(Counter::EvalSteps), Some(eval_id));
    assert_eq!(count_span(Counter::HolesRemaining), Some(run_id));
}

#[test]
fn spans_survive_the_big_stack_thread_hop() {
    // The evaluator runs on a dedicated thread
    // (hazel_lang::eval::run_on_big_stack); the global tracer must keep
    // parent links across that hop. Simulate one here with a plain thread.
    let sink = RingSink::new(1024);
    let tracer = Tracer::deterministic(sink.clone());
    {
        let _session = install(&tracer);
        let _outer = span("outer");
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _inner = span("inner");
                })
                .join()
                .unwrap();
        });
    }
    let events = sink.events();
    let outer_id = events
        .iter()
        .find_map(|e| match e {
            Event::Begin { id, name, .. } if name == "outer" => Some(*id),
            _ => None,
        })
        .unwrap();
    let inner_parent = events
        .iter()
        .find_map(|e| match e {
            Event::Begin { parent, name, .. } if name == "inner" => Some(*parent),
            _ => None,
        })
        .unwrap();
    assert_eq!(inner_parent, Some(outer_id));
}

#[test]
fn counter_aggregation_sums_deltas_per_counter() {
    let sink = StatsSink::new();
    let tracer = Tracer::deterministic(sink.clone());
    {
        let _session = install(&tracer);
        count(Counter::EvalSteps, 10);
        count(Counter::EvalSteps, 32);
        count(Counter::SplicesEvaluated, 1);
    }
    let stats = sink.snapshot();
    assert_eq!(stats.counter(Counter::EvalSteps), 42);
    assert_eq!(stats.counter(Counter::SplicesEvaluated), 1);
    assert_eq!(stats.counter(Counter::ClosuresCollected), 0);
}

#[test]
fn stats_collect_span_durations_under_test_clock() {
    let sink = StatsSink::new();
    let tracer = Tracer::deterministic(sink.clone());
    {
        let _session = install(&tracer);
        traced_workload();
    }
    let stats = sink.snapshot();
    // Every span closed exactly once and durations are deterministic
    // multiples of the test-clock tick.
    for name in ["engine.run", "parse", "cc.eval", "analysis.pass.hygiene"] {
        let s = &stats.spans[name];
        assert_eq!(s.count, 1, "{name}");
        assert!(s.total_ns > 0, "{name}");
        assert_eq!(s.total_ns % livelit_trace::clock::TEST_CLOCK_TICK_NS, 0);
    }
    assert!(stats.spans["engine.run"].total_ns > stats.spans["parse"].total_ns);
}

#[test]
fn jsonl_output_is_byte_deterministic() {
    let run = || {
        let sink = JsonlSink::new();
        let tracer = Tracer::deterministic(sink.clone());
        {
            let _session = install(&tracer);
            traced_workload();
        }
        sink.contents()
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert_eq!(first, second, "same workload, same bytes");
    // Every line is a self-contained JSON object.
    for line in first.lines() {
        assert!(line.starts_with("{\"ev\":\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }
}

#[test]
fn install_guard_restores_disabled_state() {
    let sink = RingSink::new(16);
    let tracer = Tracer::deterministic(sink.clone());
    {
        let _session = install(&tracer);
        assert!(livelit_trace::enabled());
        count(Counter::EvalSteps, 1);
    }
    assert!(!livelit_trace::enabled());
    // Probes after uninstall are inert: nothing new is recorded.
    count(Counter::EvalSteps, 100);
    let _orphan = span("orphan");
    drop(_orphan);
    assert_eq!(sink.len(), 1);
}

#[test]
fn render_events_produces_indented_text() {
    let sink = RingSink::new(1024);
    let tracer = Tracer::deterministic(sink.clone());
    {
        let _session = install(&tracer);
        traced_workload();
    }
    let text = livelit_trace::render_events(&sink.events());
    assert!(text.contains("▶ engine.run #1"), "{text}");
    assert!(text.contains("  ▶ parse"), "{text}");
    assert!(text.contains("+ eval_steps += 41"), "{text}");
}
