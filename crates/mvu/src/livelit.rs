//! The livelit implementation interface: model–view–update–**expand**
//! (Sec. 3.2).
//!
//! A livelit implementation defines a `Model` type, an `Action` type, and
//! `init` / `view` / `update` / `expand` — "a variation on the pure
//! functional model-view-update architecture popularized by Elm. We add a
//! fourth component, expansion generation."
//!
//! In the paper these are written in Hazel with monadic `UpdateCmd` /
//! `ViewCmd` interfaces to the editor; here the same commands are exposed as
//! methods on [`UpdateCtx`] and [`ViewCtx`] interpreter handles, and models
//! and actions are object-language values (serializable by construction, as
//! Sec. 3.2.1 requires of models).

use std::fmt;

use hazel_lang::external::EExp;
use hazel_lang::ident::{HoleName, LivelitName};
use hazel_lang::internal::{IExp, Sigma};
use hazel_lang::typ::Typ;
use hazel_lang::typing::Ctx;
use hazel_lang::Var;
use livelit_core::cc::Collection;
use livelit_core::def::LivelitCtx;
use livelit_core::live::{eval_splice, eval_splice_in_env, LiveError, LiveResult};

use crate::html::{Dim, Html};
use crate::splice::{SpliceError, SpliceRef, SpliceStore};

/// A livelit's GUI state: a serializable object-language value of the
/// livelit's declared model type. "The model is how the GUI state is
/// persisted in the syntax tree."
pub type Model = IExp;

/// A user-initiated action, emitted by view event handlers and consumed by
/// `update`. Also an object-language value, so scripted interactions are
/// data.
pub type Action = IExp;

/// An error from a livelit command or implementation.
#[derive(Debug, Clone, PartialEq)]
pub enum CmdError {
    /// A splice-store command failed.
    Splice(SpliceError),
    /// A live evaluation failed.
    Live(LiveError),
    /// The implementation returned a model value not of the declared model
    /// type.
    ModelType(Typ),
    /// The implementation received an action it does not understand, or
    /// otherwise failed; displayed as a custom livelit error (Sec. 2.4.1).
    Custom(String),
    /// Wrong number of parameters at instantiation.
    ParamArity {
        /// Parameters the livelit declares.
        declared: usize,
        /// Parameters supplied.
        supplied: usize,
    },
}

impl fmt::Display for CmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmdError::Splice(e) => write!(f, "{e}"),
            CmdError::Live(e) => write!(f, "{e}"),
            CmdError::ModelType(t) => write!(f, "livelit produced a model not of type {t}"),
            CmdError::Custom(msg) => write!(f, "{msg}"),
            CmdError::ParamArity { declared, supplied } => {
                write!(
                    f,
                    "livelit declares {declared} parameter(s), {supplied} supplied"
                )
            }
        }
    }
}

impl std::error::Error for CmdError {}

impl From<SpliceError> for CmdError {
    fn from(e: SpliceError) -> CmdError {
        CmdError::Splice(e)
    }
}

impl From<LiveError> for CmdError {
    fn from(e: LiveError) -> CmdError {
        CmdError::Live(e)
    }
}

/// A definition-site context binding (Fig. 3 line 6, Sec. 3.2.5): a name
/// the livelit's splice contents and expansion may use, together with its
/// type and its *closed* defining expression. The host let-binds these
/// around the parameterized expansion, which is how the paper models the
/// explicit context ("just a value ... passed as an additional argument").
#[derive(Debug, Clone, PartialEq)]
pub struct ContextBinding {
    /// The bound name.
    pub var: Var,
    /// Its type.
    pub ty: Typ,
    /// Its closed definition.
    pub def: EExp,
}

impl ContextBinding {
    /// Creates a context binding.
    pub fn new(var: impl Into<Var>, ty: Typ, def: EExp) -> ContextBinding {
        ContextBinding {
            var: var.into(),
            ty,
            def,
        }
    }
}

/// The `UpdateCmd` interpreter: commands available to `init` and `update`.
///
/// Note the paper's asymmetry is preserved: "the UpdateCmd monad does not
/// itself have the ability to request evaluation (`eval_splice`), because
/// the model should not depend directly on which closure the user has
/// selected" (Sec. 3.2.4) — there is no evaluation method here.
pub struct UpdateCtx<'a> {
    store: &'a mut SpliceStore,
    allowed_ctx: &'a Ctx,
}

impl<'a> UpdateCtx<'a> {
    /// Creates an interpreter over the given store, with `allowed_ctx` the
    /// livelit's declared definition-site context.
    pub fn new(store: &'a mut SpliceStore, allowed_ctx: &'a Ctx) -> UpdateCtx<'a> {
        UpdateCtx { store, allowed_ctx }
    }

    /// The `new_splice` command: creates a splice of the given type with
    /// optional initial contents.
    ///
    /// # Errors
    ///
    /// Fails if the initial contents are not valid at the splice type under
    /// the declared context (context independence, Sec. 3.2.1).
    pub fn new_splice(&mut self, ty: Typ, initial: Option<EExp>) -> Result<SpliceRef, CmdError> {
        Ok(self.store.new_splice(self.allowed_ctx, ty, initial)?)
    }

    /// The `set_splice` command: overwrites a splice's contents.
    ///
    /// # Errors
    ///
    /// Fails on dangling references, parameters, or contents invalid under
    /// the declared context.
    pub fn set_splice(&mut self, r: SpliceRef, e: EExp) -> Result<(), CmdError> {
        Ok(self.store.set_splice(self.allowed_ctx, r, e)?)
    }

    /// Removes a splice (dynamic splice lists, e.g. `$dataframe` rows).
    ///
    /// # Errors
    ///
    /// Fails on dangling references or parameters.
    pub fn remove_splice(&mut self, r: SpliceRef) -> Result<(), CmdError> {
        self.store.remove_splice(r)?;
        Ok(())
    }

    /// The expected type of a splice.
    pub fn splice_typ(&self, r: SpliceRef) -> Option<&Typ> {
        self.store.get(r).map(|info| &info.ty)
    }
}

/// The `ViewCmd` interpreter: commands available to `view` — live
/// evaluation, splice editors, and result rendering (Sec. 3.2.3).
pub struct ViewCtx<'a> {
    store: &'a SpliceStore,
    phi: &'a LivelitCtx,
    /// The typing context at the livelit's invocation site.
    gamma: &'a Ctx,
    /// The closure the client has selected, if any were collected.
    env: Option<&'a Sigma>,
    fuel: u64,
    /// The collection-backed fast path, when the host supplied one:
    /// `eval_splice` routes through the collection's interned term store
    /// and splice-result cache instead of tree-walking evaluation.
    live: Option<(&'a Collection, HoleName, usize)>,
}

impl<'a> ViewCtx<'a> {
    /// Creates an interpreter. `env` is the environment of the selected
    /// closure (`None` when no closures were collected for this
    /// invocation).
    pub fn new(
        store: &'a SpliceStore,
        phi: &'a LivelitCtx,
        gamma: &'a Ctx,
        env: Option<&'a Sigma>,
        fuel: u64,
    ) -> ViewCtx<'a> {
        ViewCtx {
            store,
            phi,
            gamma,
            env,
            fuel,
            live: None,
        }
    }

    /// Routes this context's `eval_splice` through `collection`'s interned
    /// term store and splice-result cache, under the `env_index`-th closure
    /// collected for `hole`. Semantically identical to the tree-walking
    /// fallback (the property suite pins this); repeated renders with an
    /// unchanged splice and environment become cache hits.
    pub fn with_collection(
        mut self,
        collection: &'a Collection,
        hole: HoleName,
        env_index: usize,
    ) -> ViewCtx<'a> {
        self.live = Some((collection, hole, env_index));
        self
    }

    /// The `eval_splice` command: evaluates a splice (or parameter) under
    /// the selected closure. `Ok(None)` when no closure is selected, the
    /// splice dangles, or a variable in the splice has no collected value.
    ///
    /// # Errors
    ///
    /// Fails if the splice is ill-typed or evaluation crashes.
    pub fn eval_splice(&self, r: SpliceRef) -> Result<Option<LiveResult>, CmdError> {
        let Some(env) = self.env else {
            return Ok(None);
        };
        let Some(info) = self.store.get(r) else {
            return Ok(None);
        };
        if let Some((collection, hole, env_index)) = self.live {
            return Ok(eval_splice(
                self.phi,
                collection,
                hole,
                env_index,
                &info.content,
                &info.ty,
            )?);
        }
        Ok(eval_splice_in_env(
            self.phi,
            self.gamma,
            env,
            &info.content,
            &info.ty,
            self.fuel,
        )?)
    }

    /// The `editor` command: an opaque region in which the editor renders a
    /// full splice editor of the given dimension.
    pub fn editor<A>(&self, r: SpliceRef, dim: Dim) -> Html<A> {
        Html::Editor { splice: r, dim }
    }

    /// The `result_view` command: a rendered evaluation result for a
    /// splice, if one is available (mirrors `editor`; Sec. 3.2.3).
    ///
    /// # Errors
    ///
    /// Fails if live evaluation fails.
    pub fn result_view<A>(&self, r: SpliceRef, dim: Dim) -> Result<Option<Html<A>>, CmdError> {
        Ok(self
            .eval_splice(r)?
            .map(|_| Html::ResultView { splice: r, dim }))
    }

    /// The expected type of a splice.
    pub fn splice_typ(&self, r: SpliceRef) -> Option<&Typ> {
        self.store.get(r).map(|info| &info.ty)
    }

    /// Whether a closure is currently selected.
    pub fn has_env(&self) -> bool {
        self.env.is_some()
    }
}

/// A livelit's layout class (Sec. 5.3): "livelits can be laid out either
/// as inline livelits, like $slider, which are one character high and
/// appear inline with the code, or as multi-line livelits, which occupy up
/// to the full width and a specified number of lines."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivelitLayout {
    /// One character row, flowing with the code.
    Inline,
    /// A block of up to `max_rows` rows at full width.
    MultiLine {
        /// The maximum number of rows the livelit occupies.
        max_rows: usize,
    },
}

/// A livelit implementation.
///
/// The `$color` livelit of Fig. 3 is the prototypic implementation; see
/// `livelit-std` for it and the rest of the paper's livelits.
pub trait Livelit: Send + Sync {
    /// The livelit's name, `$a`.
    fn name(&self) -> LivelitName;

    /// Declared parameter types (empty for most livelits).
    fn param_tys(&self) -> Vec<Typ> {
        Vec::new()
    }

    /// The expansion type `τ_expand`.
    fn expansion_ty(&self) -> Typ;

    /// The model type `τ_model` (a first-order, serializable type).
    fn model_ty(&self) -> Typ;

    /// The explicit definition-site context (Fig. 3 line 6). Empty by
    /// default; "we use an explicit context ... to ensure that private
    /// bindings are not unintentionally leaked to clients."
    fn context(&self) -> Vec<ContextBinding> {
        Vec::new()
    }

    /// The livelit's layout class (Sec. 5.3). Multi-line by default.
    fn layout(&self) -> LivelitLayout {
        LivelitLayout::MultiLine { max_rows: 12 }
    }

    /// Computes the initial model when the livelit is first invoked.
    /// `params` are the splice references of the invocation's parameters,
    /// in declaration order.
    ///
    /// # Errors
    ///
    /// Implementation-specific; surfaces as a non-empty hole in the editor.
    fn init(&self, params: &[SpliceRef], ctx: &mut UpdateCtx<'_>) -> Result<Model, CmdError>;

    /// Consumes an action, producing the new model.
    ///
    /// # Errors
    ///
    /// Implementation-specific; unknown actions should produce
    /// [`CmdError::Custom`].
    fn update(
        &self,
        model: &Model,
        action: &Action,
        ctx: &mut UpdateCtx<'_>,
    ) -> Result<Model, CmdError>;

    /// Computes the view for the current model.
    ///
    /// # Errors
    ///
    /// "Errors in view generation are not considered semantic errors (they
    /// display as error messages where the livelit GUI would have
    /// appeared)" (Sec. 5.1).
    fn view(&self, model: &Model, ctx: &mut ViewCtx<'_>) -> Result<Html<Action>, CmdError>;

    /// Pushes an edited *result value* back into the livelit (Sec. 7
    /// future work: "a slider expands to a number, which may then flow
    /// through a computation. Bidirectional evaluation techniques may allow
    /// the user to edit a number in the result and see the necessary change
    /// to a slider in the program").
    ///
    /// `new_value` is a value of the expansion type the user wants the
    /// invocation to produce. Livelits whose model determines the value
    /// directly can compute the model that would produce it; others return
    /// `Ok(None)` (the default) to decline.
    ///
    /// # Errors
    ///
    /// Implementation-specific.
    fn push_result(
        &self,
        model: &Model,
        new_value: &hazel_lang::IExp,
        ctx: &mut UpdateCtx<'_>,
    ) -> Result<Option<Model>, CmdError> {
        let _ = (model, new_value, ctx);
        Ok(None)
    }

    /// Generates the parameterized expansion: an encoded expression paired
    /// with the list of splice references it abstracts over, in argument
    /// order (parameters first, by convention). The expansion must be a
    /// (curried) function from the listed splices' types to the expansion
    /// type, and must treat splices parametrically — they are not available
    /// as `Exp` values (Sec. 3.2.5).
    ///
    /// # Errors
    ///
    /// Implementation-specific; validated at each invocation site.
    fn expand(&self, model: &Model) -> Result<(EExp, Vec<SpliceRef>), String>;

    /// Attests that [`Livelit::expand`] is deterministic: the same model
    /// (and splice types) always yields the same expansion. Native Rust
    /// expansion functions are opaque to the static purity analysis
    /// (LL06xx), so an attestation is the only static evidence available
    /// for them; attested livelits skip the dynamic double-expansion
    /// determinism check (LL0401). Defaults to `false` — unattested
    /// livelits stay on the dynamic check.
    fn expand_pure(&self) -> bool {
        false
    }

    /// The expansion function as a closed object-language term, if this
    /// livelit has one (module-file livelits do). Exposing it lets the
    /// static purity analysis reason about the expansion directly instead
    /// of treating it as an opaque native function. Livelits implemented
    /// natively in Rust return `None` (the default).
    fn object_expand_fn(&self) -> Option<(IExp, livelit_core::def::EncodingScheme)> {
        None
    }
}

/// Builds the typing context implied by a declared definition-site context.
pub fn context_ctx(bindings: &[ContextBinding]) -> Ctx {
    Ctx::from_bindings(bindings.iter().map(|b| (b.var.clone(), b.ty.clone())))
}

/// Wraps a parameterized expansion with `let`-bindings for the declared
/// context — the calculus's "tupled value passed alongside the splices",
/// realized as lexical bindings so the result stays a closed term of the
/// same type.
pub fn bind_context(bindings: &[ContextBinding], pexpansion: EExp) -> EExp {
    bindings.iter().rev().fold(pexpansion, |acc, b| {
        EExp::Let(
            b.var.clone(),
            Some(b.ty.clone()),
            Box::new(b.def.clone()),
            Box::new(acc),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::build::*;

    #[test]
    fn bind_context_wraps_lets_in_order() {
        let bindings = vec![
            ContextBinding::new("a", Typ::Int, int(1)),
            ContextBinding::new("b", Typ::Int, add(var("a"), int(1))),
        ];
        let wrapped = bind_context(&bindings, add(var("a"), var("b")));
        // let a = 1 in let b = a + 1 in a + b — closed and well-typed.
        assert!(wrapped.is_closed());
        let (ty, _) = hazel_lang::typing::syn(&Ctx::empty(), &wrapped).unwrap();
        assert_eq!(ty, Typ::Int);
    }

    #[test]
    fn context_ctx_types_bindings() {
        let bindings = vec![ContextBinding::new(
            "strlen",
            Typ::arrow(Typ::Str, Typ::Int),
            lam("s", Typ::Str, int(0)),
        )];
        let ctx = context_ctx(&bindings);
        assert_eq!(
            ctx.get(&Var::new("strlen")),
            Some(&Typ::arrow(Typ::Str, Typ::Int))
        );
    }

    #[test]
    fn update_ctx_has_no_eval_capability() {
        // Compile-time property by API design (Sec. 3.2.4): UpdateCtx
        // exposes only splice mutation. This test documents the surface.
        let mut store = SpliceStore::new(0);
        let ctx = Ctx::empty();
        let mut ucx = UpdateCtx::new(&mut store, &ctx);
        let r = ucx.new_splice(Typ::Int, Some(int(3))).unwrap();
        assert_eq!(ucx.splice_typ(r), Some(&Typ::Int));
        ucx.set_splice(r, int(4)).unwrap();
        ucx.remove_splice(r).unwrap();
    }

    #[test]
    fn view_ctx_without_env_gives_no_results() {
        let mut store = SpliceStore::new(0);
        let ctx = Ctx::empty();
        let r = store.new_splice(&ctx, Typ::Int, Some(int(3))).unwrap();
        let phi = LivelitCtx::new();
        let vcx: ViewCtx<'_> = ViewCtx::new(&store, &phi, &ctx, None, 10_000);
        assert!(!vcx.has_env());
        assert_eq!(vcx.eval_splice(r).unwrap(), None);
        assert_eq!(
            vcx.result_view::<IExp>(r, Dim::fixed_width(8)).unwrap(),
            None
        );
        // Editors are available regardless of liveness.
        let ed: Html<IExp> = vcx.editor(r, Dim::fixed_width(20));
        assert!(matches!(ed, Html::Editor { .. }));
    }

    #[test]
    fn view_ctx_with_env_evaluates_splices() {
        let mut store = SpliceStore::new(0);
        let ctx = Ctx::from_bindings([(Var::new("x"), Typ::Int)]);
        let r = store
            .new_splice(&ctx, Typ::Int, Some(add(var("x"), int(1))))
            .unwrap();
        let phi = LivelitCtx::new();
        let env = Sigma::from_iter([(Var::new("x"), IExp::Int(41))]);
        let vcx: ViewCtx<'_> = ViewCtx::new(&store, &phi, &ctx, Some(&env), 10_000);
        let result = vcx.eval_splice(r).unwrap().expect("evaluable");
        assert_eq!(result, LiveResult::Val(IExp::Int(42)));
        assert!(vcx
            .result_view::<IExp>(r, Dim::fixed_width(8))
            .unwrap()
            .is_some());
    }
}
