//! Incremental reconciliation of a retained arena tree against a freshly
//! computed [`Html`] tree.
//!
//! [`reconcile`] is the retained-mode replacement for
//! [`crate::diff::diff`]: instead of diffing two owned trees it walks the
//! retained nodes in a [`ViewArena`] against the new tree, mutating the
//! arena in place and emitting the *same patch script* `diff(old, new)`
//! would have produced — bit-identical, in the same order. That contract
//! is what lets the server ship reconciler output to clients that validate
//! against [`crate::diff::try_apply`], and it is enforced by unit tests
//! here and by the `view_arena_props` differential suite.
//!
//! Unchanged nodes are visited but never reallocated; replaced subtrees
//! are freed back to the arena's freelist and their replacements inserted
//! under the same root id, so retained root handles stay stable across any
//! number of edits.

use crate::arena::{NodeKind, ViewArena, ViewId};
use crate::diff::{Patch, Path};
use crate::html::Html;

/// What one [`reconcile`] pass did, in nodes of the *new* tree: every new
/// node is either `reused` (its retained slot survived, possibly patched
/// in place) or `rebuilt` (it was shipped inside a `Replace`/`AppendChild`
/// payload and freshly inserted). `reused + rebuilt == new.size()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconcileStats {
    /// Nodes whose retained slot was kept (identical or patched in place).
    pub reused: u64,
    /// Nodes freshly inserted into the arena (replaced or appended).
    pub rebuilt: u64,
}

/// Reconciles the retained subtree at `root` against `new`, pushing the
/// patch script onto `out` (a caller-owned scratch buffer, reused across
/// instances) and mutating the arena so that afterwards
/// `arena.to_html(root) == *new`. The root id itself is never freed —
/// wholesale replacement refurbishes the root slot in place.
pub fn reconcile<A: Clone + PartialEq>(
    arena: &mut ViewArena<A>,
    root: ViewId,
    new: &Html<A>,
    out: &mut Vec<Patch<A>>,
) -> ReconcileStats {
    let mut stats = ReconcileStats::default();
    let mut path = Vec::new();
    reconcile_at(arena, root, new, &mut path, out, &mut stats);
    stats
}

/// The decision the probe phase makes for one node, so the arena borrow is
/// released before any mutation.
enum Step {
    /// Same-kind text node; `Some` carries the new text to set.
    Text(Option<String>),
    /// Same-kind editor/result leaf; `true` means splice/dim changed
    /// (diff emits `Replace`, we refurbish the slot in place).
    Leaf(bool),
    /// Same-tag element: which in-place patches to emit, plus the retained
    /// child ids to recurse into.
    Element {
        set_attrs: bool,
        set_handlers: bool,
        old_children: Vec<ViewId>,
    },
    /// Kind or tag mismatch: wholesale replacement.
    Replace,
}

fn reconcile_at<A: Clone + PartialEq>(
    arena: &mut ViewArena<A>,
    id: ViewId,
    new: &Html<A>,
    path: &mut Path,
    out: &mut Vec<Patch<A>>,
    stats: &mut ReconcileStats,
) {
    let step = {
        let node = arena.get(id).expect("live retained node");
        match (&node.kind, new) {
            (NodeKind::Text(a), Html::Text(b)) => Step::Text((a != b).then(|| b.clone())),
            (
                NodeKind::Editor {
                    splice: s1,
                    dim: d1,
                },
                Html::Editor {
                    splice: s2,
                    dim: d2,
                },
            )
            | (
                NodeKind::ResultView {
                    splice: s1,
                    dim: d1,
                },
                Html::ResultView {
                    splice: s2,
                    dim: d2,
                },
            ) => Step::Leaf(s1 != s2 || d1 != d2),
            (
                NodeKind::Element {
                    tag: t1,
                    attrs: a1,
                    handlers: h1,
                    children: c1,
                },
                Html::Element {
                    tag: t2,
                    attrs: a2,
                    handlers: h2,
                    ..
                },
            ) => {
                if t1 != t2 {
                    Step::Replace
                } else {
                    Step::Element {
                        set_attrs: a1 != a2,
                        set_handlers: h1 != h2,
                        old_children: c1.clone(),
                    }
                }
            }
            _ => Step::Replace,
        }
    };
    match step {
        Step::Text(changed) => {
            stats.reused += 1;
            if let Some(text) = changed {
                out.push(Patch::SetText(path.clone(), text.clone()));
                match &mut arena.get_mut(id).expect("live retained node").kind {
                    NodeKind::Text(t) => *t = text,
                    _ => unreachable!("probed as text"),
                }
            }
        }
        Step::Leaf(changed) => {
            if changed {
                out.push(Patch::Replace(path.clone(), new.clone()));
                replace_in_place(arena, id, new, stats);
            } else {
                stats.reused += 1;
            }
        }
        Step::Element {
            set_attrs,
            set_handlers,
            old_children,
        } => {
            stats.reused += 1;
            let Html::Element {
                attrs: a2,
                handlers: h2,
                children: c2,
                ..
            } = new
            else {
                unreachable!("probed as a same-tag element");
            };
            if set_attrs {
                out.push(Patch::SetAttrs(path.clone(), a2.clone()));
                match &mut arena.get_mut(id).expect("live retained node").kind {
                    NodeKind::Element { attrs, .. } => *attrs = a2.clone(),
                    _ => unreachable!("probed as an element"),
                }
            }
            if set_handlers {
                out.push(Patch::SetHandlers(path.clone(), h2.clone()));
                match &mut arena.get_mut(id).expect("live retained node").kind {
                    NodeKind::Element { handlers, .. } => *handlers = h2.clone(),
                    _ => unreachable!("probed as an element"),
                }
            }
            let common = old_children.len().min(c2.len());
            for i in 0..common {
                path.push(i);
                reconcile_at(arena, old_children[i], &c2[i], path, out, stats);
                path.pop();
            }
            if c2.len() < old_children.len() {
                out.push(Patch::TruncateChildren(path.clone(), c2.len()));
                for &child in &old_children[c2.len()..] {
                    arena.free_tree(child);
                }
                match &mut arena.get_mut(id).expect("live retained node").kind {
                    NodeKind::Element { children, .. } => children.truncate(c2.len()),
                    _ => unreachable!("probed as an element"),
                }
            }
            for child in &c2[common..] {
                out.push(Patch::AppendChild(path.clone(), child.clone()));
                let child_id = arena.insert_tree(child, Some(id));
                stats.rebuilt += child.size() as u64;
                match &mut arena.get_mut(id).expect("live retained node").kind {
                    NodeKind::Element { children, .. } => children.push(child_id),
                    _ => unreachable!("probed as an element"),
                }
            }
        }
        Step::Replace => {
            out.push(Patch::Replace(path.clone(), new.clone()));
            replace_in_place(arena, id, new, stats);
        }
    }
}

/// Rewrites the node at `id` to mirror `new`, freeing its old child
/// subtrees and inserting the new ones — the retained analogue of a
/// `Replace` patch. The slot (and therefore the id) survives, so retained
/// roots stay valid across wholesale replacement.
fn replace_in_place<A: Clone + PartialEq>(
    arena: &mut ViewArena<A>,
    id: ViewId,
    new: &Html<A>,
    stats: &mut ReconcileStats,
) {
    let old_children: Vec<ViewId> = match &arena.get(id).expect("live retained node").kind {
        NodeKind::Element { children, .. } => children.clone(),
        _ => Vec::new(),
    };
    for child in old_children {
        arena.free_tree(child);
    }
    let kind = match new {
        Html::Element {
            tag,
            attrs,
            handlers,
            ..
        } => NodeKind::Element {
            tag: tag.clone(),
            attrs: attrs.clone(),
            handlers: handlers.clone(),
            children: Vec::new(),
        },
        Html::Text(s) => NodeKind::Text(s.clone()),
        Html::Editor { splice, dim } => NodeKind::Editor {
            splice: *splice,
            dim: *dim,
        },
        Html::ResultView { splice, dim } => NodeKind::ResultView {
            splice: *splice,
            dim: *dim,
        },
    };
    arena.get_mut(id).expect("live retained node").kind = kind;
    if let Html::Element { children, .. } = new {
        let child_ids: Vec<ViewId> = children
            .iter()
            .map(|child| arena.insert_tree(child, Some(id)))
            .collect();
        match &mut arena.get_mut(id).expect("live retained node").kind {
            NodeKind::Element { children, .. } => *children = child_ids,
            _ => unreachable!("just written as an element"),
        }
    }
    stats.rebuilt += new.size() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{diff, try_apply};
    use crate::html::tags::*;
    use crate::html::{Dim, Html};
    use crate::splice::SpliceRef;

    /// The differential contract on one (old, new) pair: reconciling the
    /// retained form of `old` against `new` leaves the arena holding `new`
    /// and emits exactly `diff(old, new)`.
    fn check(old: &Html<u32>, new: &Html<u32>) -> ReconcileStats {
        let mut arena: ViewArena<u32> = ViewArena::new();
        let root = arena.insert_tree(old, None);
        let mut patches = Vec::new();
        let stats = reconcile(&mut arena, root, new, &mut patches);
        assert_eq!(patches, diff(old, new), "patch script must match diff");
        assert_eq!(arena.to_html(root), *new, "arena must hold the new tree");
        assert_eq!(try_apply(old, &patches), Ok(new.clone()));
        assert_eq!(
            stats.reused + stats.rebuilt,
            new.size() as u64,
            "every new node is reused or rebuilt"
        );
        assert_eq!(
            arena.live_count(),
            new.size(),
            "no leaked or missing arena nodes"
        );
        stats
    }

    #[test]
    fn identical_trees_reuse_everything() {
        let t: Html<u32> = div(vec![
            Html::text("x"),
            span(vec![Html::text("y")]).attr("k", "v"),
        ]);
        let stats = check(&t, &t.clone());
        assert_eq!(stats.rebuilt, 0);
        assert_eq!(stats.reused, t.size() as u64);
    }

    #[test]
    fn text_edit_patches_in_place() {
        let old: Html<u32> = div(vec![Html::text("57")]);
        let new: Html<u32> = div(vec![Html::text("58")]);
        let stats = check(&old, &new);
        assert_eq!(stats.rebuilt, 0);
    }

    #[test]
    fn attr_and_handler_edits_patch_in_place() {
        let old: Html<u32> = div(vec![button(vec![]).attr("class", "a").on_click(1)]);
        let new: Html<u32> = div(vec![button(vec![]).attr("class", "b").on_click(2)]);
        let stats = check(&old, &new);
        assert_eq!(stats.rebuilt, 0);
    }

    #[test]
    fn child_growth_rebuilds_only_the_appended_subtree() {
        let old: Html<u32> = div(vec![Html::text("a")]);
        let new: Html<u32> = div(vec![Html::text("a"), span(vec![Html::text("b")])]);
        let stats = check(&old, &new);
        assert_eq!(stats.rebuilt, 2, "the appended span subtree only");
    }

    #[test]
    fn child_shrink_truncates_and_frees() {
        let old: Html<u32> = div(vec![Html::text("a"), span(vec![Html::text("b")])]);
        let new: Html<u32> = div(vec![Html::text("a")]);
        let stats = check(&old, &new);
        assert_eq!(stats.rebuilt, 0);
    }

    #[test]
    fn tag_change_rebuilds_the_subtree_at_a_stable_root() {
        let old: Html<u32> = div(vec![span(vec![Html::text("deep")])]);
        let new: Html<u32> = div(vec![button(vec![Html::text("deep")])]);
        let stats = check(&old, &new);
        assert_eq!(stats.rebuilt, 2, "the replaced button subtree");
    }

    #[test]
    fn kind_change_at_the_root_keeps_the_root_id() {
        let old: Html<u32> = Html::text("x");
        let new: Html<u32> = div(vec![Html::text("y")]);
        let mut arena: ViewArena<u32> = ViewArena::new();
        let root = arena.insert_tree(&old, None);
        let mut patches = Vec::new();
        reconcile(&mut arena, root, &new, &mut patches);
        assert_eq!(patches, diff(&old, &new));
        assert_eq!(arena.to_html(root), new, "same root id after replacement");
    }

    #[test]
    fn editor_leaf_change_is_a_replace() {
        let old: Html<u32> = Html::Editor {
            splice: SpliceRef(0),
            dim: Dim::fixed_width(20),
        };
        let new: Html<u32> = Html::Editor {
            splice: SpliceRef(1),
            dim: Dim::fixed_width(20),
        };
        let stats = check(&old, &new);
        assert_eq!(stats.rebuilt, 1);
    }

    #[test]
    fn editor_to_result_is_a_kind_mismatch() {
        let old: Html<u32> = Html::Editor {
            splice: SpliceRef(0),
            dim: Dim::fixed_width(20),
        };
        let new: Html<u32> = Html::ResultView {
            splice: SpliceRef(0),
            dim: Dim::fixed_width(20),
        };
        check(&old, &new);
    }

    #[test]
    fn repeated_reconciles_stay_consistent() {
        // A drag-like sequence: the same retained root reconciled through
        // several versions; each step must match diff against the previous
        // version, and slots freed on shrink must be reused on growth.
        let versions: Vec<Html<u32>> = (0..6u32)
            .map(|i| {
                let mut children = vec![Html::text(format!("v{i}"))];
                for j in 0..(i % 3) {
                    children.push(span(vec![Html::text(format!("c{j}"))]));
                }
                div(children).attr("step", i.to_string())
            })
            .collect();
        let mut arena: ViewArena<u32> = ViewArena::new();
        let root = arena.insert_tree(&versions[0], None);
        let mut scratch = Vec::new();
        for w in versions.windows(2) {
            scratch.clear();
            reconcile(&mut arena, root, &w[1], &mut scratch);
            assert_eq!(scratch, diff(&w[0], &w[1]));
            assert_eq!(arena.to_html(root), w[1]);
            assert_eq!(arena.live_count(), w[1].size());
        }
        // The slab never grew past the largest version's node count.
        let max_size = versions.iter().map(Html::size).max().unwrap();
        assert!(
            arena.capacity() <= max_size + 2,
            "freelist reuse bounds slots"
        );
    }
}
