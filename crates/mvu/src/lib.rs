//! `livelit-mvu`: the model–view–update–**expand** architecture for livelit
//! GUIs (Sec. 3 of *Filling Typed Holes with Live GUIs*, PLDI 2021).
//!
//! This crate provides everything a livelit *provider* programs against:
//!
//! - the [`livelit::Livelit`] trait — `init` / `view` / `update` / `expand`
//!   with declared model, expansion, parameter types and definition-site
//!   context,
//! - the command interpreters [`livelit::UpdateCtx`] (`new_splice`,
//!   `set_splice`, ...) and [`livelit::ViewCtx`] (`eval_splice`, `editor`,
//!   `result_view`),
//! - immutable [`html::Html`] view trees and positional diffing via the
//!   [`mod@diff`] module (Sec. 3.2.4),
//! - the [`splice::SpliceStore`] with context-independence checks
//!   (Sec. 3.2.1),
//! - livelit [`abbrev`]iations (partial parameter application, Sec. 2.4.1),
//! - the [`host::Instance`] driving the livelit lifecycle at one invocation
//!   site and projecting it back into the syntax tree.

#![warn(missing_docs)]

pub mod abbrev;
pub mod arena;
pub mod diff;
pub mod host;
pub mod html;
pub mod livelit;
pub mod reconcile;
pub mod splice;

pub use abbrev::AbbrevCtx;
pub use arena::{NodeKind, ViewArena, ViewId};
pub use diff::{apply, diff, diff_into, try_apply, Patch, PatchError};
pub use host::{def_for, Instance};
pub use html::{Dim, EventKind, Html};
pub use livelit::{
    Action, CmdError, ContextBinding, Livelit, LivelitLayout, Model, UpdateCtx, ViewCtx,
};
pub use reconcile::{reconcile, ReconcileStats};
pub use splice::{SpliceRef, SpliceStore};
