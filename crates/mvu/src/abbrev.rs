//! Livelit abbreviations: partial application of parameters (Sec. 2.4.1).
//!
//! `let $uslider = $slider 0 in ...` partially applies `$slider`'s first
//! parameter. Abbreviations form chains (`$percent` = `$uslider 100` =
//! `$slider 0 100`); resolution flattens a chain to the base livelit plus
//! the full prefix of applied parameter expressions. "Only livelits with no
//! remaining parameters can be invoked" — arity is enforced when the
//! resolved invocation is instantiated.

use std::collections::BTreeMap;
use std::fmt;

use hazel_lang::ident::LivelitName;
use hazel_lang::unexpanded::UExp;

/// One abbreviation: `let $name = $base e1 ... ek in ...`.
#[derive(Debug, Clone, PartialEq)]
pub struct Abbrev {
    /// The abbreviated livelit (or a further abbreviation).
    pub base: LivelitName,
    /// The parameter expressions applied, leftmost first.
    pub applied: Vec<UExp>,
}

/// An abbreviation-resolution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum AbbrevError {
    /// The abbreviation chain contains a cycle.
    Cycle(LivelitName),
}

impl fmt::Display for AbbrevError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbbrevError::Cycle(name) => write!(f, "abbreviation cycle through {name}"),
        }
    }
}

impl std::error::Error for AbbrevError {}

/// The abbreviation environment in scope at an invocation site.
#[derive(Debug, Clone, Default)]
pub struct AbbrevCtx {
    map: BTreeMap<LivelitName, Abbrev>,
}

impl AbbrevCtx {
    /// An empty environment.
    pub fn new() -> AbbrevCtx {
        AbbrevCtx::default()
    }

    /// Defines `let $name = $base e1 ... ek`.
    pub fn define(
        &mut self,
        name: impl Into<LivelitName>,
        base: impl Into<LivelitName>,
        applied: Vec<UExp>,
    ) {
        self.map.insert(
            name.into(),
            Abbrev {
                base: base.into(),
                applied,
            },
        );
    }

    /// Resolves a name to its base livelit and the full prefix of applied
    /// parameters. A name with no abbreviation resolves to itself with no
    /// prefix.
    ///
    /// # Errors
    ///
    /// Returns [`AbbrevError::Cycle`] on cyclic abbreviation chains.
    pub fn resolve(&self, name: &LivelitName) -> Result<(LivelitName, Vec<UExp>), AbbrevError> {
        let mut prefix: Vec<UExp> = Vec::new();
        let mut cur = name.clone();
        let mut seen = std::collections::BTreeSet::new();
        while let Some(abbrev) = self.map.get(&cur) {
            if !seen.insert(cur.clone()) {
                return Err(AbbrevError::Cycle(cur));
            }
            // The chain applies outer-most last: $percent = $uslider 100
            // means $uslider's params come first.
            let mut combined = abbrev.applied.clone();
            combined.extend(prefix);
            prefix = combined;
            cur = abbrev.base.clone();
        }
        Ok((cur, prefix))
    }

    /// The number of abbreviations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no abbreviations.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unabbreviated_name_resolves_to_itself() {
        let ctx = AbbrevCtx::new();
        let (base, prefix) = ctx.resolve(&LivelitName::new("$slider")).unwrap();
        assert_eq!(base, LivelitName::new("$slider"));
        assert!(prefix.is_empty());
    }

    #[test]
    fn percent_slider_chain() {
        // let $uslider = $slider 0 in let $percent = $uslider 100 in ...
        let mut ctx = AbbrevCtx::new();
        ctx.define("$uslider", "$slider", vec![UExp::Int(0)]);
        ctx.define("$percent", "$uslider", vec![UExp::Int(100)]);
        let (base, prefix) = ctx.resolve(&LivelitName::new("$percent")).unwrap();
        assert_eq!(base, LivelitName::new("$slider"));
        assert_eq!(prefix, vec![UExp::Int(0), UExp::Int(100)]);
    }

    #[test]
    fn cycle_detected() {
        let mut ctx = AbbrevCtx::new();
        ctx.define("$a", "$b", vec![]);
        ctx.define("$b", "$a", vec![]);
        assert!(matches!(
            ctx.resolve(&LivelitName::new("$a")),
            Err(AbbrevError::Cycle(_))
        ));
    }
}
