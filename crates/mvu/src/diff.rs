//! View-tree diffing (Sec. 3.2.4).
//!
//! "When the model is updated, a new view is computed. The system then
//! performs a diff between the old and new view in order to efficiently
//! perform the necessary imperative updates to the editor's visual state."
//!
//! The diff is positional: a patch addresses a node by its child-index path
//! from the root. The correctness contract — `apply(old, diff(old, new)) ==
//! new` — is unit-tested here and property-tested in the integration suite.

use crate::html::Html;

/// A path from the root to a node: the sequence of child indices.
pub type Path = Vec<usize>;

/// One imperative update to the rendered view.
#[derive(Debug, Clone, PartialEq)]
pub enum Patch<A> {
    /// Replace the node at `path` wholesale.
    Replace(Path, Html<A>),
    /// Change the text of the text node at `path`.
    SetText(Path, String),
    /// Replace the attributes of the element at `path`.
    SetAttrs(Path, Vec<(String, String)>),
    /// Replace the handlers of the element at `path`.
    SetHandlers(Path, Vec<(crate::html::EventKind, A)>),
    /// Append a child to the element at `path`.
    AppendChild(Path, Html<A>),
    /// Remove the last child of the element at `path`.
    TruncateChildren(Path, usize),
}

impl<A> Patch<A> {
    /// The path this patch applies to.
    pub fn path(&self) -> &Path {
        match self {
            Patch::Replace(p, _)
            | Patch::SetText(p, _)
            | Patch::SetAttrs(p, _)
            | Patch::SetHandlers(p, _)
            | Patch::AppendChild(p, _)
            | Patch::TruncateChildren(p, _) => p,
        }
    }
}

/// Computes a patch script transforming `old` into `new`.
pub fn diff<A: Clone + PartialEq>(old: &Html<A>, new: &Html<A>) -> Vec<Patch<A>> {
    let mut patches = Vec::new();
    diff_into(old, new, &mut patches);
    patches
}

/// Like [`diff`], but appends onto a caller-owned buffer so render loops
/// can reuse one allocation across instances instead of growing a fresh
/// `Vec` per diff.
pub fn diff_into<A: Clone + PartialEq>(old: &Html<A>, new: &Html<A>, out: &mut Vec<Patch<A>>) {
    let _span = livelit_trace::span("mvu.diff");
    let before = out.len();
    diff_at(old, new, &mut Vec::new(), out);
    if livelit_trace::enabled() {
        livelit_trace::count(
            livelit_trace::Counter::ViewDiffNodes,
            (old.size() + new.size()) as u64,
        );
        livelit_trace::count(
            livelit_trace::Counter::ViewDiffPatches,
            (out.len() - before) as u64,
        );
    }
}

fn diff_at<A: Clone + PartialEq>(
    old: &Html<A>,
    new: &Html<A>,
    path: &mut Path,
    out: &mut Vec<Patch<A>>,
) {
    match (old, new) {
        (Html::Text(a), Html::Text(b)) => {
            if a != b {
                out.push(Patch::SetText(path.clone(), b.clone()));
            }
        }
        (
            Html::Editor {
                splice: s1,
                dim: d1,
            },
            Html::Editor {
                splice: s2,
                dim: d2,
            },
        )
        | (
            Html::ResultView {
                splice: s1,
                dim: d1,
            },
            Html::ResultView {
                splice: s2,
                dim: d2,
            },
        ) => {
            if s1 != s2 || d1 != d2 {
                out.push(Patch::Replace(path.clone(), new.clone()));
            }
        }
        (
            Html::Element {
                tag: t1,
                attrs: a1,
                handlers: h1,
                children: c1,
            },
            Html::Element {
                tag: t2,
                attrs: a2,
                handlers: h2,
                children: c2,
            },
        ) => {
            if t1 != t2 {
                out.push(Patch::Replace(path.clone(), new.clone()));
                return;
            }
            if a1 != a2 {
                out.push(Patch::SetAttrs(path.clone(), a2.clone()));
            }
            if h1 != h2 {
                out.push(Patch::SetHandlers(path.clone(), h2.clone()));
            }
            let common = c1.len().min(c2.len());
            for i in 0..common {
                path.push(i);
                diff_at(&c1[i], &c2[i], path, out);
                path.pop();
            }
            if c2.len() < c1.len() {
                out.push(Patch::TruncateChildren(path.clone(), c2.len()));
            }
            for child in &c2[common..] {
                out.push(Patch::AppendChild(path.clone(), child.clone()));
            }
        }
        _ => out.push(Patch::Replace(path.clone(), new.clone())),
    }
}

/// Why a patch script could not be applied to a tree: the script was not
/// produced by [`diff`] against that tree (it is *stale* — e.g. a server
/// client acknowledged a different view than the one it actually holds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// The path indexes a child that does not exist.
    PathOutOfBounds(Path),
    /// The path descends into a text/editor/result leaf.
    PathIntoLeaf(Path),
    /// The patch kind does not match the node it addresses (e.g. `SetText`
    /// on an element). The string names the patch kind.
    WrongNodeKind(Path, &'static str),
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let render_path = |p: &Path| {
            p.iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>()
                .join(".")
        };
        match self {
            PatchError::PathOutOfBounds(p) => {
                write!(f, "patch path [{}] is out of bounds", render_path(p))
            }
            PatchError::PathIntoLeaf(p) => {
                write!(f, "patch path [{}] descends into a leaf", render_path(p))
            }
            PatchError::WrongNodeKind(p, kind) => {
                write!(
                    f,
                    "{kind} at path [{}] addresses a node of the wrong kind",
                    render_path(p)
                )
            }
        }
    }
}

impl std::error::Error for PatchError {}

/// Applies a patch script produced by [`diff`].
///
/// # Panics
///
/// Panics if a patch path does not address a node of the right shape —
/// which indicates the script was not produced by [`diff`] against this
/// tree. Server-side code that cannot trust the script must use
/// [`try_apply`] instead.
pub fn apply<A: Clone>(tree: &Html<A>, patches: &[Patch<A>]) -> Html<A> {
    match try_apply(tree, patches) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// Applies a patch script, reporting a malformed or stale script as an
/// error instead of panicking. On `Err` the input tree is untouched (the
/// partially patched clone is discarded).
///
/// # Errors
///
/// See [`PatchError`].
pub fn try_apply<A: Clone>(tree: &Html<A>, patches: &[Patch<A>]) -> Result<Html<A>, PatchError> {
    let mut out = tree.clone();
    for patch in patches {
        apply_one(&mut out, patch)?;
    }
    Ok(out)
}

fn node_at_mut<'a, A>(
    tree: &'a mut Html<A>,
    path: &[usize],
) -> Result<&'a mut Html<A>, PatchError> {
    let mut cur = tree;
    for (depth, &i) in path.iter().enumerate() {
        match cur {
            Html::Element { children, .. } => {
                cur = children
                    .get_mut(i)
                    .ok_or_else(|| PatchError::PathOutOfBounds(path[..=depth].to_vec()))?;
            }
            _ => return Err(PatchError::PathIntoLeaf(path[..=depth].to_vec())),
        }
    }
    Ok(cur)
}

fn apply_one<A: Clone>(tree: &mut Html<A>, patch: &Patch<A>) -> Result<(), PatchError> {
    match patch {
        Patch::Replace(path, new) => {
            *node_at_mut(tree, path)? = new.clone();
        }
        Patch::SetText(path, s) => match node_at_mut(tree, path)? {
            Html::Text(t) => *t = s.clone(),
            _ => return Err(PatchError::WrongNodeKind(path.clone(), "SetText")),
        },
        Patch::SetAttrs(path, attrs) => match node_at_mut(tree, path)? {
            Html::Element { attrs: a, .. } => *a = attrs.clone(),
            _ => return Err(PatchError::WrongNodeKind(path.clone(), "SetAttrs")),
        },
        Patch::SetHandlers(path, handlers) => match node_at_mut(tree, path)? {
            Html::Element { handlers: h, .. } => *h = handlers.clone(),
            _ => return Err(PatchError::WrongNodeKind(path.clone(), "SetHandlers")),
        },
        Patch::AppendChild(path, child) => match node_at_mut(tree, path)? {
            Html::Element { children, .. } => children.push(child.clone()),
            _ => return Err(PatchError::WrongNodeKind(path.clone(), "AppendChild")),
        },
        Patch::TruncateChildren(path, len) => match node_at_mut(tree, path)? {
            Html::Element { children, .. } => children.truncate(*len),
            _ => return Err(PatchError::WrongNodeKind(path.clone(), "TruncateChildren")),
        },
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::tags::*;
    use crate::html::{Dim, EventKind, Html};
    use crate::splice::SpliceRef;

    fn check_roundtrip(old: &Html<u32>, new: &Html<u32>) -> Vec<Patch<u32>> {
        let patches = diff(old, new);
        assert_eq!(&apply(old, &patches), new, "apply(old, diff) != new");
        patches
    }

    #[test]
    fn identical_trees_produce_no_patches() {
        let t: Html<u32> = div(vec![Html::text("x"), span(vec![])]);
        assert!(diff(&t, &t.clone()).is_empty());
    }

    #[test]
    fn text_change_is_a_single_set_text() {
        let old: Html<u32> = div(vec![Html::text("57")]);
        let new: Html<u32> = div(vec![Html::text("58")]);
        let patches = check_roundtrip(&old, &new);
        assert_eq!(patches, vec![Patch::SetText(vec![0], "58".into())]);
    }

    #[test]
    fn attr_change_is_localized() {
        let old: Html<u32> = div(vec![span(vec![]).attr("class", "a")]);
        let new: Html<u32> = div(vec![span(vec![]).attr("class", "b")]);
        let patches = check_roundtrip(&old, &new);
        assert_eq!(patches.len(), 1);
        assert!(matches!(patches[0], Patch::SetAttrs(..)));
    }

    #[test]
    fn handler_change_detected() {
        let old: Html<u32> = button(vec![]).on_click(1);
        let new: Html<u32> = button(vec![]).on_click(2);
        let patches = check_roundtrip(&old, &new);
        assert!(matches!(patches[0], Patch::SetHandlers(..)));
    }

    #[test]
    fn child_growth_appends() {
        let old: Html<u32> = div(vec![Html::text("a")]);
        let new: Html<u32> = div(vec![Html::text("a"), Html::text("b")]);
        let patches = check_roundtrip(&old, &new);
        assert_eq!(patches.len(), 1);
        assert!(matches!(patches[0], Patch::AppendChild(..)));
    }

    #[test]
    fn child_shrink_truncates() {
        let old: Html<u32> = div(vec![Html::text("a"), Html::text("b")]);
        let new: Html<u32> = div(vec![Html::text("a")]);
        let patches = check_roundtrip(&old, &new);
        assert_eq!(patches, vec![Patch::TruncateChildren(vec![], 1)]);
    }

    #[test]
    fn tag_change_replaces_subtree() {
        let old: Html<u32> = div(vec![span(vec![Html::text("deep")])]);
        let new: Html<u32> = div(vec![button(vec![Html::text("deep")])]);
        let patches = check_roundtrip(&old, &new);
        assert_eq!(patches.len(), 1);
        assert!(matches!(patches[0], Patch::Replace(..)));
    }

    #[test]
    fn editor_nodes_compared_by_splice_and_dim() {
        let old: Html<u32> = Html::Editor {
            splice: SpliceRef(0),
            dim: Dim::fixed_width(20),
        };
        let same = old.clone();
        assert!(diff(&old, &same).is_empty());
        let moved: Html<u32> = Html::Editor {
            splice: SpliceRef(1),
            dim: Dim::fixed_width(20),
        };
        check_roundtrip(&old, &moved);
    }

    #[test]
    fn kind_change_replaces() {
        let old: Html<u32> = Html::text("x");
        let new: Html<u32> = span(vec![]);
        let patches = check_roundtrip(&old, &new);
        assert!(matches!(patches[0], Patch::Replace(..)));
    }

    #[test]
    fn deep_localized_edit_produces_deep_path() {
        let old: Html<u32> = div(vec![div(vec![div(vec![Html::text("old")])])]);
        let new: Html<u32> = div(vec![div(vec![div(vec![Html::text("new")])])]);
        let patches = check_roundtrip(&old, &new);
        assert_eq!(patches[0].path(), &vec![0, 0, 0]);
    }

    #[test]
    fn events_variants_distinct() {
        assert_ne!(EventKind::Click, EventKind::Drag);
    }

    #[test]
    fn try_apply_matches_apply_on_valid_scripts() {
        let old: Html<u32> = div(vec![Html::text("a"), span(vec![]).attr("k", "v")]);
        let new: Html<u32> = div(vec![Html::text("b"), span(vec![]).attr("k", "w")]);
        let patches = diff(&old, &new);
        assert_eq!(try_apply(&old, &patches), Ok(new));
    }

    #[test]
    fn try_apply_stale_script_is_err_not_panic() {
        // A script diffed against a two-child tree, applied to a leaf: the
        // acked-view desync a server must survive.
        let old: Html<u32> = div(vec![Html::text("a"), Html::text("b")]);
        let new: Html<u32> = div(vec![Html::text("a"), Html::text("c")]);
        let patches = diff(&old, &new);
        let stale: Html<u32> = Html::text("x");
        assert_eq!(
            try_apply(&stale, &patches),
            Err(PatchError::PathIntoLeaf(vec![1]))
        );
        let shallow: Html<u32> = div(vec![Html::text("a")]);
        assert_eq!(
            try_apply(&shallow, &patches),
            Err(PatchError::PathOutOfBounds(vec![1]))
        );
    }

    #[test]
    fn try_apply_wrong_kind_is_err() {
        let tree: Html<u32> = div(vec![span(vec![])]);
        let patch = Patch::SetText(vec![0], "x".into());
        assert_eq!(
            try_apply(&tree, &[patch]),
            Err(PatchError::WrongNodeKind(vec![0], "SetText"))
        );
    }

    #[test]
    #[should_panic(expected = "descends into a leaf")]
    fn apply_still_panics_on_malformed_scripts() {
        let tree: Html<u32> = Html::text("x");
        let patch = Patch::SetText(vec![0], "y".into());
        let _ = apply(&tree, &[patch]);
    }
}
