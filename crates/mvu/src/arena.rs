//! A generational slab arena for retained view trees.
//!
//! The render pipeline used to rebuild every `Html<A>` tree from scratch
//! on each edit and diff the two full trees. The arena is the retained
//! half of the replacement: view nodes live in a slab with stable ids, a
//! reconciler ([`crate::reconcile`]) mutates them in place against the
//! freshly computed tree, and unchanged nodes are never reallocated.
//!
//! Ids are *generational* (the `tree_arena` discipline from masonry): a
//! [`ViewId`] carries both a slot index and the generation the slot had
//! when the node was inserted. Freeing a node bumps the slot's generation,
//! so a stale handle held across a free can never alias the slot's next
//! occupant — lookups with an outdated generation return `None` instead of
//! silently reading an unrelated node. Freed slots go on a freelist and
//! are reused before the slab grows.

use crate::html::{Dim, EventKind, Html};
use crate::splice::SpliceRef;

/// A stable, generation-checked handle to a node in a [`ViewArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ViewId {
    index: u32,
    generation: u32,
}

impl ViewId {
    /// The slot index (diagnostics only; lookups go through the arena).
    pub fn index(self) -> u32 {
        self.index
    }

    /// The generation this handle was minted at.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// The payload of one retained node: the [`Html`] variant with child
/// *ids* instead of owned child trees.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind<A> {
    /// An element: tag, attributes, handlers, and child node ids.
    Element {
        /// The tag name.
        tag: String,
        /// Attribute key/value pairs, in emission order.
        attrs: Vec<(String, String)>,
        /// Event handlers.
        handlers: Vec<(EventKind, A)>,
        /// Child node ids, in document order.
        children: Vec<ViewId>,
    },
    /// A text leaf.
    Text(String),
    /// An embedded splice editor.
    Editor {
        /// The splice shown in the editor.
        splice: SpliceRef,
        /// Requested dimensions.
        dim: Dim,
    },
    /// A splice result view.
    ResultView {
        /// The splice whose live result is shown.
        splice: SpliceRef,
        /// Requested dimensions.
        dim: Dim,
    },
}

/// One retained node: its parent link and payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Node<A> {
    /// The parent node, `None` for a retained root.
    pub parent: Option<ViewId>,
    /// The payload.
    pub kind: NodeKind<A>,
}

#[derive(Debug)]
struct Slot<A> {
    generation: u32,
    node: Option<Node<A>>,
}

/// A generational slab of retained view nodes.
#[derive(Debug)]
pub struct ViewArena<A> {
    slots: Vec<Slot<A>>,
    free: Vec<u32>,
    live: usize,
}

impl<A> Default for ViewArena<A> {
    fn default() -> ViewArena<A> {
        ViewArena::new()
    }
}

impl<A> ViewArena<A> {
    /// An empty arena.
    pub fn new() -> ViewArena<A> {
        ViewArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// The number of live nodes.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// The number of slots ever allocated (live + freelist).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Inserts a node, reusing a freed slot when one is available.
    pub fn insert(&mut self, parent: Option<ViewId>, kind: NodeKind<A>) -> ViewId {
        self.live += 1;
        let node = Some(Node { parent, kind });
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.node.is_none(), "freelist slot still occupied");
            slot.node = node;
            return ViewId {
                index,
                generation: slot.generation,
            };
        }
        let index = u32::try_from(self.slots.len()).expect("view arena slot overflow");
        self.slots.push(Slot {
            generation: 0,
            node,
        });
        ViewId {
            index,
            generation: 0,
        }
    }

    /// The node behind `id`, or `None` when the handle is stale (its slot
    /// was freed — and possibly reused — since the handle was minted).
    pub fn get(&self, id: ViewId) -> Option<&Node<A>> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.node.as_ref()
    }

    /// Mutable access to the node behind `id`, with the same staleness
    /// check as [`ViewArena::get`].
    pub fn get_mut(&mut self, id: ViewId) -> Option<&mut Node<A>> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.generation != id.generation {
            return None;
        }
        slot.node.as_mut()
    }

    /// Frees `id` and its entire subtree, bumping each freed slot's
    /// generation so outstanding handles to the subtree go stale. A stale
    /// or already-freed handle is ignored.
    pub fn free_tree(&mut self, id: ViewId) {
        let mut stack = vec![id];
        while let Some(id) = stack.pop() {
            let Some(slot) = self.slots.get_mut(id.index as usize) else {
                continue;
            };
            if slot.generation != id.generation {
                continue;
            }
            let Some(node) = slot.node.take() else {
                continue;
            };
            slot.generation = slot.generation.wrapping_add(1);
            self.live -= 1;
            self.free.push(id.index);
            if let NodeKind::Element { children, .. } = node.kind {
                stack.extend(children);
            }
        }
    }

    /// Drops every node and forgets the freelist, keeping allocations.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            if slot.node.take().is_some() {
                slot.generation = slot.generation.wrapping_add(1);
            }
        }
        self.free.clear();
        self.free.extend((0..self.slots.len() as u32).rev());
        self.live = 0;
    }
}

impl<A: Clone> ViewArena<A> {
    /// Inserts a whole [`Html`] tree, returning the id of its root. Every
    /// node of the tree becomes one arena node; the return value of
    /// [`ViewArena::to_html`] on the result is the input tree.
    pub fn insert_tree(&mut self, tree: &Html<A>, parent: Option<ViewId>) -> ViewId {
        match tree {
            Html::Element {
                tag,
                attrs,
                handlers,
                children,
            } => {
                let id = self.insert(
                    parent,
                    NodeKind::Element {
                        tag: tag.clone(),
                        attrs: attrs.clone(),
                        handlers: handlers.clone(),
                        children: Vec::with_capacity(children.len()),
                    },
                );
                let child_ids: Vec<ViewId> = children
                    .iter()
                    .map(|child| self.insert_tree(child, Some(id)))
                    .collect();
                match &mut self.get_mut(id).expect("just inserted").kind {
                    NodeKind::Element { children, .. } => *children = child_ids,
                    _ => unreachable!("inserted as an element"),
                }
                id
            }
            Html::Text(s) => self.insert(parent, NodeKind::Text(s.clone())),
            Html::Editor { splice, dim } => self.insert(
                parent,
                NodeKind::Editor {
                    splice: *splice,
                    dim: *dim,
                },
            ),
            Html::ResultView { splice, dim } => self.insert(
                parent,
                NodeKind::ResultView {
                    splice: *splice,
                    dim: *dim,
                },
            ),
        }
    }

    /// Materializes the subtree rooted at `id` back into an owned
    /// [`Html`] tree.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle — retained roots are owned by the caller
    /// and must be freed through [`ViewArena::free_tree`], never left
    /// dangling.
    pub fn to_html(&self, id: ViewId) -> Html<A> {
        let node = self.get(id).expect("live arena handle");
        match &node.kind {
            NodeKind::Element {
                tag,
                attrs,
                handlers,
                children,
            } => Html::Element {
                tag: tag.clone(),
                attrs: attrs.clone(),
                handlers: handlers.clone(),
                children: children.iter().map(|&c| self.to_html(c)).collect(),
            },
            NodeKind::Text(s) => Html::Text(s.clone()),
            NodeKind::Editor { splice, dim } => Html::Editor {
                splice: *splice,
                dim: *dim,
            },
            NodeKind::ResultView { splice, dim } => Html::ResultView {
                splice: *splice,
                dim: *dim,
            },
        }
    }

    /// The number of nodes in the subtree rooted at `id` (0 for a stale
    /// handle).
    pub fn subtree_size(&self, id: ViewId) -> usize {
        let Some(node) = self.get(id) else {
            return 0;
        };
        match &node.kind {
            NodeKind::Element { children, .. } => {
                1 + children
                    .iter()
                    .map(|&c| self.subtree_size(c))
                    .sum::<usize>()
            }
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::tags::*;

    fn sample() -> Html<u32> {
        div(vec![
            Html::text("a"),
            span(vec![Html::text("b")]).attr("k", "v"),
            Html::Editor {
                splice: SpliceRef(3),
                dim: Dim::fixed_width(20),
            },
        ])
    }

    #[test]
    fn insert_tree_round_trips() {
        let mut arena: ViewArena<u32> = ViewArena::new();
        let tree = sample();
        let root = arena.insert_tree(&tree, None);
        assert_eq!(arena.to_html(root), tree);
        assert_eq!(arena.live_count(), tree.size());
        assert_eq!(arena.subtree_size(root), tree.size());
    }

    #[test]
    fn stale_handle_after_free_is_none() {
        let mut arena: ViewArena<u32> = ViewArena::new();
        let root = arena.insert_tree(&sample(), None);
        let child = match &arena.get(root).unwrap().kind {
            NodeKind::Element { children, .. } => children[1],
            _ => unreachable!(),
        };
        arena.free_tree(root);
        assert_eq!(arena.live_count(), 0);
        assert!(arena.get(root).is_none(), "freed root must read as stale");
        assert!(
            arena.get(child).is_none(),
            "freed subtree must read as stale"
        );
    }

    #[test]
    fn freelist_reuse_never_aliases_old_handles() {
        let mut arena: ViewArena<u32> = ViewArena::new();
        let old_root = arena.insert_tree(&sample(), None);
        let slots_before = arena.capacity();
        arena.free_tree(old_root);
        let new_root = arena.insert_tree(&sample(), None);
        // Slots were reused, not grown.
        assert_eq!(arena.capacity(), slots_before);
        // The old handle indexes a reused slot but a newer generation.
        assert!(arena.get(old_root).is_none());
        assert!(arena.get(new_root).is_some());
        assert_ne!(old_root, new_root);
    }

    #[test]
    fn parent_links_are_recorded() {
        let mut arena: ViewArena<u32> = ViewArena::new();
        let root = arena.insert_tree(&sample(), None);
        assert_eq!(arena.get(root).unwrap().parent, None);
        let NodeKind::Element { children, .. } = &arena.get(root).unwrap().kind else {
            unreachable!()
        };
        for &child in children {
            assert_eq!(arena.get(child).unwrap().parent, Some(root));
        }
    }

    #[test]
    fn clear_frees_everything_and_reuses_slots() {
        let mut arena: ViewArena<u32> = ViewArena::new();
        let root = arena.insert_tree(&sample(), None);
        arena.clear();
        assert_eq!(arena.live_count(), 0);
        assert!(arena.get(root).is_none());
        let cap = arena.capacity();
        let _ = arena.insert_tree(&sample(), None);
        assert_eq!(arena.capacity(), cap, "cleared slots must be reused");
    }
}
