//! Immutable HTML view trees, `Html(Action)` (Sec. 3.2.3).
//!
//! "The computed view is a value of type `Html(Action)`. This type provides
//! a simple immutable encoding of an HTML element, where the type parameter
//! is the type of actions that are emitted by event handlers." Two special
//! node kinds — splice editors and result views — are opaque regions that
//! the editor controls when the view is rendered.

use crate::splice::SpliceRef;

/// A size in *character units* (Sec. 5.3: layout "relies fundamentally on
/// character counts", so livelits specify dimensions in characters, not
/// pixels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dim {
    /// Width in character columns.
    pub width: usize,
    /// Height in character rows.
    pub height: usize,
}

impl Dim {
    /// An inline (one-row) dimension — the paper's `FixedWidth(20)`.
    pub fn fixed_width(width: usize) -> Dim {
        Dim { width, height: 1 }
    }

    /// A multi-row block dimension.
    pub fn block(width: usize, height: usize) -> Dim {
        Dim { width, height }
    }
}

/// The DOM events a handler can be attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EventKind {
    /// A mouse click.
    Click,
    /// A text-input change.
    Input,
    /// A drag gesture (used by `$grade_cutoffs` paddles and `$slider`).
    Drag,
}

/// An immutable HTML view tree emitting actions of type `A`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Html<A> {
    /// An element with a tag, attributes, event handlers, and children.
    Element {
        /// Tag name, e.g. `"div"`.
        tag: String,
        /// Attribute name/value pairs, in insertion order.
        attrs: Vec<(String, String)>,
        /// Event handlers: the action emitted when the event fires.
        handlers: Vec<(EventKind, A)>,
        /// Child nodes.
        children: Vec<Html<A>>,
    },
    /// A text node.
    Text(String),
    /// An embedded splice editor (the `editor` command, Sec. 3.2.3): "an
    /// opaque Html value ... when the livelit is rendered, this part of the
    /// tree is under the control of Hazel."
    Editor {
        /// The splice whose editor is embedded here.
        splice: SpliceRef,
        /// Requested size in character units.
        dim: Dim,
    },
    /// A rendered evaluation result for a splice (the `result_view`
    /// command) — e.g. each `$dataframe` cell shows its cell's value.
    ResultView {
        /// The splice whose result is rendered here.
        splice: SpliceRef,
        /// Requested size in character units.
        dim: Dim,
    },
}

impl<A> Html<A> {
    /// An element with no attributes or handlers.
    pub fn node(tag: impl Into<String>, children: Vec<Html<A>>) -> Html<A> {
        Html::Element {
            tag: tag.into(),
            attrs: Vec::new(),
            handlers: Vec::new(),
            children,
        }
    }

    /// A text node.
    pub fn text(s: impl Into<String>) -> Html<A> {
        Html::Text(s.into())
    }

    /// Adds an attribute (builder style).
    ///
    /// # Panics
    ///
    /// Panics if called on a non-element node.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Html<A> {
        match &mut self {
            Html::Element { attrs, .. } => attrs.push((name.into(), value.into())),
            _ => panic!("attr on a non-element node"),
        }
        self
    }

    /// Attaches a click handler (builder style).
    ///
    /// # Panics
    ///
    /// Panics if called on a non-element node.
    pub fn on_click(self, action: A) -> Html<A> {
        self.on(EventKind::Click, action)
    }

    /// Attaches a handler for `event` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if called on a non-element node.
    pub fn on(mut self, event: EventKind, action: A) -> Html<A> {
        match &mut self {
            Html::Element { handlers, .. } => handlers.push((event, action)),
            _ => panic!("handler on a non-element node"),
        }
        self
    }

    /// Maps the action type — livelit composition needs views embedding
    /// views with different action types.
    pub fn map<B>(self, f: &impl Fn(A) -> B) -> Html<B> {
        match self {
            Html::Element {
                tag,
                attrs,
                handlers,
                children,
            } => Html::Element {
                tag,
                attrs,
                handlers: handlers.into_iter().map(|(e, a)| (e, f(a))).collect(),
                children: children.into_iter().map(|c| c.map(f)).collect(),
            },
            Html::Text(s) => Html::Text(s),
            Html::Editor { splice, dim } => Html::Editor { splice, dim },
            Html::ResultView { splice, dim } => Html::ResultView { splice, dim },
        }
    }

    /// The number of nodes in the tree.
    pub fn size(&self) -> usize {
        match self {
            Html::Element { children, .. } => 1 + children.iter().map(Html::size).sum::<usize>(),
            _ => 1,
        }
    }

    /// All splice references mentioned by editors and result views, in
    /// document order.
    pub fn splice_refs(&self) -> Vec<SpliceRef> {
        let mut out = Vec::new();
        self.collect_splice_refs(&mut out);
        out
    }

    fn collect_splice_refs(&self, out: &mut Vec<SpliceRef>) {
        match self {
            Html::Element { children, .. } => {
                for c in children {
                    c.collect_splice_refs(out);
                }
            }
            Html::Editor { splice, .. } | Html::ResultView { splice, .. } => out.push(*splice),
            Html::Text(_) => {}
        }
    }

    /// Finds the first handler for `event` anywhere in the tree whose
    /// element's `id` attribute equals `target_id`, and returns its action.
    /// This is how the headless host dispatches scripted interactions.
    pub fn find_handler(&self, target_id: &str, event: EventKind) -> Option<&A> {
        match self {
            Html::Element {
                attrs,
                handlers,
                children,
                ..
            } => {
                let here = attrs.iter().any(|(k, v)| k == "id" && v == target_id);
                if here {
                    if let Some((_, a)) = handlers.iter().find(|(e, _)| *e == event) {
                        return Some(a);
                    }
                }
                children
                    .iter()
                    .find_map(|c| c.find_handler(target_id, event))
            }
            _ => None,
        }
    }
}

/// Convenience constructors with conventional tag names.
pub mod tags {
    use super::Html;

    /// A `div` element.
    pub fn div<A>(children: Vec<Html<A>>) -> Html<A> {
        Html::node("div", children)
    }

    /// A `span` element.
    pub fn span<A>(children: Vec<Html<A>>) -> Html<A> {
        Html::node("span", children)
    }

    /// A `button` element.
    pub fn button<A>(children: Vec<Html<A>>) -> Html<A> {
        Html::node("button", children)
    }

    /// A `table` element.
    pub fn table<A>(children: Vec<Html<A>>) -> Html<A> {
        Html::node("table", children)
    }

    /// A table row.
    pub fn tr<A>(children: Vec<Html<A>>) -> Html<A> {
        Html::node("tr", children)
    }

    /// A table cell.
    pub fn td<A>(children: Vec<Html<A>>) -> Html<A> {
        Html::node("td", children)
    }
}

#[cfg(test)]
mod tests {
    use super::tags::*;
    use super::*;

    #[test]
    fn builders_compose() {
        let view: Html<u32> = div(vec![
            button(vec![Html::text("pick")])
                .attr("id", "pick-btn")
                .on_click(7),
            Html::text("hello"),
        ]);
        assert_eq!(view.size(), 4);
        assert_eq!(view.find_handler("pick-btn", EventKind::Click), Some(&7));
        assert_eq!(view.find_handler("pick-btn", EventKind::Drag), None);
        assert_eq!(view.find_handler("other", EventKind::Click), None);
    }

    #[test]
    fn map_transforms_actions_everywhere() {
        let view: Html<u32> = div(vec![
            span(vec![]).attr("id", "a").on_click(1),
            span(vec![]).attr("id", "b").on_click(2),
        ]);
        let mapped: Html<String> = view.map(&|n| format!("n{n}"));
        assert_eq!(
            mapped.find_handler("b", EventKind::Click),
            Some(&"n2".to_owned())
        );
    }

    #[test]
    fn splice_refs_collected_in_document_order() {
        let view: Html<()> = div(vec![
            Html::Editor {
                splice: SpliceRef(3),
                dim: Dim::fixed_width(20),
            },
            div(vec![Html::ResultView {
                splice: SpliceRef(1),
                dim: Dim::fixed_width(8),
            }]),
        ]);
        assert_eq!(view.splice_refs(), vec![SpliceRef(3), SpliceRef(1)]);
    }

    #[test]
    fn dim_constructors() {
        assert_eq!(Dim::fixed_width(20).height, 1);
        assert_eq!(Dim::block(40, 5).height, 5);
    }
}
