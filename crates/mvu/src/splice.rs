//! Splice references and the splice store (Secs. 3.2.1, 3.2.4).
//!
//! A livelit's GUI embeds sub-expressions — splices — which the livelit
//! refers to only *indirectly*, via splice references. The store owns the
//! actual spliced expressions and their expected types; the model persists
//! only the references. The store enforces **context independence**: a
//! splice's type and initial/updated contents must be valid "assuming only
//! the parameters and explicitly specified context" (Sec. 3.2.1), so
//! private definition-site bindings cannot leak to clients.

use std::collections::BTreeMap;
use std::fmt;

use hazel_lang::external::EExp;
use hazel_lang::internal::IExp;
use hazel_lang::typ::Typ;
use hazel_lang::typing::{ana, Ctx, TypeError};
use hazel_lang::unexpanded::{Splice, UExp};
/// A reference to a splice, opaque to the livelit.
///
/// Within livelit definitions, splice references have the object-language
/// type [`splice_ref_typ`] so they can be stored in models (which must be
/// serializable values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpliceRef(pub u64);

impl SpliceRef {
    /// Embeds the reference in a model value.
    pub fn to_value(self) -> IExp {
        IExp::Int(self.0 as i64)
    }

    /// Extracts a reference from a model value.
    pub fn from_value(d: &IExp) -> Option<SpliceRef> {
        match d {
            IExp::Int(n) if *n >= 0 => Some(SpliceRef(*n as u64)),
            _ => None,
        }
    }
}

impl fmt::Display for SpliceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The object-language type of splice references (`SpliceRef` in Fig. 3's
/// model type).
pub fn splice_ref_typ() -> Typ {
    Typ::Int
}

/// A stored splice: its expected type and current contents.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpliceInfo {
    /// The expected type, fixed when the splice is created.
    pub ty: Typ,
    /// The current spliced expression. Starts as an empty hole if no
    /// initial contents were given.
    pub content: UExp,
    /// Whether this splice is a livelit *parameter* (parameters operate
    /// like splices but are supplied at the invocation site and cannot be
    /// edited through the livelit's own GUI).
    pub is_param: bool,
}

/// A store error.
#[derive(Debug, Clone, PartialEq)]
pub enum SpliceError {
    /// The referenced splice does not exist.
    Dangling(SpliceRef),
    /// The new contents are not valid at the splice type under the allowed
    /// (definition-site) context — the context-independence check.
    Content(TypeError),
    /// Attempted to overwrite a parameter splice from the livelit GUI.
    ParamReadonly(SpliceRef),
}

impl fmt::Display for SpliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpliceError::Dangling(r) => write!(f, "dangling splice reference {r}"),
            SpliceError::Content(e) => {
                write!(f, "splice contents rejected (context independence): {e}")
            }
            SpliceError::ParamReadonly(r) => {
                write!(
                    f,
                    "splice {r} is a parameter and cannot be set by the livelit"
                )
            }
        }
    }
}

impl std::error::Error for SpliceError {}

/// The splice store for one livelit invocation.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpliceStore {
    splices: BTreeMap<SpliceRef, SpliceInfo>,
    next: u64,
    /// Hole-name counter for the implicit holes created for empty splices.
    next_hole: u64,
}

impl SpliceStore {
    /// An empty store whose generated hole names start at `hole_base`
    /// (chosen by the editor to avoid collisions with program holes).
    pub fn new(hole_base: u64) -> SpliceStore {
        SpliceStore {
            splices: BTreeMap::new(),
            next: 0,
            next_hole: hole_base,
        }
    }

    /// Creates a splice of type `ty` with optional initial contents — the
    /// `new_splice` command. Contents are checked against `ty` under
    /// `allowed_ctx` (the declared definition-site context), enforcing
    /// context independence.
    ///
    /// # Errors
    ///
    /// Returns [`SpliceError::Content`] if the initial contents are invalid.
    pub fn new_splice(
        &mut self,
        allowed_ctx: &Ctx,
        ty: Typ,
        initial: Option<EExp>,
    ) -> Result<SpliceRef, SpliceError> {
        let content = match initial {
            Some(e) => {
                ana(allowed_ctx, &e, &ty).map_err(SpliceError::Content)?;
                UExp::from_eexp(&e)
            }
            None => {
                let u = hazel_lang::HoleName(self.next_hole);
                self.next_hole += 1;
                UExp::EmptyHole(u)
            }
        };
        let r = SpliceRef(self.next);
        self.next += 1;
        self.splices.insert(
            r,
            SpliceInfo {
                ty,
                content,
                is_param: false,
            },
        );
        Ok(r)
    }

    /// Registers a parameter as a splice (done by the host when an
    /// invocation is instantiated; parameters are supplied by the client and
    /// so are checked at the *invocation* site, not here).
    pub fn new_param(&mut self, ty: Typ, content: UExp) -> SpliceRef {
        let r = SpliceRef(self.next);
        self.next += 1;
        self.splices.insert(
            r,
            SpliceInfo {
                ty,
                content,
                is_param: true,
            },
        );
        r
    }

    /// Overwrites a splice's contents — the `set_splice` command. The new
    /// expression is checked against the splice type under `allowed_ctx`.
    ///
    /// # Errors
    ///
    /// See [`SpliceError`].
    pub fn set_splice(
        &mut self,
        allowed_ctx: &Ctx,
        r: SpliceRef,
        e: EExp,
    ) -> Result<(), SpliceError> {
        let info = self.splices.get(&r).ok_or(SpliceError::Dangling(r))?;
        if info.is_param {
            return Err(SpliceError::ParamReadonly(r));
        }
        ana(allowed_ctx, &e, &info.ty).map_err(SpliceError::Content)?;
        let content = UExp::from_eexp(&e);
        self.splices.get_mut(&r).expect("checked above").content = content;
        Ok(())
    }

    /// Overwrites a splice's contents with an arbitrary unexpanded
    /// expression (used by the *editor* when the client edits a splice —
    /// client edits are typed at the invocation site, not the definition
    /// site, and may contain livelits).
    ///
    /// # Errors
    ///
    /// Returns [`SpliceError::Dangling`] for an unknown reference.
    pub fn set_splice_client(&mut self, r: SpliceRef, e: UExp) -> Result<(), SpliceError> {
        let info = self.splices.get_mut(&r).ok_or(SpliceError::Dangling(r))?;
        info.content = e;
        Ok(())
    }

    /// Removes a splice (e.g. `$dataframe` deleting a row).
    ///
    /// # Errors
    ///
    /// Returns [`SpliceError::Dangling`] for an unknown reference and
    /// [`SpliceError::ParamReadonly`] for a parameter.
    pub fn remove_splice(&mut self, r: SpliceRef) -> Result<SpliceInfo, SpliceError> {
        match self.splices.get(&r) {
            None => Err(SpliceError::Dangling(r)),
            Some(info) if info.is_param => Err(SpliceError::ParamReadonly(r)),
            Some(_) => Ok(self.splices.remove(&r).expect("checked above")),
        }
    }

    /// Restores a splice at a specific reference — used when loading a
    /// persisted program, where the model's splice references must be
    /// reconnected to the serialized splice list (Sec. 3.2.5: only the
    /// model and splices are persisted; the store is reconstructed).
    pub fn restore(&mut self, r: SpliceRef, ty: Typ, content: UExp, is_param: bool) {
        self.next = self.next.max(r.0 + 1);
        self.splices.insert(
            r,
            SpliceInfo {
                ty,
                content,
                is_param,
            },
        );
    }

    /// Looks up a splice.
    pub fn get(&self, r: SpliceRef) -> Option<&SpliceInfo> {
        self.splices.get(&r)
    }

    /// The splice list for the given references, in order — used to build
    /// the invocation's splice list from `expand`'s reference list.
    ///
    /// # Errors
    ///
    /// Returns [`SpliceError::Dangling`] if any reference is unknown.
    pub fn splice_list(&self, refs: &[SpliceRef]) -> Result<Vec<Splice>, SpliceError> {
        refs.iter()
            .map(|r| {
                self.get(*r)
                    .map(|info| Splice::new(info.content.clone(), info.ty.clone()))
                    .ok_or(SpliceError::Dangling(*r))
            })
            .collect()
    }

    /// Iterates over splices in reference order.
    pub fn iter(&self) -> impl Iterator<Item = (&SpliceRef, &SpliceInfo)> {
        self.splices.iter()
    }

    /// The number of splices (parameters included).
    pub fn len(&self) -> usize {
        self.splices.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.splices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::build::*;

    #[test]
    fn new_splice_with_initial_contents() {
        let mut store = SpliceStore::new(100);
        let r = store
            .new_splice(&Ctx::empty(), Typ::Int, Some(int(0)))
            .unwrap();
        let info = store.get(r).unwrap();
        assert_eq!(info.ty, Typ::Int);
        assert_eq!(info.content, UExp::Int(0));
        assert!(!info.is_param);
    }

    #[test]
    fn empty_splice_gets_fresh_hole() {
        let mut store = SpliceStore::new(100);
        let r1 = store.new_splice(&Ctx::empty(), Typ::Int, None).unwrap();
        let r2 = store.new_splice(&Ctx::empty(), Typ::Int, None).unwrap();
        let u1 = match &store.get(r1).unwrap().content {
            UExp::EmptyHole(u) => *u,
            other => panic!("expected hole, got {other:?}"),
        };
        let u2 = match &store.get(r2).unwrap().content {
            UExp::EmptyHole(u) => *u,
            other => panic!("expected hole, got {other:?}"),
        };
        assert_ne!(u1, u2);
        assert!(u1.0 >= 100);
    }

    #[test]
    fn context_independence_rejects_unknown_bindings() {
        // Initial contents referencing `strlen`, which is not in the
        // declared context — the Sec. 2.4.3 scenario.
        let mut store = SpliceStore::new(0);
        let err = store
            .new_splice(
                &Ctx::empty(),
                Typ::Int,
                Some(ap(var("strlen"), string("x"))),
            )
            .unwrap_err();
        assert!(matches!(err, SpliceError::Content(_)));

        // With strlen declared in the context, it is accepted.
        let ctx = Ctx::from_bindings([(
            hazel_lang::Var::new("strlen"),
            Typ::arrow(Typ::Str, Typ::Int),
        )]);
        assert!(store
            .new_splice(&ctx, Typ::Int, Some(ap(var("strlen"), string("x"))))
            .is_ok());
    }

    #[test]
    fn set_splice_checks_type() {
        let mut store = SpliceStore::new(0);
        let r = store
            .new_splice(&Ctx::empty(), Typ::Int, Some(int(0)))
            .unwrap();
        assert!(store.set_splice(&Ctx::empty(), r, int(57)).is_ok());
        assert!(matches!(
            store.set_splice(&Ctx::empty(), r, boolean(true)),
            Err(SpliceError::Content(_))
        ));
        assert_eq!(store.get(r).unwrap().content, UExp::Int(57));
    }

    #[test]
    fn params_are_readonly_to_the_livelit() {
        let mut store = SpliceStore::new(0);
        let p = store.new_param(Typ::Int, UExp::Int(0));
        assert!(matches!(
            store.set_splice(&Ctx::empty(), p, int(5)),
            Err(SpliceError::ParamReadonly(_))
        ));
        assert!(matches!(
            store.remove_splice(p),
            Err(SpliceError::ParamReadonly(_))
        ));
    }

    #[test]
    fn dangling_refs_reported() {
        let mut store = SpliceStore::new(0);
        assert!(matches!(
            store.set_splice(&Ctx::empty(), SpliceRef(9), int(1)),
            Err(SpliceError::Dangling(SpliceRef(9)))
        ));
        assert!(store.splice_list(&[SpliceRef(9)]).is_err());
    }

    #[test]
    fn splice_list_follows_reference_order() {
        let mut store = SpliceStore::new(0);
        let a = store
            .new_splice(&Ctx::empty(), Typ::Int, Some(int(1)))
            .unwrap();
        let b = store
            .new_splice(&Ctx::empty(), Typ::Bool, Some(boolean(true)))
            .unwrap();
        let list = store.splice_list(&[b, a]).unwrap();
        assert_eq!(list[0].ty, Typ::Bool);
        assert_eq!(list[1].ty, Typ::Int);
    }

    #[test]
    fn splice_ref_value_roundtrip() {
        let r = SpliceRef(42);
        assert_eq!(SpliceRef::from_value(&r.to_value()), Some(r));
        assert_eq!(SpliceRef::from_value(&IExp::Bool(true)), None);
    }

    #[test]
    fn remove_splice_supports_dynamic_splice_counts() {
        // $dataframe adds and removes rows (Sec. 2.4.2).
        let mut store = SpliceStore::new(0);
        let r = store
            .new_splice(&Ctx::empty(), Typ::Float, Some(float(80.0)))
            .unwrap();
        assert_eq!(store.len(), 1);
        let removed = store.remove_splice(r).unwrap();
        assert_eq!(removed.ty, Typ::Float);
        assert!(store.is_empty());
        assert!(matches!(
            store.remove_splice(r),
            Err(SpliceError::Dangling(_))
        ));
    }
}
