//! The pass registry: analyses run over a `(Φ, program)` pair.

use hazel_lang::typing::Ctx;
use hazel_lang::unexpanded::{LivelitAp, UExp};
use livelit_core::def::LivelitCtx;

use crate::diagnostic::{Diagnostic, Report};
use crate::passes;

/// Everything a pass may look at: the livelit context Φ, the (unexpanded)
/// program, and the typing context its free variables live in.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisInput<'a> {
    /// The livelit definitions in scope.
    pub phi: &'a LivelitCtx,
    /// The program under analysis (including any prelude bindings, already
    /// folded in as `let`s — see `Document::full_program`).
    pub program: &'a UExp,
    /// The typing context for the program's free variables (usually empty
    /// when the prelude is folded into the program).
    pub ctx: &'a Ctx,
}

/// One static analysis over an [`AnalysisInput`].
pub trait Pass {
    /// A short, stable, kebab-case name (used in `--passes` listings).
    fn name(&self) -> &'static str;
    /// Runs the pass, returning its findings in any order.
    fn run(&self, input: &AnalysisInput<'_>) -> Vec<Diagnostic>;
}

/// A registry of passes, run in registration order over one input.
#[derive(Default)]
pub struct Analyzer {
    passes: Vec<Box<dyn Pass>>,
}

impl Analyzer {
    /// An analyzer with no passes.
    pub fn new() -> Analyzer {
        Analyzer::default()
    }

    /// An analyzer with the five standard passes: hygiene, splice
    /// discipline, hole audit, definition lints, and expansion determinism.
    pub fn with_default_passes() -> Analyzer {
        let mut analyzer = Analyzer::new();
        analyzer.register(Box::new(passes::hygiene::Hygiene));
        analyzer.register(Box::new(passes::splices::SpliceDiscipline));
        analyzer.register(Box::new(passes::holes::HoleAudit));
        analyzer.register(Box::new(passes::definitions::DefinitionLints));
        analyzer.register(Box::new(passes::determinism::Determinism));
        analyzer
    }

    /// Adds a pass to the registry.
    pub fn register(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// The registered pass names, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass and collects the findings into a deterministic
    /// [`Report`].
    pub fn analyze(&self, input: &AnalysisInput<'_>) -> Report {
        let _span = livelit_trace::span("analysis.run");
        let mut diagnostics = Vec::new();
        for pass in &self.passes {
            let _span = livelit_trace::span_prefixed("analysis.pass.", pass.name());
            diagnostics.extend(pass.run(input));
        }
        Report::from_diagnostics(diagnostics)
    }
}

impl std::fmt::Debug for Analyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analyzer")
            .field("passes", &self.pass_names())
            .finish()
    }
}

/// Runs the invocation-scoped analyses (hygiene, splice discipline,
/// determinism) for a single livelit invocation.
///
/// This is the unit of incremental recomputation: the findings depend only
/// on `(Φ, ap)`, so an editor can cache them per hole and recompute only
/// the invocations an edit actually touched.
pub fn analyze_invocation(phi: &LivelitCtx, ap: &LivelitAp) -> Vec<Diagnostic> {
    let _span = livelit_trace::span("analysis.invocation");
    let mut out = Vec::new();
    {
        let _span = livelit_trace::span("analysis.pass.hygiene");
        out.extend(passes::hygiene::check_invocation(phi, ap));
    }
    {
        let _span = livelit_trace::span("analysis.pass.splice-discipline");
        out.extend(passes::splices::check_invocation(phi, ap));
    }
    {
        let _span = livelit_trace::span("analysis.pass.determinism");
        out.extend(passes::determinism::check_invocation(phi, ap));
    }
    out
}
