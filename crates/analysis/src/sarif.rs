//! SARIF 2.1.0 export for analysis reports.
//!
//! Emits a single-run SARIF log with one reporting rule per stable lint
//! code and one result per diagnostic, suitable for upload to code
//! scanning UIs. The output is fully deterministic — rules in code
//! order, results in report order, all keys in fixed order — so goldens
//! can byte-diff it. Hand-written like [`crate::diagnostic::Report::to_json`]
//! to keep the default build dependency-free.

use crate::diagnostic::{json_string, Code, Diagnostic, Location, Report, Severity};

/// The SARIF `level` for a severity.
fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

/// A stable logical-location name for a diagnostic's location.
fn logical_name(location: &Location) -> String {
    location.to_string()
}

/// Renders `report` as a SARIF 2.1.0 log.
pub fn to_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"hazel-analyze\",\n");
    out.push_str("          \"informationUri\": \"https://hazel.org\",\n          \"rules\": [\n");
    for (i, code) in Code::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("            {\"id\": ");
        json_string(&mut out, code.as_str());
        out.push_str(", \"shortDescription\": {\"text\": ");
        json_string(&mut out, code.title());
        out.push_str("}, \"helpUri\": ");
        json_string(
            &mut out,
            &format!("https://hazel.org/livelits/lints#{}", code.as_str()),
        );
        out.push_str(", \"properties\": {\"paperSection\": ");
        json_string(&mut out, code.paper_section());
        out.push_str("}}");
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in report.diagnostics().iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        result(&mut out, d);
    }
    if report.diagnostics().is_empty() {
        out.push_str("      ]\n    }\n  ]\n}\n");
    } else {
        out.push_str("\n      ]\n    }\n  ]\n}\n");
    }
    out
}

fn result(out: &mut String, d: &Diagnostic) {
    out.push_str("        {\"ruleId\": ");
    json_string(out, d.code.as_str());
    out.push_str(", \"level\": ");
    json_string(out, level(d.severity));
    out.push_str(", \"message\": {\"text\": ");
    let mut message = d.message.clone();
    for note in &d.notes {
        message.push_str("\n note: ");
        message.push_str(note);
    }
    json_string(out, &message);
    out.push_str("}, \"locations\": [{\"logicalLocations\": [{\"fullyQualifiedName\": ");
    json_string(out, &logical_name(&d.location));
    out.push_str("}]}]}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::{Diagnostic, Location, Severity};
    use hazel_lang::ident::HoleName;

    #[test]
    fn sarif_log_is_deterministic_and_well_shaped() {
        let report = Report::from_diagnostics(vec![
            Diagnostic::new(
                Code::DeadSplice,
                Severity::Warning,
                Location::Splice {
                    hole: HoleName(3),
                    index: 0,
                },
                "splice 0 is dead",
            ),
            Diagnostic::new(
                Code::UnusedBinding,
                Severity::Warning,
                Location::Program,
                "binding `x` is never used",
            ),
        ]);
        let a = to_sarif(&report);
        let b = to_sarif(&report);
        assert_eq!(a, b);
        assert!(a.contains("\"version\": \"2.1.0\""));
        assert!(a.contains("\"ruleId\": \"LL0101\""));
        assert!(a.contains("\"ruleId\": \"LL0501\""));
        // Every stable code is declared as a rule.
        for code in Code::ALL {
            assert!(a.contains(&format!("\"id\": \"{}\"", code.as_str())));
        }
    }

    #[test]
    fn empty_report_is_valid_sarif() {
        let s = to_sarif(&Report::new());
        assert!(s.contains("\"results\": [\n      ]"));
    }
}
