//! `livelit-analysis`: static diagnostics for livelit programs.
//!
//! The paper's `ELivelit` rule (Fig. 5) checks each livelit invocation at
//! expansion time; Hazel surfaces failures as marked holes (Sec. 5.1).
//! This crate turns those checks — plus the disciplines the paper states
//! but does not mechanize — into a batch analysis engine with stable lint
//! codes:
//!
//! - **hygiene** ([`passes::hygiene`]): every `ELivelit` premise, per
//!   invocation, `LL0001`–`LL0008`;
//! - **splice discipline** ([`passes::splices`]): dead and duplicated
//!   splice references against the evaluated-once rule (Sec. 3.2.3),
//!   `LL0101`/`LL0102`;
//! - **hole audit** ([`passes::holes`]): the remaining-hole inventory from
//!   Δ with expected types and environments (Sec. 4.1),
//!   `LL0201`–`LL0203`;
//! - **definition lints** ([`passes::definitions`]): well-formedness,
//!   first-order models, closed expansion types, naming (Def. 4.3,
//!   Sec. 3.1), `LL0301`–`LL0304`;
//! - **determinism** ([`passes::determinism`]): expand-twice-and-diff for
//!   impure native expansion functions (Sec. 3.2.5), `LL0401` — gated by
//!   the static purity verdict below, so it runs only on the residue the
//!   static analysis cannot prove;
//! - **dataflow** ([`flow`]): the demand-driven incremental framework
//!   over the hash-consed term store — reachability/liveness `LL05xx`,
//!   static expansion purity `LL06xx`, and hole-context facts `LL07xx` —
//!   with per-definition dirty-set invalidation and deterministic
//!   parallel fan-out ([`flow::FlowAnalyzer`]).
//!
//! # Example
//!
//! ```
//! use hazel_lang::{Ctx, HoleName, IExp, LivelitAp, Typ, UExp};
//! use livelit_core::def::{LivelitCtx, LivelitDef};
//! use livelit_analysis::{AnalysisInput, Analyzer, Code};
//!
//! // A livelit whose expansion leaks a variable from the client's scope.
//! let mut phi = LivelitCtx::new();
//! phi.define(LivelitDef::native("$leaky", vec![], Typ::Int, Typ::Unit,
//!     |_| Ok(hazel_lang::build::var("client_secret"))))?;
//! let program = UExp::Livelit(Box::new(LivelitAp {
//!     name: "$leaky".into(),
//!     model: IExp::Unit,
//!     splices: vec![],
//!     hole: HoleName(0),
//! }));
//!
//! let report = Analyzer::with_default_passes().analyze(&AnalysisInput {
//!     phi: &phi,
//!     program: &program,
//!     ctx: &Ctx::empty(),
//! });
//! assert!(report.codes().contains(&Code::NotClosed)); // LL0004
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analyzer;
pub mod diagnostic;
pub mod flow;
pub mod passes;
pub mod sarif;

pub use analyzer::{analyze_invocation, AnalysisInput, Analyzer, Pass};
pub use diagnostic::{json_string, Code, Diagnostic, Location, Report, Severity};
pub use flow::{FlowAnalyzer, FlowUnit};
pub use passes::definitions::{definition_errors, lint_def};
