//! Splice discipline: each splice should be referenced exactly once.
//!
//! "Each splice is evaluated exactly once" (Sec. 3.2.3) is the cost and
//! effect discipline clients rely on. A splice the expansion never
//! references is *dead* — it is editable in the GUI but its edits cannot
//! change the program's meaning. A splice referenced more than once either
//! duplicates work or, under effects, duplicates effects.

use hazel_lang::external::EExp;
use hazel_lang::ident::Var;
use hazel_lang::unexpanded::LivelitAp;
use livelit_core::def::LivelitCtx;

use crate::analyzer::{AnalysisInput, Pass};
use crate::diagnostic::Diagnostic;

/// The splice-discipline pass.
pub struct SpliceDiscipline;

impl Pass for SpliceDiscipline {
    fn name(&self) -> &'static str {
        "splice-discipline"
    }

    fn run(&self, input: &AnalysisInput<'_>) -> Vec<Diagnostic> {
        input
            .program
            .livelit_aps()
            .into_iter()
            .flat_map(|ap| check_invocation(input.phi, ap))
            .collect()
    }
}

/// Checks the evaluated-once discipline for one invocation.
///
/// The reference counts are read off the splice-reference graph built
/// over the hash-consed expansion skeleton
/// ([`crate::flow::splice_graph`]): all splices of an invocation are
/// classified by one memoized bottom-up pass instead of a per-splice
/// recursive walk.
pub fn check_invocation(phi: &LivelitCtx, ap: &LivelitAp) -> Vec<Diagnostic> {
    crate::flow::splice_graph::check_invocation(phi, ap)
}

/// Counts free occurrences of `x` in `e`, respecting shadowing.
///
/// Retained as the independent reference implementation the
/// splice-graph counts are cross-checked against in tests.
#[cfg_attr(not(test), allow(dead_code))]
fn count_free_occurrences(e: &EExp, x: &Var) -> usize {
    use EExp::*;
    match e {
        Var(y) => usize::from(y == x),
        Int(_) | Float(_) | Bool(_) | Str(_) | Unit | Nil(_) | EmptyHole(_) => 0,
        Lam(y, _, body) | Fix(y, _, body) => {
            if y == x {
                0
            } else {
                count_free_occurrences(body, x)
            }
        }
        Let(y, _, def, body) => {
            count_free_occurrences(def, x)
                + if y == x {
                    0
                } else {
                    count_free_occurrences(body, x)
                }
        }
        Ap(a, b) | Bin(_, a, b) | Cons(a, b) => {
            count_free_occurrences(a, x) + count_free_occurrences(b, x)
        }
        If(c, t, e) => {
            count_free_occurrences(c, x)
                + count_free_occurrences(t, x)
                + count_free_occurrences(e, x)
        }
        Tuple(fields) => fields
            .iter()
            .map(|(_, e)| count_free_occurrences(e, x))
            .sum(),
        Proj(e, _) | Inj(_, _, e) | Roll(_, e) | Unroll(e) | Asc(e, _) | NonEmptyHole(_, e) => {
            count_free_occurrences(e, x)
        }
        Case(scrut, arms) => {
            count_free_occurrences(scrut, x)
                + arms
                    .iter()
                    .map(|arm| {
                        if arm.var == *x {
                            0
                        } else {
                            count_free_occurrences(&arm.body, x)
                        }
                    })
                    .sum::<usize>()
        }
        ListCase(scrut, nil, h, t, cons) => {
            count_free_occurrences(scrut, x)
                + count_free_occurrences(nil, x)
                + if h == x || t == x {
                    0
                } else {
                    count_free_occurrences(cons, x)
                }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::build::*;
    use hazel_lang::typ::Typ;

    #[test]
    fn counting_respects_shadowing() {
        // fun x -> x + x counts x twice inside, but the binder shadows.
        let inner = lam("x", Typ::Int, add(var("x"), var("x")));
        assert_eq!(count_free_occurrences(&inner, &Var::new("x")), 0);
        let open = add(var("x"), var("x"));
        assert_eq!(count_free_occurrences(&open, &Var::new("x")), 2);
        let letbound = EExp::Let(Var::new("x"), None, Box::new(var("x")), Box::new(var("x")));
        // The definition occurrence is free; the body occurrence is bound.
        assert_eq!(count_free_occurrences(&letbound, &Var::new("x")), 1);
    }
}
