//! Splice discipline: each splice should be referenced exactly once.
//!
//! "Each splice is evaluated exactly once" (Sec. 3.2.3) is the cost and
//! effect discipline clients rely on. A splice the expansion never
//! references is *dead* — it is editable in the GUI but its edits cannot
//! change the program's meaning. A splice referenced more than once either
//! duplicates work or, under effects, duplicates effects.

use hazel_lang::external::EExp;
use hazel_lang::ident::Var;
use hazel_lang::unexpanded::LivelitAp;
use livelit_core::def::LivelitCtx;
use livelit_core::expansion::expand_invocation;

use crate::analyzer::{AnalysisInput, Pass};
use crate::diagnostic::{Code, Diagnostic, Location, Severity};

/// The splice-discipline pass.
pub struct SpliceDiscipline;

impl Pass for SpliceDiscipline {
    fn name(&self) -> &'static str {
        "splice-discipline"
    }

    fn run(&self, input: &AnalysisInput<'_>) -> Vec<Diagnostic> {
        input
            .program
            .livelit_aps()
            .into_iter()
            .flat_map(|ap| check_invocation(input.phi, ap))
            .collect()
    }
}

/// Checks the evaluated-once discipline for one invocation.
///
/// The validated parameterized expansion has curried type
/// `{τi}^(i<n) → τ_expand`; when it is syntactically a chain of lambdas,
/// each lambda binder stands for one splice, and counting its free
/// occurrences in the remaining body classifies the splice as dead
/// (0 occurrences) or duplicated (2+). Expansions that are not syntactic
/// lambda chains (e.g. produced by an application) are skipped — the
/// discipline cannot be read off their syntax.
pub fn check_invocation(phi: &LivelitCtx, ap: &LivelitAp) -> Vec<Diagnostic> {
    let Ok(pe) = expand_invocation(phi, ap) else {
        return Vec::new();
    };
    let name = &ap.name;
    let mut out = Vec::new();
    let mut body = &pe.pexpansion;
    for index in 0..ap.splices.len() {
        let EExp::Lam(x, _, inner) = body else {
            break;
        };
        body = inner;
        let count = count_free_occurrences(body, x);
        let location = Location::Splice {
            hole: ap.hole,
            index,
        };
        if count == 0 {
            out.push(
                Diagnostic::new(
                    Code::DeadSplice,
                    Severity::Warning,
                    location,
                    format!(
                        "splice {index} of {name} is never referenced by the expansion; \
                         edits to it cannot affect the result"
                    ),
                )
                .with_note("splices are evaluated exactly once (Sec. 3.2.3)".to_string()),
            );
        } else if count > 1 {
            out.push(
                Diagnostic::new(
                    Code::DuplicatedSplice,
                    Severity::Warning,
                    location,
                    format!(
                        "splice {index} of {name} is referenced {count} times by the \
                         expansion; splices should be referenced exactly once"
                    ),
                )
                .with_note("splices are evaluated exactly once (Sec. 3.2.3)".to_string()),
            );
        }
    }
    out
}

/// Counts free occurrences of `x` in `e`, respecting shadowing.
fn count_free_occurrences(e: &EExp, x: &Var) -> usize {
    use EExp::*;
    match e {
        Var(y) => usize::from(y == x),
        Int(_) | Float(_) | Bool(_) | Str(_) | Unit | Nil(_) | EmptyHole(_) => 0,
        Lam(y, _, body) | Fix(y, _, body) => {
            if y == x {
                0
            } else {
                count_free_occurrences(body, x)
            }
        }
        Let(y, _, def, body) => {
            count_free_occurrences(def, x)
                + if y == x {
                    0
                } else {
                    count_free_occurrences(body, x)
                }
        }
        Ap(a, b) | Bin(_, a, b) | Cons(a, b) => {
            count_free_occurrences(a, x) + count_free_occurrences(b, x)
        }
        If(c, t, e) => {
            count_free_occurrences(c, x)
                + count_free_occurrences(t, x)
                + count_free_occurrences(e, x)
        }
        Tuple(fields) => fields
            .iter()
            .map(|(_, e)| count_free_occurrences(e, x))
            .sum(),
        Proj(e, _) | Inj(_, _, e) | Roll(_, e) | Unroll(e) | Asc(e, _) | NonEmptyHole(_, e) => {
            count_free_occurrences(e, x)
        }
        Case(scrut, arms) => {
            count_free_occurrences(scrut, x)
                + arms
                    .iter()
                    .map(|arm| {
                        if arm.var == *x {
                            0
                        } else {
                            count_free_occurrences(&arm.body, x)
                        }
                    })
                    .sum::<usize>()
        }
        ListCase(scrut, nil, h, t, cons) => {
            count_free_occurrences(scrut, x)
                + count_free_occurrences(nil, x)
                + if h == x || t == x {
                    0
                } else {
                    count_free_occurrences(cons, x)
                }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::build::*;
    use hazel_lang::typ::Typ;

    #[test]
    fn counting_respects_shadowing() {
        // fun x -> x + x counts x twice inside, but the binder shadows.
        let inner = lam("x", Typ::Int, add(var("x"), var("x")));
        assert_eq!(count_free_occurrences(&inner, &Var::new("x")), 0);
        let open = add(var("x"), var("x"));
        assert_eq!(count_free_occurrences(&open, &Var::new("x")), 2);
        let letbound = EExp::Let(Var::new("x"), None, Box::new(var("x")), Box::new(var("x")));
        // The definition occurrence is free; the body occurrence is bound.
        assert_eq!(count_free_occurrences(&letbound, &Var::new("x")), 1);
    }
}
