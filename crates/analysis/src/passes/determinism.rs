//! Expansion determinism: `expand` must be a pure function of the model.
//!
//! Object-language expansion functions are pure by construction, but
//! native ones are arbitrary host code (Sec. 3.2.5 — the definition of
//! `expand` is trusted, not checked). Expanding the same invocation twice
//! and diffing the results catches the common failure: an expansion that
//! depends on ambient state, so the program's meaning changes between
//! edits without any edit to the model.
//!
//! The dynamic check is gated by the static purity verdict
//! ([`crate::flow::purity`]): an invocation whose livelit is proven or
//! attested pure skips the double expansion entirely (counted by
//! `Counter::FlowDeterminismSkips`), so the dynamic check runs only on
//! the residue the static analysis cannot discharge. That residue also
//! gets an informational `LL0601` noting why it is still being
//! spot-checked.

use hazel_lang::unexpanded::LivelitAp;
use livelit_core::def::LivelitCtx;
use livelit_core::expansion::expand_invocation_uncached;
use livelit_trace::Counter;

use crate::analyzer::{AnalysisInput, Pass};
use crate::diagnostic::{Code, Diagnostic, Location, Severity};
use crate::flow::purity;

/// The determinism pass.
pub struct Determinism;

impl Pass for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn run(&self, input: &AnalysisInput<'_>) -> Vec<Diagnostic> {
        input
            .program
            .livelit_aps()
            .into_iter()
            .flat_map(|ap| check_invocation(input.phi, ap))
            .collect()
    }
}

/// Expands one invocation twice and flags any difference. Uses the
/// uncached entry point: served from the expansion cache, the second
/// expansion would trivially equal the first.
///
/// Invocations whose livelit is statically proven (or attested) pure
/// skip the double expansion; only the `LL06xx` residue is checked, and
/// it is additionally marked with an informational `LL0601`.
pub fn check_invocation(phi: &LivelitCtx, ap: &LivelitAp) -> Vec<Diagnostic> {
    if let Some(def) = phi.get(&ap.name) {
        if purity::infer_def(def).is_deterministic() {
            livelit_trace::count(Counter::FlowDeterminismSkips, 1);
            return Vec::new();
        }
    }
    let mut out = vec![Diagnostic::new(
        Code::PurityUnknown,
        Severity::Info,
        Location::Livelit(ap.name.clone()),
        format!(
            "{} has no static purity evidence; its expansion determinism is \
             checked dynamically (expand twice and diff)",
            ap.name
        ),
    )
    .with_note(
        "provide an object-language expansion function or attest purity \
         to discharge this check statically (LL06xx)"
            .to_string(),
    )];
    let (Ok(first), Ok(second)) = (
        expand_invocation_uncached(phi, ap),
        expand_invocation_uncached(phi, ap),
    ) else {
        return out;
    };
    if first == second {
        return out;
    }
    out.push(
        Diagnostic::new(
            Code::ImpureExpansion,
            Severity::Error,
            Location::Hole(ap.hole),
            format!(
                "{}: expanding the same model twice produced different expansions; \
                 expand must be a pure function of the model",
                ap.name
            ),
        )
        .with_note(format!(
            "first:  {}",
            hazel_lang::pretty::print_eexp(&first.pexpansion, 60)
        ))
        .with_note(format!(
            "second: {}",
            hazel_lang::pretty::print_eexp(&second.pexpansion, 60)
        )),
    );
    out
}
