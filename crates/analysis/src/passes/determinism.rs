//! Expansion determinism: `expand` must be a pure function of the model.
//!
//! Object-language expansion functions are pure by construction, but
//! native ones are arbitrary host code (Sec. 3.2.5 — the definition of
//! `expand` is trusted, not checked). Expanding the same invocation twice
//! and diffing the results catches the common failure: an expansion that
//! depends on ambient state, so the program's meaning changes between
//! edits without any edit to the model.

use hazel_lang::unexpanded::LivelitAp;
use livelit_core::def::LivelitCtx;
use livelit_core::expansion::expand_invocation_uncached;

use crate::analyzer::{AnalysisInput, Pass};
use crate::diagnostic::{Code, Diagnostic, Location, Severity};

/// The determinism pass.
pub struct Determinism;

impl Pass for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn run(&self, input: &AnalysisInput<'_>) -> Vec<Diagnostic> {
        input
            .program
            .livelit_aps()
            .into_iter()
            .flat_map(|ap| check_invocation(input.phi, ap))
            .collect()
    }
}

/// Expands one invocation twice and flags any difference. Uses the
/// uncached entry point: served from the expansion cache, the second
/// expansion would trivially equal the first.
pub fn check_invocation(phi: &LivelitCtx, ap: &LivelitAp) -> Vec<Diagnostic> {
    let (Ok(first), Ok(second)) = (
        expand_invocation_uncached(phi, ap),
        expand_invocation_uncached(phi, ap),
    ) else {
        return Vec::new();
    };
    if first == second {
        return Vec::new();
    }
    vec![Diagnostic::new(
        Code::ImpureExpansion,
        Severity::Error,
        Location::Hole(ap.hole),
        format!(
            "{}: expanding the same model twice produced different expansions; \
             expand must be a pure function of the model",
            ap.name
        ),
    )
    .with_note(format!(
        "first:  {}",
        hazel_lang::pretty::print_eexp(&first.pexpansion, 60)
    ))
    .with_note(format!(
        "second: {}",
        hazel_lang::pretty::print_eexp(&second.pexpansion, 60)
    ))]
}
