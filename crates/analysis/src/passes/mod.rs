//! The standard analysis passes.

pub mod definitions;
pub mod determinism;
pub mod holes;
pub mod hygiene;
pub mod splices;
