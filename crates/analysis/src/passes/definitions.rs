//! Livelit-definition lints, run over Φ (and, by the editor, at
//! registration time instead of panicking).

use hazel_lang::typ::Typ;
use livelit_core::def::LivelitDef;

use crate::analyzer::{AnalysisInput, Pass};
use crate::diagnostic::{Code, Diagnostic, Location, Severity};

/// The definition-lint pass: every definition in Φ is linted.
pub struct DefinitionLints;

impl Pass for DefinitionLints {
    fn name(&self) -> &'static str {
        "definition-lints"
    }

    fn run(&self, input: &AnalysisInput<'_>) -> Vec<Diagnostic> {
        input
            .phi
            .iter()
            .flat_map(|(_, def)| lint_def(def))
            .collect()
    }
}

/// Lints one livelit definition.
///
/// Returns, in order of discovery:
///
/// - [`Code::IllFormedDefinition`] when the object-language expansion
///   function is not of type `τ_model → Exp` (Def. 4.3),
/// - [`Code::NonFirstOrderModel`] when the model type contains functions
///   or free type variables — models must round-trip through the source
///   text (Sec. 3.1),
/// - [`Code::OpenExpansionType`] when the expansion type has free type
///   variables (Sec. 2.3),
/// - [`Code::NameConvention`] when the name is not `$lower_snake_case`
///   (Sec. 2.2).
pub fn lint_def(def: &LivelitDef) -> Vec<Diagnostic> {
    let location = Location::Livelit(def.name.clone());
    let mut out = Vec::new();

    if let Err(e) = def.check_well_formed() {
        out.push(
            Diagnostic::new(
                Code::IllFormedDefinition,
                Severity::Error,
                location.clone(),
                format!(
                    "{}: expansion function is not of type {} -> Exp",
                    def.name, def.model_ty
                ),
            )
            .with_note(format!("{e}")),
        );
    }

    if !is_first_order(&def.model_ty) {
        out.push(
            Diagnostic::new(
                Code::NonFirstOrderModel,
                Severity::Error,
                location.clone(),
                format!(
                    "{}: model type {} is not first-order serializable data",
                    def.name, def.model_ty
                ),
            )
            .with_note(
                "models persist in the source text, so they cannot contain \
                 functions or open types (Sec. 3.1)"
                    .to_string(),
            ),
        );
    }

    if !def.expansion_ty.is_closed() {
        out.push(Diagnostic::new(
            Code::OpenExpansionType,
            Severity::Error,
            location.clone(),
            format!(
                "{}: expansion type {} has free type variables; clients cannot \
                 reason abstractly about the invocation's type",
                def.name, def.expansion_ty
            ),
        ));
    }

    if !name_follows_convention(def.name.as_str()) {
        out.push(
            Diagnostic::new(
                Code::NameConvention,
                Severity::Warning,
                location,
                format!(
                    "{}: livelit names are conventionally $lower_snake_case",
                    def.name
                ),
            )
            .with_note("expected: a lowercase ASCII letter, then [a-z0-9_]*".to_string()),
        );
    }

    out
}

/// Whether every error-severity lint passes — the registration gate.
pub fn definition_errors(def: &LivelitDef) -> Vec<Diagnostic> {
    lint_def(def)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

/// Whether a type is first-order serializable data: no functions anywhere,
/// and no free type variables.
pub fn is_first_order(ty: &Typ) -> bool {
    ty.is_closed() && has_no_arrows(ty)
}

fn has_no_arrows(ty: &Typ) -> bool {
    match ty {
        Typ::Int | Typ::Float | Typ::Bool | Typ::Str | Typ::Unit | Typ::Var(_) => true,
        Typ::Arrow(_, _) => false,
        Typ::Prod(fields) | Typ::Sum(fields) => fields.iter().all(|(_, t)| has_no_arrows(t)),
        Typ::List(t) | Typ::Rec(_, t) => has_no_arrows(t),
    }
}

/// The `$lower_snake_case` convention: the part after `$` starts with a
/// lowercase ASCII letter and continues with lowercase letters, digits,
/// and underscores.
fn name_follows_convention(bare: &str) -> bool {
    let mut chars = bare.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_order_types() {
        assert!(is_first_order(&Typ::Int));
        assert!(is_first_order(&Typ::prod([
            (hazel_lang::ident::Label::new("r"), Typ::Int),
            (hazel_lang::ident::Label::new("g"), Typ::Int),
        ])));
        assert!(is_first_order(&Typ::list(Typ::Float)));
        assert!(!is_first_order(&Typ::arrow(Typ::Int, Typ::Int)));
        assert!(!is_first_order(&Typ::list(Typ::arrow(Typ::Int, Typ::Int))));
        // A free type variable is not serializable data.
        assert!(!is_first_order(&Typ::Var("t".into())));
        // A closed recursive type of data is fine.
        assert!(is_first_order(&Typ::rec(
            "t",
            Typ::sum([
                (hazel_lang::ident::Label::new("Leaf"), Typ::Int),
                (hazel_lang::ident::Label::new("Node"), Typ::Var("t".into())),
            ])
        )));
    }

    #[test]
    fn name_conventions() {
        assert!(name_follows_convention("slider"));
        assert!(name_follows_convention("grade_cutoffs"));
        assert!(name_follows_convention("v2"));
        assert!(!name_follows_convention("Slider"));
        assert!(!name_follows_convention("2d"));
        assert!(!name_follows_convention(""));
        assert!(!name_follows_convention("計"));
    }
}
