//! Hygiene and capture validation: every `ELivelit` premise, statically.
//!
//! Each livelit invocation is run through `expand_invocation` (premises
//! 1–5 of `ELivelit`, Fig. 5) and any failure is mapped to a stable code.
//! When every invocation validates, the whole program is expanded and type
//! checked so splice type errors under the invocation-site Γ (premise 6)
//! surface too.

use hazel_lang::unexpanded::{LivelitAp, UExp};
use livelit_core::def::LivelitCtx;
use livelit_core::expansion::{expand_invocation, ExpandError};

use crate::analyzer::{AnalysisInput, Pass};
use crate::diagnostic::{Code, Diagnostic, Location, Severity};

/// The hygiene pass.
pub struct Hygiene;

impl Pass for Hygiene {
    fn name(&self) -> &'static str {
        "hygiene"
    }

    fn run(&self, input: &AnalysisInput<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut all_ok = true;
        for ap in input.program.livelit_aps() {
            let found = check_invocation(input.phi, ap);
            all_ok &= found.is_empty();
            out.extend(found);
        }
        // Premise 6: splices must have their declared types under the
        // invocation-site Γ. Only meaningful once every invocation's own
        // premises hold (otherwise expansion stops at the earlier failure).
        if all_ok {
            if let Err(ExpandError::Type(e)) =
                livelit_core::expansion::expand_typed(input.phi, input.ctx, input.program)
            {
                out.push(Diagnostic::new(
                    Code::SpliceType,
                    Severity::Error,
                    Location::Program,
                    format!("program does not type check after expansion: {e}"),
                ));
            }
        }
        out
    }
}

/// Checks premises 1–5 of `ELivelit` for one invocation.
pub fn check_invocation(phi: &LivelitCtx, ap: &LivelitAp) -> Vec<Diagnostic> {
    match expand_invocation(phi, ap) {
        Ok(_) => Vec::new(),
        Err(e) => vec![diagnose_expand_error(ap, &e)],
    }
}

/// Maps an [`ExpandError`] for the invocation at `ap.hole` to a diagnostic
/// with a stable code.
pub fn diagnose_expand_error(ap: &LivelitAp, error: &ExpandError) -> Diagnostic {
    let hole = Location::Hole(ap.hole);
    match error {
        ExpandError::UnboundLivelit(name) => Diagnostic::new(
            Code::UnboundLivelit,
            Severity::Error,
            hole,
            format!("livelit {name} is not registered"),
        ),
        ExpandError::ModelType { livelit, expected } => Diagnostic::new(
            Code::ModelType,
            Severity::Error,
            hole,
            format!("{livelit}: model value is not of the declared model type"),
        )
        .with_note(format!("declared model type: {expected}")),
        ExpandError::ExpandEval { livelit, error } => Diagnostic::new(
            Code::ExpandFailure,
            Severity::Error,
            hole,
            format!("{livelit}: expansion function failed to evaluate: {error}"),
        ),
        ExpandError::NativeExpand { livelit, message } => Diagnostic::new(
            Code::ExpandFailure,
            Severity::Error,
            hole,
            format!("{livelit}: expansion function failed: {message}"),
        ),
        ExpandError::Decode { livelit, error } => Diagnostic::new(
            Code::ExpandFailure,
            Severity::Error,
            hole,
            format!("{livelit}: encoded expansion failed to decode: {error}"),
        ),
        ExpandError::NotClosed { livelit, free } => {
            let mut d = Diagnostic::new(
                Code::NotClosed,
                Severity::Error,
                hole,
                format!(
                    "{livelit}: expansion is not context-independent; it captures \
                     variable(s) from the invocation site"
                ),
            );
            for x in free {
                d = d.with_note(format!("captured: {x}"));
            }
            d
        }
        ExpandError::Validation {
            livelit,
            expected,
            error,
        } => Diagnostic::new(
            Code::ExpansionType,
            Severity::Error,
            hole,
            format!("{livelit}: parameterized expansion is not of type {expected}"),
        )
        .with_note(format!("{error}")),
        ExpandError::MissingParameters {
            livelit,
            declared,
            supplied,
        } => Diagnostic::new(
            Code::MissingParameters,
            Severity::Error,
            hole,
            format!(
                "{livelit} declares {declared} parameter(s) but only {supplied} \
                 splice(s) were supplied"
            ),
        ),
        ExpandError::ParameterType {
            livelit,
            index,
            expected,
            found,
        } => Diagnostic::new(
            Code::ParameterType,
            Severity::Error,
            Location::Splice {
                hole: ap.hole,
                index: *index,
            },
            format!("{livelit}: parameter {index} has type {found}, expected {expected}"),
        ),
        ExpandError::Type(e) => Diagnostic::new(
            Code::SpliceType,
            Severity::Error,
            hole,
            format!("splice does not type check: {e}"),
        ),
    }
}

/// Replaces livelit invocations that fail expansion with ascribed empty
/// holes, returning the neutralized program and the affected hole names.
///
/// This is how the editor stays live (Sec. 5.1): failed invocations become
/// (non-empty) holes at their expansion type, and the rest of the program
/// keeps its meaning. Invocations of unbound livelits have no known
/// expansion type and become bare holes.
pub fn neutralize_failed_invocations(
    phi: &LivelitCtx,
    program: &UExp,
) -> (UExp, Vec<hazel_lang::ident::HoleName>) {
    let mut failed = Vec::new();
    let neutralized = program.map(&mut |e| match e {
        UExp::Livelit(ap) if expand_invocation(phi, &ap).is_err() => {
            failed.push(ap.hole);
            let hole = UExp::EmptyHole(ap.hole);
            match phi.get(&ap.name) {
                Some(def) => UExp::Asc(Box::new(hole), def.expansion_ty.clone()),
                None => hole,
            }
        }
        other => other,
    });
    failed.sort_unstable();
    failed.dedup();
    (neutralized, failed)
}
