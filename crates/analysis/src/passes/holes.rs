//! Hole audit: what holes remain, at what types, in which environments,
//! and which livelits (if any) could fill them.
//!
//! The hole context Δ assigns every remaining hole an expected type and a
//! typing environment (Sec. 4.1). The audit surfaces that inventory, flags
//! holes no registered livelit can fill (by expansion type, Sec. 2.3), and
//! notes invocations that will be marked as non-empty holes (Sec. 5.1).

use livelit_core::expansion::expand_typed;

use crate::analyzer::{AnalysisInput, Pass};
use crate::diagnostic::{Code, Diagnostic, Location, Severity};
use crate::passes::hygiene::neutralize_failed_invocations;

/// How many in-scope bindings a hole-inventory note lists before eliding.
const MAX_CTX_NOTES: usize = 8;

/// The hole-audit pass.
pub struct HoleAudit;

impl Pass for HoleAudit {
    fn name(&self) -> &'static str {
        "hole-audit"
    }

    fn run(&self, input: &AnalysisInput<'_>) -> Vec<Diagnostic> {
        let mut out = Vec::new();

        // Stay live in the face of failing invocations, exactly as the
        // editor does: replace them with ascribed holes and audit the rest.
        let (neutralized, failed) = neutralize_failed_invocations(input.phi, input.program);
        for u in &failed {
            out.push(Diagnostic::new(
                Code::NonEmptyHole,
                Severity::Info,
                Location::Hole(*u),
                "this invocation is marked as a non-empty hole; the rest of the \
                 program stays live"
                    .to_string(),
            ));
        }

        // Holes consumed by (successful) livelit invocations are filled;
        // the ones left in Δ after expansion are genuinely open.
        let livelit_holes: std::collections::BTreeSet<_> = neutralized
            .livelit_aps()
            .iter()
            .map(|ap| ap.hole)
            .chain(failed.iter().copied())
            .collect();

        let Ok((_, _, delta)) = expand_typed(input.phi, input.ctx, &neutralized) else {
            // The program does not type check even with failures
            // neutralized; the hygiene pass reports why.
            return out;
        };

        for (u, hyp) in delta.iter() {
            if livelit_holes.contains(u) {
                continue;
            }
            let mut inventory = Diagnostic::new(
                Code::HoleInventory,
                Severity::Info,
                Location::Hole(*u),
                format!("empty hole of type {}", hyp.ty),
            );
            let mut bindings: Vec<String> = hyp
                .ctx
                .iter()
                .map(|(x, ty)| format!("in scope: {x} : {ty}"))
                .collect();
            if bindings.len() > MAX_CTX_NOTES {
                let elided = bindings.len() - MAX_CTX_NOTES;
                bindings.truncate(MAX_CTX_NOTES);
                bindings.push(format!("... and {elided} more binding(s)"));
            }
            for note in bindings {
                inventory = inventory.with_note(note);
            }
            out.push(inventory);

            let fillers: Vec<String> = input
                .phi
                .iter()
                .filter(|(_, def)| def.expansion_ty == hyp.ty)
                .map(|(name, _)| name.to_string())
                .collect();
            if fillers.is_empty() {
                out.push(Diagnostic::new(
                    Code::HoleUninhabitable,
                    Severity::Info,
                    Location::Hole(*u),
                    format!(
                        "no registered livelit expands at type {}; this hole can \
                         only be filled textually",
                        hyp.ty
                    ),
                ));
            }
        }
        out
    }
}
