//! Diagnostics: stable lint codes, severities, locations, and reports.
//!
//! Every diagnostic carries a stable `LLxxxx` code so tools (and tests) can
//! match on failure classes rather than message text. Codes are grouped by
//! the hundreds digit:
//!
//! - `LL00xx` — hygiene and `ELivelit` failure modes (Fig. 5, Sec. 5.1),
//! - `LL01xx` — splice discipline (Sec. 3.2.3),
//! - `LL02xx` — hole audits (Sec. 4.1),
//! - `LL03xx` — livelit-definition lints (Def. 4.3, Sec. 3.2),
//! - `LL04xx` — expansion determinism (Sec. 3.2.5),
//! - `LL05xx` — reachability and liveness (dataflow over the term store),
//! - `LL06xx` — static purity/effect inference for expansion functions,
//! - `LL07xx` — hole-context facts (analyses that flow *through* holes).

use std::fmt;

use hazel_lang::ident::{HoleName, LivelitName};

/// A stable lint code, `LL0001`, `LL0002`, ...
///
/// The numbering is append-only: codes are never renumbered or reused, so
/// tools can depend on them across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `LL0001`: invocation of a livelit not bound in Φ (`ELivelit`
    /// premise 1, failure mode 1).
    UnboundLivelit,
    /// `LL0002`: the invocation's model value is not of the declared model
    /// type (`ELivelit` premise 2, failure mode 2).
    ModelType,
    /// `LL0003`: the expansion function crashed, diverged, or produced an
    /// undecodable encoding (`ELivelit` premises 3–4, failure mode 3).
    ExpandFailure,
    /// `LL0004`: the parameterized expansion captures variables from the
    /// invocation site — a context-independence violation (`ELivelit`
    /// premise 5, failure mode 4; Sec. 3.2.2 hygiene).
    NotClosed,
    /// `LL0005`: the parameterized expansion is not of its declared curried
    /// type `{τi} → τ_expand` (`ELivelit` premise 5, failure mode 4).
    ExpansionType,
    /// `LL0006`: a splice does not have its declared type under the
    /// invocation-site typing context Γ (`ELivelit` premise 6).
    SpliceType,
    /// `LL0007`: the invocation supplies fewer splices than the livelit
    /// declares parameters (Sec. 2.4.1, "missing livelit parameter").
    MissingParameters,
    /// `LL0008`: a leading (parameter) splice was created at the wrong
    /// type (Sec. 2.4.1).
    ParameterType,
    /// `LL0101`: a dead splice — declared and editable, but never
    /// referenced by the expansion, so its edits cannot affect the result
    /// (Sec. 3.2.3, splices are evaluated exactly once).
    DeadSplice,
    /// `LL0102`: a splice referenced more than once by the expansion,
    /// breaking the evaluated-once cost discipline (Sec. 3.2.3).
    DuplicatedSplice,
    /// `LL0201`: hole inventory — an empty hole, its expected type, and
    /// its closure environment (Sec. 4.1).
    HoleInventory,
    /// `LL0202`: no registered livelit expands at this hole's expected
    /// type, so no livelit can fill it (Sec. 2.3).
    HoleUninhabitable,
    /// `LL0203`: a failing livelit invocation is marked as a non-empty
    /// hole; the rest of the program stays live (Sec. 5.1).
    NonEmptyHole,
    /// `LL0301`: the model type is not first-order serializable data —
    /// models must persist in the source text (Sec. 3.1).
    NonFirstOrderModel,
    /// `LL0302`: the livelit's name does not follow the `$lower_case`
    /// convention (Sec. 2.2).
    NameConvention,
    /// `LL0303`: the expansion type has free type variables, so clients
    /// cannot reason abstractly about the invocation's type (Sec. 2.3).
    OpenExpansionType,
    /// `LL0304`: the definition is ill-formed — its object-language
    /// expansion function is not of type `τ_model → Exp` (Def. 4.3).
    IllFormedDefinition,
    /// `LL0401`: the expansion function is impure — expanding the same
    /// model twice produced different expansions (Sec. 3.2.5 requires
    /// `expand` be "a pure function of the model").
    ImpureExpansion,
    /// `LL0501`: a `let` binding whose variable is never referenced by any
    /// reachable use site (liveness over the term store).
    UnusedBinding,
    /// `LL0502`: a match arm (or constant-conditional branch) that can
    /// never be taken.
    UnreachableArm,
    /// `LL0503`: a prelude definition never referenced, directly or
    /// transitively, from the main expression.
    UnusedDefinition,
    /// `LL0601`: an invoked livelit whose expansion function could not be
    /// proven deterministic statically — the residue that stays on the
    /// dynamic LL0401 double-expansion check.
    PurityUnknown,
    /// `LL0602`: an expansion function proven deterministic but containing
    /// general recursion (`fix`), so expansion may still exhaust fuel.
    ExpansionMayDiverge,
    /// `LL0701`: a binding unused in the completed portions of the program
    /// but in scope at a hole — liveness flows through holes, so it may
    /// gain uses when the hole is filled (suppresses `LL0501`).
    LiveOnlyAtHoles,
    /// `LL0702`: a hole in unreachable code — no fill can affect the
    /// result, so its liveness facts are vacuous.
    UnreachableHole,
}

impl Code {
    /// Every code, in numeric order.
    pub const ALL: [Code; 25] = [
        Code::UnboundLivelit,
        Code::ModelType,
        Code::ExpandFailure,
        Code::NotClosed,
        Code::ExpansionType,
        Code::SpliceType,
        Code::MissingParameters,
        Code::ParameterType,
        Code::DeadSplice,
        Code::DuplicatedSplice,
        Code::HoleInventory,
        Code::HoleUninhabitable,
        Code::NonEmptyHole,
        Code::NonFirstOrderModel,
        Code::NameConvention,
        Code::OpenExpansionType,
        Code::IllFormedDefinition,
        Code::ImpureExpansion,
        Code::UnusedBinding,
        Code::UnreachableArm,
        Code::UnusedDefinition,
        Code::PurityUnknown,
        Code::ExpansionMayDiverge,
        Code::LiveOnlyAtHoles,
        Code::UnreachableHole,
    ];

    /// The stable code string, e.g. `"LL0004"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnboundLivelit => "LL0001",
            Code::ModelType => "LL0002",
            Code::ExpandFailure => "LL0003",
            Code::NotClosed => "LL0004",
            Code::ExpansionType => "LL0005",
            Code::SpliceType => "LL0006",
            Code::MissingParameters => "LL0007",
            Code::ParameterType => "LL0008",
            Code::DeadSplice => "LL0101",
            Code::DuplicatedSplice => "LL0102",
            Code::HoleInventory => "LL0201",
            Code::HoleUninhabitable => "LL0202",
            Code::NonEmptyHole => "LL0203",
            Code::NonFirstOrderModel => "LL0301",
            Code::NameConvention => "LL0302",
            Code::OpenExpansionType => "LL0303",
            Code::IllFormedDefinition => "LL0304",
            Code::ImpureExpansion => "LL0401",
            Code::UnusedBinding => "LL0501",
            Code::UnreachableArm => "LL0502",
            Code::UnusedDefinition => "LL0503",
            Code::PurityUnknown => "LL0601",
            Code::ExpansionMayDiverge => "LL0602",
            Code::LiveOnlyAtHoles => "LL0701",
            Code::UnreachableHole => "LL0702",
        }
    }

    /// A short title for the failure class.
    pub fn title(self) -> &'static str {
        match self {
            Code::UnboundLivelit => "unbound livelit",
            Code::ModelType => "model type mismatch",
            Code::ExpandFailure => "expansion failure",
            Code::NotClosed => "expansion captures client variables",
            Code::ExpansionType => "expansion type mismatch",
            Code::SpliceType => "splice type error",
            Code::MissingParameters => "missing livelit parameters",
            Code::ParameterType => "parameter type mismatch",
            Code::DeadSplice => "dead splice",
            Code::DuplicatedSplice => "duplicated splice reference",
            Code::HoleInventory => "hole inventory",
            Code::HoleUninhabitable => "no livelit fills this hole",
            Code::NonEmptyHole => "invocation marked as non-empty hole",
            Code::NonFirstOrderModel => "model type is not first-order",
            Code::NameConvention => "unconventional livelit name",
            Code::OpenExpansionType => "expansion type is not closed",
            Code::IllFormedDefinition => "ill-formed livelit definition",
            Code::ImpureExpansion => "impure expansion function",
            Code::UnusedBinding => "unused binding",
            Code::UnreachableArm => "unreachable match arm",
            Code::UnusedDefinition => "unused definition",
            Code::PurityUnknown => "expansion purity unknown",
            Code::ExpansionMayDiverge => "expansion may diverge",
            Code::LiveOnlyAtHoles => "binding live only at holes",
            Code::UnreachableHole => "hole in unreachable code",
        }
    }

    /// The paper section the check is grounded in.
    pub fn paper_section(self) -> &'static str {
        match self {
            Code::UnboundLivelit => "Fig. 5 (ELivelit premise 1), Sec. 5.1",
            Code::ModelType => "Fig. 5 (ELivelit premise 2), Sec. 5.1",
            Code::ExpandFailure => "Fig. 5 (ELivelit premises 3-4), Sec. 5.1",
            Code::NotClosed => "Fig. 5 (ELivelit premise 5), Sec. 3.2.2",
            Code::ExpansionType => "Fig. 5 (ELivelit premise 5), Sec. 5.1",
            Code::SpliceType => "Fig. 5 (ELivelit premise 6)",
            Code::MissingParameters => "Sec. 2.4.1",
            Code::ParameterType => "Sec. 2.4.1",
            Code::DeadSplice => "Sec. 3.2.3",
            Code::DuplicatedSplice => "Sec. 3.2.3",
            Code::HoleInventory => "Sec. 4.1",
            Code::HoleUninhabitable => "Sec. 2.3",
            Code::NonEmptyHole => "Sec. 5.1",
            Code::NonFirstOrderModel => "Sec. 3.1",
            Code::NameConvention => "Sec. 2.2",
            Code::OpenExpansionType => "Sec. 2.3",
            Code::IllFormedDefinition => "Def. 4.3",
            Code::ImpureExpansion => "Sec. 3.2.5",
            Code::UnusedBinding => "Sec. 3.2.3 (cost discipline)",
            Code::UnreachableArm => "Sec. 3.2.3 (cost discipline)",
            Code::UnusedDefinition => "Sec. 3.2.3 (cost discipline)",
            Code::PurityUnknown => "Sec. 3.2.5",
            Code::ExpansionMayDiverge => "Sec. 3.2.5, Sec. 5.1",
            Code::LiveOnlyAtHoles => "Sec. 4.1 (liveness around holes)",
            Code::UnreachableHole => "Sec. 4.1",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The program (or definition) is wrong and will fail at expansion or
    /// registration time.
    Error,
    /// Suspicious but not fatal; the program still runs.
    Warning,
    /// Informational — inventory and live-status notes.
    Info,
}

impl Severity {
    /// The lowercase name used in machine-readable output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Location {
    /// The whole program (post-expansion properties).
    Program,
    /// A livelit definition (registration-time lints).
    Livelit(LivelitName),
    /// A hole — either an empty hole or a livelit invocation's hole.
    Hole(HoleName),
    /// A splice (or leading parameter) of the livelit at `hole`.
    Splice {
        /// The invocation's hole name.
        hole: HoleName,
        /// The splice index, counting leading parameters first.
        index: usize,
    },
    /// A named top-level (prelude) definition.
    Def(String),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Program => f.write_str("program"),
            Location::Livelit(name) => write!(f, "{name}"),
            Location::Hole(u) => write!(f, "{u}"),
            Location::Splice { hole, index } => write!(f, "{hole}.splice{index}"),
            Location::Def(name) => write!(f, "def {name}"),
        }
    }
}

/// One finding of one analysis pass.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: Code,
    /// How serious the finding is.
    pub severity: Severity,
    /// Where the finding points.
    pub location: Location,
    /// The primary, human-readable message.
    pub message: String,
    /// Secondary notes (captured variables, expected types, ...).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no notes.
    pub fn new(
        code: Code,
        severity: Severity,
        location: Location,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            location,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Adds a note, builder-style.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Renders the diagnostic as a single human-readable block:
    /// `error[LL0004] at u0: ...` plus indented notes.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{}[{}] at {}: {}",
            self.severity, self.code, self.location, self.message
        );
        for note in &self.notes {
            out.push_str("\n  note: ");
            out.push_str(note);
        }
        out
    }
}

/// The ordered result of an analysis run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Builds a report from raw findings, sorting and deduplicating them so
    /// the output is deterministic regardless of pass execution order.
    pub fn from_diagnostics(mut diagnostics: Vec<Diagnostic>) -> Report {
        diagnostics.sort_by(|a, b| {
            (&a.location, a.code, &a.message).cmp(&(&b.location, b.code, &b.message))
        });
        diagnostics.dedup();
        Report { diagnostics }
    }

    /// The diagnostics, in deterministic (location, code, message) order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Whether the report has no findings at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The number of findings.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// The number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// The number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The codes present, in report order.
    pub fn codes(&self) -> Vec<Code> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }

    /// The findings attached to one hole (or its splices), in report order.
    pub fn for_hole(&self, hole: HoleName) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| match &d.location {
                Location::Hole(u) => *u == hole,
                Location::Splice { hole: u, .. } => *u == hole,
                _ => false,
            })
            .collect()
    }

    /// Renders the report as machine-readable JSON.
    ///
    /// The output is deterministic: diagnostics appear in report order and
    /// all keys are emitted in a fixed order. (Hand-written so the default
    /// build stays dependency-free; the format is plain enough that any
    /// JSON parser can read it.)
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json_diagnostic(&mut out, d);
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"errors\": {},\n  \"warnings\": {},\n  \"infos\": {}\n}}\n",
            self.error_count(),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }

    /// Renders the report as human-readable text, one block per finding.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info(s)\n",
            self.error_count(),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }
}

/// Appends one diagnostic as a JSON object (the shape used by
/// [`Report::to_json`] and by the server's per-edit diagnostic deltas).
pub fn json_diagnostic(out: &mut String, d: &Diagnostic) {
    out.push_str("{\"code\": ");
    json_string(out, d.code.as_str());
    out.push_str(", \"severity\": ");
    json_string(out, d.severity.as_str());
    out.push_str(", \"location\": ");
    json_location(out, &d.location);
    out.push_str(", \"message\": ");
    json_string(out, &d.message);
    out.push_str(", \"notes\": [");
    for (j, note) in d.notes.iter().enumerate() {
        if j > 0 {
            out.push_str(", ");
        }
        json_string(out, note);
    }
    out.push_str("]}");
}

fn json_location(out: &mut String, location: &Location) {
    match location {
        Location::Program => out.push_str("{\"kind\": \"program\"}"),
        Location::Livelit(name) => {
            out.push_str("{\"kind\": \"livelit\", \"name\": ");
            json_string(out, &name.to_string());
            out.push('}');
        }
        Location::Hole(u) => {
            out.push_str(&format!("{{\"kind\": \"hole\", \"hole\": {}}}", u.0));
        }
        Location::Splice { hole, index } => {
            out.push_str(&format!(
                "{{\"kind\": \"splice\", \"hole\": {}, \"index\": {index}}}",
                hole.0
            ));
        }
        Location::Def(name) => {
            out.push_str("{\"kind\": \"def\", \"name\": ");
            json_string(out, name);
            out.push('}');
        }
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
pub fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_ordered() {
        let strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        let mut sorted = strs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), Code::ALL.len(), "codes must be unique");
        assert_eq!(sorted, strs, "Code::ALL must be in numeric order");
        for c in Code::ALL {
            assert!(c.as_str().starts_with("LL"));
            assert_eq!(c.as_str().len(), 6);
            assert!(!c.title().is_empty());
            assert!(!c.paper_section().is_empty());
        }
    }

    #[test]
    fn report_sorts_and_dedups() {
        let d1 = Diagnostic::new(
            Code::DeadSplice,
            Severity::Warning,
            Location::Splice {
                hole: HoleName(1),
                index: 0,
            },
            "dead",
        );
        let d2 = Diagnostic::new(
            Code::NotClosed,
            Severity::Error,
            Location::Hole(HoleName(0)),
            "captured",
        );
        let report = Report::from_diagnostics(vec![d1.clone(), d2.clone(), d1.clone()]);
        assert_eq!(report.len(), 2);
        assert_eq!(report.diagnostics()[0], d2, "holes sort before splices");
        assert_eq!(report.codes(), vec![Code::NotClosed, Code::DeadSplice]);
    }

    #[test]
    fn json_escapes_and_shapes() {
        let d = Diagnostic::new(
            Code::UnboundLivelit,
            Severity::Error,
            Location::Hole(HoleName(3)),
            "no \"$nope\"\nhere",
        )
        .with_note("try $slider");
        let report = Report::from_diagnostics(vec![d]);
        let json = report.to_json();
        assert!(json.contains("\"code\": \"LL0001\""));
        assert!(json.contains("\\\"$nope\\\"\\nhere"));
        assert!(json.contains("{\"kind\": \"hole\", \"hole\": 3}"));
        assert!(json.contains("\"errors\": 1"));
        // Deterministic: same input, same bytes.
        assert_eq!(json, report.to_json());
    }
}
