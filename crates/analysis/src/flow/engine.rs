//! The generic monotone-fixpoint engine and the `TermId`-keyed fact memo.
//!
//! Two caches with different shapes back the flow analyses:
//!
//! - [`Fixpoint`] solves mutually recursive dataflow equations over an
//!   arbitrary join-semilattice with a deterministic worklist (always the
//!   smallest pending key), recording which keys each transfer function
//!   read so later invalidations re-solve only the affected region.
//! - [`FactMemo`] memoizes *context-independent* per-term facts keyed on
//!   hash-consed `TermId`s: two structurally identical subterms share one
//!   entry, so re-analyzing an edited definition only pays for the nodes
//!   the edit actually created.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use hazel_lang::store::TermId;

/// A join-semilattice of dataflow facts.
///
/// Contracts (checked by the engine's debug assertions and the unit
/// tests): `join_from` is monotone (the receiver only grows), idempotent,
/// commutative up to equality, and returns whether the receiver changed.
pub trait Lattice: Clone + PartialEq {
    /// The least element.
    fn bottom() -> Self;
    /// Joins `other` into `self`; returns `true` iff `self` changed.
    fn join_from(&mut self, other: &Self) -> bool;
}

/// Aggregate statistics from one [`Fixpoint::solve`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Transfer-function evaluations performed.
    pub evaluations: u64,
    /// Evaluations whose result changed the stored fact.
    pub changed: u64,
}

/// A demand-driven monotone-fixpoint solver over keys `K` and facts `L`.
///
/// Keys are processed smallest-first, so a solve over the same equations
/// visits the same keys in the same order regardless of how the dirty set
/// was discovered — the determinism discipline every parallel consumer of
/// the engine relies on.
#[derive(Debug, Clone)]
pub struct Fixpoint<K: Ord + Copy, L: Lattice> {
    facts: BTreeMap<K, L>,
    /// Reverse dependencies: `rdeps[k]` = keys whose transfer read `k`.
    rdeps: BTreeMap<K, BTreeSet<K>>,
}

impl<K: Ord + Copy, L: Lattice> Default for Fixpoint<K, L> {
    fn default() -> Self {
        Fixpoint {
            facts: BTreeMap::new(),
            rdeps: BTreeMap::new(),
        }
    }
}

impl<K: Ord + Copy, L: Lattice> Fixpoint<K, L> {
    /// An empty solver.
    pub fn new() -> Self {
        Fixpoint::default()
    }

    /// The current fact for `k` (bottom if never computed).
    pub fn fact(&self, k: &K) -> L {
        self.facts.get(k).cloned().unwrap_or_else(L::bottom)
    }

    /// Resets the facts for `dirty` keys to bottom and returns the set of
    /// keys whose transfer functions must re-run: the dirty keys plus
    /// everything transitively depending on them.
    pub fn invalidate(&mut self, dirty: impl IntoIterator<Item = K>) -> BTreeSet<K> {
        let mut worklist: Vec<K> = dirty.into_iter().collect();
        let mut affected = BTreeSet::new();
        while let Some(k) = worklist.pop() {
            if !affected.insert(k) {
                continue;
            }
            self.facts.remove(&k);
            if let Some(readers) = self.rdeps.get(&k) {
                worklist.extend(readers.iter().copied());
            }
        }
        for k in &affected {
            self.rdeps.remove(k);
        }
        affected
    }

    /// Drops all facts and dependencies.
    pub fn clear(&mut self) {
        self.facts.clear();
        self.rdeps.clear();
    }

    /// Solves the system seeded at `seeds`. `transfer` computes the fact
    /// for one key given a resolver for other keys' current facts; every
    /// resolver call is recorded as a dependency edge, so a later
    /// [`Fixpoint::invalidate`] knows exactly which keys to re-run.
    ///
    /// Facts only grow (joins are monotone), so the worklist terminates
    /// for lattices of finite height.
    pub fn solve<F>(&mut self, seeds: impl IntoIterator<Item = K>, mut transfer: F) -> SolveStats
    where
        F: FnMut(K, &mut dyn FnMut(K) -> L) -> L,
    {
        let mut stats = SolveStats::default();
        let mut worklist: BTreeSet<K> = seeds.into_iter().collect();
        while let Some(&k) = worklist.iter().next() {
            worklist.remove(&k);
            stats.evaluations += 1;
            let mut reads: BTreeSet<K> = BTreeSet::new();
            let new = {
                let facts = &self.facts;
                let mut resolver = |dep: K| {
                    reads.insert(dep);
                    facts.get(&dep).cloned().unwrap_or_else(L::bottom)
                };
                transfer(k, &mut resolver)
            };
            for dep in reads {
                self.rdeps.entry(dep).or_default().insert(k);
            }
            let entry = self.facts.entry(k).or_insert_with(L::bottom);
            if entry.join_from(&new) {
                stats.changed += 1;
                if let Some(readers) = self.rdeps.get(&k) {
                    worklist.extend(readers.iter().copied());
                }
            }
        }
        stats
    }
}

/// Tallies from a batch of [`FactMemo`] queries — kept local so worker
/// threads never emit trace events; the calling thread aggregates and
/// reports them (the same discipline as `livelit_core::par`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FactTally {
    /// Facts computed fresh.
    pub computed: u64,
    /// Facts served from the memo.
    pub reused: u64,
}

impl FactTally {
    /// Adds another tally into this one.
    pub fn absorb(&mut self, other: FactTally) {
        self.computed += other.computed;
        self.reused += other.reused;
    }
}

/// A memo of per-term facts keyed on hash-consed `TermId`s.
///
/// Facts stored here must be context-independent (a function of the term
/// alone), which is what makes the `TermId` a sound key: hash-consing
/// guarantees equal ids mean structurally equal terms.
#[derive(Debug, Clone, Default)]
pub struct FactMemo<F> {
    map: HashMap<TermId, Arc<F>>,
}

impl<F> FactMemo<F> {
    /// An empty memo.
    pub fn new() -> Self {
        FactMemo {
            map: HashMap::new(),
        }
    }

    /// The memoized fact for `t`, if present.
    pub fn get(&self, t: TermId) -> Option<&Arc<F>> {
        self.map.get(&t)
    }

    /// Stores the fact for `t`.
    pub fn insert(&mut self, t: TermId, fact: Arc<F>) {
        self.map.insert(t, fact);
    }

    /// Merges a batch of facts computed against a snapshot of this memo
    /// (e.g. by a parallel analysis task). Insertion order is the caller's
    /// responsibility to keep deterministic; entries already present win,
    /// which is sound because facts are a pure function of the term.
    pub fn absorb(&mut self, batch: Vec<(TermId, Arc<F>)>) {
        for (t, fact) in batch {
            self.map.entry(t).or_insert(fact);
        }
    }

    /// The number of memoized facts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every memoized fact.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reachability: the classic two-point lattice.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Reach(bool);

    impl Lattice for Reach {
        fn bottom() -> Self {
            Reach(false)
        }
        fn join_from(&mut self, other: &Self) -> bool {
            let changed = other.0 && !self.0;
            self.0 |= other.0;
            changed
        }
    }

    #[test]
    fn solves_reachability_over_a_cycle() {
        // 0 -> 1 -> 2 -> 1 (cycle), 3 isolated; 0 is the root.
        let preds: Vec<Vec<usize>> = vec![vec![], vec![0, 2], vec![1], vec![]];
        let mut fx: Fixpoint<usize, Reach> = Fixpoint::new();
        let stats = fx.solve(0..4usize, |k, resolve| {
            if k == 0 {
                return Reach(true);
            }
            Reach(preds[k].iter().any(|&p| resolve(p).0))
        });
        assert!(fx.fact(&0).0 && fx.fact(&1).0 && fx.fact(&2).0);
        assert!(!fx.fact(&3).0);
        assert!(stats.evaluations >= 4);
    }

    #[test]
    fn invalidation_is_transitive_over_recorded_reads() {
        let preds: Vec<Vec<usize>> = vec![vec![], vec![0], vec![1], vec![]];
        let mut fx: Fixpoint<usize, Reach> = Fixpoint::new();
        fx.solve(0..4usize, |k, resolve| {
            if k == 0 {
                return Reach(true);
            }
            Reach(preds[k].iter().any(|&p| resolve(p).0))
        });
        // Dirtying 0 must re-run 1 and 2 (1 read 0, 2 read 1), not 3.
        let affected = fx.invalidate([0]);
        assert_eq!(affected, [0, 1, 2].into_iter().collect());
        assert!(!fx.fact(&1).0, "invalidated facts reset to bottom");
    }

    #[test]
    fn solve_is_deterministic_in_seed_order() {
        let preds: Vec<Vec<usize>> = vec![vec![1], vec![0], vec![0, 1]];
        let run = |seeds: Vec<usize>| {
            let mut fx: Fixpoint<usize, Reach> = Fixpoint::new();
            fx.solve(seeds, |k, resolve| {
                if k == 0 {
                    return Reach(true);
                }
                Reach(preds[k].iter().any(|&p| resolve(p).0))
            });
            (0..3).map(|k| fx.fact(&k).0).collect::<Vec<_>>()
        };
        assert_eq!(run(vec![0, 1, 2]), run(vec![2, 1, 0]));
    }
}
