//! The incremental flow-analysis driver.
//!
//! [`FlowAnalyzer`] is the stateful front end of the dataflow framework:
//! it owns the skeleton store and fact memo and finds the dirty units
//! (the program plus each prelude definition) per run — definition
//! units by structural equality against the cached term (they carry no
//! livelit models, so this agrees with the model-erased skeleton), the
//! program by re-interning, where an unchanged unit hits the same
//! hash-consed root `TermId`. Clean units are skipped wholesale, their
//! diagnostics served from cache. Dirty units are re-scanned, fanned out
//! on the scheduler pool when there is more than one, against the
//! *pre-run* memo snapshot so every task's fact tallies depend only on
//! its own unit (the same discipline that keeps `sched_props`
//! counter-bit-identical at any worker count). Cross-definition
//! reachability (`LL0503`) is solved by the generic [`Fixpoint`] engine
//! with per-definition invalidation.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use hazel_lang::ident::LivelitName;
use hazel_lang::store::{TermId, TermStore};
use hazel_lang::unexpanded::UExp;
use livelit_core::def::LivelitCtx;
use livelit_core::par::run_tasks;

use super::engine::{FactMemo, FactTally, Fixpoint, Lattice};
use super::facts::{FactScout, TermFacts};
use super::liveness::{self, LiveEvent};
use super::{holectx, purity};
use crate::diagnostic::{Code, Diagnostic, Location, Severity};

/// One analysis unit: the program, or one prelude definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowUnit {
    /// Stable unit name ("program", or the definition's bound name).
    pub name: String,
    /// Where this unit's findings are reported.
    pub location: Location,
    /// The unit's unexpanded term (models are erased at interning).
    pub term: UExp,
}

impl FlowUnit {
    /// The whole-program unit.
    pub fn program(term: UExp) -> FlowUnit {
        FlowUnit {
            name: "program".to_string(),
            location: Location::Program,
            term,
        }
    }

    /// A prelude-definition unit.
    pub fn def(name: impl Into<String>, term: UExp) -> FlowUnit {
        let name = name.into();
        FlowUnit {
            location: Location::Def(name.clone()),
            name,
            term,
        }
    }
}

/// The outcome of one [`FlowAnalyzer::analyze`] run.
#[derive(Debug, Clone, Default)]
pub struct FlowRun {
    /// All flow diagnostics, across every unit (cached and fresh).
    pub diagnostics: Vec<Diagnostic>,
    /// Units re-analyzed this run (the dirty set).
    pub dirty_defs: u64,
    /// Per-term facts computed fresh this run.
    pub facts_computed: u64,
    /// Per-term facts served from the memo this run.
    pub facts_reused: u64,
}

/// One dirty unit's scan output: its root facts, liveness events, the
/// task-private fact overlay, and the computed/reused tallies.
type UnitScan = (
    Arc<TermFacts>,
    Vec<LiveEvent>,
    Vec<(TermId, Arc<TermFacts>)>,
    FactTally,
);

/// Per-unit cached state.
struct UnitState {
    root: TermId,
    /// The unit's term as last analyzed — the cheap dirty test for
    /// definition units, which carry no livelit models and so compare
    /// structurally exactly as their model-erased skeletons would.
    term: UExp,
    location: Location,
    diags: Vec<Diagnostic>,
    facts: Arc<TermFacts>,
    /// Names of prelude definitions this unit references (free vars).
    refs: BTreeSet<String>,
}

/// The two-point reachability lattice for cross-definition liveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Reach(bool);

impl Lattice for Reach {
    fn bottom() -> Self {
        Reach(false)
    }
    fn join_from(&mut self, other: &Self) -> bool {
        let changed = other.0 && !self.0;
        self.0 |= other.0;
        changed
    }
}

/// The stateful incremental dataflow analyzer.
#[derive(Default)]
pub struct FlowAnalyzer {
    store: TermStore,
    memo: FactMemo<TermFacts>,
    units: BTreeMap<String, UnitState>,
    reach: Fixpoint<usize, Reach>,
    /// The unit-name order the reachability indices refer to.
    reach_keys: Vec<String>,
    /// The unreachable definitions from the last reachability solve —
    /// served as-is when an edit changed no unit's reference set.
    reach_unused: Vec<String>,
    purity_memo: BTreeMap<LivelitName, purity::Purity>,
}

impl FlowAnalyzer {
    /// An empty analyzer.
    pub fn new() -> FlowAnalyzer {
        FlowAnalyzer::default()
    }

    /// Drops all cached state (the from-scratch baseline).
    pub fn clear(&mut self) {
        self.store = TermStore::new();
        self.memo.clear();
        self.units.clear();
        self.reach.clear();
        self.reach_keys.clear();
        self.reach_unused.clear();
        self.purity_memo.clear();
    }

    /// Analyzes the document's units, re-scanning only those whose
    /// hash-consed root changed since the previous run.
    pub fn analyze(&mut self, phi: &LivelitCtx, units: &[FlowUnit]) -> FlowRun {
        // Phase 1 (sequential): find the dirty units. Definition units
        // carry no livelit models (prelude definitions are
        // already-expanded terms), so plain structural equality against
        // the cached term agrees with the model-erasing skeleton
        // interning and an unchanged definition skips the re-intern
        // entirely; everything else (the program, whose models erase at
        // interning) re-interns, and equal skeletons hitting the same id
        // is the dirty test.
        let incoming: BTreeSet<&str> = units.iter().map(|u| u.name.as_str()).collect();
        let removed: Vec<String> = self
            .units
            .keys()
            .filter(|k| !incoming.contains(k.as_str()))
            .cloned()
            .collect();
        for k in &removed {
            self.units.remove(k);
        }
        let mut dirty: Vec<(&FlowUnit, TermId)> = Vec::new();
        for u in units {
            let cached = self.units.get(&u.name);
            if matches!(u.location, Location::Def(_)) && cached.is_some_and(|s| s.term == u.term) {
                continue;
            }
            let root = self.store.intern_uexp_skeleton(&u.term);
            if cached.map(|s| s.root) != Some(root) {
                dirty.push((u, root));
            }
        }

        // Phase 2: scan dirty units against the pre-run memo snapshot,
        // fanning out on the pool when there is more than one.
        let scan = |root: TermId| {
            let mut scout = FactScout::new(&self.store, &self.memo);
            let facts = scout.facts(root);
            let events = liveness::scan(&self.store, &mut scout, root);
            let (overlay, tally) = scout.into_overlay();
            (facts, events, overlay, tally)
        };
        let scanned: Vec<UnitScan> = if dirty.len() > 1 {
            run_tasks(&dirty, |_, (_, root)| scan(*root))
                .into_iter()
                .map(|r| {
                    r.unwrap_or_else(|_| {
                        (
                            Arc::new(TermFacts::default()),
                            Vec::new(),
                            Vec::new(),
                            FactTally::default(),
                        )
                    })
                })
                .collect()
        } else {
            dirty.iter().map(|(_, root)| scan(*root)).collect()
        };

        // Phase 3 (sequential, unit order): absorb overlays and tallies,
        // rebuild per-unit diagnostics and reference sets. Definitions
        // entering or leaving some dirty unit's reference set are the
        // only ones whose reachability can have changed.
        let mut tally = FactTally::default();
        let mut refs_changed: BTreeSet<String> = BTreeSet::new();
        for ((u, root), (facts, events, overlay, unit_tally)) in dirty.iter().zip(scanned) {
            self.memo.absorb(overlay);
            tally.absorb(unit_tally);
            let mut diags = liveness::diagnostics(&events, &u.location);
            diags.extend(holectx::diagnostics(&events, &u.location));
            let refs: BTreeSet<String> = facts
                .use_counts
                .keys()
                .map(|x| self.store.var(*x).to_string())
                .collect();
            match self.units.get(&u.name) {
                Some(old) => refs_changed.extend(old.refs.symmetric_difference(&refs).cloned()),
                None => refs_changed.extend(refs.iter().cloned()),
            }
            self.units.insert(
                u.name.clone(),
                UnitState {
                    root: *root,
                    term: u.term.clone(),
                    location: u.location.clone(),
                    diags,
                    facts,
                    refs,
                },
            );
        }

        // Phase 4: cross-definition reachability (LL0503) through the
        // fixpoint engine, invalidating only the definitions whose
        // client sets the dirty units actually reshaped.
        let unused = self.solve_reachability(&refs_changed, !removed.is_empty());

        // Phase 5: assemble — cached per-unit diagnostics, unused-def
        // findings, and purity verdicts for every invoked livelit.
        let any_fillable_hole = self.units.values().any(|s| !s.facts.holes.is_empty());
        let mut diagnostics: Vec<Diagnostic> = Vec::new();
        for state in self.units.values() {
            diagnostics.extend(state.diags.iter().cloned());
        }
        for name in unused {
            let (severity, note) = if any_fillable_hole {
                (
                    Severity::Info,
                    "the program has fillable holes; a fill may create the first \
                     reference (Sec. 4.1)",
                )
            } else {
                (
                    Severity::Warning,
                    "no program expression or hole references this definition",
                )
            };
            diagnostics.push(
                Diagnostic::new(
                    Code::UnusedDefinition,
                    severity,
                    Location::Def(name.clone()),
                    format!("definition `{name}` is never used by the program"),
                )
                .with_note(note.to_string()),
            );
        }
        diagnostics.extend(self.purity_diagnostics(phi));

        FlowRun {
            diagnostics,
            dirty_defs: dirty.len() as u64,
            facts_computed: tally.computed,
            facts_reused: tally.reused,
        }
    }

    /// The purity verdict for one livelit (memoized).
    pub fn purity_of(&mut self, phi: &LivelitCtx, name: &LivelitName) -> purity::Purity {
        if let Some(p) = self.purity_memo.get(name) {
            return *p;
        }
        let p = phi
            .get(name)
            .map(purity::infer_def)
            .unwrap_or(purity::Purity::Unknown);
        self.purity_memo.insert(name.clone(), p);
        p
    }

    /// `LL0602` for every invoked livelit proven pure but recursive.
    fn purity_diagnostics(&mut self, phi: &LivelitCtx) -> Vec<Diagnostic> {
        let invoked: BTreeSet<LivelitName> = self
            .units
            .values()
            .flat_map(|s| s.facts.livelits.iter().cloned())
            .collect();
        let mut out = Vec::new();
        for name in invoked {
            if self.purity_of(phi, &name) == purity::Purity::PureMayDiverge {
                out.push(
                    Diagnostic::new(
                        Code::ExpansionMayDiverge,
                        Severity::Info,
                        Location::Livelit(name.clone()),
                        format!(
                            "the expansion function of {name} is pure but uses general \
                             recursion; expansion may diverge"
                        ),
                    )
                    .with_note(
                        "proven deterministic (LL06xx), so the dynamic determinism \
                         check is skipped, but termination is not guaranteed"
                            .to_string(),
                    ),
                );
            }
        }
        out
    }

    /// Solves definition reachability and returns the unreachable
    /// definition names, in name order.
    ///
    /// A unit's reachability depends only on *who references it* — its
    /// clients — never on its own contents, so an edit that left every
    /// reference set alone cannot move any fact and the previous solve's
    /// answer is served unchanged, without touching the adjacency.
    fn solve_reachability(
        &mut self,
        refs_changed: &BTreeSet<String>,
        units_removed: bool,
    ) -> Vec<String> {
        let keys_unchanged = !units_removed
            && self.units.len() == self.reach_keys.len()
            && self.units.keys().zip(&self.reach_keys).all(|(a, b)| a == b);
        if keys_unchanged && refs_changed.is_empty() {
            return self.reach_unused.clone();
        }
        let keys: Vec<String> = self.units.keys().cloned().collect();
        let index: BTreeMap<&str, usize> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.as_str(), i))
            .collect();
        let is_root: Vec<bool> = keys
            .iter()
            .map(|k| matches!(self.units[k].location, Location::Program))
            .collect();
        // clients[k] = units whose free variables reference definition k.
        let mut clients: Vec<Vec<usize>> = vec![Vec::new(); keys.len()];
        for (j, kj) in keys.iter().enumerate() {
            for r in &self.units[kj].refs {
                if let Some(&k) = index.get(r.as_str()) {
                    clients[k].push(j);
                }
            }
        }
        // No program unit: reachability is meaningless; report nothing.
        if !is_root.iter().any(|&r| r) {
            self.reach.clear();
            self.reach_keys.clear();
            self.reach_unused.clear();
            return Vec::new();
        }
        let seeds: Vec<usize> = if !keys_unchanged {
            // Key set changed: indices shifted, start over.
            self.reach.clear();
            self.reach_keys = keys.clone();
            (0..keys.len()).collect()
        } else {
            // Exactly the definitions that entered or left some dirty
            // unit's reference set have reshaped client sets; transitive
            // readers are handled by the engine's recorded dependencies.
            let changed: BTreeSet<usize> = refs_changed
                .iter()
                .filter_map(|r| index.get(r.as_str()).copied())
                .collect();
            self.reach.invalidate(changed).into_iter().collect()
        };
        self.reach.solve(seeds, |k, resolve| {
            if is_root[k] {
                return Reach(true);
            }
            Reach(clients[k].iter().any(|&j| resolve(j).0))
        });
        self.reach_unused = keys
            .iter()
            .enumerate()
            .filter(|(k, _)| !is_root[*k] && !self.reach.fact(k).0)
            .map(|(_, name)| name.clone())
            .collect();
        self.reach_unused.clone()
    }
}

impl std::fmt::Debug for FlowAnalyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowAnalyzer")
            .field("units", &self.units.keys().collect::<Vec<_>>())
            .field("memo", &self.memo.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::parse::parse_uexp;

    fn unit(name: &str, src: &str) -> FlowUnit {
        if name == "program" {
            FlowUnit::program(parse_uexp(src).unwrap())
        } else {
            FlowUnit::def(name, parse_uexp(src).unwrap())
        }
    }

    #[test]
    fn unchanged_units_are_not_dirty() {
        let phi = LivelitCtx::new();
        let mut fa = FlowAnalyzer::new();
        let units = vec![
            unit("helper", "fun x : Int -> x + 1"),
            unit("program", "helper 41"),
        ];
        let first = fa.analyze(&phi, &units);
        assert_eq!(first.dirty_defs, 2);
        let second = fa.analyze(&phi, &units);
        assert_eq!(second.dirty_defs, 0);
        assert_eq!(second.facts_computed, 0);
        assert_eq!(first.diagnostics, second.diagnostics);
    }

    #[test]
    fn single_def_edit_dirties_one_unit_and_reuses_facts() {
        let phi = LivelitCtx::new();
        let mut fa = FlowAnalyzer::new();
        let units = vec![
            unit("helper", "fun x : Int -> x + 1"),
            unit("other", "fun y : Int -> y * 2"),
            unit("program", "helper (other 1)"),
        ];
        fa.analyze(&phi, &units);
        let edited = vec![
            unit("helper", "fun x : Int -> x + 2"),
            unit("other", "fun y : Int -> y * 2"),
            unit("program", "helper (other 1)"),
        ];
        let run = fa.analyze(&phi, &edited);
        assert_eq!(run.dirty_defs, 1);
        assert!(run.facts_reused > 0, "shared subterms must hit the memo");
    }

    #[test]
    fn unused_definitions_are_found_through_the_fixpoint() {
        let phi = LivelitCtx::new();
        let mut fa = FlowAnalyzer::new();
        // `orphan` references `deep`, but nothing references `orphan`:
        // both are unreachable from the program.
        let units = vec![
            unit("deep", "fun x : Int -> x"),
            unit("orphan", "fun y : Int -> deep y"),
            unit("used", "fun z : Int -> z + 1"),
            unit("program", "used 1"),
        ];
        let run = fa.analyze(&phi, &units);
        let unused: Vec<&Diagnostic> = run
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::UnusedDefinition)
            .collect();
        assert_eq!(unused.len(), 2, "diags: {:?}", run.diagnostics);
        assert!(unused.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn unused_definition_downgrades_to_info_when_holes_exist() {
        let phi = LivelitCtx::new();
        let mut fa = FlowAnalyzer::new();
        let units = vec![
            unit("orphan", "fun y : Int -> y"),
            unit("program", "1 + ?1"),
        ];
        let run = fa.analyze(&phi, &units);
        let unused: Vec<&Diagnostic> = run
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::UnusedDefinition)
            .collect();
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].severity, Severity::Info);
    }

    #[test]
    fn editing_the_program_rechecks_definition_reachability() {
        let phi = LivelitCtx::new();
        let mut fa = FlowAnalyzer::new();
        let base = vec![
            unit("helper", "fun x : Int -> x"),
            unit("program", "helper 1"),
        ];
        let run = fa.analyze(&phi, &base);
        assert!(run
            .diagnostics
            .iter()
            .all(|d| d.code != Code::UnusedDefinition));
        // Drop the reference: helper becomes unused.
        let edited = vec![unit("helper", "fun x : Int -> x"), unit("program", "2")];
        let run = fa.analyze(&phi, &edited);
        assert!(run
            .diagnostics
            .iter()
            .any(|d| d.code == Code::UnusedDefinition));
    }

    #[test]
    fn unused_binding_and_dead_branch_are_reported() {
        let phi = LivelitCtx::new();
        let mut fa = FlowAnalyzer::new();
        let units = vec![unit("program", "let dead = 1 in if true then 2 else 3")];
        let run = fa.analyze(&phi, &units);
        let codes: Vec<Code> = run.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::UnusedBinding), "codes: {codes:?}");
        assert!(codes.contains(&Code::UnreachableArm), "codes: {codes:?}");
    }

    #[test]
    fn unused_binding_with_hole_in_scope_is_informational() {
        let phi = LivelitCtx::new();
        let mut fa = FlowAnalyzer::new();
        let units = vec![unit("program", "let pending = 1 in ?1")];
        let run = fa.analyze(&phi, &units);
        let codes: Vec<Code> = run.diagnostics.iter().map(|d| d.code).collect();
        assert!(!codes.contains(&Code::UnusedBinding), "codes: {codes:?}");
        assert!(codes.contains(&Code::LiveOnlyAtHoles), "codes: {codes:?}");
    }
}
