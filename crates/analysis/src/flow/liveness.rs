//! `LL05xx` — reachability and liveness over the hash-consed skeleton.
//!
//! The scan walks a unit's interned term once, reading memoized
//! [`TermFacts`](super::facts::TermFacts) to classify:
//!
//! - **unused bindings** — a `let` whose body never references the bound
//!   variable (`LL0501`); when the body contains fillable holes the
//!   finding is downgraded to the hole-context family (`LL0701`, see
//!   [`super::holectx`]), because filling a hole in the binding's scope
//!   may create the first use;
//! - **unreachable regions** — branches and match arms dead under a
//!   literal scrutinee (`LL0502`); holes inside a dead region are
//!   reported as vacuous by the hole-context family (`LL0702`).
//!
//! The scan emits structured [`LiveEvent`]s rather than diagnostics so
//! the two diagnostic families can be derived independently.

use std::collections::BTreeSet;

use hazel_lang::ident::HoleName;
use hazel_lang::store::{Node, TermId, TermStore};

use super::facts::{children, FactScout};
use crate::diagnostic::{Code, Diagnostic, Location, Severity};

/// One structural liveness finding, prior to diagnostic rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiveEvent {
    /// A `let`-bound variable with zero uses in its scope.
    UnusedBinding {
        /// The bound variable's name.
        var: String,
        /// Fillable holes in the binding's scope — if any, the binding
        /// may still gain uses, so the finding is informational.
        fillable: Vec<HoleName>,
    },
    /// A branch or arm that control flow can never reach.
    DeadRegion {
        /// Human description of the region and why it is dead.
        detail: String,
        /// Fillable holes inside the dead region (vacuous holes).
        holes: Vec<HoleName>,
    },
}

/// Scans the unit rooted at `root`, producing events in walk order.
///
/// Each distinct `TermId` is visited once — facts are context
/// independent, so a structurally shared subterm cannot produce a
/// different finding at its second occurrence.
pub fn scan(store: &TermStore, scout: &mut FactScout<'_>, root: TermId) -> Vec<LiveEvent> {
    let mut events = Vec::new();
    let mut visited: BTreeSet<TermId> = BTreeSet::new();
    let mut stack = vec![root];
    while let Some(t) = stack.pop() {
        if !visited.insert(t) {
            continue;
        }
        let mut descend: Vec<TermId> = Vec::new();
        match store.node(t) {
            Node::ULet(x, _, d, b) => {
                let (x, d, b) = (*x, *d, *b);
                let body_facts = scout.facts(b);
                if body_facts.uses(x) == 0 {
                    events.push(LiveEvent::UnusedBinding {
                        var: store.var(x).to_string(),
                        fillable: body_facts.holes.iter().copied().collect(),
                    });
                }
                descend.push(d);
                descend.push(b);
            }
            Node::If(c, then_b, else_b) => {
                let (c, then_b, else_b) = (*c, *then_b, *else_b);
                if let Node::Bool(v) = store.node(c) {
                    let (dead, live, branch) = if *v {
                        (else_b, then_b, "else")
                    } else {
                        (then_b, else_b, "then")
                    };
                    let v = *v;
                    events.push(LiveEvent::DeadRegion {
                        detail: format!("`{branch}` branch (the condition is literally `{v}`)"),
                        holes: scout.facts(dead).holes.iter().copied().collect(),
                    });
                    descend.push(live);
                } else {
                    descend.extend([c, then_b, else_b]);
                }
            }
            Node::Case(scrut, arms) => {
                let scrut = *scrut;
                if let Node::Inj(_, taken, _) = store.node(scrut) {
                    let taken = taken.clone();
                    descend.push(scrut);
                    for (label, _, body) in arms {
                        if *label == taken {
                            descend.push(*body);
                        } else {
                            events.push(LiveEvent::DeadRegion {
                                detail: format!(
                                    "arm `{label}` (the scrutinee is an injection at `{taken}`)"
                                ),
                                holes: scout.facts(*body).holes.iter().copied().collect(),
                            });
                        }
                    }
                } else {
                    descend.push(scrut);
                    descend.extend(arms.iter().map(|(_, _, b)| *b));
                }
            }
            Node::ListCase(scrut, nil, _, _, cons) => {
                let (scrut, nil, cons) = (*scrut, *nil, *cons);
                match store.node(scrut) {
                    Node::Nil(_) => {
                        events.push(LiveEvent::DeadRegion {
                            detail: "`cons` arm (the scrutinee is literally the empty list)"
                                .to_string(),
                            holes: scout.facts(cons).holes.iter().copied().collect(),
                        });
                        descend.extend([scrut, nil]);
                    }
                    Node::Cons(..) => {
                        events.push(LiveEvent::DeadRegion {
                            detail: "`nil` arm (the scrutinee is literally a cons cell)"
                                .to_string(),
                            holes: scout.facts(nil).holes.iter().copied().collect(),
                        });
                        descend.extend([scrut, cons]);
                    }
                    _ => descend.extend([scrut, nil, cons]),
                }
            }
            other => descend.extend(children(other)),
        }
        // Reverse so the leftmost child is processed first (stack order).
        stack.extend(descend.into_iter().rev());
    }
    events
}

/// Renders the `LL05xx` diagnostics for a unit's events: unused bindings
/// with no holes in scope, and unreachable regions.
pub fn diagnostics(events: &[LiveEvent], at: &Location) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for event in events {
        match event {
            LiveEvent::UnusedBinding { var, fillable } if fillable.is_empty() => {
                out.push(
                    Diagnostic::new(
                        Code::UnusedBinding,
                        Severity::Warning,
                        at.clone(),
                        format!("binding `{var}` is never used"),
                    )
                    .with_note(
                        "no hole in its scope could use it either; \
                         the binding can be removed"
                            .to_string(),
                    ),
                );
            }
            LiveEvent::UnusedBinding { .. } => {}
            LiveEvent::DeadRegion { detail, .. } => {
                out.push(Diagnostic::new(
                    Code::UnreachableArm,
                    Severity::Warning,
                    at.clone(),
                    format!("unreachable {detail}"),
                ));
            }
        }
    }
    out
}
