//! `LL06xx` — static purity/effect inference for expansion functions.
//!
//! The paper's determinism requirement (Sec. 2.4.1: expansion must be a
//! pure function of the model) is enforced dynamically by the `LL0401`
//! double-expansion check. That check is sound but costs a full second
//! expansion per invocation. This module proves most expansions
//! deterministic *statically*, so the dynamic check runs only on the
//! residue:
//!
//! - A livelit defined by an **object-language** expansion function (or a
//!   native livelit that supplies its object-language definition as
//!   evidence) is analyzed directly: the internal language has no
//!   nondeterministic constructs, so any expansion it defines is a pure
//!   function of the model. The only caveat is `fix` — a recursive
//!   expansion function is still deterministic but may diverge, which we
//!   report separately ([`Purity::PureMayDiverge`], `LL0602`).
//! - A native livelit may **attest** purity
//!   (`LivelitDef::attest_pure`); the attestation is trusted but recorded
//!   distinctly so consumers can choose to keep spot-checking.
//! - Everything else is [`Purity::Unknown`] and keeps the dynamic check.

use hazel_lang::store::TermStore;
use livelit_core::LivelitDef;

use super::facts::{FactScout, TermFacts};
use crate::flow::engine::FactMemo;

/// The purity verdict for one livelit's expansion function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Purity {
    /// Proven pure and total-by-construction (no `fix` in the expansion
    /// function): expansion is a deterministic, terminating function of
    /// the model.
    Pure,
    /// Proven pure but the expansion function uses general recursion, so
    /// expansion may diverge (`LL0602`).
    PureMayDiverge,
    /// Purity attested by the livelit author rather than proven.
    Attested,
    /// No static evidence; the dynamic `LL0401` check remains in force.
    Unknown,
}

impl Purity {
    /// Whether this verdict licenses skipping the dynamic determinism
    /// check.
    pub fn is_deterministic(self) -> bool {
        !matches!(self, Purity::Unknown)
    }

    /// Whether the verdict was proven (rather than attested or absent).
    pub fn is_proven(self) -> bool {
        matches!(self, Purity::Pure | Purity::PureMayDiverge)
    }
}

/// Infers the purity of `def`'s expansion function.
///
/// Proof is preferred over attestation: a definition carrying an
/// object-language expansion function is analyzed even if it also
/// attests, because the proven verdict is strictly stronger.
pub fn infer_def(def: &LivelitDef) -> Purity {
    if let Some((d, _scheme)) = def.object_expand_fn() {
        // The internal language is effect-free, so an object-language
        // expansion function is pure by construction; only divergence
        // (via `fix`) remains possible.
        let mut store = TermStore::new();
        let root = store.intern_iexp(d);
        let memo: FactMemo<TermFacts> = FactMemo::new();
        let mut scout = FactScout::new(&store, &memo);
        let facts = scout.facts(root);
        return if facts.has_fix {
            Purity::PureMayDiverge
        } else {
            Purity::Pure
        };
    }
    if def.attested_pure() {
        return Purity::Attested;
    }
    Purity::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::ident::Var;
    use hazel_lang::typ::Typ;
    use hazel_lang::IExp;
    use livelit_core::def::EncodingScheme;

    fn int_model_def() -> LivelitDef {
        LivelitDef::native("$test", vec![], Typ::Int, Typ::Int, |_model| {
            Ok(hazel_lang::build::int(0))
        })
    }

    #[test]
    fn object_expansion_without_fix_is_pure() {
        let d = IExp::Lam(
            Var::new("model"),
            Typ::Int,
            Box::new(IExp::Var(Var::new("model"))),
        );
        let def = int_model_def().with_object_evidence(d, EncodingScheme::Text);
        assert_eq!(infer_def(&def), Purity::Pure);
    }

    #[test]
    fn object_expansion_with_fix_may_diverge() {
        let d = IExp::Fix(
            Var::new("go"),
            Typ::arrow(Typ::Int, Typ::Int),
            Box::new(IExp::Lam(
                Var::new("model"),
                Typ::Int,
                Box::new(IExp::Ap(
                    Box::new(IExp::Var(Var::new("go"))),
                    Box::new(IExp::Var(Var::new("model"))),
                )),
            )),
        );
        let def = int_model_def().with_object_evidence(d, EncodingScheme::Text);
        assert_eq!(infer_def(&def), Purity::PureMayDiverge);
    }

    #[test]
    fn attestation_is_trusted_but_distinct() {
        assert_eq!(infer_def(&int_model_def()), Purity::Unknown);
        assert_eq!(infer_def(&int_model_def().attest_pure()), Purity::Attested);
    }
}
