//! Context-independent per-term facts, memoized by hash-consed `TermId`.
//!
//! Every fact here is a pure function of the term itself — free-variable
//! use counts, hole inventories, effect bits — which is what makes the
//! `TermId` a sound memo key and lets structurally shared subterms (the
//! common case after a small edit, thanks to hash-consing) be analyzed
//! exactly once across definitions and runs.

use std::collections::HashMap;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use hazel_lang::ident::{HoleName, LivelitName};
use hazel_lang::store::{Node, TermId, TermStore, VarId};

use super::engine::{FactMemo, FactTally};

/// The facts computed for one term.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TermFacts {
    /// Free-variable occurrence counts (shadowing-aware): how many times
    /// each free variable is referenced by the term.
    pub use_counts: BTreeMap<VarId, u32>,
    /// Fillable holes in the term — empty and non-empty hole contexts,
    /// the positions through which liveness facts must flow (`LL07xx`).
    pub holes: BTreeSet<HoleName>,
    /// Holes occupied by livelit invocations (not fillable contexts).
    pub livelit_holes: BTreeSet<HoleName>,
    /// Livelits the term invokes.
    pub livelits: BTreeSet<LivelitName>,
    /// Whether the term contains general recursion (`fix`).
    pub has_fix: bool,
}

impl TermFacts {
    /// The use count for `x` (0 if unused).
    pub fn uses(&self, x: VarId) -> u32 {
        self.use_counts.get(&x).copied().unwrap_or(0)
    }

    fn merge(&mut self, other: &TermFacts) {
        for (x, n) in &other.use_counts {
            *self.use_counts.entry(*x).or_insert(0) += n;
        }
        self.holes.extend(other.holes.iter().copied());
        self.livelit_holes
            .extend(other.livelit_holes.iter().copied());
        self.livelits.extend(other.livelits.iter().cloned());
        self.has_fix |= other.has_fix;
    }

    /// Merges `other` with binders `bound` removed — occurrences of a
    /// bound variable inside the binder's scope are not free uses.
    fn merge_bound(&mut self, other: &TermFacts, bound: &[VarId]) {
        for (x, n) in &other.use_counts {
            if bound.contains(x) {
                continue;
            }
            *self.use_counts.entry(*x).or_insert(0) += n;
        }
        self.holes.extend(other.holes.iter().copied());
        self.livelit_holes
            .extend(other.livelit_holes.iter().copied());
        self.livelits.extend(other.livelits.iter().cloned());
        self.has_fix |= other.has_fix;
    }
}

/// A fact walker over one store: reads a shared base memo, writes fresh
/// facts to a local overlay, and tallies computed/reused counts locally.
///
/// The split is what keeps parallel fan-out deterministic: tasks analyze
/// against the *pre-run* memo snapshot (so their tallies depend only on
/// their own unit), and the calling thread absorbs the overlays in unit
/// order afterwards.
pub struct FactScout<'a> {
    store: &'a TermStore,
    base: &'a FactMemo<TermFacts>,
    local: HashMap<TermId, Arc<TermFacts>>,
    /// Insertion order of the overlay, for deterministic absorption.
    order: Vec<TermId>,
    /// Local computed/reused tallies.
    pub tally: FactTally,
}

impl<'a> FactScout<'a> {
    /// A scout over `store` reading `base`.
    pub fn new(store: &'a TermStore, base: &'a FactMemo<TermFacts>) -> FactScout<'a> {
        FactScout {
            store,
            base,
            local: HashMap::new(),
            order: Vec::new(),
            tally: FactTally::default(),
        }
    }

    fn lookup(&self, t: TermId) -> Option<Arc<TermFacts>> {
        self.local.get(&t).or_else(|| self.base.get(t)).cloned()
    }

    /// The facts for `t`, computing (and memoizing locally) as needed.
    pub fn facts(&mut self, root: TermId) -> Arc<TermFacts> {
        if let Some(f) = self.lookup(root) {
            self.tally.reused += 1;
            return f;
        }
        // Iterative post-order so deep programs cannot overflow the stack.
        let mut stack: Vec<(TermId, bool)> = vec![(root, false)];
        while let Some((t, expanded)) = stack.pop() {
            if expanded {
                if self.local.contains_key(&t) {
                    continue;
                }
                let f = self.compute(t);
                self.local.insert(t, Arc::new(f));
                self.order.push(t);
                self.tally.computed += 1;
                continue;
            }
            if self.lookup(t).is_some() {
                if t != root {
                    self.tally.reused += 1;
                }
                continue;
            }
            stack.push((t, true));
            for c in children(self.store.node(t)) {
                stack.push((c, false));
            }
        }
        self.lookup(root).expect("post-order computed the root")
    }

    /// Computes one node's facts from its children's memoized facts.
    fn compute(&self, t: TermId) -> TermFacts {
        let child = |c: TermId| -> Arc<TermFacts> {
            self.lookup(c).expect("children computed before parents")
        };
        let mut f = TermFacts::default();
        match self.store.node(t) {
            Node::Var(x) => {
                f.use_counts.insert(*x, 1);
            }
            Node::Int(_) | Node::Float(_) | Node::Bool(_) | Node::Str(_) | Node::Unit => {}
            Node::Nil(_) => {}
            Node::Lam(x, _, b) => f.merge_bound(&child(*b), &[*x]),
            Node::Fix(x, _, b) => {
                f.merge_bound(&child(*b), &[*x]);
                f.has_fix = true;
            }
            Node::Ap(a, b) | Node::Bin(_, a, b) | Node::Cons(a, b) => {
                f.merge(&child(*a));
                f.merge(&child(*b));
            }
            Node::If(c, a, b) => {
                f.merge(&child(*c));
                f.merge(&child(*a));
                f.merge(&child(*b));
            }
            Node::Tuple(fields) => {
                for (_, e) in fields {
                    f.merge(&child(*e));
                }
            }
            Node::Proj(e, _) | Node::Inj(_, _, e) | Node::Roll(_, e) | Node::Unroll(e) => {
                f.merge(&child(*e));
            }
            Node::UAsc(e, _) => f.merge(&child(*e)),
            Node::Case(scrut, arms) => {
                f.merge(&child(*scrut));
                for (_, x, body) in arms {
                    f.merge_bound(&child(*body), &[*x]);
                }
            }
            Node::ListCase(scrut, nil, h, tl, cons) => {
                f.merge(&child(*scrut));
                f.merge(&child(*nil));
                f.merge_bound(&child(*cons), &[*h, *tl]);
            }
            Node::EmptyHole(u, sigma) => {
                f.holes.insert(*u);
                for (_, e) in sigma {
                    f.merge(&child(*e));
                }
            }
            Node::NonEmptyHole(u, sigma, e) => {
                f.holes.insert(*u);
                for (_, se) in sigma {
                    f.merge(&child(*se));
                }
                f.merge(&child(*e));
            }
            Node::ULet(x, _, d, b) => {
                f.merge(&child(*d));
                f.merge_bound(&child(*b), &[*x]);
            }
            Node::ULivelit(name, splices, u) => {
                f.livelits.insert(name.clone());
                f.livelit_holes.insert(*u);
                for (e, _) in splices {
                    f.merge(&child(*e));
                }
            }
            Node::UEmptyHole(u) => {
                f.holes.insert(*u);
            }
            Node::UNonEmptyHole(u, e) => {
                f.holes.insert(*u);
                f.merge(&child(*e));
            }
        }
        f
    }

    /// Consumes the scout, returning the overlay of freshly computed
    /// facts in computation order (deterministic for a given unit).
    pub fn into_overlay(self) -> (Vec<(TermId, Arc<TermFacts>)>, FactTally) {
        let FactScout {
            local,
            order,
            tally,
            ..
        } = self;
        let mut local = local;
        let overlay = order
            .into_iter()
            .filter_map(|t| local.remove(&t).map(|f| (t, f)))
            .collect();
        (overlay, tally)
    }
}

/// The child term ids of one node, in syntactic order.
pub fn children(node: &Node) -> Vec<TermId> {
    match node {
        Node::Var(_)
        | Node::Int(_)
        | Node::Float(_)
        | Node::Bool(_)
        | Node::Str(_)
        | Node::Unit
        | Node::Nil(_)
        | Node::UEmptyHole(_) => Vec::new(),
        Node::Lam(_, _, b) | Node::Fix(_, _, b) => vec![*b],
        Node::Ap(a, b) | Node::Bin(_, a, b) | Node::Cons(a, b) => vec![*a, *b],
        Node::If(c, a, b) => vec![*c, *a, *b],
        Node::Tuple(fields) => fields.iter().map(|(_, e)| *e).collect(),
        Node::Proj(e, _) | Node::Inj(_, _, e) | Node::Roll(_, e) | Node::Unroll(e) => vec![*e],
        Node::UAsc(e, _) | Node::UNonEmptyHole(_, e) => vec![*e],
        Node::Case(scrut, arms) => std::iter::once(*scrut)
            .chain(arms.iter().map(|(_, _, b)| *b))
            .collect(),
        Node::ListCase(scrut, nil, _, _, cons) => vec![*scrut, *nil, *cons],
        Node::EmptyHole(_, sigma) => sigma.iter().map(|(_, e)| *e).collect(),
        Node::NonEmptyHole(_, sigma, e) => sigma
            .iter()
            .map(|(_, se)| *se)
            .chain(std::iter::once(*e))
            .collect(),
        Node::ULet(_, _, d, b) => vec![*d, *b],
        Node::ULivelit(_, splices, _) => splices.iter().map(|(e, _)| *e).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hazel_lang::parse::parse_uexp;

    fn facts_of(src: &str) -> TermFacts {
        let e = parse_uexp(src).unwrap();
        let mut store = TermStore::new();
        let root = store.intern_uexp_skeleton(&e);
        let memo = FactMemo::new();
        let mut scout = FactScout::new(&store, &memo);
        let f = scout.facts(root);
        (*f).clone()
    }

    #[test]
    fn use_counts_respect_shadowing() {
        let f = facts_of("fun x : Int -> x + x");
        assert!(f.use_counts.is_empty(), "binder occurrences are not free");
        let f = facts_of("let y = x in x + y");
        // x occurs free twice (def + body); y is bound.
        assert_eq!(f.use_counts.values().copied().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn holes_and_fix_are_collected() {
        let f = facts_of("let f = fix g : (Int -> Int) -> fun n : Int -> g n in ?1");
        assert!(f.has_fix);
        assert_eq!(f.holes.len(), 1);
    }

    #[test]
    fn shared_subterms_hit_the_memo() {
        let e = parse_uexp("(1 + 2) * (1 + 2)").unwrap();
        let mut store = TermStore::new();
        let root = store.intern_uexp_skeleton(&e);
        let memo = FactMemo::new();
        let mut scout = FactScout::new(&store, &memo);
        scout.facts(root);
        // `1 + 2` interned once; its second occurrence is a reuse.
        assert!(scout.tally.reused >= 1, "tally: {:?}", scout.tally);
    }
}
