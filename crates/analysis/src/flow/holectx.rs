//! `LL07xx` — hole-context facts: liveness flows through holes.
//!
//! A fillable hole is not an opaque gap: its typing context (Sec. 4.1)
//! says exactly which bindings a future fill could reference, and its
//! position says whether a fill could ever run. This module renders the
//! two consequences of the liveness scan's events:
//!
//! - `LL0701` — a binding with no uses *yet*, but with fillable holes in
//!   its scope: removing it would change the contexts of those holes, so
//!   the finding is informational rather than the `LL0501` warning.
//! - `LL0702` — a fillable hole inside an unreachable region: no fill
//!   can ever be evaluated there, so GUI effort on it is wasted.

use crate::diagnostic::{Code, Diagnostic, Location, Severity};

use super::liveness::LiveEvent;

/// Renders the `LL07xx` diagnostics for a unit's liveness events.
pub fn diagnostics(events: &[LiveEvent], at: &Location) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for event in events {
        match event {
            LiveEvent::UnusedBinding { var, fillable } if !fillable.is_empty() => {
                let n = fillable.len();
                let holes = fillable
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push(
                    Diagnostic::new(
                        Code::LiveOnlyAtHoles,
                        Severity::Info,
                        at.clone(),
                        format!(
                            "binding `{var}` has no uses yet, but {n} hole(s) in its \
                             scope could reference it: {holes}"
                        ),
                    )
                    .with_note(
                        "liveness flows through holes: filling a hole may create \
                         the first use (Sec. 4.1)"
                            .to_string(),
                    ),
                );
            }
            LiveEvent::UnusedBinding { .. } => {}
            LiveEvent::DeadRegion { detail, holes } => {
                for u in holes {
                    out.push(
                        Diagnostic::new(
                            Code::UnreachableHole,
                            Severity::Info,
                            Location::Hole(*u),
                            format!("hole {u} is inside an unreachable {detail}"),
                        )
                        .with_note(format!(
                            "no fill of this hole can ever be evaluated (unit: {at})"
                        )),
                    );
                }
            }
        }
    }
    out
}
