//! A demand-driven, incremental dataflow-analysis framework over the
//! hash-consed term store.
//!
//! The pieces compose bottom-up:
//!
//! - [`engine`] — a generic monotone-fixpoint solver over an arbitrary
//!   join-semilattice, plus the [`engine::FactMemo`] that keys per-term
//!   facts on hash-consed `TermId`s so structurally shared subterms are
//!   analyzed once.
//! - [`facts`] — the term facts themselves: free-variable use counts,
//!   fillable-hole inventories, and effect bits, computed bottom-up and
//!   memoized by `TermId`.
//! - [`liveness`] — the `LL05xx` reachability/liveness family: unused
//!   bindings, unreachable match arms and branches, and (via the
//!   cross-definition fixpoint in [`analyzer`]) unused definitions.
//! - [`purity`] — the `LL06xx` static purity/effect inference for
//!   expansion functions: a conservative effect lattice over the
//!   elaborated internal language that proves most expansions
//!   deterministic, so the dynamic `LL0401` double-expansion check runs
//!   only on the residue.
//! - [`holectx`] — the `LL07xx` hole-context facts: liveness flows
//!   *through* holes (a binding in scope at a hole may gain uses when the
//!   hole is filled), and holes in unreachable code are flagged vacuous.
//! - [`splice_graph`] — the splice-reference graph, built on the same
//!   store facts, from which the `LL0101`/`LL0102` splice-discipline
//!   lints are derived.
//! - [`analyzer`] — [`analyzer::FlowAnalyzer`]: the stateful,
//!   per-definition incremental driver with dirty-set invalidation and
//!   deterministic parallel fan-out.

pub mod analyzer;
pub mod engine;
pub mod facts;
pub mod holectx;
pub mod liveness;
pub mod purity;
pub mod splice_graph;

pub use analyzer::{FlowAnalyzer, FlowUnit};
pub use engine::{FactMemo, Fixpoint, Lattice, SolveStats};
pub use facts::TermFacts;
pub use purity::{infer_def, Purity};
