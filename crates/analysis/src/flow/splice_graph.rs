//! The splice-reference graph, derived from memoized term facts.
//!
//! The splice-discipline lints (`LL0101` dead splice, `LL0102`
//! duplicated splice) need, for each splice of an invocation, the number
//! of references the parameterized expansion makes to it. The original
//! pass recomputed that with an ad-hoc recursive walk per splice —
//! O(splices × |expansion|) per invocation, from scratch on every
//! analysis run. Here the counts are instead read off the
//! [`TermFacts`](super::facts::TermFacts) of the expansion's hash-consed
//! skeleton: interning is shared with everything else that interns the
//! same expansion, the per-term facts are memoized by `TermId`, and all
//! splices of an invocation are answered by one bottom-up pass.
//!
//! The store and memo are thread-local rather than global so parallel
//! analysis tasks never contend (and never observe each other's memo
//! state, keeping per-task tallies deterministic).

use std::cell::RefCell;

use hazel_lang::store::{Node, TermStore};
use hazel_lang::unexpanded::{LivelitAp, UExp};
use livelit_core::def::LivelitCtx;
use livelit_core::expansion::expand_invocation;

use super::engine::FactMemo;
use super::facts::{FactScout, TermFacts};
use crate::diagnostic::{Code, Diagnostic, Location, Severity};

thread_local! {
    /// Per-thread skeleton store + fact memo for expansion analysis.
    static GRAPH: RefCell<(TermStore, FactMemo<TermFacts>)> =
        RefCell::new((TermStore::new(), FactMemo::new()));
}

/// Per-splice reference counts for one invocation, in splice order.
///
/// The parameterized expansion has curried type `{τi}^(i<n) → τ_expand`;
/// when it is syntactically a chain of lambdas, each binder stands for
/// one splice and its free-occurrence count in the remaining body is
/// that splice's reference count. The returned vector covers the peeled
/// prefix only — expansions that are not syntactic lambda chains (e.g.
/// produced by an application) stop the peel, and a failed expansion
/// yields `None`.
pub fn splice_reference_counts(phi: &LivelitCtx, ap: &LivelitAp) -> Option<Vec<u32>> {
    let pe = expand_invocation(phi, ap).ok()?;
    let skeleton = UExp::from_eexp(&pe.pexpansion);
    Some(GRAPH.with(|cell| {
        let mut graph = cell.borrow_mut();
        let (store, memo) = &mut *graph;
        let root = store.intern_uexp_skeleton(&skeleton);
        let mut scout = FactScout::new(store, memo);
        let mut counts = Vec::with_capacity(ap.splices.len());
        let mut term = root;
        for _ in 0..ap.splices.len() {
            let Node::Lam(x, _, body) = store.node(term) else {
                break;
            };
            let (x, body) = (*x, *body);
            counts.push(scout.facts(body).uses(x));
            term = body;
        }
        let (overlay, _tally) = scout.into_overlay();
        memo.absorb(overlay);
        counts
    }))
}

/// Checks the evaluated-once discipline for one invocation, producing
/// the `LL0101`/`LL0102` diagnostics.
pub fn check_invocation(phi: &LivelitCtx, ap: &LivelitAp) -> Vec<Diagnostic> {
    let Some(counts) = splice_reference_counts(phi, ap) else {
        return Vec::new();
    };
    let name = &ap.name;
    let mut out = Vec::new();
    for (index, count) in counts.into_iter().enumerate() {
        let location = Location::Splice {
            hole: ap.hole,
            index,
        };
        if count == 0 {
            out.push(
                Diagnostic::new(
                    Code::DeadSplice,
                    Severity::Warning,
                    location,
                    format!(
                        "splice {index} of {name} is never referenced by the expansion; \
                         edits to it cannot affect the result"
                    ),
                )
                .with_note("splices are evaluated exactly once (Sec. 3.2.3)".to_string()),
            );
        } else if count > 1 {
            out.push(
                Diagnostic::new(
                    Code::DuplicatedSplice,
                    Severity::Warning,
                    location,
                    format!(
                        "splice {index} of {name} is referenced {count} times by the \
                         expansion; splices should be referenced exactly once"
                    ),
                )
                .with_note("splices are evaluated exactly once (Sec. 3.2.3)".to_string()),
            );
        }
    }
    out
}
