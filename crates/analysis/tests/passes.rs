//! Pass-level tests: every `ELivelit` failure mode maps to a distinct
//! stable code, the disciplines fire exactly when they should, and the
//! report output is deterministic.

use std::sync::atomic::{AtomicI64, Ordering};

use hazel_lang::build::*;
use hazel_lang::ident::{HoleName, Label};
use hazel_lang::typing::Ctx;
use hazel_lang::unexpanded::{LivelitAp, Splice, UExp};
use hazel_lang::{IExp, Typ};
use livelit_analysis::{lint_def, AnalysisInput, Analyzer, Code, Location, Report, Severity};
use livelit_core::def::{LivelitCtx, LivelitDef};

fn error_codes(report: &Report) -> Vec<Code> {
    report
        .diagnostics()
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code)
        .collect()
}

fn analyze(phi: &LivelitCtx, program: &UExp) -> Report {
    Analyzer::with_default_passes().analyze(&AnalysisInput {
        phi,
        program,
        ctx: &Ctx::empty(),
    })
}

fn invoke(name: &str, model: IExp, splices: Vec<Splice>, hole: u64) -> UExp {
    UExp::Livelit(Box::new(LivelitAp {
        name: name.into(),
        model,
        splices,
        hole: HoleName(hole),
    }))
}

/// A well-behaved one-splice livelit: `$double(s) ~> (fun s -> s + s)`...
/// intentionally NOT — that would duplicate the splice. This one uses its
/// splice exactly once: `(fun s -> s + 1)`.
fn good_def() -> LivelitDef {
    LivelitDef::native("$bump", vec![Typ::Int], Typ::Int, Typ::Unit, |_| {
        Ok(lam("s", Typ::Int, add(var("s"), int(1))))
    })
    .attest_pure()
}

// ----------------------------------------------------------------------
// Hygiene: the six ELivelit failure modes, each with its own code.
// ----------------------------------------------------------------------

#[test]
fn ll0001_unbound_livelit() {
    let phi = LivelitCtx::new();
    let report = analyze(&phi, &invoke("$ghost", IExp::Unit, vec![], 0));
    assert_eq!(error_codes(&report), vec![Code::UnboundLivelit]);
    assert_eq!(report.error_count(), 1);
}

#[test]
fn ll0002_model_type_mismatch() {
    let mut phi = LivelitCtx::new();
    phi.define(good_def()).unwrap();
    let program = invoke(
        "$bump",
        IExp::Bool(true), // model type is Unit
        vec![Splice::new(UExp::Int(1), Typ::Int)],
        0,
    );
    let report = analyze(&phi, &program);
    assert_eq!(error_codes(&report), vec![Code::ModelType]);
}

#[test]
fn ll0003_expand_failure() {
    let mut phi = LivelitCtx::new();
    phi.define(
        LivelitDef::native("$crashy", vec![], Typ::Int, Typ::Unit, |_| {
            Err("the GUI fell over".into())
        })
        .attest_pure(),
    )
    .unwrap();
    let report = analyze(&phi, &invoke("$crashy", IExp::Unit, vec![], 0));
    assert_eq!(error_codes(&report), vec![Code::ExpandFailure]);
    assert!(report.diagnostics()[0].message.contains("fell over"));
}

#[test]
fn ll0004_capture_is_flagged_with_the_captured_variables() {
    let mut phi = LivelitCtx::new();
    phi.define(
        LivelitDef::native("$leaky", vec![], Typ::Int, Typ::Unit, |_| {
            Ok(add(var("client_x"), var("client_y")))
        })
        .attest_pure(),
    )
    .unwrap();
    let program = UExp::Let(
        "client_x".into(),
        None,
        Box::new(UExp::Int(1)),
        Box::new(invoke("$leaky", IExp::Unit, vec![], 0)),
    );
    let report = analyze(&phi, &program);
    assert_eq!(error_codes(&report), vec![Code::NotClosed]);
    let d = &report.diagnostics()[0];
    assert_eq!(d.location, Location::Hole(HoleName(0)));
    assert!(d.notes.iter().any(|n| n.contains("client_x")));
    assert!(d.notes.iter().any(|n| n.contains("client_y")));
}

#[test]
fn ll0005_expansion_type_mismatch() {
    let mut phi = LivelitCtx::new();
    phi.define(LivelitDef::native(
        "$shifty",
        vec![],
        Typ::Int,
        Typ::Unit,
        |_| Ok(boolean(true)), // declared to expand at Int
    ))
    .unwrap();
    let report = analyze(&phi, &invoke("$shifty", IExp::Unit, vec![], 0));
    assert_eq!(error_codes(&report), vec![Code::ExpansionType]);
}

#[test]
fn ll0006_splice_type_error_under_client_gamma() {
    let mut phi = LivelitCtx::new();
    phi.define(good_def()).unwrap();
    // The splice claims Int but contains a Bool.
    let program = invoke(
        "$bump",
        IExp::Unit,
        vec![Splice::new(UExp::Bool(true), Typ::Int)],
        0,
    );
    let report = analyze(&phi, &program);
    assert!(report.codes().contains(&Code::SpliceType), "{report:?}");
}

#[test]
fn ll0007_missing_parameters() {
    let mut phi = LivelitCtx::new();
    phi.define(good_def()).unwrap();
    let report = analyze(&phi, &invoke("$bump", IExp::Unit, vec![], 0));
    assert_eq!(error_codes(&report), vec![Code::MissingParameters]);
}

#[test]
fn ll0008_parameter_type_mismatch() {
    let mut phi = LivelitCtx::new();
    phi.define(good_def()).unwrap();
    let program = invoke(
        "$bump",
        IExp::Unit,
        vec![Splice::new(UExp::Bool(true), Typ::Bool)], // declared Int
        0,
    );
    let report = analyze(&phi, &program);
    assert_eq!(error_codes(&report), vec![Code::ParameterType]);
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::ParameterType)
        .unwrap();
    assert_eq!(
        d.location,
        Location::Splice {
            hole: HoleName(0),
            index: 0
        }
    );
}

#[test]
fn a_clean_invocation_yields_zero_diagnostics() {
    let mut phi = LivelitCtx::new();
    phi.define(good_def()).unwrap();
    let program = invoke(
        "$bump",
        IExp::Unit,
        vec![Splice::new(UExp::Int(41), Typ::Int)],
        0,
    );
    let report = analyze(&phi, &program);
    assert!(report.is_empty(), "{}", report.render());
}

// ----------------------------------------------------------------------
// Splice discipline.
// ----------------------------------------------------------------------

#[test]
fn ll0101_and_ll0102_dead_and_duplicated_splices() {
    let mut phi = LivelitCtx::new();
    // (fun a -> fun b -> a + a): a referenced twice, b never.
    phi.define(
        LivelitDef::native(
            "$lopsided",
            vec![Typ::Int, Typ::Int],
            Typ::Int,
            Typ::Unit,
            |_| {
                Ok(lam(
                    "a",
                    Typ::Int,
                    lam("b", Typ::Int, add(var("a"), var("a"))),
                ))
            },
        )
        .attest_pure(),
    )
    .unwrap();
    let program = invoke(
        "$lopsided",
        IExp::Unit,
        vec![
            Splice::new(UExp::Int(1), Typ::Int),
            Splice::new(UExp::Int(2), Typ::Int),
        ],
        0,
    );
    let report = analyze(&phi, &program);
    assert_eq!(
        report.codes(),
        vec![Code::DuplicatedSplice, Code::DeadSplice]
    );
    assert_eq!(
        report.diagnostics()[0].location,
        Location::Splice {
            hole: HoleName(0),
            index: 0
        }
    );
    assert_eq!(
        report.diagnostics()[1].location,
        Location::Splice {
            hole: HoleName(0),
            index: 1
        }
    );
    assert!(report.error_count() == 0, "discipline lints are warnings");
}

#[test]
fn splice_counting_respects_shadowing_in_the_expansion() {
    let mut phi = LivelitCtx::new();
    // (fun s -> let s = s + 1 in s): the outer s is referenced exactly
    // once — the body's s is the let-bound one.
    phi.define(
        LivelitDef::native("$shadow", vec![Typ::Int], Typ::Int, Typ::Unit, |_| {
            Ok(lam(
                "s",
                Typ::Int,
                elet("s", add(var("s"), int(1)), var("s")),
            ))
        })
        .attest_pure(),
    )
    .unwrap();
    let program = invoke(
        "$shadow",
        IExp::Unit,
        vec![Splice::new(UExp::Int(1), Typ::Int)],
        0,
    );
    assert!(analyze(&phi, &program).is_empty());
}

// ----------------------------------------------------------------------
// Hole audit.
// ----------------------------------------------------------------------

#[test]
fn ll0201_and_ll0202_hole_inventory_and_uninhabitable_holes() {
    let mut phi = LivelitCtx::new();
    phi.define(LivelitDef::native(
        "$answer",
        vec![],
        Typ::Int,
        Typ::Unit,
        |_| Ok(int(42)),
    ))
    .unwrap();
    // ?0 : Int is fillable by $answer; ?1 : Bool is not fillable by any
    // registered livelit.
    let program = UExp::Let(
        "x".into(),
        None,
        Box::new(UExp::Asc(Box::new(UExp::EmptyHole(HoleName(0))), Typ::Int)),
        Box::new(UExp::Asc(Box::new(UExp::EmptyHole(HoleName(1))), Typ::Bool)),
    );
    let report = analyze(&phi, &program);
    assert_eq!(
        report.codes(),
        vec![
            Code::HoleInventory,
            Code::HoleInventory,
            Code::HoleUninhabitable
        ]
    );
    let u1 = report.for_hole(HoleName(1));
    assert!(u1.iter().any(|d| d.code == Code::HoleUninhabitable));
    // The inventory for ?1 sees `x : Int` in scope.
    assert!(u1
        .iter()
        .any(|d| d.notes.iter().any(|n| n.contains("x : Int"))));
    assert_eq!(report.error_count(), 0);
}

#[test]
fn ll0203_failed_invocations_audit_as_live_nonempty_holes() {
    let mut phi = LivelitCtx::new();
    phi.define(LivelitDef::native(
        "$crashy",
        vec![],
        Typ::Int,
        Typ::Unit,
        |_| Err("boom".into()),
    ))
    .unwrap();
    // The failing invocation sits inside a larger program that still
    // audits: its own hole is marked non-empty, not inventoried as empty.
    let program = UExp::Bin(
        hazel_lang::BinOp::Add,
        Box::new(invoke("$crashy", IExp::Unit, vec![], 0)),
        Box::new(UExp::Int(1)),
    );
    let report = analyze(&phi, &program);
    assert!(report.codes().contains(&Code::ExpandFailure));
    assert!(report.codes().contains(&Code::NonEmptyHole));
    assert!(!report.codes().contains(&Code::HoleInventory));
}

// ----------------------------------------------------------------------
// Definition lints.
// ----------------------------------------------------------------------

#[test]
fn ll0301_non_first_order_model() {
    let def = LivelitDef::native(
        "$higher",
        vec![],
        Typ::Int,
        Typ::arrow(Typ::Int, Typ::Int),
        |_| Ok(int(0)),
    );
    let codes: Vec<Code> = lint_def(&def).iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::NonFirstOrderModel]);
}

#[test]
fn ll0302_name_convention_is_a_warning() {
    let def = LivelitDef::native("$BigSlider", vec![], Typ::Int, Typ::Unit, |_| Ok(int(0)));
    let lints = lint_def(&def);
    assert_eq!(lints.len(), 1);
    assert_eq!(lints[0].code, Code::NameConvention);
    assert_eq!(lints[0].severity, Severity::Warning);
    // Warnings do not gate registration.
    assert!(livelit_analysis::definition_errors(&def).is_empty());
}

#[test]
fn ll0303_open_expansion_type() {
    let def = LivelitDef::native("$openly", vec![], Typ::Var("t".into()), Typ::Unit, |_| {
        Ok(int(0))
    });
    let codes: Vec<Code> = lint_def(&def).iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::OpenExpansionType]);
}

#[test]
fn ll0304_ill_formed_object_definition() {
    // An object-language expansion function that is not of type
    // τ_model → Exp (it is Int, not a function at all).
    let def = LivelitDef::object("$broken", vec![], Typ::Int, Typ::Unit, IExp::Int(3));
    let codes: Vec<Code> = lint_def(&def).iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![Code::IllFormedDefinition]);
}

#[test]
fn definition_lints_run_over_phi_in_the_default_analyzer() {
    let mut phi = LivelitCtx::new();
    phi.define(LivelitDef::native(
        "$Odd_Name",
        vec![],
        Typ::Int,
        Typ::Unit,
        |_| Ok(int(1)),
    ))
    .unwrap();
    let report = analyze(&phi, &UExp::Int(0));
    assert_eq!(report.codes(), vec![Code::NameConvention]);
    assert_eq!(
        report.diagnostics()[0].location,
        Location::Livelit("$Odd_Name".into())
    );
}

// ----------------------------------------------------------------------
// Determinism.
// ----------------------------------------------------------------------

#[test]
fn ll0401_impure_expand_is_caught_by_expanding_twice() {
    static TICKS: AtomicI64 = AtomicI64::new(0);
    let mut phi = LivelitCtx::new();
    phi.define(LivelitDef::native(
        "$clock",
        vec![],
        Typ::Int,
        Typ::Unit,
        |_| Ok(int(TICKS.fetch_add(1, Ordering::SeqCst))),
    ))
    .unwrap();
    let report = analyze(&phi, &invoke("$clock", IExp::Unit, vec![], 0));
    assert!(
        report.codes().contains(&Code::ImpureExpansion),
        "{report:?}"
    );
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::ImpureExpansion)
        .unwrap();
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.notes.len(), 2, "both expansions are shown");
}

#[test]
fn ll0601_marks_invocations_without_static_purity_evidence() {
    let mut phi = LivelitCtx::new();
    // Identical expansion logic, one attested and one not: only the
    // unattested one keeps the dynamic check and its LL0601 marker.
    phi.define(LivelitDef::native(
        "$spotchecked",
        vec![],
        Typ::Int,
        Typ::Unit,
        |_| Ok(int(7)),
    ))
    .unwrap();
    let report = analyze(&phi, &invoke("$spotchecked", IExp::Unit, vec![], 0));
    let d = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::PurityUnknown)
        .expect("unattested native livelits are marked LL0601");
    assert_eq!(d.severity, Severity::Info);
    assert_eq!(d.location, Location::Livelit("$spotchecked".into()));

    let mut phi = LivelitCtx::new();
    phi.define(
        LivelitDef::native("$attested", vec![], Typ::Int, Typ::Unit, |_| Ok(int(7))).attest_pure(),
    )
    .unwrap();
    let report = analyze(&phi, &invoke("$attested", IExp::Unit, vec![], 0));
    assert!(
        !report.codes().contains(&Code::PurityUnknown),
        "static purity evidence discharges the dynamic check entirely"
    );
}

#[test]
fn pure_expansions_pass_the_determinism_check() {
    let mut phi = LivelitCtx::new();
    phi.define(good_def()).unwrap();
    let program = invoke(
        "$bump",
        IExp::Unit,
        vec![Splice::new(UExp::Int(1), Typ::Int)],
        0,
    );
    assert!(!analyze(&phi, &program)
        .codes()
        .contains(&Code::ImpureExpansion));
}

// ----------------------------------------------------------------------
// Report output.
// ----------------------------------------------------------------------

#[test]
fn reports_are_deterministic_and_machine_readable() {
    let mut phi = LivelitCtx::new();
    phi.define(LivelitDef::native(
        "$leaky",
        vec![],
        Typ::Int,
        Typ::Unit,
        |_| Ok(var("outer")),
    ))
    .unwrap();
    let program = UExp::Let(
        "outer".into(),
        None,
        Box::new(UExp::Int(1)),
        Box::new(invoke("$leaky", IExp::Unit, vec![], 7)),
    );
    let a = analyze(&phi, &program);
    let b = analyze(&phi, &program);
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
    assert!(a.to_json().contains("\"code\": \"LL0004\""));
    assert!(a.to_json().contains("{\"kind\": \"hole\", \"hole\": 7}"));
}

#[test]
fn analyze_invocation_matches_the_invocation_scoped_passes() {
    let mut phi = LivelitCtx::new();
    phi.define(good_def()).unwrap();
    let ap = LivelitAp {
        name: "$bump".into(),
        model: IExp::Unit,
        splices: vec![],
        hole: HoleName(3),
    };
    let found = livelit_analysis::analyze_invocation(&phi, &ap);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].code, Code::MissingParameters);
}

#[test]
fn record_models_are_first_order() {
    // The shapes the standard library actually uses must stay first-order.
    let color_model = Typ::prod([
        (Label::new("r"), Typ::Int),
        (Label::new("g"), Typ::Int),
        (Label::new("b"), Typ::Int),
        (Label::new("a"), Typ::Int),
    ]);
    let def = LivelitDef::native("$color", vec![], color_model.clone(), color_model, |_| {
        Ok(unit())
    });
    assert!(lint_def(&def)
        .iter()
        .all(|d| d.code != Code::NonFirstOrderModel));
}
