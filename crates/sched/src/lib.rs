//! `livelit-sched`: a zero-dependency scoped work-stealing thread pool for
//! the embarrassingly-parallel hot loops of live evaluation.
//!
//! The paper's live semantics make every livelit invocation independently
//! evaluable: closure collection produces per-hole environments whose
//! fill-and-resume steps share no mutable state, and each splice's live
//! result depends only on its elaboration and its σ. This crate supplies
//! the scheduling substrate those loops fan out on:
//!
//! - **Scoped**: workers are spawned per parallel region with
//!   [`std::thread::scope`], so tasks may borrow from the caller's stack —
//!   no `'static` bounds, no task boxing, no channels.
//! - **Work-stealing**: tasks are dealt round-robin onto per-worker deques;
//!   a worker pops its own deque from the back and steals from the front of
//!   its siblings when it runs dry, so skewed workloads (one huge σ among
//!   many small ones) still saturate the cores.
//! - **Deterministic by construction**: the pool never reorders *results* —
//!   [`Pool::map`] scatters each task's output back to its input index, so
//!   callers observe a plain indexed map regardless of execution
//!   interleaving. Callers must keep tasks independent (output `i` depends
//!   only on input `i`); under that contract, runs at any worker count are
//!   bit-identical.
//! - **Panic-isolating**: each task runs under
//!   [`std::panic::catch_unwind`]; a panicking task yields a [`TaskPanic`]
//!   in its result slot instead of aborting the host or poisoning its
//!   siblings.
//! - **Big stacks**: workers get the same 512 MiB stacks the sequential
//!   evaluator's `run_on_big_stack` uses, so deep recursion behaves
//!   identically on and off the pool.
//!
//! Worker count comes from `LIVELIT_THREADS` (default: available
//! parallelism; `1` preserves the sequential path exactly — one big-stack
//! worker runs the tasks in index order). Tests pin the count with
//! [`set_workers_override`] without touching the process environment.
//!
//! The crate is std-only: the build is hermetic and offline.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Stack size for pool workers: matches the evaluator's big stack so deep
/// recursion behaves identically whether a task runs on or off the pool.
pub const WORKER_STACK_BYTES: usize = 512 * 1024 * 1024;

/// A captured panic from a pool task: the task's index slot holds this
/// instead of a result, and every sibling task still runs to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic payload rendered to text (`&str` and `String` payloads are
    /// preserved verbatim; anything else becomes a fixed placeholder).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Renders a panic payload the way `std` would print it.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Utilization counters for one parallel region, reported by [`Pool::map`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed (= number of input items).
    pub tasks: u64,
    /// Tasks a worker took from a sibling's deque rather than its own.
    pub steals: u64,
    /// Total worker-nanoseconds not spent executing tasks: the region's
    /// wall time times the worker count, minus the summed task runtimes.
    /// A measure of scheduling overhead plus load imbalance.
    pub idle_ns: u64,
}

impl PoolStats {
    /// Accumulates another region's counters into this one.
    pub fn merge(&mut self, other: PoolStats) {
        self.tasks += other.tasks;
        self.steals += other.steals;
        self.idle_ns += other.idle_ns;
    }
}

/// Tasks dealt onto deques but not yet started, across every in-flight
/// parallel region in the process (a gauge: rises at region start, drains
/// as workers pick tasks up).
static QUEUE_DEPTH: AtomicU64 = AtomicU64::new(0);
/// Tasks executed since process start (a monotonic total).
static TOTAL_TASKS: AtomicU64 = AtomicU64::new(0);
/// Tasks stolen from a sibling's deque since process start.
static TOTAL_STEALS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the process-global scheduler gauges,
/// readable without a tracer installed — the `hazel serve` `metrics` op
/// reports these alongside the latency histograms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Tasks currently queued on deques and not yet started.
    pub queue_depth: u64,
    /// Tasks executed since process start.
    pub tasks: u64,
    /// Tasks stolen from a sibling's deque since process start.
    pub steals: u64,
}

/// Reads the process-global scheduler gauges.
pub fn gauges() -> GaugeSnapshot {
    GaugeSnapshot {
        queue_depth: QUEUE_DEPTH.load(Ordering::Relaxed),
        tasks: TOTAL_TASKS.load(Ordering::Relaxed),
        steals: TOTAL_STEALS.load(Ordering::Relaxed),
    }
}

/// Test override for the worker count; `0` means "not set".
static WORKERS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `LIVELIT_THREADS` parsed once per process.
static ENV_WORKERS: OnceLock<usize> = OnceLock::new();

/// The configured worker count: the test override if set, else
/// `LIVELIT_THREADS` if set to a positive integer, else the machine's
/// available parallelism (falling back to 1).
///
/// The accepted `LIVELIT_THREADS` range is the positive integers (`1`
/// disables parallelism, values above the core count are allowed). A set
/// but unusable value — `0`, negative, or unparseable — is *not* silently
/// swallowed: the first read warns once on stderr, naming the fallback,
/// then uses the machine's available parallelism.
pub fn configured_workers() -> usize {
    let forced = WORKERS_OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    *ENV_WORKERS.get_or_init(|| {
        let default = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        match std::env::var("LIVELIT_THREADS").ok() {
            None => default,
            Some(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    // Once per process: ENV_WORKERS memoizes this closure.
                    eprintln!(
                        "warning: ignoring LIVELIT_THREADS={raw:?}: \
                         expected an integer >= 1; \
                         falling back to available parallelism ({default})"
                    );
                    default
                }
            },
        }
    })
}

/// Forces the worker count for subsequent [`Pool::global`] calls
/// (`Some(n)`) or restores the environment-derived default (`None`).
/// For tests: the property suite runs the same programs at pool sizes
/// 1/2/8 in one process, where an env var would race across test threads.
pub fn set_workers_override(workers: Option<usize>) {
    WORKERS_OVERRIDE.store(workers.unwrap_or(0), Ordering::Relaxed);
}

/// A work-stealing pool configuration. Creating one is free — workers are
/// scoped to each [`Pool::map`] call, not kept alive between regions.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool with an explicit worker count (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
        }
    }

    /// The pool configured by [`set_workers_override`] / `LIVELIT_THREADS`.
    pub fn global() -> Pool {
        Pool::with_workers(configured_workers())
    }

    /// The worker count this pool will spawn (before clamping to the task
    /// count of a particular region).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item, in parallel, returning the outputs in
    /// input order along with the region's utilization counters.
    ///
    /// Slot `i` holds `f(i, &items[i])`, or the captured [`TaskPanic`] if
    /// that task panicked. Execution order across slots is unspecified at
    /// worker counts > 1; with 1 worker, tasks run in index order on a
    /// single big-stack thread — exactly the sequential path.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> (Vec<Result<R, TaskPanic>>, PoolStats)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return (Vec::new(), PoolStats::default());
        }
        let workers = self.workers.min(n);
        let start = Instant::now();

        // Round-robin deal onto per-worker deques. Each worker pops its own
        // deque from the back (LIFO keeps its cache warm) and steals from
        // the front of the others (FIFO takes the oldest, largest-grained
        // work first).
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                Mutex::new(
                    (0..n)
                        .filter(|i| i % workers == w)
                        .collect::<VecDeque<usize>>(),
                )
            })
            .collect();
        QUEUE_DEPTH.fetch_add(n as u64, Ordering::Relaxed);

        let mut slots: Vec<Option<Result<R, TaskPanic>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut steals = 0u64;
        let mut busy_ns = 0u64;

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let deques = &deques;
                    let f = &f;
                    std::thread::Builder::new()
                        .name(format!("livelit-sched-{w}"))
                        .stack_size(WORKER_STACK_BYTES)
                        .spawn_scoped(scope, move || {
                            let mut out: Vec<(usize, Result<R, TaskPanic>)> = Vec::new();
                            let mut local_steals = 0u64;
                            let mut local_busy_ns = 0u64;
                            loop {
                                // Own deque first (back), then steal (front).
                                let next = deques[w]
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner)
                                    .pop_back();
                                let (i, stolen) = match next {
                                    Some(i) => (i, false),
                                    None => {
                                        let mut found = None;
                                        for v in 1..workers {
                                            let victim = (w + v) % workers;
                                            let task = deques[victim]
                                                .lock()
                                                .unwrap_or_else(PoisonError::into_inner)
                                                .pop_front();
                                            if let Some(i) = task {
                                                found = Some(i);
                                                break;
                                            }
                                        }
                                        match found {
                                            Some(i) => (i, true),
                                            None => break,
                                        }
                                    }
                                };
                                if stolen {
                                    local_steals += 1;
                                }
                                QUEUE_DEPTH.fetch_sub(1, Ordering::Relaxed);
                                let task_start = Instant::now();
                                let result = catch_unwind(AssertUnwindSafe(|| f(i, &items[i])))
                                    .map_err(|payload| TaskPanic {
                                        message: panic_message(payload),
                                    });
                                local_busy_ns += task_start.elapsed().as_nanos() as u64;
                                out.push((i, result));
                            }
                            (out, local_steals, local_busy_ns)
                        })
                        .expect("spawn pool worker")
                })
                .collect();
            for handle in handles {
                // A worker thread itself cannot panic — every task body is
                // wrapped in catch_unwind — so join only fails on external
                // thread termination.
                let (out, local_steals, local_busy_ns) =
                    handle.join().expect("pool worker terminated abnormally");
                steals += local_steals;
                busy_ns += local_busy_ns;
                for (i, result) in out {
                    slots[i] = Some(result);
                }
            }
        });

        let wall_ns = start.elapsed().as_nanos() as u64;
        TOTAL_TASKS.fetch_add(n as u64, Ordering::Relaxed);
        TOTAL_STEALS.fetch_add(steals, Ordering::Relaxed);
        let stats = PoolStats {
            tasks: n as u64,
            steals,
            // The single-worker pool is the sequential path: there is no
            // parallel idleness to report, and reporting spawn overhead
            // would make even deterministic traces vary run to run.
            idle_ns: if workers > 1 {
                (wall_ns * workers as u64).saturating_sub(busy_ns)
            } else {
                0
            },
        };
        let results = slots
            .into_iter()
            .map(|slot| slot.expect("every task index was executed exactly once"))
            .collect();
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order_at_every_worker_count() {
        let items: Vec<u64> = (0..100).collect();
        for workers in [1, 2, 3, 8, 64] {
            let pool = Pool::with_workers(workers);
            let (results, stats) = pool.map(&items, |i, x| x * 2 + i as u64);
            let got: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
            let want: Vec<u64> = (0..100).map(|i| i * 3).collect();
            assert_eq!(got, want, "workers={workers}");
            assert_eq!(stats.tasks, 100);
        }
    }

    #[test]
    fn empty_input_runs_no_tasks() {
        let pool = Pool::with_workers(8);
        let (results, stats) = pool.map(&[] as &[u8], |_, _| 0u8);
        assert!(results.is_empty());
        assert_eq!(stats, PoolStats::default());
    }

    #[test]
    fn a_panicking_task_is_captured_and_siblings_complete() {
        let items: Vec<usize> = (0..20).collect();
        for workers in [1, 4] {
            let pool = Pool::with_workers(workers);
            let (results, _) = pool.map(&items, |_, &x| {
                assert!(x != 7, "task seven exploded");
                x + 1
            });
            for (i, r) in results.iter().enumerate() {
                if i == 7 {
                    let panic = r.as_ref().unwrap_err();
                    assert!(
                        panic.message.contains("task seven exploded"),
                        "got: {panic}"
                    );
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i + 1, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn string_panic_payloads_are_preserved() {
        let pool = Pool::with_workers(2);
        let (results, _) = pool.map(&[0u8], |_, _| -> u8 {
            panic!("formatted {}", 42);
        });
        assert_eq!(results[0].as_ref().unwrap_err().message, "formatted 42");
    }

    #[test]
    fn skewed_work_is_stolen() {
        // With 2 workers and round-robin dealing, worker 0's deque is
        // [0, 2, ..., 62] and it pops from the back — so task 62 is the
        // first thing worker 0 runs. Make it sleep: worker 1 drains its
        // own instant half and then must steal worker 0's remaining tasks
        // from the front while worker 0 is stuck in the sleeper.
        let items: Vec<u64> = (0..64).collect();
        let pool = Pool::with_workers(2);
        let (results, stats) = pool.map(&items, |_, &x| {
            if x == 62 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            x
        });
        assert!(results.into_iter().all(|r| r.is_ok()));
        assert!(stats.steals > 0, "expected steals, got {stats:?}");
    }

    #[test]
    fn tasks_may_borrow_from_the_caller_stack() {
        let base = [10u64, 20, 30];
        let items = [0usize, 1, 2];
        let pool = Pool::with_workers(3);
        let (results, _) = pool.map(&items, |_, &i| base[i] + 1);
        let got: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, vec![11, 21, 31]);
    }

    #[test]
    fn gauges_drain_and_accumulate() {
        let before = gauges();
        let items: Vec<u64> = (0..37).collect();
        let pool = Pool::with_workers(4);
        let (_, stats) = pool.map(&items, |_, &x| x);
        let after = gauges();
        // Other tests may run regions concurrently in this process, so
        // totals are compared as lower bounds and the queue-depth drain is
        // checked against a generous ceiling rather than exact zero.
        assert!(after.tasks - before.tasks >= 37);
        assert!(after.steals >= before.steals);
        assert!(stats.tasks == 37);
        assert!(after.queue_depth < 1 << 32, "gauge underflowed");
    }

    #[test]
    fn override_takes_precedence_and_clears() {
        set_workers_override(Some(3));
        assert_eq!(Pool::global().workers(), 3);
        set_workers_override(None);
        assert_eq!(Pool::global().workers(), configured_workers());
    }

    #[test]
    fn deep_recursion_fits_the_worker_stack() {
        // ~1M frames would overflow a default 8 MiB stack; the pool's
        // big-stack workers absorb it just like `run_on_big_stack`.
        fn deep(n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                1 + deep(n - 1)
            }
        }
        let pool = Pool::with_workers(2);
        let (results, _) = pool.map(&[1_000_000u64, 500_000], |_, &n| deep(n));
        assert_eq!(results[0].as_ref().unwrap(), &1_000_000);
        assert_eq!(results[1].as_ref().unwrap(), &500_000);
    }
}
