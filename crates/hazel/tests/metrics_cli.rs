//! Acceptance tests for the `hazel metrics` subcommand: the text table
//! and the Prometheus exposition format, both driven by one pipeline run
//! over a real example document.

use std::process::{Command, Output};

fn example() -> String {
    format!(
        "{}/../../examples/grading_clean.hzl",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn metrics(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hazel"))
        .arg("metrics")
        .args(args)
        .output()
        .unwrap()
}

#[test]
fn metrics_text_table_reports_phases_and_counters() {
    let out = metrics(&[&example()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    // The pipeline always parses and renders; those phases must have hit.
    for phase in ["parse", "collect", "render_diff"] {
        assert!(stdout.contains(phase), "missing {phase} in:\n{stdout}");
    }
    assert!(stdout.contains("p50"), "{stdout}");
    assert!(stdout.contains("p99"), "{stdout}");
    assert!(stdout.contains("eval_steps"), "{stdout}");
}

#[test]
fn metrics_prom_format_is_valid_exposition() {
    let out = metrics(&["--format", "prom", &example()]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("# TYPE livelit_phase_latency_ns histogram"),
        "{stdout}"
    );
    assert!(
        stdout.contains("# TYPE livelit_counter_total counter"),
        "{stdout}"
    );
    // Exposition histograms are cumulative and end at +Inf; the +Inf
    // bucket must equal _count for every labeled series.
    let mut inf_buckets = 0;
    for line in stdout.lines().filter(|l| l.contains("le=\"+Inf\"")) {
        inf_buckets += 1;
        let phase = line
            .split("phase=\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .unwrap();
        let inf: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        let count_line = stdout
            .lines()
            .find(|l| {
                l.starts_with(&format!(
                    "livelit_phase_latency_ns_count{{phase=\"{phase}\"}}"
                ))
            })
            .unwrap();
        let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(inf, count, "{line}");
    }
    assert!(inf_buckets >= 2, "{stdout}");
}

#[test]
fn metrics_rejects_bad_format_and_missing_file() {
    let bad = metrics(&["--format", "xml", &example()]);
    assert_eq!(bad.status.code(), Some(2), "{bad:?}");
    let missing = metrics(&["/nonexistent/doc.hzl"]);
    assert_ne!(missing.status.code(), Some(0), "{missing:?}");
}
