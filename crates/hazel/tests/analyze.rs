//! Acceptance tests for the `hazel analyze` pipeline over the checked-in
//! grading fixtures: the clean module yields zero diagnostics, the
//! seeded-bug module yields exactly the expected stable codes, and the
//! SARIF export matches its golden byte-for-byte.

use hazel::analysis::{Code, Location, Severity};
use hazel::editor::{analyze_document, open_module, LivelitRegistry};
use hazel_lang::HoleName;

fn analyze_fixture(name: &str) -> hazel::analysis::Report {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/");
    let src = std::fs::read_to_string(format!("{path}{name}")).unwrap();
    let mut registry = LivelitRegistry::new();
    hazel::std::register_all(&mut registry);
    let (registry, doc) = open_module(registry, &src).unwrap();
    analyze_document(&registry, &doc)
}

#[test]
fn the_clean_fixture_yields_zero_diagnostics() {
    let report = analyze_fixture("grading_clean.hzl");
    assert!(report.is_empty(), "{}", report.render());
    assert_eq!(report.error_count(), 0);
    let json = report.to_json();
    assert!(json.contains("\"diagnostics\": []"), "{json}");
    assert!(json.contains("\"errors\": 0"), "{json}");
}

#[test]
fn the_seeded_bug_fixture_yields_exactly_the_expected_codes() {
    let report = analyze_fixture("grading_buggy.hzl");
    assert_eq!(
        report.codes(),
        vec![Code::NotClosed, Code::NonEmptyHole, Code::DeadSplice],
        "{}",
        report.render()
    );

    // LL0004: $leaky_curve's expansion captures `midterm` from the
    // client's scope.
    let capture = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::NotClosed)
        .unwrap();
    assert_eq!(capture.severity, Severity::Error);
    assert_eq!(capture.location, Location::Hole(HoleName(0)));
    assert!(
        capture.notes.iter().any(|n| n.contains("midterm")),
        "{capture:?}"
    );

    // LL0203: the failed invocation audits as a live non-empty hole.
    let audit = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::NonEmptyHole)
        .unwrap();
    assert_eq!(audit.severity, Severity::Info);
    assert_eq!(audit.location, Location::Hole(HoleName(0)));

    // LL0101: $flat_curve abstracts over its score splice but never
    // evaluates it.
    let dead = report
        .diagnostics()
        .iter()
        .find(|d| d.code == Code::DeadSplice)
        .unwrap();
    assert_eq!(dead.severity, Severity::Warning);
    assert_eq!(
        dead.location,
        Location::Splice {
            hole: HoleName(1),
            index: 0
        }
    );

    assert_eq!(report.error_count(), 1);
}

#[test]
fn reports_serialize_deterministically() {
    let first = analyze_fixture("grading_buggy.hzl");
    let second = analyze_fixture("grading_buggy.hzl");
    assert_eq!(first, second);
    assert_eq!(first.to_json(), second.to_json());
    // Stable machine-readable shape: every diagnostic carries its code,
    // severity, and structured location.
    let json = first.to_json();
    assert!(json.contains("\"code\": \"LL0004\""), "{json}");
    assert!(
        json.contains("\"location\": {\"kind\": \"hole\", \"hole\": 0}"),
        "{json}"
    );
    assert!(
        json.contains("\"location\": {\"kind\": \"splice\", \"hole\": 1, \"index\": 0}"),
        "{json}"
    );
}

#[test]
fn sarif_export_matches_the_buggy_golden() {
    // `--format sarif` is the CI code-scanning surface: the golden pins
    // the exact byte stream so schema or rule-table drift is caught.
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/grading_buggy.hzl"
    );
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hazel"))
        .args(["analyze", "--format", "sarif", fixture])
        .output()
        .unwrap();
    // The buggy fixture has one error-severity finding, so analyze exits 1.
    assert_eq!(out.status.code(), Some(1));
    let golden = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/grading_buggy.sarif"
    );
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        std::fs::read_to_string(golden).unwrap()
    );
}

#[test]
fn sarif_export_carries_the_reports_findings() {
    let report = analyze_fixture("grading_buggy.hzl");
    let sarif = hazel::analysis::sarif::to_sarif(&report);
    // One result per diagnostic, each tagged with its stable rule id.
    for code in ["LL0004", "LL0101", "LL0203"] {
        assert!(
            sarif.contains(&format!("\"ruleId\": \"{code}\"")),
            "{sarif}"
        );
    }
    // Every stable code — including the flow-analysis families — is
    // declared in the rule table even when it fired no result.
    for code in ["LL0501", "LL0601", "LL0701"] {
        assert!(sarif.contains(&format!("\"id\": \"{code}\"")), "{sarif}");
    }
}

#[test]
fn the_codes_table_matches_its_golden() {
    // `hazel codes` is the machine-readable lint registry (append-only
    // numbering); the golden pins it so a new or renumbered code is a
    // conscious, reviewed change. Regenerate with:
    //   cargo run --bin hazel -- codes > crates/hazel/tests/golden/codes.json
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hazel"))
        .arg("codes")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/codes.json");
    assert_eq!(
        String::from_utf8(out.stdout).unwrap(),
        std::fs::read_to_string(golden).unwrap()
    );
}

#[test]
fn analyze_rejects_an_unknown_format() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hazel"))
        .args(["analyze", "--format", "yaml", "x.hzl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
