//! Acceptance tests for the `hazel trace` and `hazel stats` subcommands
//! over the checked-in grading fixtures.
//!
//! The trace subcommand runs under the deterministic test clock, so its
//! JSONL output is byte-identical across runs and across machines — the
//! goldens under `tests/golden/` pin the exact event stream and CI diffs
//! against them. Regenerate with
//! `hazel trace --json examples/<fixture>.hzl > crates/hazel/tests/golden/<fixture>.trace.jsonl`
//! after intentionally changing instrumentation.

use std::process::{Command, Output};

fn fixture_path(name: &str) -> String {
    format!("{}/../../examples/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(path).unwrap()
}

fn hazel(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hazel"))
        .args(args)
        .output()
        .unwrap()
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

#[test]
fn trace_json_is_byte_deterministic_across_runs() {
    let fixture = fixture_path("grading_clean.hzl");
    let first = hazel(&["trace", "--json", &fixture]);
    let second = hazel(&["trace", "--json", &fixture]);
    assert!(first.status.success(), "{first:?}");
    assert_eq!(first.stdout, second.stdout);
    assert!(!first.stdout.is_empty());
}

#[test]
fn trace_json_matches_the_clean_golden() {
    let out = hazel(&["trace", "--json", &fixture_path("grading_clean.hzl")]);
    assert!(out.status.success(), "{out:?}");
    assert_eq!(stdout(&out), golden("grading_clean.trace.jsonl"));
}

#[test]
fn trace_json_matches_the_buggy_golden() {
    let out = hazel(&["trace", "--json", &fixture_path("grading_buggy.hzl")]);
    assert!(out.status.success(), "{out:?}");
    assert_eq!(stdout(&out), golden("grading_buggy.trace.jsonl"));
}

#[test]
fn trace_text_renders_an_indented_tree() {
    let out = hazel(&["trace", "--text", &fixture_path("grading_clean.hzl")]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("▶ engine.run"), "{text}");
    // engine phases are nested one level under engine.run.
    assert!(text.contains("  ▶ engine.collect"), "{text}");
    assert!(text.contains("◀ engine.run"), "{text}");
}

#[test]
fn trace_covers_every_pipeline_layer() {
    let out = hazel(&["trace", "--json", &fixture_path("grading_clean.hzl")]);
    let text = stdout(&out);
    for phase in [
        "\"parse.module\"",
        "\"expand.typed\"",
        "\"cc.collect\"",
        "\"cc.resume_result\"",
        "\"eval\"",
        "\"engine.views\"",
        "\"analysis.pass.hygiene\"",
    ] {
        assert!(text.contains(phase), "missing {phase} in:\n{text}");
    }
    for counter in [
        "\"expansions_performed\"",
        "\"closures_collected\"",
        "\"eval_steps\"",
    ] {
        assert!(text.contains(counter), "missing {counter} in:\n{text}");
    }
}

#[test]
fn stats_prints_the_phase_table() {
    let out = hazel(&["stats", &fixture_path("grading_clean.hzl")]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("phase"), "{text}");
    assert!(text.contains("engine.run"), "{text}");
    assert!(text.contains("counter"), "{text}");
    assert!(text.contains("expansions_performed"), "{text}");
}

#[test]
fn stats_json_has_the_stable_shape() {
    let out = hazel(&["stats", "--json", &fixture_path("grading_clean.hzl")]);
    assert!(out.status.success(), "{out:?}");
    let text = stdout(&out);
    assert!(text.starts_with("{\"spans\":{"), "{text}");
    assert!(text.contains("\"counters\":{"), "{text}");
    assert!(text.contains("\"engine.run\""), "{text}");
}

#[test]
fn trace_usage_and_load_errors_exit_2() {
    let no_file = hazel(&["trace"]);
    assert_eq!(no_file.status.code(), Some(2));
    let bad_flag = hazel(&["trace", "--bogus", "x.hzl"]);
    assert_eq!(bad_flag.status.code(), Some(2));
    let missing = hazel(&["trace", "no_such_file.hzl"]);
    assert_eq!(missing.status.code(), Some(2));
    let stats_missing = hazel(&["stats", "no_such_file.hzl"]);
    assert_eq!(stats_missing.status.code(), Some(2));
}
