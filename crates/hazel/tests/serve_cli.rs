//! Acceptance tests for the `hazel serve` subcommand: the golden
//! transcript, crash-proofing under garbage input, and the
//! `LIVELIT_THREADS` fallback warning.
//!
//! The golden pins the full reply stream for a mixed two-session request
//! script at `--workers 1` (the deterministic configuration CI diffs).
//! Regenerate after an intentional protocol change with
//! `hazel serve --stdio --workers 1 \
//!    < crates/hazel/tests/golden/serve_session.requests.jsonl \
//!    > crates/hazel/tests/golden/serve_session.golden.jsonl`.

use std::io::Write;
use std::process::{Command, Output, Stdio};

fn golden_path(name: &str) -> String {
    format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Runs `hazel serve` with `input` on stdin and extra env vars set.
fn serve(args: &[&str], env: &[(&str, &str)], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hazel"))
        .arg("serve")
        .args(args)
        .envs(env.iter().copied())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    child.wait_with_output().unwrap()
}

fn requests() -> String {
    std::fs::read_to_string(golden_path("serve_session.requests.jsonl")).unwrap()
}

#[test]
fn serve_matches_the_golden_transcript_at_one_worker() {
    let out = serve(&["--stdio", "--workers", "1"], &[], &requests());
    assert!(out.status.success(), "{out:?}");
    let golden = std::fs::read_to_string(golden_path("serve_session.golden.jsonl")).unwrap();
    assert_eq!(String::from_utf8(out.stdout).unwrap(), golden);
}

#[test]
fn serve_transcript_is_identical_with_metrics_disabled() {
    // Metrics are on by default; nothing they record may leak into reply
    // bytes unless a client opts in. `--no-metrics` must therefore replay
    // the exact same golden, and the metrics-on run must confine its
    // summary/slow-request dump to stderr.
    let golden = std::fs::read_to_string(golden_path("serve_session.golden.jsonl")).unwrap();
    let with = serve(&["--stdio", "--workers", "1"], &[], &requests());
    assert!(with.status.success(), "{with:?}");
    assert_eq!(String::from_utf8(with.stdout).unwrap(), golden);
    let stderr = String::from_utf8(with.stderr).unwrap();
    assert!(stderr.contains("hazel serve: metrics:"), "stderr: {stderr}");

    let without = serve(
        &["--stdio", "--workers", "1", "--no-metrics"],
        &[],
        &requests(),
    );
    assert!(without.status.success(), "{without:?}");
    assert_eq!(String::from_utf8(without.stdout).unwrap(), golden);
    let quiet = String::from_utf8(without.stderr).unwrap();
    assert!(!quiet.contains("metrics:"), "stderr: {quiet}");
}

#[test]
fn serve_metrics_op_reports_request_totals() {
    // A live `metrics` snapshot after real traffic: deterministic totals
    // are exact, the nondeterministic sections are present and shaped.
    let mut input = requests();
    input.push_str("{\"op\":\"metrics\",\"id\":99,\"slow\":true}\n");
    let out = serve(&["--stdio", "--workers", "1"], &[], &input);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let last = stdout.lines().last().unwrap();
    assert!(
        last.starts_with("{\"ok\":true,\"id\":99,\"op\":\"metrics\",\"enabled\":true,"),
        "{last}"
    );
    for field in [
        "\"closed_sessions\":2",
        "\"queue_depth\":",
        "\"workers\":1",
        "\"uptime_ns\":",
        "\"ops\":[",
        "\"p99_ns\":",
        "\"phases\":[",
        "\"counters\":{",
        "\"slow\":[",
        "serve.open",
    ] {
        assert!(last.contains(field), "missing {field} in {last}");
    }
}

#[test]
fn serve_transcript_is_stable_under_livelit_threads_1() {
    // The CI smoke matrix runs serve both with the default pool and with
    // `LIVELIT_THREADS=1`; sequential requests must not depend on it.
    let out = serve(
        &["--stdio", "--workers", "1"],
        &[("LIVELIT_THREADS", "1")],
        &requests(),
    );
    assert!(out.status.success(), "{out:?}");
    let golden = std::fs::read_to_string(golden_path("serve_session.golden.jsonl")).unwrap();
    assert_eq!(String::from_utf8(out.stdout).unwrap(), golden);
}

#[test]
fn serve_batch_mode_replays_the_same_transcript() {
    let out = serve(&["--stdio", "--batch", "--workers", "2"], &[], &requests());
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let golden = std::fs::read_to_string(golden_path("serve_session.golden.jsonl")).unwrap();
    // Per-session request order is preserved inside a batch, so every
    // session-addressed reply is byte-identical to the sequential golden.
    // The one session-less request (the global `stats`, id 18) is handled
    // before the fan-out by design, so its tallies legitimately differ.
    let got: Vec<&str> = stdout.lines().collect();
    let want: Vec<&str> = golden.lines().collect();
    assert_eq!(got.len(), want.len(), "{stdout}");
    for (g, w) in got.iter().zip(&want) {
        if w.contains("\"id\":18,") {
            assert!(
                g.starts_with("{\"ok\":true,\"id\":18,\"op\":\"stats\""),
                "{g}"
            );
        } else {
            assert_eq!(g, w);
        }
    }
}

#[test]
fn serve_survives_garbage_and_exits_cleanly() {
    // A hostile stream: binary-ish junk, deep nesting, half-open strings.
    // Every line must yield exactly one error reply, and the process must
    // still exit 0 when stdin closes — never crash.
    let garbage = "\u{1}\u{2}\u{3}\n\
        {\"op\":\n\
        [[[[[[[[[[[[[[[[\n\
        {\"op\":\"open\",\"session\":\"s\",\"source\":\"\\udc00\n\
        \"unterminated\n\
        9999999999999999999999999999\n\
        {\"op\":\"open\",\"session\":123,\"source\":\"1\"}\n";
    let out = serve(&["--stdio", "--workers", "1"], &[], garbage);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let replies: Vec<&str> = stdout.lines().collect();
    assert_eq!(replies.len(), 7, "{stdout}");
    for reply in replies {
        assert!(reply.starts_with("{\"ok\":false,"), "{reply}");
    }
}

#[test]
fn serve_without_stdio_is_a_usage_error() {
    let out = serve(&[], &[], "");
    assert_eq!(out.status.code(), Some(2));
    let bad_workers = serve(&["--stdio", "--workers", "0"], &[], "");
    assert_eq!(bad_workers.status.code(), Some(2));
}

#[test]
fn usage_documents_the_livelit_threads_range() {
    let out = Command::new(env!("CARGO_BIN_EXE_hazel")).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let usage = String::from_utf8(out.stderr).unwrap();
    assert!(usage.contains("LIVELIT_THREADS"), "{usage}");
    assert!(usage.contains("integer >= 1"), "{usage}");
    assert!(
        usage.contains("serve (--stdio | --listen ADDR | --uds PATH)"),
        "{usage}"
    );
    assert!(usage.contains("--snapshot-dir"), "{usage}");
}

/// The satellite-4 regression: `LIVELIT_THREADS=0` (and other invalid
/// values) must not be honored silently — the process warns exactly once
/// on stderr, names the fallback, and keeps serving.
#[test]
fn invalid_livelit_threads_warns_once_and_falls_back() {
    // No --workers override: the env var is actually consulted when the
    // pool spins up for the renders.
    let out = serve(&["--stdio"], &[("LIVELIT_THREADS", "0")], &requests());
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    let warnings = stderr
        .lines()
        .filter(|l| l.contains("ignoring LIVELIT_THREADS=\"0\""))
        .count();
    assert_eq!(warnings, 1, "stderr: {stderr}");
    assert!(
        stderr.contains("expected an integer >= 1"),
        "stderr: {stderr}"
    );
    assert!(
        stderr.contains("falling back to available parallelism"),
        "stderr: {stderr}"
    );

    // Unparseable values take the same path.
    let out = serve(&["--stdio"], &[("LIVELIT_THREADS", "lots")], &requests());
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert_eq!(
        stderr
            .lines()
            .filter(|l| l.contains("ignoring LIVELIT_THREADS"))
            .count(),
        1,
        "stderr: {stderr}"
    );

    // A valid value stays silent.
    let out = serve(&["--stdio"], &[("LIVELIT_THREADS", "2")], &requests());
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("LIVELIT_THREADS"), "stderr: {stderr}");
}
