//! `hazel`: the full livelit programming system — a facade over the crates
//! reproducing *Filling Typed Holes with Live GUIs* (PLDI 2021).
//!
//! - [`lang`] — the Hazelnut-Live-style language of typed holes
//!   (`hazel-lang`): expressions, typing, elaboration, evaluation of
//!   incomplete programs, parsing, pretty printing.
//! - [`core`] — the typed livelit calculus (`livelit-core`): definitions,
//!   typed macro expansion, closure collection, live splice evaluation.
//! - [`mvu`] — the model–view–update–expand architecture (`livelit-mvu`):
//!   the `Livelit` trait, command interpreters, Html trees and diffing,
//!   splice stores, abbreviations.
//! - [`editor`] — the live programming engine (`hazel-editor`): documents,
//!   the edit pipeline with error marking, closure selection, rendering,
//!   and text-buffer integration.
//! - [`analysis`] — static diagnostics (`livelit-analysis`): hygiene and
//!   capture validation, splice discipline, hole audits, definition lints,
//!   and expansion determinism, each with a stable `LLxxxx` code.
//! - [`std`] — the standard livelit library (`livelit-std`): `$color`,
//!   `$slider`/`$percent`, `$checkbox`, `$dataframe`, `$grade_cutoffs`,
//!   `$basic_adjustments`, the image substrate, and the grading library.
//! - [`server`] — the headless document service (`livelit-server`):
//!   multi-session line-delimited JSON protocol over the incremental
//!   engine, shipping view diffs instead of full re-renders; see
//!   `hazel serve` on the CLI.
//! - [`trace`] — structured observability (`livelit-trace`): spans,
//!   counters, and pluggable sinks over every phase of the pipeline; see
//!   `hazel trace` / `hazel stats` on the CLI.
//!
//! # Quickstart
//!
//! ```
//! use hazel::prelude::*;
//!
//! // A registry with the full standard livelit library.
//! let mut registry = LivelitRegistry::new();
//! hazel::std::register_all(&mut registry);
//!
//! // A program with a typed hole, parsed from surface syntax.
//! let program = hazel::lang::parse::parse_uexp(
//!     "let baseline = 57 in (?0 : (.r Int, .g Int, .b Int, .a Int))")?;
//! let mut doc = Document::new(&registry, vec![], program)?;
//!
//! // Fill the hole with the $color livelit and run the live pipeline.
//! doc.fill_hole_with_livelit(&registry, hazel::lang::HoleName(0), "$color", vec![])?;
//! let out = hazel::editor::run(&registry, &doc)?;
//! assert!(out.errors.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use hazel_editor as editor;
pub use hazel_lang as lang;
pub use livelit_analysis as analysis;
pub use livelit_core as core;
pub use livelit_mvu as mvu;
pub use livelit_sched as sched;
pub use livelit_server as server;
pub use livelit_std as std;
pub use livelit_trace as trace;

/// Commonly used items, for `use hazel::prelude::*`.
pub mod prelude {
    pub use hazel_editor::{
        load_buffer, run, save_buffer, Document, LivelitRegistry, PreludeBinding,
    };
    pub use hazel_lang::build;
    pub use hazel_lang::{
        BinOp, Ctx, Delta, EExp, HoleName, IExp, Label, LivelitAp, LivelitName, Sigma, Splice, Typ,
        TypeError, UExp, Var,
    };
    pub use livelit_analysis::{AnalysisInput, Analyzer, Code, Diagnostic, Report, Severity};
    pub use livelit_core::{collect, expand, expand_typed, LivelitCtx, LivelitDef};
    pub use livelit_mvu::{
        Action, CmdError, ContextBinding, Dim, Html, Instance, Livelit, Model, SpliceRef,
        UpdateCtx, ViewCtx,
    };
}
