//! `hazel-run`: run a livelit module file from the command line.
//!
//! ```console
//! $ hazel-run program.hzl              # result + livelit dashboard
//! $ hazel-run --expansion program.hzl  # also print the full expansion
//! $ hazel-run --session program.hzl    # program text + GUIs
//! ```
//!
//! Module files may contain textual livelit declarations, `def` bindings,
//! and a main expression (see `hazel::lang::module`); the standard livelit
//! library ($color, $slider, $dataframe, ...) is preloaded.

use std::process::ExitCode;

use hazel::prelude::*;

fn usage() -> ExitCode {
    eprintln!("usage: hazel-run [--expansion] [--session] [--dashboard] <file.hzl>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut show_expansion = false;
    let mut show_session = false;
    let mut show_dashboard = true;
    let mut path = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--expansion" => show_expansion = true,
            "--session" => {
                show_session = true;
                show_dashboard = false;
            }
            "--dashboard" => show_dashboard = true,
            "--help" | "-h" => return usage(),
            _ if arg.starts_with('-') => return usage(),
            _ => path = Some(arg),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("hazel-run: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut registry = LivelitRegistry::new();
    hazel::std::register_all(&mut registry);
    let (registry, doc) = match hazel::editor::open_module(registry, &src) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("hazel-run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out = match hazel::editor::run(&registry, &doc) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("hazel-run: {e}");
            return ExitCode::FAILURE;
        }
    };

    for err in &out.errors {
        eprintln!("warning: livelit at {} marked: {}", err.hole, err.error);
    }
    if show_session {
        println!(
            "{}",
            hazel::editor::render_session(&registry, &doc, &out, 80)
        );
    } else if show_dashboard && !doc.livelit_holes().is_empty() {
        println!("{}", hazel::editor::render_dashboard(&registry, &doc, &out));
    }
    if show_expansion {
        println!("== expansion ==");
        println!("{}\n", hazel::lang::pretty::print_eexp(&out.expansion, 80));
    }
    println!(
        "{} : {}",
        hazel::lang::pretty::print_iexp(&out.result, 80),
        out.ty
    );
    ExitCode::SUCCESS
}
