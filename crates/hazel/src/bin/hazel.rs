//! `hazel`: the livelit toolchain driver.
//!
//! ```console
//! $ hazel analyze program.hzl          # diagnostics as JSON (stable codes)
//! $ hazel analyze --text program.hzl   # human-readable diagnostics
//! $ hazel analyze --format sarif program.hzl  # SARIF 2.1.0 for code scanning
//! $ hazel trace program.hzl            # structured trace of the pipeline (JSONL)
//! $ hazel trace --text program.hzl     # the same trace as an indented tree
//! $ hazel stats program.hzl            # per-phase timings and counter totals
//! $ hazel serve --stdio                # multi-session document server (JSON lines)
//! $ hazel serve --listen 127.0.0.1:7878 --snapshot-dir state/
//!                                      # the same server over TCP, sessions
//!                                      # journaled and restored across restarts
//! $ hazel serve --uds /tmp/hazel.sock  # ... or over a Unix-domain socket
//! $ hazel codes                        # the LL lint-code table
//! ```
//!
//! `analyze` loads a module file exactly as the editor would (standard
//! livelit library preloaded, textual livelit declarations registered
//! behind the generic GUI) and runs the full static analysis over it:
//! hygiene/capture validation, splice discipline, the hole audit,
//! definition lints, expansion determinism (statically discharged where
//! purity is provable), and the dataflow passes (liveness/reachability,
//! purity, hole-context facts). The JSON output is deterministic — same
//! module, same bytes — so it can be diffed and asserted on in CI;
//! `--format sarif` emits the same findings as a SARIF 2.1.0 log for
//! code-scanning UIs.
//!
//! `serve` speaks the `livelit-server` wire protocol over stdin/stdout:
//! one JSON request per line in, one JSON reply per line out, documents
//! opened as multi-request sessions, `render` replies shipping view-diff
//! patch scripts instead of full view trees. Malformed or failing
//! requests produce structured `error` replies; the process never exits
//! on bad input.
//!
//! `trace` runs the whole live pipeline — parse, expand, closure-collect,
//! fill-and-resume, view computation, static analysis — under an installed
//! tracer and prints the event stream. It uses the deterministic test
//! clock, so the JSONL output is byte-identical across runs of the same
//! module: same module, same bytes, diffable in CI. `stats` runs the same
//! pipeline under the real monotonic clock and prints the per-phase
//! duration table and counter totals (wall times vary; `--json` keys do
//! not).
//!
//! Exit status: 0 when no error-severity diagnostics were found (for
//! `trace`/`stats`: when the pipeline ran), 1 when some were (pipeline
//! failed), 2 on usage or load errors.

use std::io::Write;
use std::process::ExitCode;

use std::sync::Arc;

use hazel::analysis::{json_string, Code};
use hazel::prelude::*;
use hazel::trace::metrics::{write_prom_histogram, MetricsHub, MetricsSink, Phase};
use hazel::trace::{fmt_ns, render_events, Counter, PairSink, RingSink, StatsSink, Tracer};

/// Prints to stdout, tolerating a closed pipe (`hazel codes | head`).
fn emit(s: &str) {
    let _ = std::io::stdout().write_all(s.as_bytes());
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: hazel <command> [options]\n\n\
         commands:\n  \
         analyze [--format json|text|sarif] <file.hzl>\n                                \
         run static diagnostics over a module\n  \
         trace [--json|--text] <file.hzl>\n                                \
         trace the pipeline (deterministic JSONL, or an indented tree)\n  \
         stats [--json] <file.hzl>     per-phase timings and counter totals\n  \
         metrics [--format text|prom] <file.hzl>\n                                \
         per-phase latency histograms (p50/p90/p99) as a\n                                \
         table or Prometheus exposition format\n  \
         serve (--stdio | --listen ADDR | --uds PATH) [--batch] [--workers N]\n        \
         [--snapshot-dir DIR] [--max-conns N] [--idle-timeout SECS]\n        \
         [--no-metrics] [--metrics-interval SECS]\n                                \
         serve documents over a JSON-lines protocol — on\n                                \
         stdio, a TCP address, or a Unix socket; with\n                                \
         --snapshot-dir, sessions are journaled and restored\n                                \
         across restarts\n  \
         codes                         list every lint code\n\n\
         environment:\n  \
         LIVELIT_THREADS=N   evaluation worker threads: an integer >= 1\n                      \
         (1 disables parallelism; values above the core\n                      \
         count are allowed). 0, negative, or unparseable\n                      \
         values warn once on stderr and fall back to the\n                      \
         machine's available parallelism."
    );
    ExitCode::from(2)
}

/// Parses a `[--json|--text] <file.hzl>` argument list. Returns
/// `(text_mode, path)`.
fn parse_output_args(args: &[String]) -> Option<(bool, String)> {
    let mut text = false;
    let mut path = None;
    for arg in args {
        match arg.as_str() {
            "--text" => text = true,
            "--json" => text = false,
            _ if arg.starts_with('-') => return None,
            _ => path = Some(arg.clone()),
        }
    }
    Some((text, path?))
}

/// Loads a module file as the editor would, then runs the full live
/// pipeline (engine + static analysis) with whatever tracer the caller has
/// installed. Returns `Err` with the exit code on failure.
fn run_pipeline(path: &str) -> Result<(), ExitCode> {
    let src = match std::fs::read_to_string(path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("hazel: cannot read {path}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    let mut registry = LivelitRegistry::new();
    hazel::std::register_all(&mut registry);
    let (registry, doc) = match hazel::editor::open_module(registry, &src) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("hazel: {path}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    if let Err(e) = hazel::editor::run(&registry, &doc) {
        eprintln!("hazel: {path}: {e}");
        return Err(ExitCode::FAILURE);
    }
    let _report = hazel::editor::analyze_document(&registry, &doc);
    Ok(())
}

/// Ring capacity for `hazel trace`: enough for any realistic module; the
/// oldest events are dropped beyond it rather than growing without bound.
const TRACE_CAPACITY: usize = 1 << 20;

fn trace(args: &[String]) -> ExitCode {
    let Some((text, path)) = parse_output_args(args) else {
        return usage();
    };
    let sink = RingSink::new(TRACE_CAPACITY);
    // The deterministic clock makes the serialized trace byte-identical
    // across runs: timestamps advance by a fixed tick per clock query.
    // Force the sequential evaluation path for the same reason — at one
    // worker the scheduler runs tasks in index order and reports no
    // nondeterministic steal/idle counters.
    let tracer = Tracer::deterministic(sink.clone());
    livelit_sched::set_workers_override(Some(1));
    let result = {
        let _guard = hazel::trace::install(&tracer);
        run_pipeline(&path)
    };
    livelit_sched::set_workers_override(None);
    if let Err(code) = result {
        return code;
    }
    let events = sink.events();
    if text {
        emit(&render_events(&events));
    } else {
        let mut out = String::new();
        for event in &events {
            event.to_jsonl(&mut out);
        }
        emit(&out);
    }
    ExitCode::SUCCESS
}

fn stats(args: &[String]) -> ExitCode {
    let Some((_, path)) = parse_output_args(args) else {
        return usage();
    };
    // `stats` defaults to the text table; `--json` opts into JSON.
    let json = args.iter().any(|a| a == "--json");
    let sink = StatsSink::new();
    let tracer = Tracer::monotonic(sink.clone());
    let result = {
        let _guard = hazel::trace::install(&tracer);
        run_pipeline(&path)
    };
    if let Err(code) = result {
        return code;
    }
    let stats = sink.snapshot();
    if json {
        emit(&stats.to_json());
    } else {
        emit(&stats.render());
        if livelit_sched::configured_workers() == 1 {
            // At one worker the pool pins idle_ns to 0 for golden
            // stability, and the zero-suppressed counter table would
            // silently omit it — label the pin instead of implying the
            // pool measured no idle time.
            emit(&format!(
                "{:<28} {:>10}\n",
                Counter::SchedIdleNs.as_str(),
                "pinned"
            ));
            emit(
                "(idle_ns is pinned to 0 at workers=1; run with LIVELIT_THREADS>1 to measure it)\n",
            );
        }
    }
    ExitCode::SUCCESS
}

/// `hazel metrics [--format text|prom] <file.hzl>`: runs the pipeline
/// under a [`MetricsSink`] and renders the per-phase latency histograms —
/// as an aligned table, or in Prometheus exposition format for scraping.
fn metrics_cmd(args: &[String]) -> ExitCode {
    let mut prom = false;
    let mut path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("text") => prom = false,
                Some("prom") => prom = true,
                _ => {
                    eprintln!("hazel: --format needs one of: text, prom");
                    return ExitCode::from(2);
                }
            },
            _ if arg.starts_with('-') => return usage(),
            _ => path = Some(arg.clone()),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let hub = Arc::new(MetricsHub::new());
    let tracer = Tracer::monotonic(MetricsSink::new(Arc::clone(&hub)));
    let result = {
        let _guard = hazel::trace::install(&tracer);
        run_pipeline(&path)
    };
    if let Err(code) = result {
        return code;
    }
    if prom {
        let mut out = String::from("# TYPE livelit_phase_latency_ns histogram\n");
        for &phase in &Phase::ALL {
            let snap = hub.phase_snapshot(phase);
            if snap.is_empty() {
                continue;
            }
            let labels = format!("phase=\"{}\"", phase.as_str());
            write_prom_histogram(&mut out, "livelit_phase_latency_ns", &labels, &snap);
        }
        out.push_str("# TYPE livelit_counter_total counter\n");
        for &c in &Counter::ALL {
            let total = hub.counter(c);
            if total > 0 {
                out.push_str(&format!(
                    "livelit_counter_total{{counter=\"{}\"}} {total}\n",
                    c.as_str()
                ));
            }
        }
        emit(&out);
    } else {
        let mut out = format!(
            "{:<14} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            "phase", "count", "p50", "p90", "p99", "max"
        );
        for &phase in &Phase::ALL {
            let snap = hub.phase_snapshot(phase);
            if snap.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "{:<14} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
                phase.as_str(),
                snap.count,
                fmt_ns(snap.p50()),
                fmt_ns(snap.p90()),
                fmt_ns(snap.p99()),
                fmt_ns(snap.max),
            ));
        }
        let mut counters = String::new();
        for &c in &Counter::ALL {
            let total = hub.counter(c);
            if total > 0 {
                counters.push_str(&format!("{:<28} {:>10}\n", c.as_str(), total));
            }
        }
        if !counters.is_empty() {
            out.push_str(&format!("\n{:<28} {:>10}\n", "counter", "total"));
            out.push_str(&counters);
        }
        emit(&out);
    }
    ExitCode::SUCCESS
}

/// The output encodings `hazel analyze` can produce.
enum AnalyzeFormat {
    Json,
    Text,
    Sarif,
}

fn analyze(args: &[String]) -> ExitCode {
    let mut format = AnalyzeFormat::Json;
    let mut path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--text" => format = AnalyzeFormat::Text,
            "--json" => format = AnalyzeFormat::Json,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format = AnalyzeFormat::Json,
                Some("text") => format = AnalyzeFormat::Text,
                Some("sarif") => format = AnalyzeFormat::Sarif,
                _ => {
                    eprintln!("hazel: --format needs one of: json, text, sarif");
                    return ExitCode::from(2);
                }
            },
            _ if arg.starts_with('-') => return usage(),
            _ => path = Some(arg.clone()),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("hazel: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut registry = LivelitRegistry::new();
    hazel::std::register_all(&mut registry);
    let (registry, doc) = match hazel::editor::open_module(registry, &src) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("hazel: {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let report = hazel::editor::analyze_document(&registry, &doc);
    match format {
        AnalyzeFormat::Text => emit(&report.render()),
        AnalyzeFormat::Json => emit(&report.to_json()),
        AnalyzeFormat::Sarif => emit(&hazel::analysis::sarif::to_sarif(&report)),
    }
    if report.error_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// How many worst requests per op the serve slow-ranking keeps.
const SERVE_SLOW_K: usize = 4;
/// Event buffer cap per captured slow-request span tree.
const SERVE_CAPTURE_EVENTS: usize = 4096;

/// `hazel serve (--stdio | --listen ADDR | --uds PATH) [--batch]
/// [--workers N] [--snapshot-dir DIR] [--max-conns N] [--idle-timeout
/// SECS] [--no-metrics] [--metrics-interval SECS]`: the headless
/// document server. One JSON request per line in, one JSON reply per
/// line out, in order. `--workers N` pins the evaluation pool (N=1
/// makes replies deterministic for transcript diffing); `--batch` (stdio
/// only) reads all of stdin up front and multiplexes distinct sessions
/// onto the pool.
///
/// `--listen ADDR` serves TCP (e.g. `127.0.0.1:7878`), `--uds PATH` a
/// Unix-domain socket; both run the production transport — connection
/// cap (`--max-conns`, default 1024), idle timeout (`--idle-timeout`,
/// default 300s), write backpressure, and graceful drain on SIGTERM,
/// SIGINT, or a `shutdown` op.
///
/// `--snapshot-dir DIR` makes sessions crash-safe: every acked
/// session-mutating request is journaled to `DIR` before its reply
/// ships, and a restarted server replays the journals so clients resume
/// mid-session.
///
/// Metrics are on by default: requests are timed into per-op histograms,
/// the `metrics`/`watch` ops serve live snapshots, and a shutdown summary
/// (plus the slow-request ranking) lands on stderr. In sequential stdio
/// mode a `MetricsSink` tracer additionally attributes time to pipeline
/// phases and captures span trees for the slowest requests. Replies never
/// change shape — transcripts are byte-identical with `--no-metrics`.
/// `--metrics-interval SECS` prints a one-line summary to stderr every
/// SECS seconds.
fn serve(args: &[String]) -> ExitCode {
    use std::io::BufRead;

    use hazel::server::transport::{
        signal, transport_error_line, BindTo, Transport, TransportConfig,
    };
    use hazel::server::wire::{FrameError, LineReader};

    let mut stdio = false;
    let mut listen: Option<String> = None;
    let mut uds: Option<String> = None;
    let mut snapshot_dir: Option<String> = None;
    let mut batch = false;
    let mut metrics_on = true;
    let mut interval: Option<u64> = None;
    let mut workers: Option<usize> = None;
    let mut config = TransportConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--listen" => match it.next() {
                Some(addr) => listen = Some(addr.clone()),
                None => {
                    eprintln!("hazel: --listen needs an address, e.g. 127.0.0.1:7878");
                    return ExitCode::from(2);
                }
            },
            "--uds" => match it.next() {
                Some(path) => uds = Some(path.clone()),
                None => {
                    eprintln!("hazel: --uds needs a socket path");
                    return ExitCode::from(2);
                }
            },
            "--snapshot-dir" => match it.next() {
                Some(dir) => snapshot_dir = Some(dir.clone()),
                None => {
                    eprintln!("hazel: --snapshot-dir needs a directory path");
                    return ExitCode::from(2);
                }
            },
            "--max-conns" => {
                let parsed = it.next().and_then(|n| n.parse::<usize>().ok());
                match parsed.filter(|&n| n >= 1) {
                    Some(n) => config.max_conns = n,
                    None => {
                        eprintln!("hazel: --max-conns needs an integer >= 1");
                        return ExitCode::from(2);
                    }
                }
            }
            "--idle-timeout" => {
                let parsed = it.next().and_then(|s| s.parse::<u64>().ok());
                match parsed.filter(|&s| s >= 1) {
                    Some(s) => config.idle_timeout = std::time::Duration::from_secs(s),
                    None => {
                        eprintln!("hazel: --idle-timeout needs an integer >= 1 (seconds)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--batch" => batch = true,
            "--no-metrics" => metrics_on = false,
            "--metrics-interval" => {
                let parsed = it.next().and_then(|s| s.parse::<u64>().ok());
                match parsed.filter(|&s| s >= 1) {
                    Some(s) => interval = Some(s),
                    None => {
                        eprintln!("hazel: --metrics-interval needs an integer >= 1 (seconds)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--workers" => {
                let parsed = it.next().and_then(|w| w.parse::<usize>().ok());
                match parsed.filter(|&w| w >= 1) {
                    Some(w) => workers = Some(w),
                    None => {
                        eprintln!("hazel: --workers needs an integer >= 1");
                        return ExitCode::from(2);
                    }
                }
            }
            _ => return usage(),
        }
    }
    let transports =
        usize::from(stdio) + usize::from(listen.is_some()) + usize::from(uds.is_some());
    if transports != 1 {
        eprintln!(
            "hazel: serve needs exactly one transport: --stdio, --listen ADDR, or --uds PATH"
        );
        return ExitCode::from(2);
    }
    if batch && !stdio {
        eprintln!("hazel: --batch is a stdio mode (sockets already multiplex sessions)");
        return ExitCode::from(2);
    }
    if let Some(w) = workers {
        livelit_sched::set_workers_override(Some(w));
    }

    let mut server = hazel::server::Server::with_registry(Arc::new(|| {
        let mut registry = LivelitRegistry::new();
        hazel::std::register_all(&mut registry);
        registry
    }));
    let metrics = metrics_on.then(|| {
        let m = hazel::server::observe::ServeMetrics::new(SERVE_SLOW_K, SERVE_CAPTURE_EVENTS);
        server.enable_metrics(m.clone());
        m
    });
    if let Some(dir) = &snapshot_dir {
        match server.enable_snapshots(std::path::Path::new(dir)) {
            Ok(report) => {
                if !report.restored.is_empty() {
                    let lines: usize = report.restored.iter().map(|(_, n)| n).sum();
                    eprintln!(
                        "hazel serve: restored {} session(s) from {dir} ({lines} journal line(s))",
                        report.restored.len()
                    );
                }
                for session in &report.torn {
                    eprintln!(
                        "hazel serve: journal for session {session:?} had a torn tail; \
                         recovered the acked prefix"
                    );
                }
                for (file, err) in &report.failed {
                    eprintln!("hazel serve: snapshot {file} not restored: {}", err.message);
                }
            }
            Err(e) => {
                eprintln!("hazel: cannot use snapshot dir {dir}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    // Phase attribution and slow-trace capture ride on an installed
    // tracer; only the sequential stdio path gets one (batch and socket
    // handler threads would interleave their span parentage on the
    // process-global stack). The guard must outlive the request loop and
    // drop on this thread.
    let _trace_guard = metrics.as_ref().filter(|_| stdio && !batch).map(|m| {
        let sink = PairSink(MetricsSink::new(Arc::clone(m.hub())), m.capture().clone());
        hazel::trace::install(&Tracer::monotonic(sink))
    });
    if let (Some(m), Some(secs)) = (metrics.as_ref(), interval) {
        let reporter = m.clone();
        // Detached on purpose: it dies with the process at shutdown.
        std::thread::spawn(move || loop {
            std::thread::sleep(std::time::Duration::from_secs(secs));
            eprintln!("hazel serve: {}", reporter.summary_line());
        });
    }

    if stdio {
        let stdin = std::io::stdin();
        let mut out = std::io::stdout().lock();
        if batch {
            let lines: Vec<String> = stdin.lock().lines().map_while(Result::ok).collect();
            for reply in server.handle_batch(&lines) {
                if writeln!(out, "{reply}").is_err() {
                    break;
                }
            }
        } else {
            // The same framer the socket transport uses: LF or CRLF, a
            // final unterminated line still answered, oversized lines
            // refused without killing the stream.
            let mut reader = LineReader::new(stdin.lock(), config.max_line_bytes);
            loop {
                let line = match reader.next_line() {
                    Ok(Some(line)) => line,
                    Ok(None) => break,
                    Err(FrameError::TooLong { limit }) => {
                        let refusal =
                            transport_error_line(format!("request line exceeds {limit} bytes"));
                        if writeln!(out, "{refusal}").is_err() || out.flush().is_err() {
                            break;
                        }
                        continue;
                    }
                    Err(FrameError::Io(_)) => break,
                };
                if line.trim().is_empty() {
                    continue;
                }
                let reply = server.handle_line(&line);
                // A reply per request, flushed eagerly: clients drive the
                // protocol request/reply lockstep. `watch` notifications
                // ride after the reply that triggered them.
                if writeln!(out, "{reply}").is_err() || out.flush().is_err() {
                    break;
                }
                for note in server.take_notifications() {
                    if writeln!(out, "{note}").is_err() || out.flush().is_err() {
                        break;
                    }
                }
                if server.shutdown_requested() {
                    break;
                }
            }
        }
        let _ = server.sync_snapshots();
    } else {
        let bind_to = match (&listen, &uds) {
            (Some(addr), _) => BindTo::Tcp(addr.clone()),
            #[cfg(unix)]
            (None, Some(path)) => BindTo::Unix(std::path::PathBuf::from(path)),
            #[cfg(not(unix))]
            (None, Some(_)) => {
                eprintln!("hazel: --uds needs a Unix platform");
                return ExitCode::from(2);
            }
            (None, None) => unreachable!("transport count checked above"),
        };
        // Drain instead of dying on SIGTERM/SIGINT: finish in-flight
        // requests, sync journals, then exit 0.
        signal::install_term_handler();
        let transport = match Transport::bind(&bind_to, server, config) {
            Ok(t) => t,
            Err(e) => {
                let target = listen.as_deref().or(uds.as_deref()).unwrap_or("?");
                eprintln!("hazel: cannot bind {target}: {e}");
                return ExitCode::from(2);
            }
        };
        match (transport.tcp_addr(), &uds) {
            (Some(addr), _) => eprintln!("hazel serve: listening on {addr}"),
            (None, Some(path)) => eprintln!("hazel serve: listening on {path}"),
            (None, None) => {}
        }
        let summary = transport.run();
        eprintln!(
            "hazel serve: drained ({} conn(s) accepted, {} dropped, {} stranded)",
            summary.accepted, summary.dropped, summary.stranded
        );
        #[cfg(unix)]
        if let Some(path) = &uds {
            let _ = std::fs::remove_file(path);
        }
    }

    // Graceful-shutdown dump: the summary plus the slow-request ranking,
    // on stderr so transcript-diffing consumers of stdout are unaffected.
    if let Some(m) = metrics.as_ref() {
        eprintln!("hazel serve: {}", m.summary_line());
        let slow = m.render_slow();
        if !slow.is_empty() {
            eprint!("{slow}");
        }
    }

    if workers.is_some() {
        livelit_sched::set_workers_override(None);
    }
    ExitCode::SUCCESS
}

fn codes() -> ExitCode {
    let mut out = String::from("{\n  \"codes\": [");
    for (i, code) in Code::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"code\": ");
        json_string(&mut out, code.as_str());
        out.push_str(", \"title\": ");
        json_string(&mut out, code.title());
        out.push_str(", \"paper\": ");
        json_string(&mut out, code.paper_section());
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    emit(&out);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "analyze" => analyze(rest),
            "trace" => trace(rest),
            "stats" => stats(rest),
            "metrics" => metrics_cmd(rest),
            "serve" => serve(rest),
            "codes" => codes(),
            _ => usage(),
        },
        None => usage(),
    }
}
