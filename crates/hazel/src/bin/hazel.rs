//! `hazel`: the livelit toolchain driver.
//!
//! ```console
//! $ hazel analyze program.hzl          # diagnostics as JSON (stable codes)
//! $ hazel analyze --text program.hzl   # human-readable diagnostics
//! $ hazel codes                        # the LL lint-code table
//! ```
//!
//! `analyze` loads a module file exactly as the editor would (standard
//! livelit library preloaded, textual livelit declarations registered
//! behind the generic GUI) and runs the full static analysis over it:
//! hygiene/capture validation, splice discipline, the hole audit,
//! definition lints, and expansion determinism. The JSON output is
//! deterministic — same module, same bytes — so it can be diffed and
//! asserted on in CI.
//!
//! Exit status: 0 when no error-severity diagnostics were found, 1 when
//! some were, 2 on usage or load errors.

use std::io::Write;
use std::process::ExitCode;

use hazel::analysis::{json_string, Code};
use hazel::prelude::*;

/// Prints to stdout, tolerating a closed pipe (`hazel codes | head`).
fn emit(s: &str) {
    let _ = std::io::stdout().write_all(s.as_bytes());
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: hazel <command> [options]\n\n\
         commands:\n  \
         analyze [--text] <file.hzl>   run static diagnostics over a module\n  \
         codes                         list every lint code"
    );
    ExitCode::from(2)
}

fn analyze(args: &[String]) -> ExitCode {
    let mut text = false;
    let mut path = None;
    for arg in args {
        match arg.as_str() {
            "--text" => text = true,
            "--json" => text = false,
            _ if arg.starts_with('-') => return usage(),
            _ => path = Some(arg.clone()),
        }
    }
    let Some(path) = path else {
        return usage();
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("hazel: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut registry = LivelitRegistry::new();
    hazel::std::register_all(&mut registry);
    let (registry, doc) = match hazel::editor::open_module(registry, &src) {
        Ok(opened) => opened,
        Err(e) => {
            eprintln!("hazel: {path}: {e}");
            return ExitCode::from(2);
        }
    };

    let report = hazel::editor::analyze_document(&registry, &doc);
    if text {
        emit(&report.render());
    } else {
        emit(&report.to_json());
    }
    if report.error_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn codes() -> ExitCode {
    let mut out = String::from("{\n  \"codes\": [");
    for (i, code) in Code::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"code\": ");
        json_string(&mut out, code.as_str());
        out.push_str(", \"title\": ");
        json_string(&mut out, code.title());
        out.push_str(", \"paper\": ");
        json_string(&mut out, code.paper_section());
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    emit(&out);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "analyze" => analyze(rest),
            "codes" => codes(),
            _ => usage(),
        },
        None => usage(),
    }
}
