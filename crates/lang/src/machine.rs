//! A CEK-style environment machine over the hash-consed term store.
//!
//! The substitution-based evaluators ([`crate::eval::Evaluator`],
//! [`crate::eval::StoreEvaluator`]) pay a path-copying substitution at
//! every β/fix/case step. This machine pays none on the hot path: closures
//! are `(code, env)` pairs over a persistent environment chain allocated
//! in a per-run arena, the continuation is an explicit frame stack (so no
//! host-stack recursion and no big-stack threads), and substitutions are
//! *realized* only when a value escapes into a position that needs a term
//! — a residual indeterminate form, a recorded hole-closure σ entry, or
//! the final result.
//!
//! # Exact parity with the substitution semantics
//!
//! The machine is differential-tested bit-identical to both evaluators:
//! same values, same recorded σ environments, same error taxonomy, and the
//! same step counts (so fuel runs out at the same instant). Three
//! disciplines make this exact rather than approximate:
//!
//! - **Replay charging.** Where the tree evaluator re-evaluates a value it
//!   substituted into a variable position, the machine returns the binding
//!   in O(1) and charges the steps that re-evaluation would have consumed
//!   (see [`crate::compile::ReplayCosts`]). Fuel exhaustion therefore
//!   happens at exactly the same step index, and `steps()` agrees.
//! - **Closed-binding invariant.** Every environment binding materializes
//!   to a *closed* term. Substituting closed terms never renames binders
//!   and makes simultaneous substitution agree with the chronological
//!   sequence of singleton substitutions the tree evaluator performs —
//!   which is what makes realized terms (and recorded σ) bit-identical.
//!   Whenever a to-be-bound value would be open (possible only in open
//!   programs, via indeterminate residuals containing free variables),
//!   the machine takes a *literal escape hatch*: it realizes the affected
//!   redex and performs the tree evaluator's own `subst_one`, inheriting
//!   its renaming behavior exactly.
//! - **Lazy σ from the live environment.** A hole closure records σ by
//!   applying the environment to each entry: entries whose free variables
//!   are fully covered are evaluated *by the machine* under the same
//!   environment (charging what the tree evaluator's `eval_sigma` would),
//!   uncovered entries are realized unevaluated — matching Def. 4.7's
//!   closed/open split because covered entries are closed by the
//!   invariant above.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::compile::ReplayCosts;
use crate::eval::EvalError;
use crate::ops::BinOp;
use crate::store::{Node, TermId, TermStore, VarId};

/// Which evaluator the pipeline's dispatching entry points use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalKind {
    /// The environment machine (default): no substitution on the hot
    /// path, explicit frame stack, no big-stack threads.
    Machine,
    /// The substitution-based [`crate::eval::StoreEvaluator`], kept as
    /// the differential-testing oracle. Runs on a big-stack thread at the
    /// pipeline entry points because it recurses on redex depth.
    Store,
}

/// 0 = no override, 1 = machine, 2 = store.
static KIND_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static ENV_KIND: OnceLock<EvalKind> = OnceLock::new();
static WARNED_BAD_KIND: AtomicBool = AtomicBool::new(false);

/// The active evaluator kind: the process-wide override if set (tests),
/// else `LIVELIT_EVAL` (`machine` | `store`), else [`EvalKind::Machine`].
/// An unrecognized `LIVELIT_EVAL` value warns once on stderr and falls
/// back to the default, mirroring `LIVELIT_THREADS` handling.
pub fn eval_kind() -> EvalKind {
    match KIND_OVERRIDE.load(Ordering::Relaxed) {
        1 => EvalKind::Machine,
        2 => EvalKind::Store,
        _ => *ENV_KIND.get_or_init(|| match std::env::var("LIVELIT_EVAL") {
            Ok(v) if v == "machine" => EvalKind::Machine,
            Ok(v) if v == "store" => EvalKind::Store,
            Ok(v) => {
                if !WARNED_BAD_KIND.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "livelit-lang: unrecognized LIVELIT_EVAL={v:?} \
                         (expected \"machine\" or \"store\"); using machine"
                    );
                }
                EvalKind::Machine
            }
            Err(_) => EvalKind::Machine,
        }),
    }
}

/// Overrides (or with `None` clears) the evaluator kind for this process,
/// taking precedence over `LIVELIT_EVAL`. Test-only in spirit: lets the
/// differential suites flip kinds without re-execing.
pub fn set_eval_kind_override(kind: Option<EvalKind>) {
    let v = match kind {
        None => 0,
        Some(EvalKind::Machine) => 1,
        Some(EvalKind::Store) => 2,
    };
    KIND_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Machine-specific work counters, surfaced through `livelit-trace` as
/// `machine_steps` / `machine_allocs` / `machine_env_reuse`. All three are
/// functions of the evaluated terms alone (never of thread scheduling), so
/// totals stay bit-identical at any worker count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineCounters {
    /// Machine transitions executed (one per control-state dispatch).
    /// Distinct from `EvalSteps`: replay charging makes `EvalSteps` count
    /// the steps the substitution semantics would have taken, while this
    /// counts the work the machine actually did.
    pub transitions: u64,
    /// Arena allocations: frame pushes plus environment-node pushes.
    pub allocs: u64,
    /// Environment extensions that shared an existing (non-empty) parent
    /// chain — persistent reuse instead of substitution.
    pub env_reuse: u64,
}

impl MachineCounters {
    /// Adds `other` into `self` (used when folding per-task counters on
    /// the coordinating thread, in task order).
    pub fn merge(&mut self, other: MachineCounters) {
        self.transitions += other.transitions;
        self.allocs += other.allocs;
        self.env_reuse += other.env_reuse;
    }
}

/// Sentinel for the empty environment.
const NIL: u32 = u32::MAX;

/// A machine value: either a realized final term or an unrealized closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MVal {
    /// A final term id (closed unless the program was open).
    Done(TermId),
    /// A closure: a `Lam` node plus the environment it was evaluated in.
    Clo(TermId, u32),
}

/// What a variable is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    /// A value (its materialization is closed, by invariant).
    Val(MVal),
    /// A recursive binding: the `Fix` node and the environment to unroll
    /// it in. Looking it up re-enters the fix body — the machine analogue
    /// of the tree evaluator's unrolling substitution, at zero charge
    /// (the `Fix` dispatch itself charges the step).
    Thunk(TermId, u32),
}

/// One node of the persistent environment chain.
#[derive(Debug, Clone, Copy)]
struct EnvNode {
    var: VarId,
    binding: Binding,
    parent: u32,
}

/// A continuation frame. Frames hold the *original* node id (plus the
/// environment where needed) and re-read labels, types, and branches from
/// the store at return time, so pushing a frame never clones node payload.
#[derive(Debug)]
enum Frame {
    /// Evaluating the function of `Ap`; the node supplies the argument.
    ApFun { node: TermId, env: u32 },
    /// Evaluating the argument; `fun` is the evaluated function.
    ApArg { fun: MVal },
    /// Evaluating the left operand; the node supplies the right.
    BinLhs { node: TermId, env: u32 },
    /// Evaluating the right operand.
    BinRhs { op: BinOp, lhs: MVal },
    /// Evaluating the condition; the node supplies the branches.
    IfCond { node: TermId, env: u32 },
    /// Evaluating field `idx`; earlier fields are realized in `done`.
    TupleField {
        node: TermId,
        env: u32,
        idx: u32,
        done: Vec<(crate::ident::Label, TermId)>,
    },
    /// Evaluating a projection scrutinee; the node supplies the label.
    ProjScrut { node: TermId },
    /// Evaluating an injection payload; the node supplies type and label.
    InjWrap { node: TermId },
    /// Evaluating a case scrutinee; the node supplies the arms.
    CaseScrut { node: TermId, env: u32 },
    /// Evaluating the head of a cons; the node supplies the tail.
    ConsHead { node: TermId, env: u32 },
    /// Evaluating the tail; `head` is the realized head.
    ConsTail { head: TermId },
    /// Evaluating a list-case scrutinee; the node supplies the rest.
    ListCaseScrut { node: TermId, env: u32 },
    /// Evaluating a roll payload; the node supplies the type.
    RollWrap { node: TermId },
    /// Evaluating an unroll scrutinee.
    UnrollScrut,
    /// Evaluating covered σ entry `idx` of a hole closure; earlier
    /// entries are realized in `done`.
    SigmaEntry {
        node: TermId,
        env: u32,
        idx: u32,
        done: Vec<(VarId, TermId)>,
    },
    /// Evaluating the inner term of a non-empty hole; σ is done.
    HoleInner {
        node: TermId,
        done: Vec<(VarId, TermId)>,
    },
}

/// The machine's control state.
#[derive(Debug, Clone, Copy)]
enum Ctrl {
    Eval(TermId, u32),
    Ret(MVal),
}

/// A compact, all-`Copy` decoding of a node — lets dispatch end its
/// borrow of the store before charging fuel or pushing frames, without
/// cloning node payload the way the store evaluator does.
#[derive(Clone, Copy)]
enum Op {
    Literal,
    Var(VarId),
    Lam,
    Fix(VarId, TermId),
    Ap(TermId),
    Bin(TermId),
    If(TermId),
    TupleEmpty,
    Tuple(TermId),
    Proj(TermId),
    Inj(TermId),
    Case(TermId),
    Cons(TermId),
    ListCase(TermId),
    Roll(TermId),
    Unroll(TermId),
    Hole,
    Skeleton,
}

/// The environment machine. Mirrors [`crate::eval::StoreEvaluator`]'s
/// API: construct with a fuel budget, call [`MachineEvaluator::eval`]
/// (scratch arenas are reset between calls but keep their capacity, so a
/// per-splice evaluator reuses its allocations), read
/// [`MachineEvaluator::steps`] and [`MachineEvaluator::counters`].
#[derive(Debug)]
pub struct MachineEvaluator<'s> {
    store: &'s mut TermStore,
    fuel: u64,
    steps: u64,
    envs: Vec<EnvNode>,
    frames: Vec<Frame>,
    /// Realized `(code, env)` pairs — prevents exponential re-realization
    /// of shared closures. Env indices are per-call, so this resets with
    /// the arenas.
    mat_memo: HashMap<(TermId, u32), TermId>,
    replay: ReplayCosts,
    counters: MachineCounters,
}

impl<'s> MachineEvaluator<'s> {
    /// Creates a machine over `store` with the given fuel budget.
    pub fn with_fuel(store: &'s mut TermStore, fuel: u64) -> MachineEvaluator<'s> {
        MachineEvaluator {
            store,
            fuel,
            steps: 0,
            envs: Vec::new(),
            frames: Vec::new(),
            mat_memo: HashMap::new(),
            replay: ReplayCosts::new(),
            counters: MachineCounters::default(),
        }
    }

    /// The number of evaluation steps consumed so far — bit-identical to
    /// what [`crate::eval::StoreEvaluator::steps`] would report for the
    /// same terms, across repeated `eval` calls.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Machine work counters accumulated across `eval` calls.
    pub fn counters(&self) -> MachineCounters {
        self.counters
    }

    /// Evaluates `t` to a final term id.
    ///
    /// # Errors
    ///
    /// See [`EvalError`] — same taxonomy, same messages, and same fuel
    /// exhaustion points as the substitution-based evaluators.
    pub fn eval(&mut self, t: TermId) -> Result<TermId, EvalError> {
        self.envs.clear();
        self.frames.clear();
        self.mat_memo.clear();
        let result = self.run(t);
        // A propagating error leaves frames behind; clear so a reused
        // evaluator starts clean.
        self.frames.clear();
        result
    }

    fn run(&mut self, t0: TermId) -> Result<TermId, EvalError> {
        let mut ctrl = Ctrl::Eval(t0, NIL);
        loop {
            self.counters.transitions += 1;
            ctrl = match ctrl {
                Ctrl::Eval(t, env) => self.step_eval(t, env)?,
                Ctrl::Ret(v) => match self.frames.pop() {
                    None => return Ok(self.materialize(v)),
                    Some(frame) => self.step_ret(frame, v)?,
                },
            };
        }
    }

    /// Charges `n` steps against the fuel budget, pinning `steps` to
    /// `fuel + 1` on exhaustion — exactly where the unit-step evaluators
    /// land when they cross the budget.
    fn charge(&mut self, n: u64) -> Result<(), EvalError> {
        if self.steps.saturating_add(n) > self.fuel {
            self.steps = self.fuel + 1;
            Err(EvalError::OutOfFuel)
        } else {
            self.steps += n;
            Ok(())
        }
    }

    fn decode(&self, t: TermId) -> Op {
        match self.store.node(t) {
            Node::Var(x) => Op::Var(*x),
            Node::Lam(..) => Op::Lam,
            Node::Fix(x, _, body) => Op::Fix(*x, *body),
            Node::Int(_)
            | Node::Float(_)
            | Node::Bool(_)
            | Node::Str(_)
            | Node::Unit
            | Node::Nil(_) => Op::Literal,
            Node::Ap(f, _) => Op::Ap(*f),
            Node::Bin(_, a, _) => Op::Bin(*a),
            Node::If(c, _, _) => Op::If(*c),
            Node::Tuple(fields) => match fields.first() {
                None => Op::TupleEmpty,
                Some(&(_, e)) => Op::Tuple(e),
            },
            Node::Proj(s, _) => Op::Proj(*s),
            Node::Inj(_, _, e) => Op::Inj(*e),
            Node::Case(s, _) => Op::Case(*s),
            Node::Cons(h, _) => Op::Cons(*h),
            Node::ListCase(s, _, _, _, _) => Op::ListCase(*s),
            Node::Roll(_, e) => Op::Roll(*e),
            Node::Unroll(e) => Op::Unroll(*e),
            Node::EmptyHole(..) | Node::NonEmptyHole(..) => Op::Hole,
            Node::ULet(..)
            | Node::UAsc(..)
            | Node::ULivelit(..)
            | Node::UEmptyHole(_)
            | Node::UNonEmptyHole(..) => Op::Skeleton,
        }
    }

    fn step_eval(&mut self, t: TermId, env: u32) -> Result<Ctrl, EvalError> {
        match self.decode(t) {
            Op::Var(x) => match self.lookup(env, x) {
                Some(Binding::Val(v)) => {
                    // The tree evaluator re-evaluates the substituted
                    // value here; charge what that replay costs and
                    // return the binding unchanged (re-evaluation of a
                    // final term is the identity).
                    let cost = self.replay_cost(v);
                    self.charge(cost)?;
                    Ok(Ctrl::Ret(v))
                }
                // The tree evaluator meets the substituted `fix` term and
                // dispatches on it (charging there); jump straight to it.
                Some(Binding::Thunk(f, e)) => Ok(Ctrl::Eval(f, e)),
                None => {
                    self.charge(1)?;
                    Err(EvalError::FreeVariable(self.store.var(x).clone()))
                }
            },
            Op::Literal => {
                self.charge(1)?;
                Ok(Ctrl::Ret(MVal::Done(t)))
            }
            Op::Lam => {
                self.charge(1)?;
                if env == NIL || self.store.is_closed(t) {
                    Ok(Ctrl::Ret(MVal::Done(t)))
                } else {
                    Ok(Ctrl::Ret(MVal::Clo(t, env)))
                }
            }
            Op::Fix(x, body) => {
                self.charge(1)?;
                if self.covered(t, env) {
                    let e2 = self.push_env(x, Binding::Thunk(t, env), env);
                    Ok(Ctrl::Eval(body, e2))
                } else {
                    // An open fix (open program): its thunk would not
                    // materialize closed, so unroll literally, exactly as
                    // the tree evaluator does.
                    let m_fix = self.subst_env(t, env);
                    let (x2, body2) = match *self.store.node(m_fix) {
                        Node::Fix(x2, _, b2) => (x2, b2),
                        _ => unreachable!("substitution preserves the head constructor"),
                    };
                    let unrolled = self.store.subst_one(body2, x2, m_fix);
                    Ok(Ctrl::Eval(unrolled, NIL))
                }
            }
            Op::Ap(f) => {
                self.charge(1)?;
                self.push_frame(Frame::ApFun { node: t, env });
                Ok(Ctrl::Eval(f, env))
            }
            Op::Bin(a) => {
                self.charge(1)?;
                self.push_frame(Frame::BinLhs { node: t, env });
                Ok(Ctrl::Eval(a, env))
            }
            Op::If(c) => {
                self.charge(1)?;
                self.push_frame(Frame::IfCond { node: t, env });
                Ok(Ctrl::Eval(c, env))
            }
            Op::TupleEmpty => {
                self.charge(1)?;
                Ok(Ctrl::Ret(MVal::Done(t)))
            }
            Op::Tuple(first) => {
                self.charge(1)?;
                self.push_frame(Frame::TupleField {
                    node: t,
                    env,
                    idx: 0,
                    done: Vec::new(),
                });
                Ok(Ctrl::Eval(first, env))
            }
            Op::Proj(s) => {
                self.charge(1)?;
                self.push_frame(Frame::ProjScrut { node: t });
                Ok(Ctrl::Eval(s, env))
            }
            Op::Inj(e) => {
                self.charge(1)?;
                self.push_frame(Frame::InjWrap { node: t });
                Ok(Ctrl::Eval(e, env))
            }
            Op::Case(s) => {
                self.charge(1)?;
                self.push_frame(Frame::CaseScrut { node: t, env });
                Ok(Ctrl::Eval(s, env))
            }
            Op::Cons(h) => {
                self.charge(1)?;
                self.push_frame(Frame::ConsHead { node: t, env });
                Ok(Ctrl::Eval(h, env))
            }
            Op::ListCase(s) => {
                self.charge(1)?;
                self.push_frame(Frame::ListCaseScrut { node: t, env });
                Ok(Ctrl::Eval(s, env))
            }
            Op::Roll(e) => {
                self.charge(1)?;
                self.push_frame(Frame::RollWrap { node: t });
                Ok(Ctrl::Eval(e, env))
            }
            Op::Unroll(e) => {
                self.charge(1)?;
                self.push_frame(Frame::UnrollScrut);
                Ok(Ctrl::Eval(e, env))
            }
            Op::Hole => {
                self.charge(1)?;
                self.run_sigma(t, env, 0, Vec::new())
            }
            Op::Skeleton => {
                self.charge(1)?;
                Err(EvalError::IllTyped(
                    "evaluation of editor-skeleton node".to_owned(),
                ))
            }
        }
    }

    fn step_ret(&mut self, frame: Frame, v: MVal) -> Result<Ctrl, EvalError> {
        match frame {
            Frame::ApFun { node, env } => {
                let arg = match *self.store.node(node) {
                    Node::Ap(_, a) => a,
                    _ => unreachable!("ApFun frame on non-Ap node"),
                };
                self.push_frame(Frame::ApArg { fun: v });
                Ok(Ctrl::Eval(arg, env))
            }
            Frame::ApArg { fun } => self.apply(fun, v),
            Frame::BinLhs { node, env } => {
                let (op, rhs) = match *self.store.node(node) {
                    Node::Bin(op, _, b) => (op, b),
                    _ => unreachable!("BinLhs frame on non-Bin node"),
                };
                self.push_frame(Frame::BinRhs { op, lhs: v });
                Ok(Ctrl::Eval(rhs, env))
            }
            Frame::BinRhs { op, lhs } => {
                let da = self.materialize(lhs);
                let db = self.materialize(v);
                self.eval_bin(op, da, db).map(|t| Ctrl::Ret(MVal::Done(t)))
            }
            Frame::IfCond { node, env } => {
                let (th, el) = match *self.store.node(node) {
                    Node::If(_, th, el) => (th, el),
                    _ => unreachable!("IfCond frame on non-If node"),
                };
                if let MVal::Done(d) = v {
                    match self.store.node(d) {
                        Node::Bool(true) => return Ok(Ctrl::Eval(th, env)),
                        Node::Bool(false) => return Ok(Ctrl::Eval(el, env)),
                        _ => {}
                    }
                }
                let dc = self.materialize(v);
                if self.store.is_final(dc) {
                    // Stuck: realize the branches under the environment
                    // (the tree evaluator preserves them unevaluated with
                    // its substitutions already applied).
                    let m = self.subst_env(node, env);
                    let (th2, el2) = match *self.store.node(m) {
                        Node::If(_, th2, el2) => (th2, el2),
                        _ => unreachable!("substitution preserves the head constructor"),
                    };
                    Ok(Ctrl::Ret(MVal::Done(
                        self.store.intern(Node::If(dc, th2, el2)),
                    )))
                } else {
                    Err(EvalError::IllTyped(format!(
                        "if on non-boolean: {:?}",
                        self.store.to_iexp(dc)
                    )))
                }
            }
            Frame::TupleField {
                node,
                env,
                idx,
                mut done,
            } => {
                let m = self.materialize(v);
                let (label, next) = match self.store.node(node) {
                    Node::Tuple(fields) => (
                        fields[idx as usize].0.clone(),
                        fields.get(idx as usize + 1).map(|&(_, e)| e),
                    ),
                    _ => unreachable!("TupleField frame on non-Tuple node"),
                };
                done.push((label, m));
                match next {
                    Some(e) => {
                        self.push_frame(Frame::TupleField {
                            node,
                            env,
                            idx: idx + 1,
                            done,
                        });
                        Ok(Ctrl::Eval(e, env))
                    }
                    None => Ok(Ctrl::Ret(MVal::Done(
                        self.store.intern(Node::Tuple(done.into())),
                    ))),
                }
            }
            Frame::ProjScrut { node } => {
                let label = match self.store.node(node) {
                    Node::Proj(_, l) => l.clone(),
                    _ => unreachable!("ProjScrut frame on non-Proj node"),
                };
                if let MVal::Done(d) = v {
                    if let Node::Tuple(fields) = self.store.node(d) {
                        return fields
                            .iter()
                            .find(|(fl, _)| *fl == label)
                            .map(|&(_, e)| Ctrl::Ret(MVal::Done(e)))
                            .ok_or_else(|| {
                                EvalError::IllTyped(format!("projection .{label} missing"))
                            });
                    }
                }
                let ds = self.materialize(v);
                if self.store.is_final(ds) {
                    Ok(Ctrl::Ret(MVal::Done(
                        self.store.intern(Node::Proj(ds, label)),
                    )))
                } else {
                    Err(EvalError::IllTyped(format!(
                        "projection from non-tuple: {:?}",
                        self.store.to_iexp(ds)
                    )))
                }
            }
            Frame::InjWrap { node } => {
                let de = self.materialize(v);
                let (ty, label) = match self.store.node(node) {
                    Node::Inj(ty, l, _) => (ty.clone(), l.clone()),
                    _ => unreachable!("InjWrap frame on non-Inj node"),
                };
                Ok(Ctrl::Ret(MVal::Done(
                    self.store.intern(Node::Inj(ty, label, de)),
                )))
            }
            Frame::CaseScrut { node, env } => self.ret_case(node, env, v),
            Frame::ConsHead { node, env } => {
                let tail = match *self.store.node(node) {
                    Node::Cons(_, tl) => tl,
                    _ => unreachable!("ConsHead frame on non-Cons node"),
                };
                let head = self.materialize(v);
                self.push_frame(Frame::ConsTail { head });
                Ok(Ctrl::Eval(tail, env))
            }
            Frame::ConsTail { head } => {
                let dt = self.materialize(v);
                Ok(Ctrl::Ret(MVal::Done(
                    self.store.intern(Node::Cons(head, dt)),
                )))
            }
            Frame::ListCaseScrut { node, env } => self.ret_list_case(node, env, v),
            Frame::RollWrap { node } => {
                let de = self.materialize(v);
                let ty = match self.store.node(node) {
                    Node::Roll(ty, _) => ty.clone(),
                    _ => unreachable!("RollWrap frame on non-Roll node"),
                };
                Ok(Ctrl::Ret(MVal::Done(self.store.intern(Node::Roll(ty, de)))))
            }
            Frame::UnrollScrut => {
                if let MVal::Done(d) = v {
                    if let Node::Roll(_, inner) = *self.store.node(d) {
                        return Ok(Ctrl::Ret(MVal::Done(inner)));
                    }
                }
                let de = self.materialize(v);
                if self.store.is_final(de) {
                    Ok(Ctrl::Ret(MVal::Done(self.store.intern(Node::Unroll(de)))))
                } else {
                    Err(EvalError::IllTyped(format!(
                        "unroll of non-roll: {:?}",
                        self.store.to_iexp(de)
                    )))
                }
            }
            Frame::SigmaEntry {
                node,
                env,
                idx,
                mut done,
            } => {
                let m = self.materialize(v);
                let x = self.sigma_of(node)[idx as usize].0;
                done.push((x, m));
                self.run_sigma(node, env, idx + 1, done)
            }
            Frame::HoleInner { node, done } => {
                let dinner = self.materialize(v);
                let u = match self.store.node(node) {
                    Node::NonEmptyHole(u, _, _) => *u,
                    _ => unreachable!("HoleInner frame on non-hole node"),
                };
                Ok(Ctrl::Ret(MVal::Done(
                    self.store
                        .intern(Node::NonEmptyHole(u, done.into(), dinner)),
                )))
            }
        }
    }

    /// Function application once both sides are evaluated.
    fn apply(&mut self, fun: MVal, va: MVal) -> Result<Ctrl, EvalError> {
        let callable = match fun {
            MVal::Clo(l, e) => Some((l, e)),
            MVal::Done(d) => match self.store.node(d) {
                Node::Lam(..) => Some((d, NIL)),
                _ => None,
            },
        };
        if let Some((l, e)) = callable {
            let (x, body) = match *self.store.node(l) {
                Node::Lam(x, _, body) => (x, body),
                _ => unreachable!("closure code is a Lam"),
            };
            if self.val_is_closed(va) {
                let e2 = self.push_env(x, Binding::Val(va), e);
                Ok(Ctrl::Eval(body, e2))
            } else {
                // Open argument (open program): a binding would not
                // materialize closed, so perform the tree evaluator's
                // literal β-substitution, inheriting its renaming.
                let m_fun = self.materialize(fun);
                let m_arg = self.materialize(va);
                let (x2, body2) = match *self.store.node(m_fun) {
                    Node::Lam(x2, _, b2) => (x2, b2),
                    _ => unreachable!("substitution preserves the head constructor"),
                };
                let applied = self.store.subst_one(body2, x2, m_arg);
                Ok(Ctrl::Eval(applied, NIL))
            }
        } else {
            let df = match fun {
                MVal::Done(d) => d,
                MVal::Clo(..) => unreachable!("closures are callable"),
            };
            let da = self.materialize(va);
            if self.store.is_final(df) {
                Ok(Ctrl::Ret(MVal::Done(self.store.intern(Node::Ap(df, da)))))
            } else {
                Err(EvalError::IllTyped(format!(
                    "application of non-function: {:?}",
                    self.store.to_iexp(df)
                )))
            }
        }
    }

    fn ret_case(&mut self, node: TermId, env: u32, v: MVal) -> Result<Ctrl, EvalError> {
        if let MVal::Done(d) = v {
            if let Node::Inj(_, l, payload) = self.store.node(d) {
                let payload = *payload;
                let l = l.clone();
                let arm = match self.store.node(node) {
                    Node::Case(_, arms) => arms
                        .iter()
                        .find(|(al, _, _)| *al == l)
                        .map(|&(_, var, body)| (var, body)),
                    _ => unreachable!("CaseScrut frame on non-Case node"),
                };
                let (var, body) =
                    arm.ok_or_else(|| EvalError::IllTyped(format!("no case arm for .{l}")))?;
                return if self.store.is_closed(payload) {
                    let e2 = self.push_env(var, Binding::Val(MVal::Done(payload)), env);
                    Ok(Ctrl::Eval(body, e2))
                } else {
                    // Open payload: literal substitution into the
                    // realized arm, as the tree evaluator does.
                    let m = self.subst_env(node, env);
                    let (var2, body2) = match self.store.node(m) {
                        Node::Case(_, arms) => arms
                            .iter()
                            .find(|(al, _, _)| *al == l)
                            .map(|&(_, var2, body2)| (var2, body2))
                            .expect("substitution preserves arm labels"),
                        _ => unreachable!("substitution preserves the head constructor"),
                    };
                    let applied = self.store.subst_one(body2, var2, payload);
                    Ok(Ctrl::Eval(applied, NIL))
                };
            }
        }
        let ds = self.materialize(v);
        if self.store.is_final(ds) {
            let m = self.subst_env(node, env);
            let arms2 = match self.store.node(m) {
                Node::Case(_, arms) => arms.clone(),
                _ => unreachable!("substitution preserves the head constructor"),
            };
            Ok(Ctrl::Ret(MVal::Done(
                self.store.intern(Node::Case(ds, arms2)),
            )))
        } else {
            Err(EvalError::IllTyped(format!(
                "case on non-injection: {:?}",
                self.store.to_iexp(ds)
            )))
        }
    }

    fn ret_list_case(&mut self, node: TermId, env: u32, v: MVal) -> Result<Ctrl, EvalError> {
        let (nil, hv, tv, cons) = match *self.store.node(node) {
            Node::ListCase(_, nil, hv, tv, cons) => (nil, hv, tv, cons),
            _ => unreachable!("ListCaseScrut frame on non-ListCase node"),
        };
        if let MVal::Done(d) = v {
            match *self.store.node(d) {
                Node::Nil(_) => return Ok(Ctrl::Eval(nil, env)),
                Node::Cons(h, tl) => {
                    return if self.store.is_closed(h) && self.store.is_closed(tl) {
                        // Tail first, head last: the head binding is
                        // innermost, so when `hv == tv` the head wins —
                        // matching the store evaluator's substitution
                        // order (head substituted first).
                        let e1 = self.push_env(tv, Binding::Val(MVal::Done(tl)), env);
                        let e2 = self.push_env(hv, Binding::Val(MVal::Done(h)), e1);
                        Ok(Ctrl::Eval(cons, e2))
                    } else {
                        let m = self.subst_env(node, env);
                        let (hv2, tv2, cons2) = match *self.store.node(m) {
                            Node::ListCase(_, _, hv2, tv2, cons2) => (hv2, tv2, cons2),
                            _ => unreachable!("substitution preserves the head constructor"),
                        };
                        let body = self.store.subst_one(cons2, hv2, h);
                        let body = self.store.subst_one(body, tv2, tl);
                        Ok(Ctrl::Eval(body, NIL))
                    };
                }
                _ => {}
            }
        }
        let ds = self.materialize(v);
        if self.store.is_final(ds) {
            let m = self.subst_env(node, env);
            let (nil2, hv2, tv2, cons2) = match *self.store.node(m) {
                Node::ListCase(_, nil2, hv2, tv2, cons2) => (nil2, hv2, tv2, cons2),
                _ => unreachable!("substitution preserves the head constructor"),
            };
            Ok(Ctrl::Ret(MVal::Done(
                self.store.intern(Node::ListCase(ds, nil2, hv2, tv2, cons2)),
            )))
        } else {
            Err(EvalError::IllTyped(format!(
                "list case on non-list: {:?}",
                self.store.to_iexp(ds)
            )))
        }
    }

    /// Processes hole-closure σ entries from `idx`: covered entries (all
    /// free variables bound — hence closed once realized) are evaluated
    /// by the machine under the same environment, exactly as `eval_sigma`
    /// evaluates closed entries; uncovered entries are realized
    /// unevaluated, matching the open-entry clause of Def. 4.7.
    fn run_sigma(
        &mut self,
        node: TermId,
        env: u32,
        idx: u32,
        mut done: Vec<(VarId, TermId)>,
    ) -> Result<Ctrl, EvalError> {
        let len = self.sigma_of(node).len() as u32;
        let mut i = idx;
        while i < len {
            let (x, entry) = self.sigma_of(node)[i as usize];
            if self.covered(entry, env) {
                self.push_frame(Frame::SigmaEntry {
                    node,
                    env,
                    idx: i,
                    done,
                });
                return Ok(Ctrl::Eval(entry, env));
            }
            let m = self.subst_env(entry, env);
            done.push((x, m));
            i += 1;
        }
        match *self.store.node(node) {
            Node::EmptyHole(u, _) => Ok(Ctrl::Ret(MVal::Done(
                self.store.intern(Node::EmptyHole(u, done.into())),
            ))),
            Node::NonEmptyHole(_, _, inner) => {
                self.push_frame(Frame::HoleInner { node, done });
                Ok(Ctrl::Eval(inner, env))
            }
            _ => unreachable!("run_sigma on non-hole node"),
        }
    }

    fn sigma_of(&self, node: TermId) -> &[(VarId, TermId)] {
        match self.store.node(node) {
            Node::EmptyHole(_, sigma) | Node::NonEmptyHole(_, sigma, _) => sigma,
            _ => unreachable!("sigma_of on non-hole node"),
        }
    }

    /// Primitive operations on realized operands — mirrors
    /// [`crate::eval::StoreEvaluator`]'s `eval_bin` arm for arm
    /// (including error messages).
    fn eval_bin(&mut self, op: BinOp, da: TermId, db: TermId) -> Result<TermId, EvalError> {
        use Node::{Bool, Float, Int, Str};
        let f = f64::from_bits;
        let computed = match (op, self.store.node(da), self.store.node(db)) {
            (BinOp::Add, Int(a), Int(b)) => Some(Int(a.wrapping_add(*b))),
            (BinOp::Sub, Int(a), Int(b)) => Some(Int(a.wrapping_sub(*b))),
            (BinOp::Mul, Int(a), Int(b)) => Some(Int(a.wrapping_mul(*b))),
            (BinOp::Div, Int(_), Int(0)) => return Err(EvalError::DivisionByZero),
            (BinOp::Div, Int(a), Int(b)) => Some(Int(a.wrapping_div(*b))),
            (BinOp::FAdd, Float(a), Float(b)) => Some(Float((f(*a) + f(*b)).to_bits())),
            (BinOp::FSub, Float(a), Float(b)) => Some(Float((f(*a) - f(*b)).to_bits())),
            (BinOp::FMul, Float(a), Float(b)) => Some(Float((f(*a) * f(*b)).to_bits())),
            (BinOp::FDiv, Float(a), Float(b)) => Some(Float((f(*a) / f(*b)).to_bits())),
            (BinOp::Lt, Int(a), Int(b)) => Some(Bool(a < b)),
            (BinOp::Le, Int(a), Int(b)) => Some(Bool(a <= b)),
            (BinOp::Gt, Int(a), Int(b)) => Some(Bool(a > b)),
            (BinOp::Ge, Int(a), Int(b)) => Some(Bool(a >= b)),
            (BinOp::Eq, Int(a), Int(b)) => Some(Bool(a == b)),
            (BinOp::FLt, Float(a), Float(b)) => Some(Bool(f(*a) < f(*b))),
            (BinOp::FLe, Float(a), Float(b)) => Some(Bool(f(*a) <= f(*b))),
            (BinOp::FGt, Float(a), Float(b)) => Some(Bool(f(*a) > f(*b))),
            (BinOp::FGe, Float(a), Float(b)) => Some(Bool(f(*a) >= f(*b))),
            (BinOp::FEq, Float(a), Float(b)) => Some(Bool(f(*a) == f(*b))),
            (BinOp::And, Bool(a), Bool(b)) => Some(Bool(*a && *b)),
            (BinOp::Or, Bool(a), Bool(b)) => Some(Bool(*a || *b)),
            (BinOp::Concat, Str(a), Str(b)) => Some(Str(format!("{a}{b}"))),
            (BinOp::StrEq, Str(a), Str(b)) => Some(Bool(a == b)),
            _ => None,
        };
        match computed {
            Some(node) => Ok(self.store.intern(node)),
            None => {
                if self.store.is_final(da) && self.store.is_final(db) {
                    Ok(self.store.intern(Node::Bin(op, da, db)))
                } else {
                    Err(EvalError::IllTyped(format!(
                        "binary op {op} on {:?} and {:?}",
                        self.store.to_iexp(da),
                        self.store.to_iexp(db)
                    )))
                }
            }
        }
    }

    fn lookup(&self, env: u32, x: VarId) -> Option<Binding> {
        let mut cur = env;
        while cur != NIL {
            let node = &self.envs[cur as usize];
            if node.var == x {
                return Some(node.binding);
            }
            cur = node.parent;
        }
        None
    }

    fn push_env(&mut self, var: VarId, binding: Binding, parent: u32) -> u32 {
        let id = self.envs.len() as u32;
        debug_assert!(id != NIL, "environment arena overflow");
        self.envs.push(EnvNode {
            var,
            binding,
            parent,
        });
        self.counters.allocs += 1;
        if parent != NIL {
            self.counters.env_reuse += 1;
        }
        id
    }

    fn push_frame(&mut self, frame: Frame) {
        self.frames.push(frame);
        self.counters.allocs += 1;
    }

    /// Whether every free variable of `t` is bound in `env` — in which
    /// case `subst_env(t, env)` is closed, since bindings materialize
    /// closed by invariant.
    fn covered(&self, t: TermId, env: u32) -> bool {
        self.store
            .free_vars(t)
            .iter()
            .all(|&x| self.lookup(env, x).is_some())
    }

    /// Whether a value's materialization is closed (the precondition for
    /// binding it in an environment).
    fn val_is_closed(&self, v: MVal) -> bool {
        match v {
            MVal::Done(d) => self.store.is_closed(d),
            MVal::Clo(l, e) => self.covered(l, e),
        }
    }

    fn replay_cost(&mut self, v: MVal) -> u64 {
        match v {
            // The tree evaluator would meet the realized lambda and
            // charge its single dispatch step.
            MVal::Clo(..) => 1,
            MVal::Done(d) => self.replay.cost(self.store, d),
        }
    }

    /// Realizes a value as a term id.
    fn materialize(&mut self, v: MVal) -> TermId {
        match v {
            MVal::Done(d) => d,
            MVal::Clo(l, e) => self.subst_env(l, e),
        }
    }

    /// Realizes the environment's delayed substitution on `t`: one
    /// simultaneous substitution over the variables of `t` that `env`
    /// binds, innermost binding winning — equal to the chronological
    /// singleton substitutions of the substitution semantics because
    /// bindings are closed (closed replacements commute and never force
    /// renaming).
    fn subst_env(&mut self, t: TermId, env: u32) -> TermId {
        if env == NIL || self.store.is_closed(t) {
            return t;
        }
        if let Some(&m) = self.mat_memo.get(&(t, env)) {
            return m;
        }
        let fvs: Vec<VarId> = self.store.free_vars(t).to_vec();
        let mut pairs: Vec<(VarId, TermId)> = Vec::with_capacity(fvs.len());
        for x in fvs {
            if let Some(binding) = self.lookup(env, x) {
                let r = match binding {
                    Binding::Val(MVal::Done(d)) => d,
                    Binding::Val(MVal::Clo(l, e)) => self.subst_env(l, e),
                    Binding::Thunk(f, e) => self.subst_env(f, e),
                };
                pairs.push((x, r));
            }
        }
        let out = if pairs.is_empty() {
            t
        } else {
            self.store.subst_many(t, &pairs)
        };
        self.mat_memo.insert((t, env), out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::elab::elab_syn;
    use crate::eval::{Evaluator, DEFAULT_FUEL};
    use crate::typ::Typ;
    use crate::typing::Ctx;

    fn machine_run(e: &crate::external::EExp) -> (Result<crate::internal::IExp, EvalError>, u64) {
        let (d, _, _) = elab_syn(&Ctx::empty(), e).expect("elaborates");
        let mut store = TermStore::new();
        let t = store.intern_iexp(&d);
        let mut m = MachineEvaluator::with_fuel(&mut store, DEFAULT_FUEL);
        let result = m.eval(t);
        let steps = m.steps();
        (result.map(|id| store.to_iexp(id)), steps)
    }

    fn tree_run(e: &crate::external::EExp) -> (Result<crate::internal::IExp, EvalError>, u64) {
        let (d, _, _) = elab_syn(&Ctx::empty(), e).expect("elaborates");
        let mut ev = Evaluator::with_fuel(DEFAULT_FUEL);
        let result = ev.eval(&d);
        (result, ev.steps())
    }

    #[test]
    fn beta_and_recursion_match_the_tree_evaluator() {
        let fact = letrec(
            "fact",
            Typ::arrow(Typ::Int, Typ::Int),
            lam(
                "n",
                Typ::Int,
                ite(
                    bin(crate::ops::BinOp::Le, var("n"), int(0)),
                    int(1),
                    mul(var("n"), ap(var("fact"), sub(var("n"), int(1)))),
                ),
            ),
            ap(var("fact"), int(6)),
        );
        let samples = [
            add(int(2), mul(int(3), int(4))),
            ap(lam("x", Typ::Int, add(var("x"), var("x"))), int(21)),
            fact,
        ];
        for e in &samples {
            let (mr, ms) = machine_run(e);
            let (tr, ts) = tree_run(e);
            assert_eq!(mr, tr, "result diverged for {e:?}");
            assert_eq!(ms, ts, "steps diverged for {e:?}");
        }
    }

    #[test]
    fn hole_closures_record_sigma_from_the_live_environment() {
        // (λx.⦇⦈u) 5 ⇓ ⦇⦈⟨u;[5/x]⟩ without ever substituting into the
        // hole: σ is realized from the environment at the hole.
        let e = ap(lam("x", Typ::Int, asc(hole(0), Typ::Int)), int(5));
        let (mr, ms) = machine_run(&e);
        let (tr, ts) = tree_run(&e);
        assert_eq!(mr, tr);
        assert_eq!(ms, ts);
    }

    #[test]
    fn out_of_fuel_pins_steps_to_fuel_plus_one() {
        let omega = letrec(
            "f",
            Typ::arrow(Typ::Int, Typ::Int),
            lam("n", Typ::Int, ap(var("f"), var("n"))),
            ap(var("f"), int(0)),
        );
        let (d, _, _) = elab_syn(&Ctx::empty(), &omega).unwrap();
        let mut store = TermStore::new();
        let t = store.intern_iexp(&d);
        let mut m = MachineEvaluator::with_fuel(&mut store, 10_000);
        assert_eq!(m.eval(t), Err(EvalError::OutOfFuel));
        assert_eq!(m.steps(), 10_001);
    }

    #[test]
    fn env_reuse_is_counted_on_recursive_workloads() {
        let e = letrec(
            "sum",
            Typ::arrow(Typ::Int, Typ::Int),
            lam(
                "n",
                Typ::Int,
                ite(
                    bin(crate::ops::BinOp::Le, var("n"), int(0)),
                    int(0),
                    add(var("n"), ap(var("sum"), sub(var("n"), int(1)))),
                ),
            ),
            ap(var("sum"), int(10)),
        );
        let (d, _, _) = elab_syn(&Ctx::empty(), &e).unwrap();
        let mut store = TermStore::new();
        let t = store.intern_iexp(&d);
        let mut m = MachineEvaluator::with_fuel(&mut store, DEFAULT_FUEL);
        m.eval(t).unwrap();
        let c = m.counters();
        assert!(c.transitions > 0);
        assert!(c.allocs > 0);
        assert!(c.env_reuse > 0, "recursive calls must extend shared chains");
    }

    #[test]
    fn kind_override_wins_over_default() {
        // Not a parallel test: override is process-global, so restore it.
        set_eval_kind_override(Some(EvalKind::Store));
        assert_eq!(eval_kind(), EvalKind::Store);
        set_eval_kind_override(Some(EvalKind::Machine));
        assert_eq!(eval_kind(), EvalKind::Machine);
        set_eval_kind_override(None);
    }
}
