//! Unexpanded expressions, `ê` in Fig. 4.
//!
//! Unexpanded expressions mirror external expressions but additionally
//! include livelit invocations `$a⟨d_model; {ψi}^(i<n)⟩u`: a livelit name, a
//! persisted model value, a splice list, and the name of the hole the
//! invocation conceptually fills. This is the sort the program *editor*
//! manipulates; typed expansion (in `livelit-core`) maps it to external
//! expressions.

use std::collections::BTreeSet;
use std::fmt;

use crate::external::{CaseArm, EExp};
use crate::ident::{HoleName, Label, LivelitName, Var};
use crate::internal::IExp;
use crate::ops::BinOp;
use crate::typ::Typ;

/// A splice `ψ = ê : τ`: a spliced unexpanded expression paired with the
/// type the livelit assigned when it created the splice (Sec. 3.2.1).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Splice {
    /// The spliced expression. May itself contain livelit invocations
    /// ("livelits are compositional", Sec. 2.4.2).
    pub exp: UExp,
    /// The splice's expected type.
    pub ty: Typ,
}

impl Splice {
    /// Creates a splice.
    pub fn new(exp: UExp, ty: Typ) -> Splice {
        Splice { exp, ty }
    }
}

/// A livelit invocation `$a⟨d_model; {ψi}⟩u`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LivelitAp {
    /// The livelit being invoked.
    pub name: LivelitName,
    /// The current model value. Only the model is persisted when a program
    /// is saved (Sec. 3.2.5); the expansion is regenerated on demand.
    pub model: IExp,
    /// The splice list. Parameters are passed as leading splices
    /// ("parameters operate like splices", Sec. 2.4.1).
    pub splices: Vec<Splice>,
    /// The hole this invocation conceptually fills.
    pub hole: HoleName,
}

/// One arm of an unexpanded `case`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UCaseArm {
    /// The sum constructor this arm matches.
    pub label: Label,
    /// The variable bound to the payload.
    pub var: Var,
    /// The arm body.
    pub body: UExp,
}

/// An unexpanded expression.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum UExp {
    /// A variable.
    Var(Var),
    /// A lambda.
    Lam(Var, Typ, Box<UExp>),
    /// Application.
    Ap(Box<UExp>, Box<UExp>),
    /// A let binding with optional annotation.
    Let(Var, Option<Typ>, Box<UExp>, Box<UExp>),
    /// A fixpoint.
    Fix(Var, Typ, Box<UExp>),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A boolean literal.
    Bool(bool),
    /// A string literal.
    Str(String),
    /// The unit value.
    Unit,
    /// A primitive binary operation.
    Bin(BinOp, Box<UExp>, Box<UExp>),
    /// A conditional.
    If(Box<UExp>, Box<UExp>, Box<UExp>),
    /// A labeled tuple.
    Tuple(Vec<(Label, UExp)>),
    /// Tuple projection.
    Proj(Box<UExp>, Label),
    /// Sum injection.
    Inj(Typ, Label, Box<UExp>),
    /// Sum case analysis.
    Case(Box<UExp>, Vec<UCaseArm>),
    /// Empty list.
    Nil(Typ),
    /// List cons.
    Cons(Box<UExp>, Box<UExp>),
    /// List case analysis.
    ListCase(Box<UExp>, Box<UExp>, Var, Var, Box<UExp>),
    /// Recursive-type introduction.
    Roll(Typ, Box<UExp>),
    /// Recursive-type elimination.
    Unroll(Box<UExp>),
    /// Type ascription.
    Asc(Box<UExp>, Typ),
    /// An empty hole.
    EmptyHole(HoleName),
    /// A non-empty hole (error marker).
    NonEmptyHole(HoleName, Box<UExp>),
    /// A livelit invocation.
    Livelit(Box<LivelitAp>),
}

impl UExp {
    /// Injects an external expression into the unexpanded sort (external
    /// expressions are a subset of unexpanded expressions).
    pub fn from_eexp(e: &EExp) -> UExp {
        match e {
            EExp::Var(x) => UExp::Var(x.clone()),
            EExp::Lam(x, t, b) => UExp::Lam(x.clone(), t.clone(), Box::new(UExp::from_eexp(b))),
            EExp::Ap(a, b) => UExp::Ap(Box::new(UExp::from_eexp(a)), Box::new(UExp::from_eexp(b))),
            EExp::Let(x, t, a, b) => UExp::Let(
                x.clone(),
                t.clone(),
                Box::new(UExp::from_eexp(a)),
                Box::new(UExp::from_eexp(b)),
            ),
            EExp::Fix(x, t, b) => UExp::Fix(x.clone(), t.clone(), Box::new(UExp::from_eexp(b))),
            EExp::Int(n) => UExp::Int(*n),
            EExp::Float(x) => UExp::Float(*x),
            EExp::Bool(b) => UExp::Bool(*b),
            EExp::Str(s) => UExp::Str(s.clone()),
            EExp::Unit => UExp::Unit,
            EExp::Bin(op, a, b) => UExp::Bin(
                *op,
                Box::new(UExp::from_eexp(a)),
                Box::new(UExp::from_eexp(b)),
            ),
            EExp::If(c, t, e) => UExp::If(
                Box::new(UExp::from_eexp(c)),
                Box::new(UExp::from_eexp(t)),
                Box::new(UExp::from_eexp(e)),
            ),
            EExp::Tuple(fields) => UExp::Tuple(
                fields
                    .iter()
                    .map(|(l, e)| (l.clone(), UExp::from_eexp(e)))
                    .collect(),
            ),
            EExp::Proj(e, l) => UExp::Proj(Box::new(UExp::from_eexp(e)), l.clone()),
            EExp::Inj(t, l, e) => UExp::Inj(t.clone(), l.clone(), Box::new(UExp::from_eexp(e))),
            EExp::Case(scrut, arms) => UExp::Case(
                Box::new(UExp::from_eexp(scrut)),
                arms.iter()
                    .map(|arm| UCaseArm {
                        label: arm.label.clone(),
                        var: arm.var.clone(),
                        body: UExp::from_eexp(&arm.body),
                    })
                    .collect(),
            ),
            EExp::Nil(t) => UExp::Nil(t.clone()),
            EExp::Cons(a, b) => {
                UExp::Cons(Box::new(UExp::from_eexp(a)), Box::new(UExp::from_eexp(b)))
            }
            EExp::ListCase(scrut, nil, h, t, cons) => UExp::ListCase(
                Box::new(UExp::from_eexp(scrut)),
                Box::new(UExp::from_eexp(nil)),
                h.clone(),
                t.clone(),
                Box::new(UExp::from_eexp(cons)),
            ),
            EExp::Roll(t, e) => UExp::Roll(t.clone(), Box::new(UExp::from_eexp(e))),
            EExp::Unroll(e) => UExp::Unroll(Box::new(UExp::from_eexp(e))),
            EExp::Asc(e, t) => UExp::Asc(Box::new(UExp::from_eexp(e)), t.clone()),
            EExp::EmptyHole(u) => UExp::EmptyHole(*u),
            EExp::NonEmptyHole(u, e) => UExp::NonEmptyHole(*u, Box::new(UExp::from_eexp(e))),
        }
    }

    /// Converts to an external expression if no livelit invocations remain.
    ///
    /// # Errors
    ///
    /// Returns the name of the first livelit invocation encountered if any
    /// remain — such an expression needs expansion, not conversion.
    pub fn to_eexp(&self) -> Result<EExp, LivelitName> {
        match self {
            UExp::Var(x) => Ok(EExp::Var(x.clone())),
            UExp::Lam(x, t, b) => Ok(EExp::Lam(x.clone(), t.clone(), Box::new(b.to_eexp()?))),
            UExp::Ap(a, b) => Ok(EExp::Ap(Box::new(a.to_eexp()?), Box::new(b.to_eexp()?))),
            UExp::Let(x, t, a, b) => Ok(EExp::Let(
                x.clone(),
                t.clone(),
                Box::new(a.to_eexp()?),
                Box::new(b.to_eexp()?),
            )),
            UExp::Fix(x, t, b) => Ok(EExp::Fix(x.clone(), t.clone(), Box::new(b.to_eexp()?))),
            UExp::Int(n) => Ok(EExp::Int(*n)),
            UExp::Float(x) => Ok(EExp::Float(*x)),
            UExp::Bool(b) => Ok(EExp::Bool(*b)),
            UExp::Str(s) => Ok(EExp::Str(s.clone())),
            UExp::Unit => Ok(EExp::Unit),
            UExp::Bin(op, a, b) => Ok(EExp::Bin(
                *op,
                Box::new(a.to_eexp()?),
                Box::new(b.to_eexp()?),
            )),
            UExp::If(c, t, e) => Ok(EExp::If(
                Box::new(c.to_eexp()?),
                Box::new(t.to_eexp()?),
                Box::new(e.to_eexp()?),
            )),
            UExp::Tuple(fields) => Ok(EExp::Tuple(
                fields
                    .iter()
                    .map(|(l, e)| Ok((l.clone(), e.to_eexp()?)))
                    .collect::<Result<_, LivelitName>>()?,
            )),
            UExp::Proj(e, l) => Ok(EExp::Proj(Box::new(e.to_eexp()?), l.clone())),
            UExp::Inj(t, l, e) => Ok(EExp::Inj(t.clone(), l.clone(), Box::new(e.to_eexp()?))),
            UExp::Case(scrut, arms) => Ok(EExp::Case(
                Box::new(scrut.to_eexp()?),
                arms.iter()
                    .map(|arm| {
                        Ok(CaseArm {
                            label: arm.label.clone(),
                            var: arm.var.clone(),
                            body: arm.body.to_eexp()?,
                        })
                    })
                    .collect::<Result<_, LivelitName>>()?,
            )),
            UExp::Nil(t) => Ok(EExp::Nil(t.clone())),
            UExp::Cons(a, b) => Ok(EExp::Cons(Box::new(a.to_eexp()?), Box::new(b.to_eexp()?))),
            UExp::ListCase(scrut, nil, h, t, cons) => Ok(EExp::ListCase(
                Box::new(scrut.to_eexp()?),
                Box::new(nil.to_eexp()?),
                h.clone(),
                t.clone(),
                Box::new(cons.to_eexp()?),
            )),
            UExp::Roll(t, e) => Ok(EExp::Roll(t.clone(), Box::new(e.to_eexp()?))),
            UExp::Unroll(e) => Ok(EExp::Unroll(Box::new(e.to_eexp()?))),
            UExp::Asc(e, t) => Ok(EExp::Asc(Box::new(e.to_eexp()?), t.clone())),
            UExp::EmptyHole(u) => Ok(EExp::EmptyHole(*u)),
            UExp::NonEmptyHole(u, e) => Ok(EExp::NonEmptyHole(*u, Box::new(e.to_eexp()?))),
            UExp::Livelit(ap) => Err(ap.name.clone()),
        }
    }

    /// Calls `f` on this expression and all subexpressions (pre-order),
    /// descending into splices.
    pub fn visit(&self, f: &mut impl FnMut(&UExp)) {
        use UExp::*;
        f(self);
        match self {
            Var(_) | Int(_) | Float(_) | Bool(_) | Str(_) | Unit | Nil(_) | EmptyHole(_) => {}
            Lam(_, _, e)
            | Fix(_, _, e)
            | Proj(e, _)
            | Inj(_, _, e)
            | Roll(_, e)
            | Unroll(e)
            | Asc(e, _)
            | NonEmptyHole(_, e) => e.visit(f),
            Ap(a, b) | Bin(_, a, b) | Cons(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Let(_, _, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            If(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
            Tuple(fields) => {
                for (_, e) in fields {
                    e.visit(f);
                }
            }
            Case(scrut, arms) => {
                scrut.visit(f);
                for arm in arms {
                    arm.body.visit(f);
                }
            }
            ListCase(scrut, nil, _, _, cons) => {
                scrut.visit(f);
                nil.visit(f);
                cons.visit(f);
            }
            Livelit(ap) => {
                for splice in &ap.splices {
                    splice.exp.visit(f);
                }
            }
        }
    }

    /// Rewrites this expression bottom-up with `f` (applied post-order).
    pub fn map(&self, f: &mut impl FnMut(UExp) -> UExp) -> UExp {
        use UExp::*;
        let rebuilt = match self {
            Var(_) | Int(_) | Float(_) | Bool(_) | Str(_) | Unit | Nil(_) | EmptyHole(_) => {
                self.clone()
            }
            Lam(x, t, e) => Lam(x.clone(), t.clone(), Box::new(e.map(f))),
            Fix(x, t, e) => Fix(x.clone(), t.clone(), Box::new(e.map(f))),
            Proj(e, l) => Proj(Box::new(e.map(f)), l.clone()),
            Inj(t, l, e) => Inj(t.clone(), l.clone(), Box::new(e.map(f))),
            Roll(t, e) => Roll(t.clone(), Box::new(e.map(f))),
            Unroll(e) => Unroll(Box::new(e.map(f))),
            Asc(e, t) => Asc(Box::new(e.map(f)), t.clone()),
            NonEmptyHole(u, e) => NonEmptyHole(*u, Box::new(e.map(f))),
            Ap(a, b) => Ap(Box::new(a.map(f)), Box::new(b.map(f))),
            Bin(op, a, b) => Bin(*op, Box::new(a.map(f)), Box::new(b.map(f))),
            Cons(a, b) => Cons(Box::new(a.map(f)), Box::new(b.map(f))),
            Let(x, t, a, b) => Let(x.clone(), t.clone(), Box::new(a.map(f)), Box::new(b.map(f))),
            If(c, t, e) => If(Box::new(c.map(f)), Box::new(t.map(f)), Box::new(e.map(f))),
            Tuple(fields) => Tuple(fields.iter().map(|(l, e)| (l.clone(), e.map(f))).collect()),
            Case(scrut, arms) => Case(
                Box::new(scrut.map(f)),
                arms.iter()
                    .map(|arm| UCaseArm {
                        label: arm.label.clone(),
                        var: arm.var.clone(),
                        body: arm.body.map(f),
                    })
                    .collect(),
            ),
            ListCase(scrut, nil, h, t, cons) => ListCase(
                Box::new(scrut.map(f)),
                Box::new(nil.map(f)),
                h.clone(),
                t.clone(),
                Box::new(cons.map(f)),
            ),
            Livelit(ap) => Livelit(Box::new(LivelitAp {
                name: ap.name.clone(),
                model: ap.model.clone(),
                splices: ap
                    .splices
                    .iter()
                    .map(|s| Splice::new(s.exp.map(f), s.ty.clone()))
                    .collect(),
                hole: ap.hole,
            })),
        };
        f(rebuilt)
    }

    /// All livelit invocations in this expression, pre-order, including
    /// those nested in splices.
    pub fn livelit_aps(&self) -> Vec<&LivelitAp> {
        let mut out = Vec::new();
        collect_livelits(self, &mut out);
        out
    }

    /// All hole names used anywhere in this expression (holes and livelit
    /// invocation holes), for fresh-name generation.
    pub fn hole_names(&self) -> BTreeSet<HoleName> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| match e {
            UExp::EmptyHole(u) | UExp::NonEmptyHole(u, _) => {
                out.insert(*u);
            }
            UExp::Livelit(ap) => {
                out.insert(ap.hole);
            }
            _ => {}
        });
        out
    }

    /// A hole name strictly greater than any used in this expression.
    pub fn next_hole_name(&self) -> HoleName {
        HoleName(self.hole_names().iter().map(|u| u.0 + 1).max().unwrap_or(0))
    }

    /// The number of AST nodes (splices included).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

fn collect_livelits<'a>(e: &'a UExp, out: &mut Vec<&'a LivelitAp>) {
    // `visit` cannot return references into nested boxes with the right
    // lifetime through a closure, so livelit collection is a direct
    // traversal.
    use UExp::*;
    match e {
        Var(_) | Int(_) | Float(_) | Bool(_) | Str(_) | Unit | Nil(_) | EmptyHole(_) => {}
        Lam(_, _, b)
        | Fix(_, _, b)
        | Proj(b, _)
        | Inj(_, _, b)
        | Roll(_, b)
        | Unroll(b)
        | Asc(b, _)
        | NonEmptyHole(_, b) => collect_livelits(b, out),
        Ap(a, b) | Bin(_, a, b) | Cons(a, b) => {
            collect_livelits(a, out);
            collect_livelits(b, out);
        }
        Let(_, _, a, b) => {
            collect_livelits(a, out);
            collect_livelits(b, out);
        }
        If(c, t, e2) => {
            collect_livelits(c, out);
            collect_livelits(t, out);
            collect_livelits(e2, out);
        }
        Tuple(fields) => {
            for (_, e2) in fields {
                collect_livelits(e2, out);
            }
        }
        Case(scrut, arms) => {
            collect_livelits(scrut, out);
            for arm in arms {
                collect_livelits(&arm.body, out);
            }
        }
        ListCase(scrut, nil, _, _, cons) => {
            collect_livelits(scrut, out);
            collect_livelits(nil, out);
            collect_livelits(cons, out);
        }
        Livelit(ap) => {
            out.push(ap);
            for splice in &ap.splices {
                collect_livelits(&splice.exp, out);
            }
        }
    }
}

impl From<EExp> for UExp {
    fn from(e: EExp) -> UExp {
        UExp::from_eexp(&e)
    }
}

impl fmt::Display for UExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::pretty::print_uexp(self, 80))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    fn color_invocation() -> UExp {
        UExp::Livelit(Box::new(LivelitAp {
            name: LivelitName::new("$color"),
            model: IExp::Unit,
            splices: vec![
                Splice::new(UExp::Int(57), Typ::Int),
                Splice::new(UExp::Int(107), Typ::Int),
            ],
            hole: HoleName(0),
        }))
    }

    #[test]
    fn eexp_roundtrips_through_uexp() {
        let e = elet("x", int(1), add(var("x"), int(2)));
        let u = UExp::from_eexp(&e);
        assert_eq!(u.to_eexp().expect("no livelits"), e);
    }

    #[test]
    fn to_eexp_rejects_livelits() {
        let u = color_invocation();
        assert_eq!(u.to_eexp().unwrap_err(), LivelitName::new("color"));
    }

    #[test]
    fn livelit_aps_finds_nested_invocations() {
        // A livelit whose splice contains another livelit (Fig. 1b: $percent
        // inside $color's alpha splice).
        let inner = color_invocation();
        let outer = UExp::Livelit(Box::new(LivelitAp {
            name: LivelitName::new("$outer"),
            model: IExp::Unit,
            splices: vec![Splice::new(inner, Typ::Int)],
            hole: HoleName(1),
        }));
        let aps = outer.livelit_aps();
        assert_eq!(aps.len(), 2);
        assert_eq!(aps[0].name, LivelitName::new("outer"));
        assert_eq!(aps[1].name, LivelitName::new("color"));
    }

    #[test]
    fn next_hole_name_is_fresh() {
        let u = UExp::Tuple(vec![
            (Label::positional(0), UExp::EmptyHole(HoleName(4))),
            (Label::positional(1), color_invocation()),
        ]);
        assert_eq!(u.next_hole_name(), HoleName(5));
        assert_eq!(UExp::Int(1).next_hole_name(), HoleName(0));
    }

    #[test]
    fn map_rewrites_inside_splices() {
        let u = color_invocation();
        let doubled = u.map(&mut |e| match e {
            UExp::Int(n) => UExp::Int(n * 2),
            other => other,
        });
        match doubled {
            UExp::Livelit(ap) => {
                assert_eq!(ap.splices[0].exp, UExp::Int(114));
                assert_eq!(ap.splices[1].exp, UExp::Int(214));
            }
            other => panic!("expected livelit, got {other:?}"),
        }
    }
}
