//! Static analyses and scratch structures backing the environment machine
//! (`crate::machine`).
//!
//! The machine charges evaluation steps exactly as the substitution-based
//! evaluators do, so that `EvalSteps` (and fuel exhaustion points) stay
//! bit-identical across evaluator kinds. The one place this requires real
//! work is variable lookup: where the tree evaluator *re-evaluates* the
//! value it substituted in (a final term, so re-evaluation returns it
//! unchanged but still consumes steps), the machine returns the bound value
//! in O(1) and charges the steps the re-evaluation would have cost. That
//! cost — the *replay cost* of a final term — is a pure function of the
//! term, computed here iteratively over the hash-consed DAG and memoized
//! per `TermId`.

use std::collections::HashMap;

use crate::store::{Node, TermId, TermStore};

/// Memoized replay costs: the number of evaluation steps the big-step
/// evaluators spend re-evaluating a *final* term.
///
/// Re-evaluating a final term returns it unchanged: literals and lambdas
/// cost one step; constructors cost one step plus their components;
/// indeterminate elimination forms cost one step plus their principal
/// position only (stuck branches and arms are preserved, not evaluated);
/// hole closures cost one step plus the replay of each *closed* σ entry
/// (open entries are kept as-is by `eval_sigma`). Replay never descends
/// under binders, mirroring big-step evaluation.
#[derive(Debug, Default)]
pub struct ReplayCosts {
    memo: HashMap<TermId, u64>,
}

impl ReplayCosts {
    /// Creates an empty memo.
    pub fn new() -> ReplayCosts {
        ReplayCosts::default()
    }

    /// The steps a big-step evaluator consumes re-evaluating final term
    /// `t`. Computed iteratively (deep list spines and redex chains must
    /// not recurse on the host stack) and memoized per id; sound because
    /// the store is append-only, so an id's node never changes.
    pub fn cost(&mut self, store: &TermStore, t: TermId) -> u64 {
        if let Some(&c) = self.memo.get(&t) {
            return c;
        }
        // Two-phase DFS: first visit pushes the node back and then its
        // replay-relevant children; second visit folds their memoized
        // costs. `false` = expand, `true` = fold.
        let mut stack: Vec<(TermId, bool)> = vec![(t, false)];
        let mut children: Vec<TermId> = Vec::new();
        while let Some((id, fold)) = stack.pop() {
            if self.memo.contains_key(&id) {
                continue;
            }
            children.clear();
            replay_children(store, id, &mut children);
            if fold {
                let mut cost: u64 = 1;
                for &c in &children {
                    cost = cost.saturating_add(self.memo[&c]);
                }
                self.memo.insert(id, cost);
            } else {
                stack.push((id, true));
                for &c in &children {
                    if !self.memo.contains_key(&c) {
                        stack.push((c, false));
                    }
                }
            }
        }
        self.memo[&t]
    }
}

/// Pushes the children of `t` that big-step evaluation visits when
/// re-evaluating a final term: all components of constructors, but only
/// the principal position of elimination forms, and only the *closed*
/// entries of hole-closure environments.
fn replay_children(store: &TermStore, t: TermId, out: &mut Vec<TermId>) {
    match store.node(t) {
        // Leaves and binder-guarded forms: one step, no descent. `Var` and
        // `Fix` never sit at an evaluation position of a closed final
        // term; they are covered defensively.
        Node::Var(_)
        | Node::Lam(..)
        | Node::Fix(..)
        | Node::Int(_)
        | Node::Float(_)
        | Node::Bool(_)
        | Node::Str(_)
        | Node::Unit
        | Node::Nil(_)
        | Node::ULet(..)
        | Node::UAsc(..)
        | Node::ULivelit(..)
        | Node::UEmptyHole(_)
        | Node::UNonEmptyHole(..) => {}
        Node::Tuple(fields) => out.extend(fields.iter().map(|(_, e)| *e)),
        Node::Ap(f, a) => out.extend([*f, *a]),
        Node::Bin(_, a, b) => out.extend([*a, *b]),
        Node::Cons(h, tl) => out.extend([*h, *tl]),
        Node::If(c, _, _) => out.push(*c),
        Node::Proj(s, _) => out.push(*s),
        Node::Case(s, _) => out.push(*s),
        Node::ListCase(s, _, _, _, _) => out.push(*s),
        Node::Inj(_, _, e) | Node::Roll(_, e) | Node::Unroll(e) => out.push(*e),
        Node::EmptyHole(_, sigma) => {
            out.extend(
                sigma
                    .iter()
                    .filter(|&&(_, e)| store.is_closed(e))
                    .map(|&(_, e)| e),
            );
        }
        Node::NonEmptyHole(_, sigma, inner) => {
            out.extend(
                sigma
                    .iter()
                    .filter(|&&(_, e)| store.is_closed(e))
                    .map(|&(_, e)| e),
            );
            out.push(*inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::BinOp;
    use crate::typ::Typ;

    #[test]
    fn literals_cost_one() {
        let mut store = TermStore::new();
        let t = store.intern(Node::Int(7));
        let mut costs = ReplayCosts::new();
        assert_eq!(costs.cost(&store, t), 1);
    }

    #[test]
    fn stuck_if_charges_scrutinee_only() {
        // If(⦇⦈, 1+1, 2+2): replay = 1 (if) + 1 (hole) — branches are
        // preserved unevaluated, so their redexes cost nothing.
        let mut store = TermStore::new();
        let hole = store.intern(Node::EmptyHole(crate::ident::HoleName(0), Box::new([])));
        let one = store.intern(Node::Int(1));
        let two = store.intern(Node::Int(2));
        let t1 = store.intern(Node::Bin(BinOp::Add, one, one));
        let t2 = store.intern(Node::Bin(BinOp::Add, two, two));
        let stuck = store.intern(Node::If(hole, t1, t2));
        let mut costs = ReplayCosts::new();
        assert_eq!(costs.cost(&store, stuck), 2);
    }

    #[test]
    fn deep_spines_fold_iteratively() {
        // A 100k-long cons spine must not recurse on the host stack.
        let mut store = TermStore::new();
        let mut t = store.intern(Node::Nil(Typ::Int));
        let one = store.intern(Node::Int(1));
        for _ in 0..100_000 {
            t = store.intern(Node::Cons(one, t));
        }
        let mut costs = ReplayCosts::new();
        assert_eq!(costs.cost(&store, t), 2 * 100_000 + 1);
    }
}
