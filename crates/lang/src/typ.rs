//! Types, `τ` in Fig. 4 of the paper.
//!
//! The calculus includes partial functions, (labeled) products, (labeled)
//! sums, and recursive types "in their standard form" (Sec. 4), plus the base
//! types and built-in lists that the Hazel implementation and the paper's
//! examples use (`Int`, `Float`, `Bool`, `String`, `List(Float)`, ...).

use std::collections::BTreeSet;
use std::fmt;

use crate::ident::{Label, TVar};

/// A type of the livelit calculus.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Typ {
    /// Machine integers. Used for splice types throughout the paper
    /// (e.g. the `$color` components in Fig. 3).
    Int,
    /// Floating-point numbers, as used by the grading case study (Sec. 2.1).
    Float,
    /// Booleans.
    Bool,
    /// Strings, as used by `$dataframe` row/column keys (Sec. 2.4.2).
    Str,
    /// The unit (nullary product) type, `1` in Fig. 4.
    Unit,
    /// Partial function type `τ1 → τ2`.
    Arrow(Box<Typ>, Box<Typ>),
    /// Labeled product type `(.l1 τ1, ..., .ln τn)`.
    ///
    /// The paper's binary products are the two-field special case; Hazel's
    /// labeled tuples (Sec. 2.3, e.g. the `Color` and grade-cutoff types) are
    /// the general form. Positional tuples use labels `_0`, `_1`, ....
    Prod(Vec<(Label, Typ)>),
    /// Labeled sum type `[.C1 τ1 | ... | .Cn τn]`.
    Sum(Vec<(Label, Typ)>),
    /// Built-in list type `List(τ)`.
    List(Box<Typ>),
    /// A type variable `t`, bound by an enclosing [`Typ::Rec`].
    Var(TVar),
    /// An iso-recursive type `μ(t.τ)`.
    Rec(TVar, Box<Typ>),
}

impl Typ {
    /// Constructs `τ1 → τ2`.
    pub fn arrow(from: Typ, to: Typ) -> Typ {
        Typ::Arrow(Box::new(from), Box::new(to))
    }

    /// Constructs the curried arrow `τ1 → ... → τn → ret`.
    ///
    /// With an empty argument list this is just `ret` — the shape used by
    /// premise 5 of rule `ELivelit` for the parameterized expansion type
    /// `{τi}^(i<n) → τ_expand`.
    pub fn arrows(args: impl IntoIterator<Item = Typ>, ret: Typ) -> Typ {
        let args: Vec<Typ> = args.into_iter().collect();
        args.into_iter()
            .rev()
            .fold(ret, |acc, arg| Typ::arrow(arg, acc))
    }

    /// Constructs a labeled product type.
    pub fn prod(fields: impl IntoIterator<Item = (Label, Typ)>) -> Typ {
        Typ::Prod(fields.into_iter().collect())
    }

    /// Constructs a positional tuple type with labels `_0`, `_1`, ....
    pub fn tuple(fields: impl IntoIterator<Item = Typ>) -> Typ {
        Typ::Prod(
            fields
                .into_iter()
                .enumerate()
                .map(|(i, t)| (Label::positional(i), t))
                .collect(),
        )
    }

    /// Constructs a labeled sum type.
    pub fn sum(arms: impl IntoIterator<Item = (Label, Typ)>) -> Typ {
        Typ::Sum(arms.into_iter().collect())
    }

    /// Constructs `List(τ)`.
    pub fn list(elem: Typ) -> Typ {
        Typ::List(Box::new(elem))
    }

    /// Constructs `μ(t.τ)`.
    pub fn rec(t: impl Into<TVar>, body: Typ) -> Typ {
        Typ::Rec(t.into(), Box::new(body))
    }

    /// Splits a curried arrow `τ1 → ... → τn → ρ` into (`[τ1..τn]`, `ρ`),
    /// taking at most `n` arguments.
    ///
    /// Used to validate parameterized expansions against their splice lists
    /// (rule `ELivelit`, premise 5).
    pub fn uncurry(&self, n: usize) -> Option<(Vec<&Typ>, &Typ)> {
        let mut args = Vec::with_capacity(n);
        let mut cur = self;
        for _ in 0..n {
            match cur {
                Typ::Arrow(a, b) => {
                    args.push(a.as_ref());
                    cur = b;
                }
                _ => return None,
            }
        }
        Some((args, cur))
    }

    /// The free type variables of this type.
    pub fn free_vars(&self) -> BTreeSet<TVar> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free_vars(&self, bound: &mut Vec<TVar>, out: &mut BTreeSet<TVar>) {
        match self {
            Typ::Int | Typ::Float | Typ::Bool | Typ::Str | Typ::Unit => {}
            Typ::Arrow(a, b) => {
                a.collect_free_vars(bound, out);
                b.collect_free_vars(bound, out);
            }
            Typ::Prod(fields) | Typ::Sum(fields) => {
                for (_, t) in fields {
                    t.collect_free_vars(bound, out);
                }
            }
            Typ::List(t) => t.collect_free_vars(bound, out),
            Typ::Var(t) => {
                if !bound.contains(t) {
                    out.insert(t.clone());
                }
            }
            Typ::Rec(t, body) => {
                bound.push(t.clone());
                body.collect_free_vars(bound, out);
                bound.pop();
            }
        }
    }

    /// Whether this type has no free type variables.
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Capture-avoiding substitution `[σ/t]τ` of a type for a type variable.
    ///
    /// Used for unrolling recursive types: `unroll(μ(t.τ)) = [μ(t.τ)/t]τ`.
    /// Since the replacement types we substitute are always closed (recursive
    /// types introduced by `roll`/`unroll` are closed by construction in
    /// well-typed programs), shadowed binders simply stop the substitution.
    pub fn subst(&self, t: &TVar, replacement: &Typ) -> Typ {
        match self {
            Typ::Int | Typ::Float | Typ::Bool | Typ::Str | Typ::Unit => self.clone(),
            Typ::Arrow(a, b) => Typ::arrow(a.subst(t, replacement), b.subst(t, replacement)),
            Typ::Prod(fields) => Typ::Prod(
                fields
                    .iter()
                    .map(|(l, ty)| (l.clone(), ty.subst(t, replacement)))
                    .collect(),
            ),
            Typ::Sum(arms) => Typ::Sum(
                arms.iter()
                    .map(|(l, ty)| (l.clone(), ty.subst(t, replacement)))
                    .collect(),
            ),
            Typ::List(elem) => Typ::list(elem.subst(t, replacement)),
            Typ::Var(v) => {
                if v == t {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Typ::Rec(v, body) => {
                if v == t {
                    self.clone()
                } else {
                    Typ::Rec(v.clone(), Box::new(body.subst(t, replacement)))
                }
            }
        }
    }

    /// Unrolls a recursive type one step: `μ(t.τ) ↦ [μ(t.τ)/t]τ`.
    ///
    /// Returns `None` if `self` is not a recursive type.
    pub fn unroll(&self) -> Option<Typ> {
        match self {
            Typ::Rec(t, body) => Some(body.subst(t, self)),
            _ => None,
        }
    }

    /// Looks up the type of field `l` in a product type.
    pub fn field(&self, l: &Label) -> Option<&Typ> {
        match self {
            Typ::Prod(fields) => fields.iter().find(|(fl, _)| fl == l).map(|(_, t)| t),
            _ => None,
        }
    }

    /// Looks up the payload type of arm `l` in a sum type.
    pub fn arm(&self, l: &Label) -> Option<&Typ> {
        match self {
            Typ::Sum(arms) => arms.iter().find(|(al, _)| al == l).map(|(_, t)| t),
            _ => None,
        }
    }
}

impl fmt::Display for Typ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Parenthesization: arrows are right-associative; arrow domains that
        // are themselves arrows get parens.
        match self {
            Typ::Int => f.write_str("Int"),
            Typ::Float => f.write_str("Float"),
            Typ::Bool => f.write_str("Bool"),
            Typ::Str => f.write_str("Str"),
            Typ::Unit => f.write_str("Unit"),
            Typ::Arrow(a, b) => {
                if matches!(a.as_ref(), Typ::Arrow(..)) {
                    write!(f, "({a}) -> {b}")
                } else {
                    write!(f, "{a} -> {b}")
                }
            }
            Typ::Prod(fields) => {
                f.write_str("(")?;
                // 1-ary positional products print labeled so they are not
                // confused with parenthesized types when parsed back.
                let positional = fields.len() >= 2
                    && fields
                        .iter()
                        .enumerate()
                        .all(|(i, (l, _))| *l == Label::positional(i));
                for (i, (l, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    if positional {
                        write!(f, "{t}")?;
                    } else {
                        write!(f, ".{l} {t}")?;
                    }
                }
                f.write_str(")")
            }
            Typ::Sum(arms) => {
                f.write_str("[")?;
                for (i, (l, t)) in arms.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" | ")?;
                    }
                    if *t == Typ::Unit {
                        write!(f, ".{l}")?;
                    } else {
                        write!(f, ".{l} {t}")?;
                    }
                }
                f.write_str("]")
            }
            Typ::List(t) => write!(f, "List({t})"),
            Typ::Var(t) => write!(f, "'{t}"),
            Typ::Rec(t, body) => write!(f, "mu '{t}. {body}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn color() -> Typ {
        Typ::prod([
            (Label::new("r"), Typ::Int),
            (Label::new("g"), Typ::Int),
            (Label::new("b"), Typ::Int),
            (Label::new("a"), Typ::Int),
        ])
    }

    #[test]
    fn display_base_and_arrow() {
        assert_eq!(Typ::arrow(Typ::Int, Typ::Bool).to_string(), "Int -> Bool");
        assert_eq!(
            Typ::arrow(Typ::arrow(Typ::Int, Typ::Int), Typ::Bool).to_string(),
            "(Int -> Int) -> Bool"
        );
        // Right associativity needs no parens.
        assert_eq!(
            Typ::arrow(Typ::Int, Typ::arrow(Typ::Int, Typ::Bool)).to_string(),
            "Int -> Int -> Bool"
        );
    }

    #[test]
    fn display_labeled_prod() {
        assert_eq!(color().to_string(), "(.r Int, .g Int, .b Int, .a Int)");
        assert_eq!(Typ::tuple([Typ::Int, Typ::Bool]).to_string(), "(Int, Bool)");
    }

    #[test]
    fn display_sum_and_list() {
        let t = Typ::sum([
            (Label::new("Some"), Typ::Int),
            (Label::new("None"), Typ::Unit),
        ]);
        assert_eq!(t.to_string(), "[.Some Int | .None]");
        assert_eq!(Typ::list(Typ::Float).to_string(), "List(Float)");
    }

    #[test]
    fn arrows_builds_curried_type() {
        let t = Typ::arrows([Typ::Int, Typ::Int], Typ::Bool);
        assert_eq!(t.to_string(), "Int -> Int -> Bool");
        assert_eq!(Typ::arrows([], Typ::Bool), Typ::Bool);
    }

    #[test]
    fn uncurry_splits_expansion_types() {
        let t = Typ::arrows(vec![Typ::Int; 4], color());
        let (args, ret) = t.uncurry(4).expect("arrow shape");
        assert_eq!(args.len(), 4);
        assert_eq!(*ret, color());
        assert!(t.uncurry(5).is_none());
        let (args, ret) = t.uncurry(0).expect("zero split always succeeds");
        assert!(args.is_empty());
        assert_eq!(*ret, t);
    }

    #[test]
    fn free_vars_and_closedness() {
        let t = Typ::rec(
            "t",
            Typ::sum([
                (Label::new("Nil"), Typ::Unit),
                (
                    Label::new("Cons"),
                    Typ::tuple([Typ::Int, Typ::Var(TVar::new("t"))]),
                ),
            ]),
        );
        assert!(t.is_closed());
        assert_eq!(
            Typ::Var(TVar::new("t")).free_vars(),
            BTreeSet::from([TVar::new("t")])
        );
    }

    #[test]
    fn unroll_substitutes_recursive_type() {
        let t = Typ::rec(
            "t",
            Typ::sum([
                (Label::new("Leaf"), Typ::Unit),
                (
                    Label::new("Node"),
                    Typ::tuple([Typ::Var(TVar::new("t")), Typ::Var(TVar::new("t"))]),
                ),
            ]),
        );
        let unrolled = t.unroll().expect("rec type unrolls");
        assert_eq!(unrolled.arm(&Label::new("Leaf")), Some(&Typ::Unit));
        assert_eq!(
            unrolled.arm(&Label::new("Node")),
            Some(&Typ::tuple([t.clone(), t.clone()]))
        );
        assert!(Typ::Int.unroll().is_none());
    }

    #[test]
    fn subst_respects_shadowing() {
        let tv = TVar::new("t");
        let inner = Typ::rec("t", Typ::Var(tv.clone()));
        assert_eq!(inner.subst(&tv, &Typ::Int), inner);
    }

    #[test]
    fn field_and_arm_lookup() {
        assert_eq!(color().field(&Label::new("g")), Some(&Typ::Int));
        assert_eq!(color().field(&Label::new("q")), None);
        assert_eq!(Typ::Int.field(&Label::new("r")), None);
    }
}
