//! External (expanded) expressions, `e` in Fig. 4.
//!
//! External expressions are the output of livelit expansion and the input to
//! elaboration. They extend the pure simply-typed core with empty holes
//! `⦇⦈u` and non-empty holes `⦇e⦈u` (the latter are the error markers Hazel
//! uses for the `ELivelit` failure modes, Sec. 5.1; the calculus proper omits
//! them but "these mechanisms are orthogonal to livelits and are included in
//! our implementation", Sec. 4.1 — so they are included here too).

use std::collections::BTreeSet;
use std::fmt;

use crate::ident::{HoleName, Label, Var};
use crate::ops::BinOp;
use crate::typ::Typ;

/// One arm of a `case` expression over a labeled sum: `.label x -> body`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CaseArm {
    /// The sum constructor this arm matches.
    pub label: Label,
    /// The variable bound to the constructor's payload.
    pub var: Var,
    /// The arm body.
    pub body: EExp,
}

/// An external (expanded) expression.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EExp {
    /// A variable `x`.
    Var(Var),
    /// A lambda `fun x : τ -> e`.
    Lam(Var, Typ, Box<EExp>),
    /// Application `e1 e2`.
    Ap(Box<EExp>, Box<EExp>),
    /// A let binding `let x [: τ] = e1 in e2`. The annotation, when present,
    /// switches the definition from synthesis to analysis (so holes can
    /// appear on the right-hand side).
    Let(Var, Option<Typ>, Box<EExp>, Box<EExp>),
    /// A fixpoint `fix x : τ -> e`, for general recursion.
    Fix(Var, Typ, Box<EExp>),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A boolean literal.
    Bool(bool),
    /// A string literal.
    Str(String),
    /// The unit value `()`.
    Unit,
    /// A primitive binary operation `e1 op e2`.
    Bin(BinOp, Box<EExp>, Box<EExp>),
    /// A conditional `if e1 then e2 else e3`.
    If(Box<EExp>, Box<EExp>, Box<EExp>),
    /// A labeled tuple `(.l1 e1, ..., .ln en)`; positional tuples use
    /// synthesized labels `_0`, `_1`, ....
    Tuple(Vec<(Label, EExp)>),
    /// Projection `e.l` out of a labeled tuple.
    Proj(Box<EExp>, Label),
    /// Injection `inj[τ].C e` into the sum type `τ` at arm `C`.
    Inj(Typ, Label, Box<EExp>),
    /// Case analysis on a labeled sum:
    /// `case e | .C1 x1 -> e1 | ... end`.
    Case(Box<EExp>, Vec<CaseArm>),
    /// The empty list `nil[τ]` at element type `τ`.
    Nil(Typ),
    /// List cons `e1 :: e2`.
    Cons(Box<EExp>, Box<EExp>),
    /// Case analysis on a list:
    /// `lcase e | [] -> e1 | h :: t -> e2 end`.
    ListCase(Box<EExp>, Box<EExp>, Var, Var, Box<EExp>),
    /// Introduction for an iso-recursive type: `roll[μ(t.τ)] e`.
    Roll(Typ, Box<EExp>),
    /// Elimination for an iso-recursive type: `unroll e`.
    Unroll(Box<EExp>),
    /// Type ascription `e : τ`; gives analytic positions a synthesizable
    /// wrapper.
    Asc(Box<EExp>, Typ),
    /// An empty hole `⦇⦈u`.
    EmptyHole(HoleName),
    /// A non-empty hole `⦇e⦈u`: an error marker wrapping an erroneous
    /// expression so the rest of the program can still be evaluated
    /// (Sec. 5.1).
    NonEmptyHole(HoleName, Box<EExp>),
}

impl EExp {
    /// The free expression variables of this expression.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free_vars(&self, bound: &mut Vec<Var>, out: &mut BTreeSet<Var>) {
        use EExp::*;
        match self {
            Var(x) => {
                if !bound.contains(x) {
                    out.insert(x.clone());
                }
            }
            Lam(x, _, body) | Fix(x, _, body) => {
                bound.push(x.clone());
                body.collect_free_vars(bound, out);
                bound.pop();
            }
            Ap(a, b) | Bin(_, a, b) | Cons(a, b) => {
                a.collect_free_vars(bound, out);
                b.collect_free_vars(bound, out);
            }
            Let(x, _, def, body) => {
                def.collect_free_vars(bound, out);
                bound.push(x.clone());
                body.collect_free_vars(bound, out);
                bound.pop();
            }
            Int(_) | Float(_) | Bool(_) | Str(_) | Unit | Nil(_) | EmptyHole(_) => {}
            If(c, t, e) => {
                c.collect_free_vars(bound, out);
                t.collect_free_vars(bound, out);
                e.collect_free_vars(bound, out);
            }
            Tuple(fields) => {
                for (_, e) in fields {
                    e.collect_free_vars(bound, out);
                }
            }
            Proj(e, _) | Inj(_, _, e) | Roll(_, e) | Unroll(e) | Asc(e, _) | NonEmptyHole(_, e) => {
                e.collect_free_vars(bound, out);
            }
            Case(scrut, arms) => {
                scrut.collect_free_vars(bound, out);
                for arm in arms {
                    bound.push(arm.var.clone());
                    arm.body.collect_free_vars(bound, out);
                    bound.pop();
                }
            }
            ListCase(scrut, nil, h, t, cons) => {
                scrut.collect_free_vars(bound, out);
                nil.collect_free_vars(bound, out);
                bound.push(h.clone());
                bound.push(t.clone());
                cons.collect_free_vars(bound, out);
                bound.pop();
                bound.pop();
            }
        }
    }

    /// Whether this expression has no free variables.
    ///
    /// Rule `ELivelit` (premise 5) requires parameterized expansions to be
    /// closed — this is the context-independence check.
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// All hole names occurring in this expression, in traversal order.
    pub fn hole_names(&self) -> Vec<HoleName> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let EExp::EmptyHole(u) | EExp::NonEmptyHole(u, _) = e {
                out.push(*u);
            }
        });
        out
    }

    /// Calls `f` on this expression and every subexpression, pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&EExp)) {
        use EExp::*;
        f(self);
        match self {
            Var(_) | Int(_) | Float(_) | Bool(_) | Str(_) | Unit | Nil(_) | EmptyHole(_) => {}
            Lam(_, _, e)
            | Fix(_, _, e)
            | Proj(e, _)
            | Inj(_, _, e)
            | Roll(_, e)
            | Unroll(e)
            | Asc(e, _)
            | NonEmptyHole(_, e) => e.visit(f),
            Ap(a, b) | Bin(_, a, b) | Cons(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Let(_, _, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            If(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
            Tuple(fields) => {
                for (_, e) in fields {
                    e.visit(f);
                }
            }
            Case(scrut, arms) => {
                scrut.visit(f);
                for arm in arms {
                    arm.body.visit(f);
                }
            }
            ListCase(scrut, nil, _, _, cons) => {
                scrut.visit(f);
                nil.visit(f);
                cons.visit(f);
            }
        }
    }

    /// The number of AST nodes, used for workload characterization in the
    /// benchmark harness.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

impl fmt::Display for EExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::pretty::print_eexp(self, 80))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn free_vars_of_open_term() {
        // fun r -> (r, g) has free var g but not r
        let e = lam("r", Typ::Int, tuple([var("r"), var("g")]));
        assert_eq!(e.free_vars(), BTreeSet::from([Var::new("g")]));
        assert!(!e.is_closed());
    }

    #[test]
    fn let_binds_only_in_body() {
        let e = elet("x", var("x"), var("x"));
        // the definition's x is free; the body's x is bound
        assert_eq!(e.free_vars(), BTreeSet::from([Var::new("x")]));
    }

    #[test]
    fn case_arms_bind_their_vars() {
        let e = case(var("s"), [("Some", "v", var("v")), ("None", "w", var("z"))]);
        assert_eq!(
            e.free_vars(),
            BTreeSet::from([Var::new("s"), Var::new("z")])
        );
    }

    #[test]
    fn list_case_binds_head_and_tail() {
        let e = lcase(var("xs"), int(0), "h", "t", ap(var("f"), var("h")));
        assert_eq!(
            e.free_vars(),
            BTreeSet::from([Var::new("xs"), Var::new("f")])
        );
    }

    #[test]
    fn hole_names_collected_in_order() {
        let e = tuple([hole(2), hole(7)]);
        assert_eq!(e.hole_names(), vec![HoleName(2), HoleName(7)]);
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(int(1).size(), 1);
        assert_eq!(add(int(1), int(2)).size(), 3);
    }

    #[test]
    fn closed_parameterized_expansion() {
        // fun r g b a -> (r, g, b, a)  — the Fig. 3 expansion — is closed.
        let e = lams(
            [
                ("r", Typ::Int),
                ("g", Typ::Int),
                ("b", Typ::Int),
                ("a", Typ::Int),
            ],
            tuple([var("r"), var("g"), var("b"), var("a")]),
        );
        assert!(e.is_closed());
    }
}
