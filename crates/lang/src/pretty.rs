//! A width-aware pretty printer (Sec. 5.3).
//!
//! Hazel "uses an optimizing pretty printer based on the work of Bernardy to
//! determine layout. This system relies fundamentally on character counts."
//! This module implements a Wadler-style document algebra with groups and
//! nesting, laid out against a character-count width budget — the same
//! discipline (character units, not pixels) the paper prescribes for livelit
//! layout.
//!
//! The printers here define the canonical surface syntax; [`crate::parse`]
//! reads the same syntax back (print ∘ parse round-trips are property-tested
//! in the parser module).

use std::rc::Rc;

use crate::external::EExp;
use crate::internal::IExp;
use crate::typ::Typ;
use crate::unexpanded::UExp;

/// A layout document.
#[derive(Debug, Clone)]
pub enum Doc {
    /// The empty document.
    Nil,
    /// Literal text (must not contain newlines).
    Text(String),
    /// A line break that renders as a space when the enclosing group fits.
    Line,
    /// A line break that renders as nothing when the enclosing group fits.
    SoftLine,
    /// Concatenation.
    Concat(Rc<Doc>, Rc<Doc>),
    /// Indents line breaks in the inner document by `usize` spaces.
    Nest(usize, Rc<Doc>),
    /// A group: rendered flat if it fits the remaining width.
    Group(Rc<Doc>),
}

impl Doc {
    /// The empty document.
    pub fn nil() -> Doc {
        Doc::Nil
    }

    /// Literal text.
    pub fn text(s: impl Into<String>) -> Doc {
        Doc::Text(s.into())
    }

    /// Space-or-newline.
    pub fn line() -> Doc {
        Doc::Line
    }

    /// Nothing-or-newline.
    pub fn softline() -> Doc {
        Doc::SoftLine
    }

    /// Concatenates two documents.
    pub fn concat(self, other: Doc) -> Doc {
        match (&self, &other) {
            (Doc::Nil, _) => other,
            (_, Doc::Nil) => self,
            _ => Doc::Concat(Rc::new(self), Rc::new(other)),
        }
    }

    /// Indents inner line breaks.
    pub fn nest(self, indent: usize) -> Doc {
        Doc::Nest(indent, Rc::new(self))
    }

    /// Groups this document for fit-based layout.
    pub fn group(self) -> Doc {
        Doc::Group(Rc::new(self))
    }

    /// Joins documents with a separator.
    pub fn join(docs: impl IntoIterator<Item = Doc>, sep: Doc) -> Doc {
        let mut out = Doc::Nil;
        for (i, d) in docs.into_iter().enumerate() {
            if i > 0 {
                out = out.concat(sep.clone());
            }
            out = out.concat(d);
        }
        out
    }

    /// Renders the document within `width` character columns.
    pub fn render(&self, width: usize) -> String {
        let mut out = String::new();
        let mut stack: Vec<(usize, Mode, &Doc)> = vec![(0, Mode::Break, self)];
        let mut col = 0usize;
        while let Some((indent, mode, doc)) = stack.pop() {
            match doc {
                Doc::Nil => {}
                Doc::Text(s) => {
                    out.push_str(s);
                    col += s.chars().count();
                }
                Doc::Line => match mode {
                    Mode::Flat => {
                        out.push(' ');
                        col += 1;
                    }
                    Mode::Break => {
                        out.push('\n');
                        out.push_str(&" ".repeat(indent));
                        col = indent;
                    }
                },
                Doc::SoftLine => match mode {
                    Mode::Flat => {}
                    Mode::Break => {
                        out.push('\n');
                        out.push_str(&" ".repeat(indent));
                        col = indent;
                    }
                },
                Doc::Concat(a, b) => {
                    stack.push((indent, mode, b));
                    stack.push((indent, mode, a));
                }
                Doc::Nest(n, inner) => {
                    stack.push((indent + n, mode, inner));
                }
                Doc::Group(inner) => {
                    let mode = if fits(width.saturating_sub(col), inner) {
                        Mode::Flat
                    } else {
                        Mode::Break
                    };
                    stack.push((indent, mode, inner));
                }
            }
        }
        out
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Flat,
    Break,
}

/// Whether `doc`, rendered flat, fits in `remaining` columns.
fn fits(mut remaining: usize, doc: &Doc) -> bool {
    let mut stack: Vec<&Doc> = vec![doc];
    while let Some(d) = stack.pop() {
        match d {
            Doc::Nil | Doc::SoftLine => {}
            Doc::Text(s) => {
                let n = s.chars().count();
                if n > remaining {
                    return false;
                }
                remaining -= n;
            }
            Doc::Line => {
                if remaining == 0 {
                    return false;
                }
                remaining -= 1;
            }
            Doc::Concat(a, b) => {
                stack.push(b);
                stack.push(a);
            }
            Doc::Nest(_, inner) | Doc::Group(inner) => stack.push(inner),
        }
    }
    true
}

// ------------------------------------------------------------------------
// Expression printing
// ------------------------------------------------------------------------

const INDENT: usize = 2;

/// Precedence levels used for parenthesization; see `crate::parse` for the
/// matching grammar.
mod prec {
    pub const EXPR: u8 = 0;
    pub const OR: u8 = 1;
    pub const CONS: u8 = 4;
    pub const AP: u8 = 7;
    pub const PROJ: u8 = 8;
    pub const ATOM: u8 = 9;
}

/// Renders a type for a binder annotation position (`fun x : τ ->`),
/// parenthesizing forms whose greedy parse would swallow the body arrow.
fn ann_typ(t: &Typ) -> String {
    match t {
        Typ::Arrow(..) | Typ::Rec(..) => format!("({t})"),
        _ => t.to_string(),
    }
}

fn parens_if(cond: bool, d: Doc) -> Doc {
    if cond {
        Doc::text("(").concat(d).concat(Doc::text(")"))
    } else {
        d
    }
}

/// Pretty-prints a type. (Types are short; `Display` output is used
/// directly.)
pub fn print_typ(t: &Typ) -> String {
    t.to_string()
}

/// Pretty-prints an unexpanded expression to the given width.
pub fn print_uexp(e: &UExp, width: usize) -> String {
    uexp_doc(e, prec::EXPR).group().render(width)
}

/// Pretty-prints an external expression to the given width.
pub fn print_eexp(e: &EExp, width: usize) -> String {
    print_uexp(&UExp::from_eexp(e), width)
}

/// Pretty-prints an internal expression to the given width.
pub fn print_iexp(d: &IExp, width: usize) -> String {
    iexp_doc(d, prec::EXPR).group().render(width)
}

fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

fn float_text(x: f64) -> String {
    let base = if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    };
    // Negative literals are parenthesized so that argument positions
    // (`f -7.0`) cannot be re-parsed as subtraction.
    if base.starts_with('-') {
        format!("({base})")
    } else {
        base
    }
}

fn int_text(n: i64) -> String {
    if n < 0 {
        format!("({n})")
    } else {
        n.to_string()
    }
}

fn uexp_doc(e: &UExp, p: u8) -> Doc {
    use UExp::*;
    match e {
        Var(x) => Doc::text(x.as_str()),
        Int(n) => Doc::text(int_text(*n)),
        Float(x) => Doc::text(float_text(*x)),
        Bool(b) => Doc::text(if *b { "true" } else { "false" }),
        Str(s) => Doc::text(escape_str(s)),
        Unit => Doc::text("()"),
        Lam(x, t, body) => parens_if(
            p > prec::EXPR,
            Doc::text(format!("fun {x} : {} ->", ann_typ(t)))
                .concat(Doc::line().concat(uexp_doc(body, prec::EXPR)).nest(INDENT))
                .group(),
        ),
        Fix(x, t, body) => parens_if(
            p > prec::EXPR,
            Doc::text(format!("fix {x} : {} ->", ann_typ(t)))
                .concat(Doc::line().concat(uexp_doc(body, prec::EXPR)).nest(INDENT))
                .group(),
        ),
        Ap(f, a) => parens_if(
            p > prec::AP,
            uexp_doc(f, prec::AP)
                .concat(Doc::line().concat(uexp_doc(a, prec::AP + 1)).nest(INDENT))
                .group(),
        ),
        Let(x, ann, def, body) => {
            let header = match ann {
                Some(t) => format!("let {x} : {t} ="),
                None => format!("let {x} ="),
            };
            parens_if(
                p > prec::EXPR,
                Doc::text(header)
                    .concat(
                        Doc::line()
                            .concat(uexp_doc(def, prec::EXPR))
                            .nest(INDENT)
                            .group(),
                    )
                    .concat(Doc::line())
                    .concat(Doc::text("in"))
                    .concat(Doc::line())
                    .concat(uexp_doc(body, prec::EXPR)),
            )
        }
        Bin(op, a, b) => {
            let op_p = op.precedence();
            // Left-associative except cons/concat at level 4.
            let (lp, rp) = if op_p == prec::CONS {
                (op_p + 1, op_p)
            } else {
                (op_p, op_p + 1)
            };
            parens_if(
                p > op_p,
                uexp_doc(a, lp)
                    .concat(Doc::text(format!(" {} ", op.symbol())))
                    .concat(uexp_doc(b, rp))
                    .group(),
            )
        }
        Cons(h, t) => parens_if(
            p > prec::CONS,
            uexp_doc(h, prec::CONS + 1)
                .concat(Doc::text(" :: "))
                .concat(uexp_doc(t, prec::CONS))
                .group(),
        ),
        If(c, t, e2) => parens_if(
            p > prec::EXPR,
            Doc::text("if ")
                .concat(uexp_doc(c, prec::OR))
                .concat(Doc::line())
                .concat(Doc::text("then "))
                .concat(uexp_doc(t, prec::OR).nest(INDENT))
                .concat(Doc::line())
                .concat(Doc::text("else "))
                .concat(uexp_doc(e2, prec::OR).nest(INDENT))
                .group(),
        ),
        Tuple(fields) => {
            // 0- and 1-ary positional tuples would be ambiguous with unit
            // and parenthesization, so only 2+-ary positional tuples use
            // bare positional syntax.
            let positional = fields.len() >= 2
                && fields
                    .iter()
                    .enumerate()
                    .all(|(i, (l, _))| *l == crate::ident::Label::positional(i));
            let items = fields.iter().map(|(l, fe)| {
                if positional {
                    uexp_doc(fe, prec::OR)
                } else {
                    Doc::text(format!(".{l} ")).concat(uexp_doc(fe, prec::OR))
                }
            });
            Doc::text("(")
                .concat(
                    Doc::softline()
                        .concat(Doc::join(items, Doc::text(",").concat(Doc::line())))
                        .nest(INDENT),
                )
                .concat(Doc::softline())
                .concat(Doc::text(")"))
                .group()
        }
        Proj(scrut, l) => uexp_doc(scrut, prec::PROJ).concat(Doc::text(format!(".{l}"))),
        Inj(t, l, payload) => parens_if(
            p > prec::AP,
            Doc::text(format!("inj[{t}].{l} ")).concat(uexp_doc(payload, prec::ATOM)),
        ),
        Case(scrut, arms) => parens_if(
            p > prec::EXPR,
            Doc::text("case ")
                .concat(uexp_doc(scrut, prec::OR))
                .concat(Doc::join(
                    arms.iter().map(|arm| {
                        Doc::line()
                            .concat(Doc::text(format!("| .{} {} -> ", arm.label, arm.var)))
                            .concat(uexp_doc(&arm.body, prec::OR).nest(INDENT))
                    }),
                    Doc::nil(),
                ))
                .concat(Doc::line())
                .concat(Doc::text("end"))
                .group(),
        ),
        Nil(t) => Doc::text(format!("[{t}|]")),
        ListCase(scrut, nil, h, t, cons) => parens_if(
            p > prec::EXPR,
            Doc::text("lcase ")
                .concat(uexp_doc(scrut, prec::OR))
                .concat(Doc::line())
                .concat(Doc::text("| [] -> "))
                .concat(uexp_doc(nil, prec::OR).nest(INDENT))
                .concat(Doc::line())
                .concat(Doc::text(format!("| {h} :: {t} -> ")))
                .concat(uexp_doc(cons, prec::OR).nest(INDENT))
                .concat(Doc::line())
                .concat(Doc::text("end"))
                .group(),
        ),
        Roll(t, inner) => parens_if(
            p > prec::AP,
            Doc::text(format!("roll[{t}] ")).concat(uexp_doc(inner, prec::ATOM)),
        ),
        Unroll(inner) => parens_if(
            p > prec::AP,
            Doc::text("unroll ").concat(uexp_doc(inner, prec::ATOM)),
        ),
        Asc(inner, t) => Doc::text("(")
            .concat(uexp_doc(inner, prec::EXPR))
            .concat(Doc::text(format!(" : {t})"))),
        EmptyHole(u) => Doc::text(format!("?{}", u.0)),
        NonEmptyHole(u, inner) => Doc::text(format!("nehole[{}] ", u.0))
            .concat(parens_if(true, uexp_doc(inner, prec::EXPR))),
        Livelit(ap) => {
            let model = print_iexp_value(&ap.model);
            let head = Doc::text(format!("{}@{}{{{model}}}", ap.name, ap.hole.0));
            if ap.splices.is_empty() {
                head
            } else {
                let items = ap.splices.iter().map(|s| {
                    uexp_doc(&s.exp, prec::EXPR).concat(Doc::text(format!(" : {}", s.ty)))
                });
                head.concat(Doc::text("("))
                    .concat(
                        Doc::softline()
                            .concat(Doc::join(items, Doc::text(";").concat(Doc::line())))
                            .nest(INDENT),
                    )
                    .concat(Doc::softline())
                    .concat(Doc::text(")"))
                    .group()
            }
        }
    }
}

/// Prints an internal expression that is expected to be a serializable
/// value (a livelit model) in *surface syntax*, so that it can be parsed
/// back by the text-editor integration.
///
/// # Panics
///
/// Panics if the model contains non-value forms that have no surface
/// syntax (holes, applications, ...). Model types are first-order by
/// construction (Sec. 3.2.1: "the model type supports automatic
/// serialization"), so models are always printable.
pub fn print_iexp_value(d: &IExp) -> String {
    let e = crate::value::iexp_value_to_eexp(d)
        .expect("livelit models must be serializable first-order values");
    // Flat rendering: models are embedded in one-line invocation syntax.
    print_eexp(&e, usize::MAX)
}

fn iexp_doc(d: &IExp, p: u8) -> Doc {
    use IExp::*;
    match d {
        Var(x) => Doc::text(x.as_str()),
        Int(n) => Doc::text(int_text(*n)),
        Float(x) => Doc::text(float_text(*x)),
        Bool(b) => Doc::text(if *b { "true" } else { "false" }),
        Str(s) => Doc::text(escape_str(s)),
        Unit => Doc::text("()"),
        Lam(x, t, body) => parens_if(
            p > prec::EXPR,
            Doc::text(format!("fun {x} : {} ->", ann_typ(t)))
                .concat(Doc::line().concat(iexp_doc(body, prec::EXPR)).nest(INDENT))
                .group(),
        ),
        Fix(x, t, body) => parens_if(
            p > prec::EXPR,
            Doc::text(format!("fix {x} : {} ->", ann_typ(t)))
                .concat(Doc::line().concat(iexp_doc(body, prec::EXPR)).nest(INDENT))
                .group(),
        ),
        Ap(f, a) => parens_if(
            p > prec::AP,
            iexp_doc(f, prec::AP)
                .concat(Doc::line().concat(iexp_doc(a, prec::AP + 1)).nest(INDENT))
                .group(),
        ),
        Bin(op, a, b) => {
            let op_p = op.precedence();
            parens_if(
                p > op_p,
                iexp_doc(a, op_p)
                    .concat(Doc::text(format!(" {} ", op.symbol())))
                    .concat(iexp_doc(b, op_p + 1))
                    .group(),
            )
        }
        Cons(h, t) => parens_if(
            p > prec::CONS,
            iexp_doc(h, prec::CONS + 1)
                .concat(Doc::text(" :: "))
                .concat(iexp_doc(t, prec::CONS))
                .group(),
        ),
        If(c, t, e2) => parens_if(
            p > prec::EXPR,
            Doc::text("if ")
                .concat(iexp_doc(c, prec::OR))
                .concat(Doc::text(" then "))
                .concat(iexp_doc(t, prec::OR))
                .concat(Doc::text(" else "))
                .concat(iexp_doc(e2, prec::OR))
                .group(),
        ),
        Tuple(fields) => {
            let positional = fields.len() >= 2
                && fields
                    .iter()
                    .enumerate()
                    .all(|(i, (l, _))| *l == crate::ident::Label::positional(i));
            let items = fields.iter().map(|(l, fe)| {
                if positional {
                    iexp_doc(fe, prec::OR)
                } else {
                    Doc::text(format!(".{l} ")).concat(iexp_doc(fe, prec::OR))
                }
            });
            Doc::text("(")
                .concat(Doc::join(items, Doc::text(", ")))
                .concat(Doc::text(")"))
                .group()
        }
        Proj(scrut, l) => iexp_doc(scrut, prec::PROJ).concat(Doc::text(format!(".{l}"))),
        Inj(t, l, payload) => parens_if(
            p > prec::AP,
            Doc::text(format!("inj[{t}].{l} ")).concat(iexp_doc(payload, prec::ATOM)),
        ),
        Case(scrut, arms) => parens_if(
            p > prec::EXPR,
            Doc::text("case ")
                .concat(iexp_doc(scrut, prec::OR))
                .concat(Doc::join(
                    arms.iter().map(|arm| {
                        Doc::line()
                            .concat(Doc::text(format!("| .{} {} -> ", arm.label, arm.var)))
                            .concat(iexp_doc(&arm.body, prec::OR).nest(INDENT))
                    }),
                    Doc::nil(),
                ))
                .concat(Doc::line())
                .concat(Doc::text("end"))
                .group(),
        ),
        Nil(t) => Doc::text(format!("[{t}|]")),
        ListCase(scrut, nil, h, t, cons) => parens_if(
            p > prec::EXPR,
            Doc::text("lcase ")
                .concat(iexp_doc(scrut, prec::OR))
                .concat(Doc::text(" | [] -> "))
                .concat(iexp_doc(nil, prec::OR))
                .concat(Doc::text(format!(" | {h} :: {t} -> ")))
                .concat(iexp_doc(cons, prec::OR))
                .concat(Doc::text(" end"))
                .group(),
        ),
        Roll(t, inner) => parens_if(
            p > prec::AP,
            Doc::text(format!("roll[{t}] ")).concat(iexp_doc(inner, prec::ATOM)),
        ),
        Unroll(inner) => parens_if(
            p > prec::AP,
            Doc::text("unroll ").concat(iexp_doc(inner, prec::ATOM)),
        ),
        EmptyHole(u, sigma) => {
            if sigma.is_empty() {
                Doc::text(format!("?{}", u.0))
            } else {
                let entries = sigma
                    .iter()
                    .map(|(x, e)| Doc::text(format!("{x} := ")).concat(iexp_doc(e, prec::OR)));
                Doc::text(format!("?{}<", u.0))
                    .concat(Doc::join(entries, Doc::text(", ")))
                    .concat(Doc::text(">"))
                    .group()
            }
        }
        NonEmptyHole(u, _sigma, inner) => Doc::text(format!("nehole[{}] (", u.0))
            .concat(iexp_doc(inner, prec::EXPR))
            .concat(Doc::text(")")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn doc_flat_when_it_fits() {
        let d = Doc::text("a")
            .concat(Doc::line())
            .concat(Doc::text("b"))
            .group();
        assert_eq!(d.render(80), "a b");
        assert_eq!(d.render(2), "a\nb");
    }

    #[test]
    fn nest_indents_broken_lines() {
        let d = Doc::text("head")
            .concat(Doc::line().concat(Doc::text("body")).nest(2))
            .group();
        assert_eq!(d.render(4), "head\n  body");
    }

    #[test]
    fn prints_simple_expressions() {
        assert_eq!(
            print_eexp(&add(int(1), mul(int(2), int(3))), 80),
            "1 + 2 * 3"
        );
        assert_eq!(
            print_eexp(&mul(add(int(1), int(2)), int(3)), 80),
            "(1 + 2) * 3"
        );
        assert_eq!(print_eexp(&float(36.0), 80), "36.0");
        assert_eq!(print_eexp(&string("a\"b"), 80), "\"a\\\"b\"");
    }

    #[test]
    fn prints_lambda_and_let() {
        let e = elet("x", int(1), ap(lam("y", Typ::Int, var("y")), var("x")));
        let flat = print_eexp(&e, 120);
        assert_eq!(flat, "let x = 1 in (fun y : Int -> y) x");
    }

    #[test]
    fn narrow_width_breaks_lines() {
        let e = elet("some_variable", int(100), add(var("some_variable"), int(1)));
        let narrow = print_eexp(&e, 20);
        assert!(narrow.contains('\n'), "expected line breaks in: {narrow}");
    }

    #[test]
    fn prints_labeled_tuple() {
        let e = record([("r", int(57)), ("g", int(107))]);
        assert_eq!(print_eexp(&e, 80), "(.r 57, .g 107)");
        assert_eq!(print_eexp(&tuple([int(1), int(2)]), 80), "(1, 2)");
    }

    #[test]
    fn prints_holes() {
        assert_eq!(print_eexp(&hole(3), 80), "?3");
    }

    #[test]
    fn prints_cons_right_associatively() {
        let e = cons(int(1), cons(int(2), nil(Typ::Int)));
        assert_eq!(print_eexp(&e, 80), "1 :: 2 :: [Int|]");
    }

    #[test]
    fn prints_iexp_closure_environment() {
        use crate::ident::{HoleName, Var};
        use crate::internal::Sigma;
        let d = IExp::EmptyHole(
            HoleName(2),
            Sigma::from_iter([(Var::new("x"), IExp::Int(5))]),
        );
        assert_eq!(print_iexp(&d, 80), "?2<x := 5>");
    }
}
