//! Internal expressions, `d` in Fig. 4, and hole-closure substitutions `σ`.
//!
//! The internal language is where evaluation happens. Its distinguishing
//! feature is that holes carry *closures*: an internal hole `⦇⦈⟨u;σ⟩` pairs
//! the hole name with a substitution σ that accumulates the substitutions
//! that occur around the hole during evaluation (Sec. 4.1). Those recorded
//! environments are exactly what closure collection (Sec. 4.3) harvests to
//! power live splice evaluation.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::ident::{HoleName, Label, Var};
use crate::ops::BinOp;
use crate::typ::Typ;

/// A finite substitution `σ = [d1/x1, ..., dn/xn]` attached to a hole
/// closure.
///
/// Elaboration initializes each hole's substitution to the identity
/// substitution `id(Γ)`; evaluation then records each surrounding
/// substitution by mapping it over the codomain (Sec. 4.1).
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Sigma(pub BTreeMap<Var, IExp>);

impl Sigma {
    /// The empty substitution.
    pub fn empty() -> Sigma {
        Sigma(BTreeMap::new())
    }

    /// The identity substitution `id(Γ)` mapping each variable of `Γ` to
    /// itself.
    pub fn identity<'a>(vars: impl IntoIterator<Item = &'a Var>) -> Sigma {
        Sigma(
            vars.into_iter()
                .map(|x| (x.clone(), IExp::Var(x.clone())))
                .collect(),
        )
    }

    /// Looks up the recorded value for `x`.
    pub fn get(&self, x: &Var) -> Option<&IExp> {
        self.0.get(x)
    }

    /// The number of entries.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the substitution has no entries.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over entries in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &IExp)> {
        self.0.iter()
    }

    /// Applies this substitution to `d` *simultaneously*.
    ///
    /// This realizes the delayed substitutions of a hole closure, as in the
    /// hole-filling operation `⟦d1/u⟧d2` (Sec. 4.3.2): "the environment on
    /// each of these closures is applied to d1 as a substitution".
    pub fn apply(&self, d: &IExp) -> IExp {
        d.subst_all(&self.0)
    }

    /// Maps a function over the codomain, preserving the domain.
    ///
    /// This is how evaluation records a substitution `[d/x]` in a hole
    /// closure, and how `fillΩ` and `resume` act on proto-environments
    /// (Defs. 4.6 and 4.7).
    pub fn map_codomain(&self, mut f: impl FnMut(&IExp) -> IExp) -> Sigma {
        Sigma(self.0.iter().map(|(x, d)| (x.clone(), f(d))).collect())
    }
}

impl FromIterator<(Var, IExp)> for Sigma {
    fn from_iter<I: IntoIterator<Item = (Var, IExp)>>(iter: I) -> Sigma {
        Sigma(iter.into_iter().collect())
    }
}

/// One arm of an internal `case` expression.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ICaseArm {
    /// The sum constructor this arm matches.
    pub label: Label,
    /// The variable bound to the payload.
    pub var: Var,
    /// The arm body.
    pub body: IExp,
}

/// An internal expression.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IExp {
    /// A variable `x`.
    Var(Var),
    /// A lambda `fun x : τ -> d`.
    Lam(Var, Typ, Box<IExp>),
    /// Application `d1 d2`.
    Ap(Box<IExp>, Box<IExp>),
    /// A fixpoint `fix x : τ -> d`.
    Fix(Var, Typ, Box<IExp>),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A boolean literal.
    Bool(bool),
    /// A string literal.
    Str(String),
    /// The unit value.
    Unit,
    /// A primitive binary operation.
    Bin(BinOp, Box<IExp>, Box<IExp>),
    /// A conditional.
    If(Box<IExp>, Box<IExp>, Box<IExp>),
    /// A labeled tuple.
    Tuple(Vec<(Label, IExp)>),
    /// Projection out of a labeled tuple.
    Proj(Box<IExp>, Label),
    /// Injection into sum type `τ` at the given arm.
    Inj(Typ, Label, Box<IExp>),
    /// Case analysis on a labeled sum.
    Case(Box<IExp>, Vec<ICaseArm>),
    /// The empty list at the given element type.
    Nil(Typ),
    /// List cons.
    Cons(Box<IExp>, Box<IExp>),
    /// Case analysis on a list.
    ListCase(Box<IExp>, Box<IExp>, Var, Var, Box<IExp>),
    /// Recursive-type introduction.
    Roll(Typ, Box<IExp>),
    /// Recursive-type elimination.
    Unroll(Box<IExp>),
    /// An empty hole closure `⦇⦈⟨u;σ⟩`.
    EmptyHole(HoleName, Sigma),
    /// A non-empty hole closure `⦇d⦈⟨u;σ⟩` marking an erroneous
    /// subexpression.
    NonEmptyHole(HoleName, Sigma, Box<IExp>),
}

impl IExp {
    /// The free variables of this expression.
    ///
    /// Variables in a hole closure's substitution codomain are free
    /// (the domain is not a binder — it names outer variables already
    /// substituted away).
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free_vars(&self, bound: &mut Vec<Var>, out: &mut BTreeSet<Var>) {
        use IExp::*;
        match self {
            Var(x) => {
                if !bound.contains(x) {
                    out.insert(x.clone());
                }
            }
            Lam(x, _, body) | Fix(x, _, body) => {
                bound.push(x.clone());
                body.collect_free_vars(bound, out);
                bound.pop();
            }
            Ap(a, b) | Bin(_, a, b) | Cons(a, b) => {
                a.collect_free_vars(bound, out);
                b.collect_free_vars(bound, out);
            }
            Int(_) | Float(_) | Bool(_) | Str(_) | Unit | Nil(_) => {}
            If(c, t, e) => {
                c.collect_free_vars(bound, out);
                t.collect_free_vars(bound, out);
                e.collect_free_vars(bound, out);
            }
            Tuple(fields) => {
                for (_, e) in fields {
                    e.collect_free_vars(bound, out);
                }
            }
            Proj(e, _) | Inj(_, _, e) | Roll(_, e) | Unroll(e) => e.collect_free_vars(bound, out),
            Case(scrut, arms) => {
                scrut.collect_free_vars(bound, out);
                for arm in arms {
                    bound.push(arm.var.clone());
                    arm.body.collect_free_vars(bound, out);
                    bound.pop();
                }
            }
            ListCase(scrut, nil, h, t, cons) => {
                scrut.collect_free_vars(bound, out);
                nil.collect_free_vars(bound, out);
                bound.push(h.clone());
                bound.push(t.clone());
                cons.collect_free_vars(bound, out);
                bound.pop();
                bound.pop();
            }
            EmptyHole(_, sigma) => {
                for (_, d) in sigma.iter() {
                    d.collect_free_vars(bound, out);
                }
            }
            NonEmptyHole(_, sigma, d) => {
                for (_, e) in sigma.iter() {
                    e.collect_free_vars(bound, out);
                }
                d.collect_free_vars(bound, out);
            }
        }
    }

    /// Whether this expression has no free variables.
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Single capture-avoiding substitution `[d/x]self`.
    ///
    /// Substitution into a hole closure does not descend "into the hole":
    /// it is recorded by mapping over the closure's substitution codomain,
    /// which is exactly how evaluation accumulates the environment the
    /// paper's closure collection later harvests.
    pub fn subst(&self, x: &Var, d: &IExp) -> IExp {
        let mut map = BTreeMap::new();
        map.insert(x.clone(), d.clone());
        self.subst_all(&map)
    }

    /// Simultaneous capture-avoiding substitution.
    pub fn subst_all(&self, map: &BTreeMap<Var, IExp>) -> IExp {
        if map.is_empty() {
            return self.clone();
        }
        // Precompute the free variables of the replacement terms once; any
        // binder clashing with these is alpha-renamed.
        let mut replacement_fvs = BTreeSet::new();
        for d in map.values() {
            replacement_fvs.extend(d.free_vars());
        }
        self.subst_rec(map, &replacement_fvs)
    }

    fn subst_rec(&self, map: &BTreeMap<Var, IExp>, avoid: &BTreeSet<Var>) -> IExp {
        use IExp::*;
        match self {
            Var(x) => map.get(x).cloned().unwrap_or_else(|| self.clone()),
            Lam(x, t, body) => {
                let (x2, body2) = subst_under_binders(&[x], body, map, avoid);
                Lam(
                    x2.into_iter().next().expect("one binder"),
                    t.clone(),
                    Box::new(body2),
                )
            }
            Fix(x, t, body) => {
                let (x2, body2) = subst_under_binders(&[x], body, map, avoid);
                Fix(
                    x2.into_iter().next().expect("one binder"),
                    t.clone(),
                    Box::new(body2),
                )
            }
            Ap(a, b) => Ap(
                Box::new(a.subst_rec(map, avoid)),
                Box::new(b.subst_rec(map, avoid)),
            ),
            Bin(op, a, b) => Bin(
                *op,
                Box::new(a.subst_rec(map, avoid)),
                Box::new(b.subst_rec(map, avoid)),
            ),
            Cons(a, b) => Cons(
                Box::new(a.subst_rec(map, avoid)),
                Box::new(b.subst_rec(map, avoid)),
            ),
            Int(_) | Float(_) | Bool(_) | Str(_) | Unit | Nil(_) => self.clone(),
            If(c, t, e) => If(
                Box::new(c.subst_rec(map, avoid)),
                Box::new(t.subst_rec(map, avoid)),
                Box::new(e.subst_rec(map, avoid)),
            ),
            Tuple(fields) => Tuple(
                fields
                    .iter()
                    .map(|(l, e)| (l.clone(), e.subst_rec(map, avoid)))
                    .collect(),
            ),
            Proj(e, l) => Proj(Box::new(e.subst_rec(map, avoid)), l.clone()),
            Inj(t, l, e) => Inj(t.clone(), l.clone(), Box::new(e.subst_rec(map, avoid))),
            Case(scrut, arms) => Case(
                Box::new(scrut.subst_rec(map, avoid)),
                arms.iter()
                    .map(|arm| {
                        let (v2, body) = subst_under_binders(&[&arm.var], &arm.body, map, avoid);
                        ICaseArm {
                            label: arm.label.clone(),
                            var: v2.into_iter().next().expect("one binder"),
                            body,
                        }
                    })
                    .collect(),
            ),
            ListCase(scrut, nil, h, t, cons) => {
                let scrut2 = scrut.subst_rec(map, avoid);
                let nil2 = nil.subst_rec(map, avoid);
                let (binders, cons2) = subst_under_binders(&[h, t], cons, map, avoid);
                let mut it = binders.into_iter();
                let h2 = it.next().expect("two binders");
                let t2 = it.next().expect("two binders");
                ListCase(Box::new(scrut2), Box::new(nil2), h2, t2, Box::new(cons2))
            }
            Roll(t, e) => Roll(t.clone(), Box::new(e.subst_rec(map, avoid))),
            Unroll(e) => Unroll(Box::new(e.subst_rec(map, avoid))),
            EmptyHole(u, sigma) => EmptyHole(*u, sigma.map_codomain(|d| d.subst_rec(map, avoid))),
            NonEmptyHole(u, sigma, d) => NonEmptyHole(
                *u,
                sigma.map_codomain(|e| e.subst_rec(map, avoid)),
                Box::new(d.subst_rec(map, avoid)),
            ),
        }
    }

    /// All hole closures occurring in this expression (pre-order), including
    /// those inside other closures' substitutions.
    pub fn hole_closures(&self) -> Vec<(HoleName, &Sigma)> {
        fn go<'a>(d: &'a IExp, out: &mut Vec<(HoleName, &'a Sigma)>) {
            use IExp::*;
            match d {
                EmptyHole(u, sigma) => {
                    out.push((*u, sigma));
                    for (_, e) in sigma.iter() {
                        go(e, out);
                    }
                }
                NonEmptyHole(u, sigma, inner) => {
                    out.push((*u, sigma));
                    for (_, e) in sigma.iter() {
                        go(e, out);
                    }
                    go(inner, out);
                }
                Var(_) | Int(_) | Float(_) | Bool(_) | Str(_) | Unit | Nil(_) => {}
                Lam(_, _, e)
                | Fix(_, _, e)
                | Proj(e, _)
                | Inj(_, _, e)
                | Roll(_, e)
                | Unroll(e) => go(e, out),
                Ap(a, b) | Bin(_, a, b) | Cons(a, b) => {
                    go(a, out);
                    go(b, out);
                }
                If(c, t, e) => {
                    go(c, out);
                    go(t, out);
                    go(e, out);
                }
                Tuple(fields) => {
                    for (_, e) in fields {
                        go(e, out);
                    }
                }
                Case(scrut, arms) => {
                    go(scrut, out);
                    for arm in arms {
                        go(&arm.body, out);
                    }
                }
                ListCase(scrut, nil, _, _, cons) => {
                    go(scrut, out);
                    go(nil, out);
                    go(cons, out);
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut out);
        out
    }

    /// Calls `f` on this expression and every subexpression (pre-order),
    /// including hole-closure substitution codomains.
    pub fn visit(&self, f: &mut impl FnMut(&IExp)) {
        use IExp::*;
        f(self);
        match self {
            Var(_) | Int(_) | Float(_) | Bool(_) | Str(_) | Unit | Nil(_) => {}
            Lam(_, _, e) | Fix(_, _, e) | Proj(e, _) | Inj(_, _, e) | Roll(_, e) | Unroll(e) => {
                e.visit(f);
            }
            Ap(a, b) | Bin(_, a, b) | Cons(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            If(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
            Tuple(fields) => {
                for (_, e) in fields {
                    e.visit(f);
                }
            }
            Case(scrut, arms) => {
                scrut.visit(f);
                for arm in arms {
                    arm.body.visit(f);
                }
            }
            ListCase(scrut, nil, _, _, cons) => {
                scrut.visit(f);
                nil.visit(f);
                cons.visit(f);
            }
            EmptyHole(_, sigma) => {
                for (_, d) in sigma.iter() {
                    d.visit(f);
                }
            }
            NonEmptyHole(_, sigma, d) => {
                for (_, e) in sigma.iter() {
                    e.visit(f);
                }
                d.visit(f);
            }
        }
    }

    /// The number of AST nodes (hole-closure environments included).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Converts a list value `Cons(v1, Cons(v2, ... Nil))` into a `Vec` of
    /// its elements. Returns `None` if the spine is not fully determined
    /// (e.g. ends in a hole) — callers such as `$grade_cutoffs` then fall
    /// back to element-wise handling of indeterminate data (Sec. 2.5.2).
    pub fn list_elements(&self) -> Option<Vec<&IExp>> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                IExp::Nil(_) => return Some(out),
                IExp::Cons(h, t) => {
                    out.push(h.as_ref());
                    cur = t;
                }
                _ => return None,
            }
        }
    }

    /// Extracts an `i64` if this is an integer literal.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            IExp::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Extracts an `f64` if this is a float literal.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            IExp::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Extracts a `bool` if this is a boolean literal.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            IExp::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts the string if this is a string literal.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            IExp::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a tuple field by label.
    pub fn field(&self, l: &Label) -> Option<&IExp> {
        match self {
            IExp::Tuple(fields) => fields.iter().find(|(fl, _)| fl == l).map(|(_, e)| e),
            _ => None,
        }
    }
}

/// Handles binder/`map` interaction for substitution: removes the binder
/// from the substitution and alpha-renames it if it would capture a free
/// variable of the replacement terms.
/// Substitutes `map` under the given binders: removes the binders from the
/// substitution, alpha-renames any binder that would capture a free
/// variable of the replacement terms (rare; detected via `avoid`), and
/// substitutes into the body. Returns the (possibly renamed) binders and
/// the substituted body.
fn subst_under_binders(
    xs: &[&Var],
    body: &IExp,
    map: &BTreeMap<Var, IExp>,
    avoid: &BTreeSet<Var>,
) -> (Vec<Var>, IExp) {
    let map2: BTreeMap<Var, IExp> = map
        .iter()
        .filter(|(k, _)| !xs.contains(k))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    if map2.is_empty() {
        return (xs.iter().map(|x| (*x).clone()).collect(), body.clone());
    }
    if xs.iter().any(|x| avoid.contains(*x)) {
        // Slow path: some binder clashes with a replacement's free
        // variable. Rename each clashing binder (only if a substitution
        // actually applies in the body) before substituting.
        let body_fvs = body.free_vars();
        let applies = map2.keys().any(|k| body_fvs.contains(k));
        if applies {
            let mut binders: Vec<Var> = Vec::with_capacity(xs.len());
            let mut renamed = body.clone();
            for x in xs {
                if avoid.contains(*x) {
                    let fresh = fresh_var(x, avoid, &renamed);
                    renamed = renamed.subst_rec(
                        &BTreeMap::from([((*x).clone(), IExp::Var(fresh.clone()))]),
                        &BTreeSet::from([fresh.clone()]),
                    );
                    binders.push(fresh);
                } else {
                    binders.push((*x).clone());
                }
            }
            return (binders, renamed.subst_rec(&map2, avoid));
        }
        return (xs.iter().map(|x| (*x).clone()).collect(), body.clone());
    }
    (
        xs.iter().map(|x| (*x).clone()).collect(),
        body.subst_rec(&map2, avoid),
    )
}

/// Picks a variant of `base` not free in the replacements or the body.
fn fresh_var(base: &Var, avoid: &BTreeSet<Var>, body: &IExp) -> Var {
    let body_fvs = body.free_vars();
    let mut i = 1u32;
    loop {
        let candidate = Var::new(format!("{}%{}", base.as_str(), i));
        if !avoid.contains(&candidate) && !body_fvs.contains(&candidate) {
            return candidate;
        }
        i += 1;
    }
}

impl fmt::Display for IExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::pretty::print_iexp(self, 80))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: &str) -> IExp {
        IExp::Var(Var::new(x))
    }

    fn lam(x: &str, body: IExp) -> IExp {
        IExp::Lam(Var::new(x), Typ::Int, Box::new(body))
    }

    #[test]
    fn subst_replaces_free_occurrences_only() {
        // [1/x](fun x -> x) = fun x -> x
        let id = lam("x", v("x"));
        assert_eq!(id.subst(&Var::new("x"), &IExp::Int(1)), id);
        // [1/x](x) = 1
        assert_eq!(v("x").subst(&Var::new("x"), &IExp::Int(1)), IExp::Int(1));
    }

    #[test]
    fn subst_avoids_capture() {
        // [y/x](fun y -> x) must not capture: result is fun y' -> y
        let e = lam("y", v("x"));
        let result = e.subst(&Var::new("x"), &v("y"));
        match result {
            IExp::Lam(binder, _, body) => {
                assert_ne!(binder, Var::new("y"), "binder must be renamed");
                assert_eq!(*body, v("y"));
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn subst_into_hole_closure_records_binding() {
        // The heart of Hazelnut Live: [5/x]⦇⦈⟨u; [x/x]⟩ = ⦇⦈⟨u; [5/x]⟩.
        let hole = IExp::EmptyHole(HoleName(0), Sigma::identity([&Var::new("x")]));
        let result = hole.subst(&Var::new("x"), &IExp::Int(5));
        match result {
            IExp::EmptyHole(u, sigma) => {
                assert_eq!(u, HoleName(0));
                assert_eq!(sigma.get(&Var::new("x")), Some(&IExp::Int(5)));
            }
            other => panic!("expected hole closure, got {other:?}"),
        }
    }

    #[test]
    fn simultaneous_subst_is_not_sequential() {
        // [y/x, 1/y] applied to (x, y) must give (y, 1), not (1, 1).
        let e = IExp::Tuple(vec![
            (Label::positional(0), v("x")),
            (Label::positional(1), v("y")),
        ]);
        let map = BTreeMap::from([(Var::new("x"), v("y")), (Var::new("y"), IExp::Int(1))]);
        let result = e.subst_all(&map);
        assert_eq!(
            result,
            IExp::Tuple(vec![
                (Label::positional(0), v("y")),
                (Label::positional(1), IExp::Int(1)),
            ])
        );
    }

    #[test]
    fn free_vars_include_closure_codomain() {
        let hole = IExp::EmptyHole(HoleName(0), Sigma::identity([&Var::new("q")]));
        assert_eq!(hole.free_vars(), BTreeSet::from([Var::new("q")]));
        let closed = IExp::EmptyHole(
            HoleName(0),
            Sigma::from_iter([(Var::new("q"), IExp::Int(3))]),
        );
        assert!(closed.is_closed());
    }

    #[test]
    fn list_elements_requires_determined_spine() {
        let xs = IExp::Cons(
            Box::new(IExp::Int(1)),
            Box::new(IExp::Cons(
                Box::new(IExp::Int(2)),
                Box::new(IExp::Nil(Typ::Int)),
            )),
        );
        let elems = xs.list_elements().expect("determined list");
        assert_eq!(elems.len(), 2);

        let open = IExp::Cons(
            Box::new(IExp::Int(1)),
            Box::new(IExp::EmptyHole(HoleName(9), Sigma::empty())),
        );
        assert!(open.list_elements().is_none());
    }

    #[test]
    fn sigma_identity_maps_vars_to_themselves() {
        let sigma = Sigma::identity([&Var::new("a"), &Var::new("b")]);
        assert_eq!(sigma.len(), 2);
        assert_eq!(sigma.get(&Var::new("a")), Some(&v("a")));
    }

    #[test]
    fn sigma_apply_realizes_delayed_substitution() {
        let sigma =
            Sigma::from_iter([(Var::new("x"), IExp::Int(2)), (Var::new("y"), IExp::Int(3))]);
        let body = IExp::Bin(BinOp::Add, Box::new(v("x")), Box::new(v("y")));
        assert_eq!(
            sigma.apply(&body),
            IExp::Bin(BinOp::Add, Box::new(IExp::Int(2)), Box::new(IExp::Int(3)))
        );
    }

    #[test]
    fn hole_closures_found_inside_other_closures() {
        let inner = IExp::EmptyHole(HoleName(1), Sigma::empty());
        let outer = IExp::EmptyHole(HoleName(0), Sigma::from_iter([(Var::new("x"), inner)]));
        let found: Vec<HoleName> = outer.hole_closures().iter().map(|(u, _)| *u).collect();
        assert_eq!(found, vec![HoleName(0), HoleName(1)]);
    }
}
