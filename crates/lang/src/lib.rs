//! `hazel-lang`: the Hazelnut-Live-style language of typed holes that the
//! livelit calculus (PLDI 2021, "Filling Typed Holes with Live GUIs") is
//! built on.
//!
//! This crate provides the three expression sorts of the paper's Fig. 4 —
//! unexpanded expressions `ê` ([`unexpanded::UExp`]), external expressions
//! `e` ([`external::EExp`]), and internal expressions `d`
//! ([`internal::IExp`]) — together with:
//!
//! - bidirectional typing `Γ ⊢ e : τ` producing hole contexts Δ
//!   ([`typing`]),
//! - elaboration `Γ ⊢ e ⇝ d : τ ⊣ Δ` initializing identity substitutions on
//!   hole closures ([`elab`]),
//! - contextual internal typing `Δ; Γ ⊢ d : τ` ([`internal_typing`]),
//! - fuel-limited big-step evaluation of incomplete programs, hole filling
//!   `⟦d/u⟧`, and resumption ([`eval`]),
//! - the value/indeterminate/final classification ([`final_form`]),
//! - a surface-syntax parser ([`parse`]) and a width-aware pretty printer
//!   ([`pretty`]),
//! - builder DSLs for external expressions ([`build`]) and internal values
//!   ([`value::iv`]).
//!
//! # Example
//!
//! Evaluation proceeds *around* holes, recording closures:
//!
//! ```
//! use hazel_lang::build::*;
//! use hazel_lang::typ::Typ;
//! use hazel_lang::typing::Ctx;
//!
//! // (fun x : Int -> x + ?0) 5   — the hole blocks the sum, but the
//! // closure records x = 5 for later live evaluation.
//! let e = ap(lam("x", Typ::Int, add(var("x"), asc(hole(0), Typ::Int))), int(5));
//! let (d, ty, _delta) = hazel_lang::elab::elab_syn(&Ctx::empty(), &e)?;
//! assert_eq!(ty, Typ::Int);
//! let result = hazel_lang::eval::eval(&d)?;
//! assert!(hazel_lang::final_form::is_indet(&result));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod build;
pub mod compile;
pub mod elab;
pub mod eval;
pub mod external;
pub mod final_form;
pub mod ident;
pub mod internal;
pub mod internal_typing;
pub mod machine;
pub mod module;
pub mod ops;
pub mod parse;
pub mod pretty;
pub mod store;
pub mod typ;
pub mod typing;
pub mod unexpanded;
pub mod value;

pub use external::EExp;
pub use ident::{HoleName, Label, LivelitName, TVar, Var};
pub use internal::{IExp, Sigma};
pub use machine::{eval_kind, set_eval_kind_override, EvalKind, MachineCounters, MachineEvaluator};
pub use ops::BinOp;
pub use store::{TermId, TermStore, VarId};
pub use typ::Typ;
pub use typing::{Ctx, Delta, TypeError};
pub use unexpanded::{LivelitAp, Splice, UExp};
