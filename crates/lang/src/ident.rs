//! Identifier newtypes: variables, type variables, labels, hole names, and
//! livelit names.
//!
//! The calculus in the paper (Fig. 4) ranges `x` over expression variables,
//! `t` over type variables, `u` over hole names, and `$a` over livelit names.
//! Each of these gets its own newtype so they cannot be confused
//! ([C-NEWTYPE]).

use std::borrow::Borrow;
use std::fmt;

macro_rules! string_ident {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(String);

        impl $name {
            /// Creates an identifier from anything string-like.
            pub fn new(s: impl Into<String>) -> Self {
                $name(s.into())
            }

            /// The identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                $name(s.to_owned())
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                $name(s)
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

string_ident! {
    /// An expression variable, `x` in the paper's grammar.
    Var
}

string_ident! {
    /// A type variable, `t` in the paper's grammar (bound by `μ(t.τ)`).
    TVar
}

string_ident! {
    /// A field label in a labeled product or sum.
    ///
    /// Hazel writes field labels as `.label` (Sec. 2.3); positional tuple
    /// components use synthesized labels `_0`, `_1`, ....
    Label
}

string_ident! {
    /// A livelit name, `$a` in the paper's grammar.
    ///
    /// The stored string does *not* include the `$` sigil; `Display` adds it.
    LivelitNameInner
}

/// A livelit name such as `$color`.
///
/// Printed with the `$` sigil the paper uses to distinguish livelit names
/// from variables (Sec. 1.2, "Decentralized Extensibility").
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LivelitName(String);

impl LivelitName {
    /// Creates a livelit name. A leading `$`, if present, is stripped.
    pub fn new(s: impl Into<String>) -> Self {
        let s: String = s.into();
        LivelitName(s.strip_prefix('$').map(str::to_owned).unwrap_or(s))
    }

    /// The name without the `$` sigil.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for LivelitName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${}", self.0)
    }
}

impl From<&str> for LivelitName {
    fn from(s: &str) -> Self {
        LivelitName::new(s)
    }
}

impl From<String> for LivelitName {
    fn from(s: String) -> Self {
        LivelitName::new(s)
    }
}

/// A hole name, `u` in the paper's grammar.
///
/// Hole names are unique within an external expression but may be duplicated
/// during internal evaluation (Sec. 4.1), which is why internal holes carry
/// environments distinguishing their instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HoleName(pub u64);

impl HoleName {
    /// Creates a hole name from a raw index.
    pub fn new(n: u64) -> Self {
        HoleName(n)
    }
}

impl fmt::Display for HoleName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl Label {
    /// The synthesized label for positional tuple component `i`.
    pub fn positional(i: usize) -> Label {
        Label::new(format!("_{i}"))
    }

    /// Whether this label is a synthesized positional label.
    pub fn is_positional(&self) -> bool {
        self.0
            .strip_prefix('_')
            .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrip() {
        let x = Var::new("baseline");
        assert_eq!(x.as_str(), "baseline");
        assert_eq!(x.to_string(), "baseline");
        assert_eq!(Var::from("baseline"), x);
    }

    #[test]
    fn livelit_name_strips_sigil() {
        assert_eq!(LivelitName::new("$color"), LivelitName::new("color"));
        assert_eq!(LivelitName::new("color").to_string(), "$color");
    }

    #[test]
    fn hole_name_display() {
        assert_eq!(HoleName::new(3).to_string(), "u3");
    }

    #[test]
    fn positional_labels() {
        assert_eq!(Label::positional(0).as_str(), "_0");
        assert!(Label::positional(12).is_positional());
        assert!(!Label::new("r").is_positional());
        assert!(!Label::new("_").is_positional());
        assert!(!Label::new("_x1").is_positional());
    }

    #[test]
    fn idents_are_ordered_for_map_keys() {
        let mut v = vec![Var::new("b"), Var::new("a")];
        v.sort();
        assert_eq!(v, vec![Var::new("a"), Var::new("b")]);
    }
}
