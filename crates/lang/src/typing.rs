//! Typing for external expressions: `Γ ⊢ e : τ` (Sec. 4.1).
//!
//! The paper's typing judgement is declarative; to make it algorithmic this
//! module implements it bidirectionally, splitting it into synthesis
//! ([`syn`]) and analysis ([`ana`]). Empty holes synthesize nothing but
//! analyze against any type — checking also *outputs* the hole context Δ
//! recording `u :: τ[Γ]` for every hole encountered, which is the interface
//! elaboration and closure collection rely on.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::external::EExp;
use crate::ident::{HoleName, Label, Var};
use crate::typ::Typ;

/// A typing context `Γ`: a persistent map from variables to types.
///
/// Extension is O(log n) with structural sharing (via [`Arc`]), because the
/// checker snapshots Γ into Δ at every hole (the `u :: τ[Γ]` hypotheses)
/// and cloning a flat map at each hole would be quadratic.
#[derive(Debug, Clone, Default)]
pub struct Ctx {
    map: Arc<BTreeMap<Var, Typ>>,
}

impl Ctx {
    /// The empty context.
    pub fn empty() -> Ctx {
        Ctx::default()
    }

    /// Creates a context from bindings.
    pub fn from_bindings(bindings: impl IntoIterator<Item = (Var, Typ)>) -> Ctx {
        Ctx {
            map: Arc::new(bindings.into_iter().collect()),
        }
    }

    /// Looks up a variable.
    pub fn get(&self, x: &Var) -> Option<&Typ> {
        self.map.get(x)
    }

    /// Extends the context with `x : τ`, shadowing any existing binding.
    pub fn extend(&self, x: Var, ty: Typ) -> Ctx {
        let mut map = (*self.map).clone();
        map.insert(x, ty);
        Ctx { map: Arc::new(map) }
    }

    /// Iterates over bindings in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Typ)> {
        self.map.iter()
    }

    /// The variables bound in this context.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.map.keys()
    }

    /// The number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the context is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl PartialEq for Ctx {
    fn eq(&self, other: &Ctx) -> bool {
        self.map == other.map
    }
}

/// One hole typing hypothesis `u :: τ[Γ]`.
#[derive(Debug, Clone, PartialEq)]
pub struct HoleHyp {
    /// The type the hole must be filled at.
    pub ty: Typ,
    /// The typing context at the hole's location.
    pub ctx: Ctx,
}

/// A hole context `Δ`: a finite set of hypotheses `u :: τ[Γ]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Delta {
    map: BTreeMap<HoleName, HoleHyp>,
}

impl Delta {
    /// The empty hole context.
    pub fn empty() -> Delta {
        Delta::default()
    }

    /// Looks up a hole's hypothesis.
    pub fn get(&self, u: HoleName) -> Option<&HoleHyp> {
        self.map.get(&u)
    }

    /// Records `u :: τ[Γ]`.
    ///
    /// # Errors
    ///
    /// Hole names must be unique in external expressions (Sec. 4.1); a
    /// second, *different* hypothesis for the same hole is a
    /// [`TypeError::DuplicateHole`].
    pub fn insert(&mut self, u: HoleName, ty: Typ, ctx: Ctx) -> Result<(), TypeError> {
        match self.map.get(&u) {
            Some(existing) if existing.ty == ty && existing.ctx == ctx => Ok(()),
            Some(_) => Err(TypeError::DuplicateHole(u)),
            None => {
                self.map.insert(u, HoleHyp { ty, ctx });
                Ok(())
            }
        }
    }

    /// Merges another hole context into this one.
    pub fn merge(&mut self, other: Delta) -> Result<(), TypeError> {
        for (u, hyp) in other.map {
            self.insert(u, hyp.ty, hyp.ctx)?;
        }
        Ok(())
    }

    /// Iterates over hypotheses in hole-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&HoleName, &HoleHyp)> {
        self.map.iter()
    }

    /// The number of hypotheses.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no hypotheses.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A static (type) error.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// An unbound variable.
    UnboundVar(Var),
    /// Expected one type, found another.
    Mismatch {
        /// The type required by the context.
        expected: Typ,
        /// The type the expression synthesized.
        found: Typ,
    },
    /// Applied a non-function.
    NotAFunction(Typ),
    /// Projected from a non-product or a product lacking the field.
    BadProjection(Typ, Label),
    /// Injected into a non-sum type or a missing arm.
    BadInjection(Typ, Label),
    /// Case analysis on a non-sum.
    NotASum(Typ),
    /// A `case` whose arms do not exactly cover the sum's constructors.
    InexhaustiveCase {
        /// The sum type being analyzed.
        scrutinee: Typ,
    },
    /// List case analysis on a non-list.
    NotAList(Typ),
    /// `roll` at a non-recursive type, or `unroll` of one.
    NotRecursive(Typ),
    /// An expression form that cannot synthesize a type (e.g. a bare hole in
    /// synthetic position) — add an annotation or ascription.
    CannotSynthesize(&'static str),
    /// Two hypotheses for one hole name.
    DuplicateHole(HoleName),
    /// A tuple analyzed against a product with different labels or arity.
    TupleShape {
        /// The product type expected.
        expected: Typ,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVar(x) => write!(f, "unbound variable {x}"),
            TypeError::Mismatch { expected, found } => {
                write!(f, "expected type {expected}, found {found}")
            }
            TypeError::NotAFunction(t) => write!(f, "cannot apply expression of type {t}"),
            TypeError::BadProjection(t, l) => {
                write!(f, "type {t} has no field .{l}")
            }
            TypeError::BadInjection(t, l) => write!(f, "type {t} has no constructor .{l}"),
            TypeError::NotASum(t) => write!(f, "cannot case on non-sum type {t}"),
            TypeError::InexhaustiveCase { scrutinee } => {
                write!(f, "case arms do not match constructors of {scrutinee}")
            }
            TypeError::NotAList(t) => write!(f, "cannot list-case on non-list type {t}"),
            TypeError::NotRecursive(t) => write!(f, "type {t} is not recursive"),
            TypeError::CannotSynthesize(form) => {
                write!(f, "cannot synthesize a type for {form}; add an annotation")
            }
            TypeError::DuplicateHole(u) => write!(f, "duplicate hole name {u}"),
            TypeError::TupleShape { expected } => {
                write!(f, "tuple does not match product type {expected}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Synthesizes a type for `e` under `Γ`, producing the hole context Δ.
///
/// # Errors
///
/// Returns a [`TypeError`] if the expression is ill-typed or a hole-bearing
/// form appears where a type must be synthesized without an annotation.
pub fn syn(ctx: &Ctx, e: &EExp) -> Result<(Typ, Delta), TypeError> {
    let mut delta = Delta::empty();
    let ty = syn_in(ctx, e, &mut delta)?;
    Ok((ty, delta))
}

/// Analyzes `e` against `τ` under `Γ`, producing the hole context Δ.
///
/// # Errors
///
/// Returns a [`TypeError`] if the expression cannot have type `τ`.
pub fn ana(ctx: &Ctx, e: &EExp, ty: &Typ) -> Result<Delta, TypeError> {
    let mut delta = Delta::empty();
    ana_in(ctx, e, ty, &mut delta)?;
    Ok(delta)
}

fn syn_in(ctx: &Ctx, e: &EExp, delta: &mut Delta) -> Result<Typ, TypeError> {
    match e {
        EExp::Var(x) => ctx
            .get(x)
            .cloned()
            .ok_or_else(|| TypeError::UnboundVar(x.clone())),
        EExp::Lam(x, t, body) => {
            let body_ty = syn_in(&ctx.extend(x.clone(), t.clone()), body, delta)?;
            Ok(Typ::arrow(t.clone(), body_ty))
        }
        EExp::Ap(f, a) => {
            let f_ty = syn_in(ctx, f, delta)?;
            match f_ty {
                Typ::Arrow(dom, cod) => {
                    ana_in(ctx, a, &dom, delta)?;
                    Ok(*cod)
                }
                other => Err(TypeError::NotAFunction(other)),
            }
        }
        EExp::Let(x, ann, def, body) => {
            let def_ty = match ann {
                Some(t) => {
                    ana_in(ctx, def, t, delta)?;
                    t.clone()
                }
                None => syn_in(ctx, def, delta)?,
            };
            syn_in(&ctx.extend(x.clone(), def_ty), body, delta)
        }
        EExp::Fix(x, t, body) => {
            ana_in(&ctx.extend(x.clone(), t.clone()), body, t, delta)?;
            Ok(t.clone())
        }
        EExp::Int(_) => Ok(Typ::Int),
        EExp::Float(_) => Ok(Typ::Float),
        EExp::Bool(_) => Ok(Typ::Bool),
        EExp::Str(_) => Ok(Typ::Str),
        EExp::Unit => Ok(Typ::Unit),
        EExp::Bin(op, a, b) => {
            let operand = op.operand_typ();
            ana_in(ctx, a, &operand, delta)?;
            ana_in(ctx, b, &operand, delta)?;
            Ok(op.result_typ())
        }
        EExp::If(c, t, e2) => {
            ana_in(ctx, c, &Typ::Bool, delta)?;
            let then_ty = syn_in(ctx, t, delta)?;
            ana_in(ctx, e2, &then_ty, delta)?;
            Ok(then_ty)
        }
        EExp::Tuple(fields) => {
            let mut tys = Vec::with_capacity(fields.len());
            for (l, fe) in fields {
                tys.push((l.clone(), syn_in(ctx, fe, delta)?));
            }
            Ok(Typ::Prod(tys))
        }
        EExp::Proj(scrut, l) => {
            let scrut_ty = syn_in(ctx, scrut, delta)?;
            scrut_ty
                .field(l)
                .cloned()
                .ok_or_else(|| TypeError::BadProjection(scrut_ty.clone(), l.clone()))
        }
        EExp::Inj(sum_ty, l, payload) => {
            let payload_ty = sum_ty
                .arm(l)
                .ok_or_else(|| TypeError::BadInjection(sum_ty.clone(), l.clone()))?;
            ana_in(ctx, payload, payload_ty, delta)?;
            Ok(sum_ty.clone())
        }
        EExp::Case(scrut, arms) => {
            let scrut_ty = syn_in(ctx, scrut, delta)?;
            let arm_tys = case_arm_typs(&scrut_ty, arms.iter().map(|a| &a.label))?;
            let mut result: Option<Typ> = None;
            for (arm, payload_ty) in arms.iter().zip(arm_tys) {
                let arm_ctx = ctx.extend(arm.var.clone(), payload_ty.clone());
                match &result {
                    None => result = Some(syn_in(&arm_ctx, &arm.body, delta)?),
                    Some(t) => ana_in(&arm_ctx, &arm.body, t, delta)?,
                }
            }
            result.ok_or(TypeError::CannotSynthesize("a case with no arms"))
        }
        EExp::Nil(t) => Ok(Typ::list(t.clone())),
        EExp::Cons(h, t) => {
            let h_ty = syn_in(ctx, h, delta)?;
            let list_ty = Typ::list(h_ty);
            ana_in(ctx, t, &list_ty, delta)?;
            Ok(list_ty)
        }
        EExp::ListCase(scrut, nil, h, t, cons) => {
            let scrut_ty = syn_in(ctx, scrut, delta)?;
            let elem_ty = match &scrut_ty {
                Typ::List(elem) => (**elem).clone(),
                other => return Err(TypeError::NotAList(other.clone())),
            };
            let nil_ty = syn_in(ctx, nil, delta)?;
            let cons_ctx = ctx
                .extend(h.clone(), elem_ty)
                .extend(t.clone(), scrut_ty.clone());
            ana_in(&cons_ctx, cons, &nil_ty, delta)?;
            Ok(nil_ty)
        }
        EExp::Roll(rec_ty, body) => {
            let unrolled = rec_ty
                .unroll()
                .ok_or_else(|| TypeError::NotRecursive(rec_ty.clone()))?;
            ana_in(ctx, body, &unrolled, delta)?;
            Ok(rec_ty.clone())
        }
        EExp::Unroll(body) => {
            let rec_ty = syn_in(ctx, body, delta)?;
            rec_ty.unroll().ok_or(TypeError::NotRecursive(rec_ty))
        }
        EExp::Asc(inner, t) => {
            ana_in(ctx, inner, t, delta)?;
            Ok(t.clone())
        }
        EExp::EmptyHole(_) => Err(TypeError::CannotSynthesize("an empty hole")),
        EExp::NonEmptyHole(_, _) => Err(TypeError::CannotSynthesize("a non-empty hole")),
    }
}

fn ana_in(ctx: &Ctx, e: &EExp, expected: &Typ, delta: &mut Delta) -> Result<(), TypeError> {
    match (e, expected) {
        // Holes analyze against any type, recording u :: τ[Γ] in Δ.
        (EExp::EmptyHole(u), _) => delta.insert(*u, expected.clone(), ctx.clone()),
        // A non-empty hole also analyzes against any type; its contents must
        // merely synthesize *some* type (the error is already marked).
        (EExp::NonEmptyHole(u, inner), _) => {
            let _inner_ty = syn_in(ctx, inner, delta)?;
            delta.insert(*u, expected.clone(), ctx.clone())
        }
        (EExp::Lam(x, ann, body), Typ::Arrow(dom, cod)) => {
            if ann != dom.as_ref() {
                return Err(TypeError::Mismatch {
                    expected: (**dom).clone(),
                    found: ann.clone(),
                });
            }
            ana_in(&ctx.extend(x.clone(), ann.clone()), body, cod, delta)
        }
        (EExp::Let(x, ann, def, body), _) => {
            let def_ty = match ann {
                Some(t) => {
                    ana_in(ctx, def, t, delta)?;
                    t.clone()
                }
                None => syn_in(ctx, def, delta)?,
            };
            ana_in(&ctx.extend(x.clone(), def_ty), body, expected, delta)
        }
        (EExp::If(c, t, e2), _) => {
            ana_in(ctx, c, &Typ::Bool, delta)?;
            ana_in(ctx, t, expected, delta)?;
            ana_in(ctx, e2, expected, delta)
        }
        (EExp::Tuple(fields), Typ::Prod(expected_fields)) => {
            if fields.len() != expected_fields.len()
                || fields
                    .iter()
                    .zip(expected_fields)
                    .any(|((l1, _), (l2, _))| l1 != l2)
            {
                return Err(TypeError::TupleShape {
                    expected: expected.clone(),
                });
            }
            for ((_, fe), (_, ft)) in fields.iter().zip(expected_fields) {
                ana_in(ctx, fe, ft, delta)?;
            }
            Ok(())
        }
        (EExp::Case(scrut, arms), _) => {
            let scrut_ty = syn_in(ctx, scrut, delta)?;
            let arm_tys = case_arm_typs(&scrut_ty, arms.iter().map(|a| &a.label))?;
            for (arm, payload_ty) in arms.iter().zip(arm_tys) {
                let arm_ctx = ctx.extend(arm.var.clone(), payload_ty.clone());
                ana_in(&arm_ctx, &arm.body, expected, delta)?;
            }
            Ok(())
        }
        (EExp::ListCase(scrut, nil, h, t, cons), _) => {
            let scrut_ty = syn_in(ctx, scrut, delta)?;
            let elem_ty = match &scrut_ty {
                Typ::List(elem) => (**elem).clone(),
                other => return Err(TypeError::NotAList(other.clone())),
            };
            ana_in(ctx, nil, expected, delta)?;
            let cons_ctx = ctx
                .extend(h.clone(), elem_ty)
                .extend(t.clone(), scrut_ty.clone());
            ana_in(&cons_ctx, cons, expected, delta)
        }
        (EExp::Nil(elem), Typ::List(expected_elem)) if elem == expected_elem.as_ref() => Ok(()),
        (EExp::Cons(h, t), Typ::List(elem)) => {
            ana_in(ctx, h, elem, delta)?;
            ana_in(ctx, t, expected, delta)
        }
        // Subsumption: everything else synthesizes and must match exactly.
        _ => {
            let found = syn_in(ctx, e, delta)?;
            if &found == expected {
                Ok(())
            } else {
                Err(TypeError::Mismatch {
                    expected: expected.clone(),
                    found,
                })
            }
        }
    }
}

/// Checks that `arms` exactly covers the constructors of sum type
/// `scrut_ty`, in order, and returns the payload type for each arm.
fn case_arm_typs<'a>(
    scrut_ty: &Typ,
    arms: impl ExactSizeIterator<Item = &'a Label>,
) -> Result<Vec<Typ>, TypeError> {
    let sum_arms = match scrut_ty {
        Typ::Sum(sum_arms) => sum_arms,
        other => return Err(TypeError::NotASum(other.clone())),
    };
    if arms.len() != sum_arms.len() {
        return Err(TypeError::InexhaustiveCase {
            scrutinee: scrut_ty.clone(),
        });
    }
    let mut out = Vec::with_capacity(sum_arms.len());
    for (label, (sum_label, payload_ty)) in arms.zip(sum_arms) {
        if label != sum_label {
            return Err(TypeError::InexhaustiveCase {
                scrutinee: scrut_ty.clone(),
            });
        }
        out.push(payload_ty.clone());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    fn option_int() -> Typ {
        Typ::sum([
            (Label::new("Some"), Typ::Int),
            (Label::new("None"), Typ::Unit),
        ])
    }

    #[test]
    fn syn_literals() {
        let ctx = Ctx::empty();
        assert_eq!(syn(&ctx, &int(3)).unwrap().0, Typ::Int);
        assert_eq!(syn(&ctx, &float(1.5)).unwrap().0, Typ::Float);
        assert_eq!(syn(&ctx, &boolean(true)).unwrap().0, Typ::Bool);
        assert_eq!(syn(&ctx, &string("hi")).unwrap().0, Typ::Str);
        assert_eq!(syn(&ctx, &unit()).unwrap().0, Typ::Unit);
    }

    #[test]
    fn syn_lambda_and_application() {
        let ctx = Ctx::empty();
        let e = ap(lam("x", Typ::Int, add(var("x"), int(1))), int(41));
        assert_eq!(syn(&ctx, &e).unwrap().0, Typ::Int);
    }

    #[test]
    fn unbound_var_fails() {
        assert_eq!(
            syn(&Ctx::empty(), &var("nope")),
            Err(TypeError::UnboundVar(Var::new("nope")))
        );
    }

    #[test]
    fn applying_non_function_fails() {
        let e = ap(int(1), int(2));
        assert_eq!(
            syn(&Ctx::empty(), &e),
            Err(TypeError::NotAFunction(Typ::Int))
        );
    }

    #[test]
    fn hole_records_type_and_context() {
        // let x : Int = ⦇⦈0 in x  — the hole gets Int under the outer Γ.
        let outer = Ctx::from_bindings([(Var::new("outer"), Typ::Bool)]);
        let e = elet_ty("x", Typ::Int, hole(0), var("x"));
        let (ty, delta) = syn(&outer, &e).unwrap();
        assert_eq!(ty, Typ::Int);
        let hyp = delta.get(HoleName(0)).expect("hole recorded");
        assert_eq!(hyp.ty, Typ::Int);
        assert_eq!(hyp.ctx.get(&Var::new("outer")), Some(&Typ::Bool));
    }

    #[test]
    fn bare_hole_cannot_synthesize() {
        assert!(matches!(
            syn(&Ctx::empty(), &hole(0)),
            Err(TypeError::CannotSynthesize(_))
        ));
        // But ascription fixes it.
        assert_eq!(
            syn(&Ctx::empty(), &asc(hole(0), Typ::Int)).unwrap().0,
            Typ::Int
        );
    }

    #[test]
    fn duplicate_hole_names_at_different_types_rejected() {
        let e = tuple([asc(hole(0), Typ::Int), asc(hole(0), Typ::Bool)]);
        assert_eq!(
            syn(&Ctx::empty(), &e),
            Err(TypeError::DuplicateHole(HoleName(0)))
        );
    }

    #[test]
    fn case_checks_exhaustiveness() {
        let scrut = inj(option_int(), "Some", int(1));
        let good = case(
            scrut.clone(),
            [("Some", "n", var("n")), ("None", "w", int(0))],
        );
        assert_eq!(syn(&Ctx::empty(), &good).unwrap().0, Typ::Int);

        let missing = case(scrut, [("Some", "n", var("n"))]);
        assert!(matches!(
            syn(&Ctx::empty(), &missing),
            Err(TypeError::InexhaustiveCase { .. })
        ));
    }

    #[test]
    fn labeled_tuple_projection() {
        let e = proj(record([("r", int(57)), ("g", int(107))]), "g");
        assert_eq!(syn(&Ctx::empty(), &e).unwrap().0, Typ::Int);
        let bad = proj(record([("r", int(57))]), "q");
        assert!(matches!(
            syn(&Ctx::empty(), &bad),
            Err(TypeError::BadProjection(..))
        ));
    }

    #[test]
    fn list_forms_type_check() {
        let e = list(Typ::Float, [float(1.0), float(2.0)]);
        assert_eq!(syn(&Ctx::empty(), &e).unwrap().0, Typ::list(Typ::Float));

        let sum_it = lcase(e, float(0.0), "h", "t", var("h"));
        assert_eq!(syn(&Ctx::empty(), &sum_it).unwrap().0, Typ::Float);
    }

    #[test]
    fn fix_types_at_annotation() {
        // fix f : Int -> Int -> fun n : Int -> if n <= 0 then 0 else f (n - 1)
        let fty = Typ::arrow(Typ::Int, Typ::Int);
        let e = fix(
            "f",
            fty.clone(),
            lam(
                "n",
                Typ::Int,
                ite(
                    bin(crate::ops::BinOp::Le, var("n"), int(0)),
                    int(0),
                    ap(var("f"), sub(var("n"), int(1))),
                ),
            ),
        );
        assert_eq!(syn(&Ctx::empty(), &e).unwrap().0, fty);
    }

    #[test]
    fn roll_unroll_recursive_type() {
        // nat = mu t. [.Z | .S 't]
        let nat = Typ::rec(
            "t",
            Typ::sum([
                (Label::new("Z"), Typ::Unit),
                (Label::new("S"), Typ::Var(crate::ident::TVar::new("t"))),
            ]),
        );
        let unrolled = nat.unroll().unwrap();
        let zero = roll(nat.clone(), inj(unrolled.clone(), "Z", unit()));
        assert_eq!(syn(&Ctx::empty(), &zero).unwrap().0, nat);
        let one = roll(nat.clone(), inj(unrolled, "S", zero));
        assert_eq!(syn(&Ctx::empty(), &one).unwrap().0, nat);
    }

    #[test]
    fn ana_tuple_against_labeled_product() {
        let color = Typ::prod([(Label::new("r"), Typ::Int), (Label::new("g"), Typ::Int)]);
        let ok = record([("r", int(1)), ("g", int(2))]);
        assert!(ana(&Ctx::empty(), &ok, &color).is_ok());
        // Holes allowed componentwise in analytic position.
        let holey = record([("r", int(1)), ("g", hole(3))]);
        let delta = ana(&Ctx::empty(), &holey, &color).unwrap();
        assert_eq!(delta.get(HoleName(3)).unwrap().ty, Typ::Int);
        // Wrong labels rejected.
        let bad = record([("g", int(1)), ("r", int(2))]);
        assert!(matches!(
            ana(&Ctx::empty(), &bad, &color),
            Err(TypeError::TupleShape { .. })
        ));
    }

    #[test]
    fn shadowing_uses_innermost_binding() {
        let e = elet("x", int(1), elet("x", boolean(true), var("x")));
        assert_eq!(syn(&Ctx::empty(), &e).unwrap().0, Typ::Bool);
    }

    #[test]
    fn non_empty_hole_types_like_empty_hole() {
        // A non-empty hole marking `true` used where Int is expected.
        let marked = EExp::NonEmptyHole(HoleName(1), Box::new(boolean(true)));
        let delta = ana(&Ctx::empty(), &marked, &Typ::Int).unwrap();
        assert_eq!(delta.get(HoleName(1)).unwrap().ty, Typ::Int);
    }
}
